#!/usr/bin/env python3
"""Record a perf baseline (BENCH_<n>.json) from the `reproduce` binary.

Runs each experiment section of `cargo run --release -p gpes-bench --bin
reproduce` separately, records host wall-clock per section, and parses the
E1 speedup table into structured rows. Later PRs diff their BENCH_<n>.json
against the previous one to show a perf trajectory (see EXPERIMENTS.md).

Usage:
    python3 scripts/record_baseline.py [output.json]

The output defaults to BENCH_<n>.json with the first unused n.
"""

import json
import os
import pathlib
import platform
import re
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
SECTIONS = [
    "e1", "sweep", "e2", "f1", "f2",
    "a1", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "a10", "a11", "a12",
    "a13", "a14", "a15", "a16",
]

# e.g. "sum (int)    n=1048576    cpu   64.97 ms   gpu  13.33 ms   speedup 4.87x   paper 7.2x   validated yes"
E1_ROW = re.compile(
    r"^(?P<kernel>\S+ \((?:int|fp)\))\s+(?P<size>\S+)\s+"
    r"cpu\s+(?P<cpu_ms>[\d.]+) ms\s+gpu\s+(?P<gpu_ms>[\d.]+) ms\s+"
    r"speedup\s+(?P<speedup>[\d.]+)x\s+paper\s+(?P<paper>[\d.]+x|-)\s+"
    r"validated\s+(?P<validated>\S+)"
)

# The a9/a10/a11 row regexes live in ci_perf_gate.py (one copy, imported
# by both consumers) so a format change in the bench row printers cannot
# desynchronise the CI gate from the recorded baselines.
from ci_perf_gate import (  # noqa: E402
    A9_ROW, A10_ROW, A11_NUMERIC, A11_ROW, parse_a12_lines, parse_a13_lines,
    parse_a14_lines, parse_a15_lines, parse_a16_lines,
)


def run_section(name: str) -> dict:
    cmd = [
        "cargo", "run", "--quiet", "--release", "-p", "gpes-bench",
        "--bin", "reproduce", "--", name,
    ]
    start = time.monotonic()
    proc = subprocess.run(
        cmd, cwd=REPO, capture_output=True, text=True, timeout=1800
    )
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        sys.exit(f"section {name} failed (rc={proc.returncode}):\n{proc.stderr}")
    return {"host_seconds": round(elapsed, 3), "stdout": proc.stdout}


def main() -> None:
    if len(sys.argv) > 1:
        out_path = pathlib.Path(sys.argv[1])
    else:
        n = 0
        while (REPO / f"BENCH_{n}.json").exists():
            n += 1
        out_path = REPO / f"BENCH_{n}.json"

    subprocess.run(
        ["cargo", "build", "--release", "-p", "gpes-bench", "--bin", "reproduce"],
        cwd=REPO, check=True,
    )

    git_rev = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"], cwd=REPO,
        capture_output=True, text=True,
    ).stdout.strip() or "unknown"

    sections = {}
    e1_rows = []
    a9_rows = []
    a10_rows = []
    a11_rows = []
    a12_block = {}
    a13_block = {}
    a14_block = {}
    a15_block = {}
    a16_block = {}
    for name in SECTIONS:
        result = run_section(name)
        lines = result["stdout"].splitlines()
        sections[name] = {
            "host_seconds": result["host_seconds"],
            "lines": len(lines),
        }
        if name in ("e1", "sweep"):
            for line in lines:
                m = E1_ROW.match(line.strip())
                if m:
                    row = m.groupdict()
                    for k in ("cpu_ms", "gpu_ms", "speedup"):
                        row[k] = float(row[k])
                    paper = row["paper"]
                    row["paper"] = (
                        None if paper == "-" else float(paper.rstrip("x"))
                    )
                    row["validated"] = row["validated"] == "yes"
                    row["section"] = name
                    e1_rows.append(row)
        if name == "a9":
            for line in lines:
                m = A9_ROW.match(line.strip())
                if m:
                    row = m.groupdict()
                    row["host_ms"] = float(row["host_ms"])
                    for k in ("programs_linked", "textures_created", "pool_hits"):
                        row[k] = int(row[k])
                    a9_rows.append(row)
        if name == "a10":
            for line in lines:
                m = A10_ROW.match(line.strip())
                if m:
                    row = m.groupdict()
                    for k in ("host_ms", "jobs_per_sec"):
                        row[k] = float(row[k])
                    for k in ("workers", "jobs", "links", "post_warmup_links"):
                        row[k] = int(row[k])
                    a10_rows.append(row)
        if name == "a11":
            for line in lines:
                m = A11_ROW.match(line.strip())
                if m:
                    row = m.groupdict()
                    for k, cast in A11_NUMERIC.items():
                        row[k] = cast(row[k])
                    a11_rows.append(row)
        if name == "a12":
            a12_block = parse_a12_lines(lines)
        if name == "a13":
            a13_block = parse_a13_lines(lines)
        if name == "a14":
            a14_block = parse_a14_lines(lines)
        if name == "a15":
            a15_block = parse_a15_lines(lines)
        if name == "a16":
            a16_block = parse_a16_lines(lines)

    baseline = {
        "schema": "gpes-bench-baseline/1",
        "recorded_unix": int(time.time()),
        "git_rev": git_rev,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            # Effective cores bound worker-pool wall-clock scaling (a10):
            # on a 1-core host N workers cannot beat 1 worker on jobs/s,
            # while the link counters are host-independent.
            "cpus": os.cpu_count(),
        },
        "total_host_seconds": round(
            sum(s["host_seconds"] for s in sections.values()), 3
        ),
        "sections": sections,
        "e1_speedups": e1_rows,
        # a9: host compile/bind split — rebuild-per-pass vs retained
        # pipeline over the iterated multi-pass workloads (PR 3).
        "a9_host_cache": a9_rows,
        # a10: concurrent serving engine — shared vs per-context program
        # caches across worker pools (PR 4). The deterministic contract:
        # shared-cache links equal the mix size at every pool size and
        # post_warmup_links is 0; per-context caches relink per worker.
        "a10_serving": a10_rows,
        # a11: whole retained pipelines served as engine jobs vs direct
        # runs vs per-pass Submission DAGs (PR 5). The deterministic
        # contract: engine-pipeline rows show zero post-warmup links and
        # zero new GL objects in the steady-state wave, and every mode is
        # bit-identical to the direct run.
        "a11_pipeline_serving": a11_rows,
        # a12: bounded admission under a saturating open-loop load
        # (PR 6). The deterministic contract: outcome counters balance,
        # QueueFull and deadline sheds are observed, the steady state
        # links/allocates nothing, and completed outputs stay
        # bit-identical. The admission counts and latency quantiles are
        # load/host-dependent and recorded for trajectory only.
        "a12_serving_latency": a12_block,
        # a13: the a12 load re-run under seeded deterministic FaultPlans
        # (PR 7). The deterministic contract: every rate's row balances,
        # completes bit-identical to the fault-free reference, recovers
        # its lost contexts and never hangs; retried/faults counts are
        # seed-deterministic, submitted/rejected scale with host speed.
        "a13_chaos": a13_block,
        # a14: multi-tenant dynamic kernel registry (PR 8). The
        # deterministic contract: every invalid source is refused with a
        # typed admission error, the noisy tenant trips its in-flight
        # quota at least once, post-warmup links/objects are zero and all
        # tenant rows are bit-identical; the quota-rejection count is
        # scheduling-dependent and recorded for trajectory only.
        "a14_registry": a14_block,
        # a15: SPMD lane VM — scalar vs spmd4 vs spmd8 executors plus
        # vectorised codec slice paths (PR 9). The deterministic
        # contract: every executor row is bit-identical to the scalar
        # VM, SPMD rows batch (scalar rows never do), and engine serving
        # under an spmd mode stays balanced and identical. The
        # fragments/s, texels/s and geomean speedup numbers are
        # host-dependent and recorded for trajectory only.
        "a15_spmd": a15_block,
        # a16: end-to-end quantized CNN inference served quant vs f32
        # (PR 10). The deterministic contract: every path row is
        # bit-identical to the host reference with balanced counters and
        # a zero-link, zero-allocation steady state, quant rows report
        # zero f32 host transfers (native u8/i16 codecs end-to-end) and
        # f32 twin rows report nonzero. images/s is host-dependent —
        # and flat across worker counts on a single-core host — so it is
        # recorded for trajectory only.
        "a16_quant": a16_block,
    }
    out_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {out_path} ({len(e1_rows)} speedup rows, "
          f"{baseline['total_host_seconds']}s host time)")


if __name__ == "__main__":
    main()
