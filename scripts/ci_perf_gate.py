#!/usr/bin/env python3
"""CI perf smoke + cache-counter gate.

Two concerns, one machine-readable artefact:

* **Timing (advisory).** Compares the measured `reproduce a3` wall-clock
  against the newest committed `BENCH_<n>.json`. Shared CI runners are
  noisy, so a slow run only prints a warning — it never fails the build.

* **Counters (blocking).** The a9/a10/a11 cache counters are
  deterministic: they count links, pool hits and GL objects, not time.
  The contract locked in here:

  - a9 retained mode compiles exactly 2/1/2 programs in-loop for
    srad/reduce/fft and always hits the texture pool;
  - a10 shared-cache rows link exactly the mix size (3 for `hot3`, 24
    for `wide24`) at *every* worker count, with zero post-warmup links;
  - a11 engine-pipeline rows (whole retained pipelines served as engine
    jobs) show **zero** post-warmup links and **zero** new GL objects in
    the steady-state wave at every worker count, and every a11 row —
    engine, direct and per-pass alike — reports outputs bit-identical to
    the direct retained-Pipeline run;
  - a12 (bounded admission under a saturating open-loop load) must show
    balanced outcome counters (submitted = completed + rejected + shed +
    cancelled + aborted), at least one QueueFull rejection and one
    deadline shed (the load genuinely saturated), zero post-warmup
    links/objects, and bit-identical completed outputs. The a12 latency
    histograms and timing line are host-dependent and advisory.
  - a13 (chaos: the a12 load re-run under seeded deterministic
    FaultPlans) must show, at *every* fault rate: balanced counters,
    completed outputs bit-identical to the fault-free reference, no hung
    waiters, and at least one recovered (rebuilt) worker context; across
    the sweep, nonzero rates must actually inject faults and at least
    one transient failure must be retried. Jobs *may* fail once the
    retry budget is exhausted — a typed error is an allowed chaos
    outcome; a wrong answer or a hang is not.
  - a14 (multi-tenant dynamic kernel registry) must show every invalid
    GLSL source rejected with a *typed* admission error (typed count ==
    attempt count — an untyped failure or a panic breaks the contract),
    at least one typed quota rejection from the noisy tenant, zero
    post-warmup links and GL objects (hostile tenants never cost their
    neighbours anything), balanced counters, and every tenant's served
    outputs bit-identical to the compiled-in path (`wrong 0` on every
    tenant row).

  - a15 (SPMD lane VM) must show every executor row bit-identical to
    the scalar VM, every SPMD-mode row actually batching
    (`spmd_batches > 0`, and exactly 0 on the scalar rows), and the
    engine serving run under an SPMD exec mode with balanced counters
    and bit-identical outputs. The fragments/s, texels/s and geomean
    speedup numbers are host-dependent and advisory.

  - a16 (quantized CNN serving) must show every path row — quant and
    f32 twin alike, at every worker count — bit-identical to the host
    reference, with balanced counters and **zero** post-warmup links
    and GL objects; the quantized rows must additionally report **zero**
    f32 host transfers (u8/i16 tensors crossed the host boundary in
    their native codec, never as widened f32) with a nonzero quantized
    transfer count, while the f32 twin rows must report nonzero f32
    transfers (proving the counter actually discriminates). Per-layer
    pass-accounting rows must be present. The ms and images/s numbers
    are host-dependent and advisory.

  Any violation exits non-zero and fails CI.

Everything parsed plus the verdicts is written to `ci_perf.json` (path
overridable by the last argument) and uploaded as a workflow artifact, so
the perf trajectory is diffable across runs instead of buried in logs.

Usage:
    ci_perf_gate.py <a3_start> <a3_end> <a9_out> <a10_out> <a11_out> <a12_out> <a13_out> <a14_out> <a15_out> <a16_out> [ci_perf.json]

where `a3_start`/`a3_end` are `date +%s.%N` stamps around the a3 run.
"""

import glob
import json
import pathlib
import re
import sys

A9_ROW = re.compile(
    r"^(?P<workload>\w+)\s+(?P<mode>\S+)\s+(?P<host_ms>[\d.]+) ms\s+"
    r"programs\s+(?P<programs_linked>\d+)\s+textures\s+(?P<textures_created>\d+)\s+"
    r"pool hits\s+(?P<pool_hits>\d+)"
)
A10_ROW = re.compile(
    r"^(?P<mix>\w+)\s+workers (?P<workers>\d+)\s+(?P<cache>\S+)\s+"
    r"(?P<jobs>\d+) jobs\s+(?P<host_ms>[\d.]+) ms\s+(?P<jobs_per_sec>[\d.]+) jobs/s\s+"
    r"links\s+(?P<links>\d+)\s+post-warmup\s+(?P<post_warmup_links>\d+)"
)
A11_ROW = re.compile(
    r"^(?P<workload>\w+)\s+(?P<mode>[\w-]+)\s+workers (?P<workers>\d+)\s+"
    r"(?P<jobs>\d+) jobs\s+(?P<host_ms>[\d.]+) ms\s+(?P<jobs_per_sec>[\d.]+) jobs/s\s+"
    r"links\s+(?P<links>\d+)\s+post-warmup links\s+(?P<post_warmup_links>\d+)\s+"
    r"objects\s+(?P<post_warmup_gl_objects>\d+)\s+identical (?P<identical>\S+)"
)

A11_NUMERIC = {
    "workers": int, "jobs": int, "host_ms": float, "jobs_per_sec": float,
    "links": int, "post_warmup_links": int, "post_warmup_gl_objects": int,
}

# a12 is a single multi-line block, not a row table: one line per concern,
# each with the stable `a12 <tag>` prefix printed by A12Report::format().
A12_CONFIG = re.compile(
    r"^a12 config\s+workers (?P<workers>\d+)\s+capacity (?P<capacity>\d+)\s+"
    r"target jobs (?P<target_jobs>\d+)"
)
A12_COUNTERS = re.compile(
    r"^a12 counters\s+submitted (?P<submitted>\d+)\s+completed (?P<completed>\d+)\s+"
    r"rejected (?P<rejected>\d+)\s+shed (?P<shed>\d+)\s+cancelled (?P<cancelled>\d+)\s+"
    r"aborted (?P<aborted>\d+)\s+unobserved (?P<unobserved>\d+)\s+"
    r"balanced (?P<balanced>\S+)"
)
A12_STEADY = re.compile(
    r"^a12 steady\s+post-warmup links (?P<post_warmup_links>\d+)\s+"
    r"objects (?P<post_warmup_gl_objects>\d+)\s+"
    r"queue high-water (?P<queue_high_water>\d+)\s+identical (?P<identical>\S+)"
)
A12_LATENCY = re.compile(
    r"^a12 (?P<kind>queue|service)\s+p50 (?P<p50_us>\d+) us\s+p90 (?P<p90_us>\d+) us\s+"
    r"p99 (?P<p99_us>\d+) us\s+max (?P<max_us>\d+) us\s+mean (?P<mean_us>\d+) us\s+"
    r"samples (?P<samples>\d+)"
)
A12_TIMING = re.compile(
    r"^a12 timing\s+(?P<elapsed_ms>[\d.]+) ms\s+"
    r"(?P<completed_jobs_per_sec>[\d.]+) completed jobs/s"
)


# a13 is a config line plus one `a13 chaos` row per fault rate, printed
# by A13Report::format().
A13_CONFIG = re.compile(
    r"^a13 config\s+workers (?P<workers>\d+)\s+capacity (?P<capacity>\d+)\s+"
    r"target jobs (?P<target_jobs>\d+)\s+lose-after (?P<lose_after>\d+)\s+"
    r"attempts (?P<attempts>\d+)"
)
A13_ROW = re.compile(
    r"^a13 chaos\s+rate (?P<rate>[\d.]+)\s+submitted (?P<submitted>\d+)\s+"
    r"completed (?P<completed>\d+)\s+failed (?P<failed>\d+)\s+"
    r"rejected (?P<rejected>\d+)\s+shed (?P<shed>\d+)\s+"
    r"cancelled (?P<cancelled>\d+)\s+aborted (?P<aborted>\d+)\s+"
    r"retried (?P<retried>\d+)\s+recovered (?P<recovered>\d+)\s+"
    r"faults (?P<faults>\d+)\s+balanced (?P<balanced>\S+)\s+"
    r"identical (?P<identical>\S+)\s+hung (?P<hung>\S+)"
)
A13_FLAGS = ("balanced", "identical", "hung")


def parse_a13_lines(lines):
    """Parses A13Report::format() output into {"config": {...}, "rows": [...]}."""
    out = {}
    for line in lines:
        line = line.strip()
        m = A13_CONFIG.match(line)
        if m:
            out["config"] = {k: int(v) for k, v in m.groupdict().items()}
        m = A13_ROW.match(line)
        if m:
            row = m.groupdict()
            for k, v in row.items():
                if k == "rate":
                    row[k] = float(v)
                elif k not in A13_FLAGS:
                    row[k] = int(v)
            out.setdefault("rows", []).append(row)
    return out


# a14 is a config line, one `a14 tenant` row per tenant, and a totals
# line, printed by A14Report::format().
A14_CONFIG = re.compile(
    r"^a14 config\s+workers (?P<workers>\d+)\s+capacity (?P<capacity>\d+)\s+"
    r"tenants (?P<tenants>\d+)\s+wave jobs (?P<wave_jobs>\d+)\s+"
    r"noisy quota (?P<noisy_quota>\d+)"
)
A14_TENANT = re.compile(
    r"^a14 tenant\s+name (?P<name>\S+)\s+admitted (?P<admitted>\d+)\s+"
    r"rejected (?P<rejected>\d+)\s+evicted (?P<evicted>\d+)\s+"
    r"jobs (?P<jobs>\d+)\s+wrong (?P<wrong>\d+)"
)
A14_TOTALS = re.compile(
    r"^a14 totals\s+invalid (?P<invalid>\d+)\s+typed (?P<typed>\d+)\s+"
    r"quota-rejections (?P<quota_rejections>\d+)\s+"
    r"post-warmup links (?P<post_warmup_links>\d+)\s+"
    r"objects (?P<post_warmup_gl_objects>\d+)\s+balanced (?P<balanced>\S+)\s+"
    r"identical (?P<identical>\S+)"
)
A14_FLAGS = ("balanced", "identical")


def parse_a14_lines(lines):
    """Parses A14Report::format() output into {"config", "tenants", "totals"}."""
    out = {}
    for line in lines:
        line = line.strip()
        m = A14_CONFIG.match(line)
        if m:
            out["config"] = {k: int(v) for k, v in m.groupdict().items()}
        m = A14_TENANT.match(line)
        if m:
            row = m.groupdict()
            for k, v in row.items():
                if k != "name":
                    row[k] = int(v)
            out.setdefault("tenants", []).append(row)
        m = A14_TOTALS.match(line)
        if m:
            row = m.groupdict()
            out["totals"] = {
                k: (v if k in A14_FLAGS else int(v)) for k, v in row.items()
            }
    return out


# a15 is four row families, printed by A15Report::format(): per-kernel
# executor rows, geomean mix lines, codec texels/s rows, and one engine
# serving line.
A15_VM = re.compile(
    r"^a15 vm\s+kernel (?P<kernel>.+?)\s+mode (?P<mode>\S+)\s+"
    r"fragments/s\s+(?P<fragments_per_sec>\d+)\s+identical (?P<identical>\S+)\s+"
    r"spmd_batches (?P<spmd_batches>\d+)\s+fallbacks (?P<fallbacks>\d+)"
)
A15_MIX = re.compile(
    r"^a15 mix\s+mode (?P<mode>\S+)\s+"
    r"geomean speedup vs scalar (?P<geomean_speedup>[\d.]+)x"
)
A15_CODEC = re.compile(
    r"^a15 codec\s+(?P<format>\S+)\s+path (?P<path>\S+)\s+"
    r"texels/s\s+(?P<texels_per_sec>\d+)"
)
A15_SERVE = re.compile(
    r"^a15 serve\s+exec_mode (?P<exec_mode>\S+)\s+jobs (?P<jobs>\d+)\s+"
    r"identical (?P<identical>\S+)\s+balanced (?P<balanced>\S+)\s+"
    r"spmd_batches (?P<spmd_batches>\d+)\s+fallbacks (?P<fallbacks>\d+)"
)


def parse_a15_lines(lines):
    """Parses A15Report::format() into {"vm", "mix", "codec", "serve"}."""
    out = {}
    for line in lines:
        line = line.strip()
        m = A15_VM.match(line)
        if m:
            row = m.groupdict()
            for k in ("fragments_per_sec", "spmd_batches", "fallbacks"):
                row[k] = int(row[k])
            out.setdefault("vm", []).append(row)
        m = A15_MIX.match(line)
        if m:
            row = m.groupdict()
            row["geomean_speedup"] = float(row["geomean_speedup"])
            out.setdefault("mix", []).append(row)
        m = A15_CODEC.match(line)
        if m:
            row = m.groupdict()
            row["texels_per_sec"] = int(row["texels_per_sec"])
            out.setdefault("codec", []).append(row)
        m = A15_SERVE.match(line)
        if m:
            row = m.groupdict()
            for k in ("jobs", "spmd_batches", "fallbacks"):
                row[k] = int(row[k])
            out["serve"] = row
    return out


# a16 is a config line, per-layer pass-accounting rows and per-path
# serving rows, printed by A16Report::format().
A16_CONFIG = re.compile(
    r"^a16 config\s+img (?P<img_side>\d+)x\d+\s+conv 3x3 x(?P<conv_layers>\d+)\s+"
    r"dense (?P<dense_inputs>\d+)->(?P<dense_outputs>\d+)\s+"
    r"weights i16\s+activations u8"
)
A16_LAYER = re.compile(
    r"^a16 layer\s+pass (?P<pass>\S+)\s+output_texels\s+(?P<output_texels>\d+)\s+"
    r"ops/texel\s+(?P<ops_per_texel>[\d.]+)"
)
A16_PATH = re.compile(
    r"^a16 path\s+precision (?P<precision>\S+)\s+workers (?P<workers>\d+)\s+"
    r"jobs\s+(?P<jobs>\d+)\s+(?P<host_ms>[\d.]+) ms\s+"
    r"(?P<images_per_sec>[\d.]+) images/s\s+identical (?P<identical>\S+)\s+"
    r"balanced (?P<balanced>\S+)\s+"
    r"post_warmup_links (?P<post_warmup_links>\d+)\s+"
    r"post_warmup_objects (?P<post_warmup_objects>\d+)\s+"
    r"f32_transfers (?P<f32_transfers>\d+)\s+"
    r"quant_transfers (?P<quant_transfers>\d+)"
)
A16_PATH_FLAGS = ("precision", "identical", "balanced")
A16_PRECISIONS = ("quant", "f32")
A16_WORKER_COUNTS = (1, 2, 4)


def parse_a16_lines(lines):
    """Parses A16Report::format() into {"config", "layers", "paths"}."""
    out = {}
    for line in lines:
        line = line.strip()
        m = A16_CONFIG.match(line)
        if m:
            out["config"] = {k: int(v) for k, v in m.groupdict().items()}
        m = A16_LAYER.match(line)
        if m:
            row = m.groupdict()
            row["output_texels"] = int(row["output_texels"])
            row["ops_per_texel"] = float(row["ops_per_texel"])
            out.setdefault("layers", []).append(row)
        m = A16_PATH.match(line)
        if m:
            row = m.groupdict()
            for k, v in row.items():
                if k in A16_PATH_FLAGS:
                    continue
                row[k] = float(v) if k in ("host_ms", "images_per_sec") else int(v)
            out.setdefault("paths", []).append(row)
    return out


def parse_a12_lines(lines):
    """Parses A12Report::format() output into one nested dict (or {})."""
    out = {}
    for line in lines:
        line = line.strip()
        m = A12_CONFIG.match(line)
        if m:
            out["config"] = {k: int(v) for k, v in m.groupdict().items()}
        m = A12_COUNTERS.match(line)
        if m:
            row = m.groupdict()
            out["counters"] = {
                k: (v if k == "balanced" else int(v)) for k, v in row.items()
            }
        m = A12_STEADY.match(line)
        if m:
            row = m.groupdict()
            out["steady"] = {
                k: (v if k == "identical" else int(v)) for k, v in row.items()
            }
        m = A12_LATENCY.match(line)
        if m:
            row = m.groupdict()
            kind = row.pop("kind")
            out.setdefault("latency_us", {})[kind] = {
                k: int(v) for k, v in row.items()
            }
        m = A12_TIMING.match(line)
        if m:
            out["timing"] = {k: float(v) for k, v in m.groupdict().items()}
    return out

# The deterministic contracts.
A9_RETAINED_LINKS = {"srad": 2, "reduce": 1, "fft": 2}
A10_MIX_LINKS = {"hot3": 3, "wide24": 24}
A11_WORKLOADS = ("fft", "srad", "reduce")
A11_ENGINE_WORKER_COUNTS = (1, 2, 4)


def parse_rows(path, regex, numeric):
    rows = []
    for line in pathlib.Path(path).read_text().splitlines():
        m = regex.match(line.strip())
        if m:
            row = m.groupdict()
            for k, cast in numeric.items():
                row[k] = cast(row[k])
            rows.append(row)
    return rows


def main():
    if len(sys.argv) < 11:
        sys.exit(__doc__)
    elapsed = float(sys.argv[2]) - float(sys.argv[1])
    a9_rows = parse_rows(
        sys.argv[3], A9_ROW,
        {"host_ms": float, "programs_linked": int,
         "textures_created": int, "pool_hits": int},
    )
    a10_rows = parse_rows(
        sys.argv[4], A10_ROW,
        {"workers": int, "jobs": int, "host_ms": float,
         "jobs_per_sec": float, "links": int, "post_warmup_links": int},
    )
    a11_rows = parse_rows(sys.argv[5], A11_ROW, A11_NUMERIC)
    a12 = parse_a12_lines(pathlib.Path(sys.argv[6]).read_text().splitlines())
    a13 = parse_a13_lines(pathlib.Path(sys.argv[7]).read_text().splitlines())
    a14 = parse_a14_lines(pathlib.Path(sys.argv[8]).read_text().splitlines())
    a15 = parse_a15_lines(pathlib.Path(sys.argv[9]).read_text().splitlines())
    a16 = parse_a16_lines(pathlib.Path(sys.argv[10]).read_text().splitlines())
    out_path = pathlib.Path(sys.argv[11] if len(sys.argv) > 11 else "ci_perf.json")

    # ---- advisory timing ------------------------------------------------
    baselines = sorted(glob.glob("BENCH_*.json"),
                       key=lambda p: int(re.search(r"\d+", p).group()))
    base = json.load(open(baselines[-1]))["sections"]["a3"]["host_seconds"]
    ratio = elapsed / base
    print(f"perf-smoke: a3 took {elapsed:.2f}s on this runner; committed "
          f"baseline ({baselines[-1]}) is {base:.2f}s ({ratio:.2f}x)")
    if ratio > 2.0:
        print("perf-smoke: WARNING — a3 is >2x the committed baseline "
              "(advisory: shared runners are noisy, not failing the build)")

    # ---- blocking counter gate ------------------------------------------
    failures = []
    retained = {r["workload"]: r for r in a9_rows if r["mode"] == "retained"}
    for workload, want in A9_RETAINED_LINKS.items():
        row = retained.get(workload)
        if row is None:
            failures.append(f"a9: missing retained row for {workload}")
        elif row["programs_linked"] != want:
            failures.append(
                f"a9: {workload} retained linked {row['programs_linked']} "
                f"programs in-loop, contract is {want}")
        elif row["pool_hits"] == 0:
            failures.append(f"a9: {workload} retained never hit the texture pool")

    shared_rows = [r for r in a10_rows if r["cache"] == "shared"]
    if not shared_rows:
        failures.append("a10: no shared-cache rows parsed")
    for row in shared_rows:
        want = A10_MIX_LINKS.get(row["mix"])
        where = f"a10: {row['mix']} @ {row['workers']} workers"
        if want is None:
            failures.append(f"{where}: unknown mix")
        elif row["links"] != want:
            failures.append(
                f"{where}: {row['links']} process-wide links, contract is "
                f"{want} (constant across worker counts)")
        if row["post_warmup_links"] != 0:
            failures.append(
                f"{where}: {row['post_warmup_links']} post-warmup links, "
                f"contract is 0 with the shared cache")

    # a11: whole retained pipelines served as engine jobs. Every row must
    # be bit-identical to the direct run; the engine-pipeline rows must
    # additionally show a zero-link, zero-allocation steady-state wave at
    # every worker count.
    if not a11_rows:
        failures.append("a11: no rows parsed")
    for row in a11_rows:
        where = f"a11: {row['workload']} {row['mode']} @ {row['workers']} workers"
        if row["identical"] != "yes":
            failures.append(f"{where}: output diverged from the direct run")
    engine_rows = {
        (r["workload"], r["workers"]): r
        for r in a11_rows if r["mode"] == "engine-pipeline"
    }
    for workload in A11_WORKLOADS:
        for workers in A11_ENGINE_WORKER_COUNTS:
            row = engine_rows.get((workload, workers))
            where = f"a11: {workload} engine-pipeline @ {workers} workers"
            if row is None:
                failures.append(f"{where}: row missing")
                continue
            if row["post_warmup_links"] != 0:
                failures.append(
                    f"{where}: {row['post_warmup_links']} post-warmup links, "
                    f"contract is 0 for steady-state pipeline serving")
            if row["post_warmup_gl_objects"] != 0:
                failures.append(
                    f"{where}: {row['post_warmup_gl_objects']} GL objects created "
                    f"in the steady-state wave, contract is 0")

    # a12: bounded admission under saturation. The outcome counters and
    # steady-state rows are deterministic contracts; the latency
    # histograms and the timing line are host noise and stay advisory.
    required = ("config", "counters", "steady", "latency_us", "timing")
    missing = [k for k in required if k not in a12]
    if missing:
        failures.append(f"a12: sections not parsed: {', '.join(missing)}")
    else:
        c = a12["counters"]
        s = a12["steady"]
        if c["balanced"] != "yes":
            failures.append(
                "a12: outcome counters do not balance (submitted != "
                "completed + rejected + shed + cancelled + aborted)")
        if c["rejected"] == 0:
            failures.append(
                "a12: zero QueueFull rejections — the open-loop load never "
                "saturated the admission bound")
        if c["shed"] == 0:
            failures.append(
                "a12: zero deadline sheds — expired jobs were not shed at "
                "dequeue")
        if s["identical"] != "yes":
            failures.append("a12: a completed output diverged from the "
                            "direct run")
        if s["post_warmup_links"] != 0:
            failures.append(
                f"a12: {s['post_warmup_links']} post-warmup links, "
                f"contract is 0 under saturation")
        if s["post_warmup_gl_objects"] != 0:
            failures.append(
                f"a12: {s['post_warmup_gl_objects']} GL objects created "
                f"under saturation, contract is 0")
        if s["queue_high_water"] > a12["config"]["capacity"]:
            failures.append(
                f"a12: queue high-water {s['queue_high_water']} exceeds the "
                f"admission bound {a12['config']['capacity']}")

    # a13: chaos serving. Self-healing is deterministic from the seed:
    # every rate must recover its lost contexts and keep completed
    # outputs bit-identical, nonzero rates must actually inject faults,
    # and the sweep must exercise the retry path. `failed` is *allowed*
    # to be nonzero — a typed transient error after the retry budget is
    # an honest outcome; a wrong answer or a hang fails the build.
    a13_rows = a13.get("rows", [])
    if "config" not in a13 or not a13_rows:
        failures.append("a13: config or chaos rows not parsed")
    else:
        for row in a13_rows:
            where = f"a13: rate {row['rate']:.4f}"
            if row["balanced"] != "yes":
                failures.append(
                    f"{where}: outcome counters do not balance under fault "
                    f"injection (a retried job must still count exactly once)")
            if row["identical"] != "yes":
                failures.append(
                    f"{where}: a completed output diverged from the "
                    f"fault-free reference — chaos corrupted a result")
            if row["hung"] != "no":
                failures.append(
                    f"{where}: a submitted job never resolved — a waiter "
                    f"hung through fault recovery")
            if row["recovered"] < 1:
                failures.append(
                    f"{where}: no worker context was rebuilt — the injected "
                    f"context loss never triggered recovery")
        if sum(r["faults"] for r in a13_rows if r["rate"] > 0.0) == 0:
            failures.append(
                "a13: nonzero fault rates injected zero faults — the chaos "
                "plan never armed")
        if sum(r["retried"] for r in a13_rows) == 0:
            failures.append(
                "a13: zero retries across the sweep — transient failures "
                "were never re-run")

    # a14: multi-tenant dynamic kernel registry. The admission pipeline
    # and quota ledger are deterministic: every invalid source must be
    # refused with a typed error, the noisy tenant must actually trip its
    # in-flight quota, and neither hostile tenant may cost the
    # well-behaved ones a single link or GL object past warmup.
    a14_tenants = a14.get("tenants", [])
    if "config" not in a14 or "totals" not in a14 or not a14_tenants:
        failures.append("a14: config, tenant rows or totals not parsed")
    else:
        t = a14["totals"]
        if t["invalid"] == 0:
            failures.append(
                "a14: zero invalid registration attempts — the admission "
                "pipeline was never exercised")
        if t["typed"] != t["invalid"]:
            failures.append(
                f"a14: {t['invalid']} invalid sources but only {t['typed']} "
                f"typed rejections — an admission failure was untyped")
        if t["quota_rejections"] == 0:
            failures.append(
                "a14: zero quota rejections — the noisy tenant never "
                "tripped its in-flight quota")
        if t["balanced"] != "yes":
            failures.append(
                "a14: outcome counters do not balance (tenant-tagged "
                "rejections must feed the same global ledger)")
        if t["identical"] != "yes":
            failures.append(
                "a14: a dynamically-registered kernel's output diverged "
                "from the compiled-in path")
        if t["post_warmup_links"] != 0:
            failures.append(
                f"a14: {t['post_warmup_links']} post-warmup links, contract "
                f"is 0 — a hostile tenant cost its neighbours a relink")
        if t["post_warmup_gl_objects"] != 0:
            failures.append(
                f"a14: {t['post_warmup_gl_objects']} GL objects created "
                f"post-warmup, contract is 0")
        if len(a14_tenants) != a14["config"]["tenants"]:
            failures.append(
                f"a14: {len(a14_tenants)} tenant rows parsed, config "
                f"announced {a14['config']['tenants']}")
        for row in a14_tenants:
            if row["wrong"] != 0:
                failures.append(
                    f"a14: tenant {row['name']} had {row['wrong']} outputs "
                    f"diverge from its reference")

    # a15: SPMD lane VM. Bit-identity and batching are deterministic
    # contracts — every executor row must match the scalar VM exactly,
    # SPMD modes must actually batch (scalar must not), and the engine
    # serving run must hold the same invariants under an SPMD exec mode.
    # Throughput and geomean speedup stay advisory on shared runners.
    a15_vm = a15.get("vm", [])
    if not a15_vm or "serve" not in a15:
        failures.append("a15: vm rows or serve line not parsed")
    else:
        modes_seen = set()
        for row in a15_vm:
            where = f"a15: {row['kernel']} {row['mode']}"
            modes_seen.add(row["mode"])
            if row["identical"] != "yes":
                failures.append(
                    f"{where}: output or profile diverged from the scalar VM")
            if row["mode"].startswith("spmd") and row["spmd_batches"] == 0:
                failures.append(
                    f"{where}: an SPMD mode never dispatched a lane batch")
            if row["mode"] == "scalar" and row["spmd_batches"] != 0:
                failures.append(
                    f"{where}: scalar mode reported {row['spmd_batches']} "
                    f"SPMD batches, contract is 0")
        if not any(m.startswith("spmd") for m in modes_seen):
            failures.append("a15: no SPMD executor rows parsed")
        srv = a15["serve"]
        if not srv["exec_mode"].startswith("spmd"):
            failures.append(
                f"a15: serving ran under exec_mode {srv['exec_mode']}, "
                f"contract is an spmd mode")
        if srv["identical"] != "yes":
            failures.append(
                "a15: a served output diverged from the scalar reference")
        if srv["balanced"] != "yes":
            failures.append("a15: serving outcome counters do not balance")
        if srv["spmd_batches"] == 0:
            failures.append(
                "a15: the serving engine never dispatched a lane batch")

    # a16: quantized CNN serving. Bit-identity, counter balance, the
    # zero-allocation steady state and the transfer-codec discipline are
    # deterministic contracts: quant rows must move tensors across the
    # host boundary only in their native u8/i16 codecs (f32_transfers
    # exactly 0) while the f32 twin rows must show the counter firing.
    # images/s and ms stay advisory on shared runners.
    a16_layers = a16.get("layers", [])
    a16_paths = a16.get("paths", [])
    if "config" not in a16 or not a16_layers or not a16_paths:
        failures.append("a16: config, layer rows or path rows not parsed")
    else:
        paths = {(r["precision"], r["workers"]): r for r in a16_paths}
        for precision in A16_PRECISIONS:
            for workers in A16_WORKER_COUNTS:
                row = paths.get((precision, workers))
                where = f"a16: {precision} @ {workers} workers"
                if row is None:
                    failures.append(f"{where}: row missing")
                    continue
                if row["identical"] != "yes":
                    failures.append(
                        f"{where}: served scores/top diverged from the host "
                        f"reference — the pipeline is not bit-exact")
                if row["balanced"] != "yes":
                    failures.append(
                        f"{where}: serving outcome counters do not balance")
                if row["post_warmup_links"] != 0:
                    failures.append(
                        f"{where}: {row['post_warmup_links']} post-warmup "
                        f"links, contract is 0 for steady-state CNN serving")
                if row["post_warmup_objects"] != 0:
                    failures.append(
                        f"{where}: {row['post_warmup_objects']} GL objects "
                        f"created in the steady-state wave, contract is 0")
                if precision == "quant":
                    if row["f32_transfers"] != 0:
                        failures.append(
                            f"{where}: {row['f32_transfers']} f32 host "
                            f"transfers on the quantized path, contract is 0 "
                            f"(tensors must cross as native u8/i16)")
                    if row["quant_transfers"] == 0:
                        failures.append(
                            f"{where}: zero quantized host transfers — the "
                            f"native-codec path was never exercised")
                elif row["f32_transfers"] == 0:
                    failures.append(
                        f"{where}: zero f32 host transfers on the f32 twin — "
                        f"the transfer counter never discriminated the paths")

    # ---- artefact --------------------------------------------------------
    out_path.write_text(json.dumps({
        "schema": "gpes-ci-perf/7",
        "a3": {"elapsed_seconds": round(elapsed, 3),
               "baseline_file": baselines[-1],
               "baseline_seconds": base,
               "ratio": round(ratio, 3),
               "advisory_slow": ratio > 2.0},
        "a9_counters": a9_rows,
        "a10_counters": a10_rows,
        "a11_counters": a11_rows,
        "a12_serving_latency": a12,
        "a13_chaos": a13,
        "a14_registry": a14,
        "a15_spmd": a15,
        "a16_quant": a16,
        "gate_failures": failures,
    }, indent=2) + "\n")
    print(f"wrote {out_path} ({len(a9_rows)} a9 rows, {len(a10_rows)} a10 rows, "
          f"{len(a11_rows)} a11 rows, {len(a12)} a12 sections, "
          f"{len(a13_rows)} a13 rows, {len(a14_tenants)} a14 tenants, "
          f"{len(a15_vm)} a15 vm rows, {len(a16_paths)} a16 path rows)")

    if failures:
        print("counter gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("counter gate passed: a9 in-loop links 2/1/2, a10 shared-cache "
          "post-warmup links all zero, a11 pipeline serving steady-state "
          "links/objects all zero and outputs bit-identical, a12 admission "
          "counters balanced with QueueFull and deadline sheds observed, "
          "a13 chaos rows all balanced/identical/recovered with no hangs, "
          "a14 registry admission all typed with quotas tripped and zero "
          "cross-tenant cost, a15 SPMD rows all bit-identical and batching "
          "with serving balanced under an spmd exec mode, a16 quantized CNN "
          "serving bit-identical at every worker count with zero f32 host "
          "round-trips on the quant path")


if __name__ == "__main__":
    main()
