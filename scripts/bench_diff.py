#!/usr/bin/env python3
"""Diff freshly measured counters against the committed BENCH baselines.

Reads the `ci_perf.json` a CI run just produced (see `ci_perf_gate.py`)
and the newest committed `BENCH_<n>.json` that recorded each section,
then prints a markdown regression table — counters compared exactly,
timing as an advisory ratio. CI appends the table to the job summary and
uploads it as an artifact, so a counter drift is visible at a glance
without downloading logs.

This script never fails the build: the deterministic contracts are
enforced by the blocking `ci_perf_gate.py` step; this one exists to show
the *trajectory* (e.g. a row whose links changed between baselines on
purpose, or a jobs/s shift worth a look).

Usage:
    bench_diff.py <ci_perf.json> [markdown_out]
"""

import glob
import json
import pathlib
import re
import sys


def latest_baseline_with(key):
    """Newest committed BENCH_<n>.json that recorded section `key`."""
    for path in sorted(glob.glob("BENCH_*.json"),
                       key=lambda p: int(re.search(r"\d+", p).group()),
                       reverse=True):
        data = json.load(open(path))
        if data.get(key):
            return path, data[key]
    return None, []


def fmt_ratio(fresh, base):
    if not base:
        return "n/a"
    return f"{fresh / base:.2f}x"


def diff_section(lines, title, baseline_key, fresh_rows, key_fields,
                 counter_fields, time_field):
    path, base_rows = latest_baseline_with(baseline_key)
    lines.append(f"### {title}")
    if not fresh_rows:
        lines.append("_no fresh rows measured_\n")
        return
    if path is None:
        lines.append(f"_no committed baseline records `{baseline_key}` yet_\n")
        return
    lines.append(f"baseline: `{path}`\n")
    head = key_fields + [f"{c} (fresh/base)" for c in counter_fields] + \
        [f"{time_field} ratio", "verdict"]
    lines.append("| " + " | ".join(head) + " |")
    lines.append("|" + "---|" * len(head))
    base_index = {tuple(str(r.get(k)) for k in key_fields): r for r in base_rows}
    for row in fresh_rows:
        key = tuple(str(row.get(k)) for k in key_fields)
        base = base_index.get(key)
        cells = list(key)
        if base is None:
            cells += ["new" for _ in counter_fields] + ["n/a", "NEW ROW"]
        else:
            drift = False
            for c in counter_fields:
                fresh_v, base_v = row.get(c), base.get(c)
                cells.append(f"{fresh_v}/{base_v}")
                drift |= fresh_v != base_v
            cells.append(fmt_ratio(row.get(time_field, 0.0),
                                   base.get(time_field, 0.0)))
            cells.append("counter drift" if drift else "ok")
        lines.append("| " + " | ".join(str(c) for c in cells) + " |")
    lines.append("")


def diff_a12(lines, fresh):
    """a12 is one nested block, not a row table. Only its steady-state
    fields are deterministic; the admission counters scale with how fast
    the host drained the open-loop load, so they (and the latency
    quantiles) appear as advisory ratios, not exact comparisons."""
    lines.append("### a12 — serving latency under saturation")
    if not fresh:
        lines.append("_no fresh a12 block measured_\n")
        return
    path, base = latest_baseline_with("a12_serving_latency")
    if path is None:
        lines.append("_no committed baseline records `a12_serving_latency` yet_\n")
        return
    lines.append(f"baseline: `{path}`\n")
    fs, bs = fresh.get("steady", {}), base.get("steady", {})
    drift = any(fs.get(k) != bs.get(k)
                for k in ("post_warmup_links", "post_warmup_gl_objects",
                          "identical"))
    lines.append("| links (fresh/base) | objects (fresh/base) | "
                 "identical (fresh/base) | service p50 ratio | "
                 "queue p50 ratio | verdict |")
    lines.append("|" + "---|" * 6)
    fl, bl = fresh.get("latency_us", {}), base.get("latency_us", {})
    lines.append(
        "| {}/{} | {}/{} | {}/{} | {} | {} | {} |".format(
            fs.get("post_warmup_links"), bs.get("post_warmup_links"),
            fs.get("post_warmup_gl_objects"), bs.get("post_warmup_gl_objects"),
            fs.get("identical"), bs.get("identical"),
            fmt_ratio(fl.get("service", {}).get("p50_us", 0),
                      bl.get("service", {}).get("p50_us", 0)),
            fmt_ratio(fl.get("queue", {}).get("p50_us", 0),
                      bl.get("queue", {}).get("p50_us", 0)),
            "counter drift" if drift else "ok",
        )
    )
    lines.append("")


def diff_a13(lines, fresh):
    """a13 is a per-rate row table. The healing outcomes (balanced /
    identical / hung / recovered) plus the seed-deterministic retried and
    faults counts compare exactly; submitted/rejected scale with how fast
    the host drained the open-loop load, so they stay advisory."""
    lines.append("### a13 — chaos serving under fault injection")
    fresh_rows = fresh.get("rows", [])
    if not fresh_rows:
        lines.append("_no fresh a13 rows measured_\n")
        return
    path, base = latest_baseline_with("a13_chaos")
    if path is None:
        lines.append("_no committed baseline records `a13_chaos` yet_\n")
        return
    lines.append(f"baseline: `{path}`\n")
    exact = ("balanced", "identical", "hung", "recovered", "retried", "faults")
    head = ["rate"] + [f"{c} (fresh/base)" for c in exact] + \
        ["completed ratio", "verdict"]
    lines.append("| " + " | ".join(head) + " |")
    lines.append("|" + "---|" * len(head))
    base_index = {f"{r['rate']:.4f}": r for r in base.get("rows", [])}
    for row in fresh_rows:
        key = f"{row['rate']:.4f}"
        old = base_index.get(key)
        cells = [key]
        if old is None:
            cells += ["new" for _ in exact] + ["n/a", "NEW ROW"]
        else:
            drift = False
            for c in exact:
                cells.append(f"{row.get(c)}/{old.get(c)}")
                drift |= row.get(c) != old.get(c)
            cells.append(fmt_ratio(row.get("completed", 0),
                                   old.get("completed", 0)))
            cells.append("counter drift" if drift else "ok")
        lines.append("| " + " | ".join(str(c) for c in cells) + " |")
    lines.append("")


def diff_a14(lines, fresh):
    """a14 is a per-tenant row table plus a totals block. The admission
    outcomes (admitted / wrong, the typed-vs-invalid totals and the
    zero-cost steady state) compare exactly; the rejected/jobs counts
    scale with how fast the noisy tenant's flood drained, so they stay
    advisory."""
    lines.append("### a14 — multi-tenant dynamic kernel registry")
    fresh_rows = fresh.get("tenants", [])
    if not fresh_rows:
        lines.append("_no fresh a14 tenant rows measured_\n")
        return
    path, base = latest_baseline_with("a14_registry")
    if path is None:
        lines.append("_no committed baseline records `a14_registry` yet_\n")
        return
    lines.append(f"baseline: `{path}`\n")
    exact = ("admitted", "evicted", "wrong")
    head = ["tenant"] + [f"{c} (fresh/base)" for c in exact] + \
        ["jobs ratio", "verdict"]
    lines.append("| " + " | ".join(head) + " |")
    lines.append("|" + "---|" * len(head))
    base_index = {r["name"]: r for r in base.get("tenants", [])}
    for row in fresh_rows:
        old = base_index.get(row["name"])
        cells = [row["name"]]
        if old is None:
            cells += ["new" for _ in exact] + ["n/a", "NEW ROW"]
        else:
            drift = False
            for c in exact:
                cells.append(f"{row.get(c)}/{old.get(c)}")
                drift |= row.get(c) != old.get(c)
            cells.append(fmt_ratio(row.get("jobs", 0), old.get("jobs", 0)))
            cells.append("counter drift" if drift else "ok")
        lines.append("| " + " | ".join(str(c) for c in cells) + " |")
    ft, bt = fresh.get("totals", {}), base.get("totals", {})
    exact_totals = ("invalid", "typed", "post_warmup_links",
                    "post_warmup_gl_objects", "balanced", "identical")
    drift = any(ft.get(k) != bt.get(k) for k in exact_totals)
    lines.append("")
    lines.append("| invalid (fresh/base) | typed (fresh/base) | "
                 "links (fresh/base) | objects (fresh/base) | "
                 "balanced (fresh/base) | identical (fresh/base) | verdict |")
    lines.append("|" + "---|" * 7)
    lines.append(
        "| {}/{} | {}/{} | {}/{} | {}/{} | {}/{} | {}/{} | {} |".format(
            ft.get("invalid"), bt.get("invalid"),
            ft.get("typed"), bt.get("typed"),
            ft.get("post_warmup_links"), bt.get("post_warmup_links"),
            ft.get("post_warmup_gl_objects"), bt.get("post_warmup_gl_objects"),
            ft.get("balanced"), bt.get("balanced"),
            ft.get("identical"), bt.get("identical"),
            "counter drift" if drift else "ok",
        )
    )
    lines.append("")


def diff_a15(lines, fresh):
    """a15 is per-kernel executor rows plus codec/serve summaries. The
    identity and batching outcomes compare exactly; fragments/s, texels/s
    and the geomean speedups are host-dependent and stay advisory."""
    lines.append("### a15 — SPMD lane VM")
    fresh_rows = fresh.get("vm", [])
    if not fresh_rows:
        lines.append("_no fresh a15 vm rows measured_\n")
        return
    path, base = latest_baseline_with("a15_spmd")
    if path is None:
        lines.append("_no committed baseline records `a15_spmd` yet_\n")
        return
    lines.append(f"baseline: `{path}`\n")
    head = ["kernel", "mode", "identical (fresh/base)",
            "batched (fresh/base)", "fragments/s ratio", "verdict"]
    lines.append("| " + " | ".join(head) + " |")
    lines.append("|" + "---|" * len(head))
    base_index = {(r["kernel"], r["mode"]): r for r in base.get("vm", [])}
    for row in fresh_rows:
        old = base_index.get((row["kernel"], row["mode"]))
        cells = [row["kernel"], row["mode"]]
        if old is None:
            cells += ["new", "new", "n/a", "NEW ROW"]
        else:
            batched = row["spmd_batches"] > 0
            old_batched = old["spmd_batches"] > 0
            drift = (row["identical"] != old["identical"]
                     or batched != old_batched)
            cells.append(f"{row['identical']}/{old['identical']}")
            cells.append(f"{str(batched).lower()}/{str(old_batched).lower()}")
            cells.append(fmt_ratio(row.get("fragments_per_sec", 0),
                                   old.get("fragments_per_sec", 0)))
            cells.append("counter drift" if drift else "ok")
        lines.append("| " + " | ".join(str(c) for c in cells) + " |")
    fm = {r["mode"]: r["geomean_speedup"] for r in fresh.get("mix", [])}
    bm = {r["mode"]: r["geomean_speedup"] for r in base.get("mix", [])}
    if fm:
        lines.append("")
        lines.append("geomean speedup vs scalar (advisory): " + ", ".join(
            f"{mode} {fm[mode]:.2f}x (base "
            f"{bm.get(mode, float('nan')):.2f}x)" for mode in sorted(fm)))
    fs, bs = fresh.get("serve", {}), base.get("serve", {})
    if fs:
        drift = any(fs.get(k) != bs.get(k)
                    for k in ("exec_mode", "identical", "balanced"))
        lines.append("")
        lines.append(
            f"serving: exec_mode {fs.get('exec_mode')}/{bs.get('exec_mode')} "
            f"identical {fs.get('identical')}/{bs.get('identical')} "
            f"balanced {fs.get('balanced')}/{bs.get('balanced')} — "
            f"{'counter drift' if drift else 'ok'}")
    lines.append("")


def diff_a16(lines, fresh):
    """a16 is per-layer pass-accounting rows plus quant/f32 path rows.
    The identity/balance flags, the zero-allocation steady state and the
    transfer-codec counters compare exactly (they are deterministic from
    the graph and the codec plumbing); images/s stays advisory — and on
    a single-core host it is flat across worker counts by construction."""
    lines.append("### a16 — quantized CNN serving")
    fresh_rows = fresh.get("paths", [])
    if not fresh_rows:
        lines.append("_no fresh a16 path rows measured_\n")
        return
    path, base = latest_baseline_with("a16_quant")
    if path is None:
        lines.append("_no committed baseline records `a16_quant` yet_\n")
        return
    lines.append(f"baseline: `{path}`\n")
    exact = ("identical", "balanced", "post_warmup_links",
             "post_warmup_objects", "f32_transfers", "quant_transfers")
    head = ["precision", "workers"] + [f"{c} (fresh/base)" for c in exact] + \
        ["images/s ratio", "verdict"]
    lines.append("| " + " | ".join(head) + " |")
    lines.append("|" + "---|" * len(head))
    base_index = {(r["precision"], r["workers"]): r
                  for r in base.get("paths", [])}
    for row in fresh_rows:
        old = base_index.get((row["precision"], row["workers"]))
        cells = [row["precision"], row["workers"]]
        if old is None:
            cells += ["new" for _ in exact] + ["n/a", "NEW ROW"]
        else:
            drift = False
            for c in exact:
                cells.append(f"{row.get(c)}/{old.get(c)}")
                drift |= row.get(c) != old.get(c)
            cells.append(fmt_ratio(row.get("images_per_sec", 0.0),
                                   old.get("images_per_sec", 0.0)))
            cells.append("counter drift" if drift else "ok")
        lines.append("| " + " | ".join(str(c) for c in cells) + " |")
    # Layers compare positionally: the two reduction levels share one
    # kernel name, so the pass name alone is not a unique key.
    fresh_layers = fresh.get("layers", [])
    base_layers = base.get("layers", [])
    layer_drift = [
        f["pass"] for f, b in zip(fresh_layers, base_layers)
        if f["output_texels"] != b["output_texels"]
    ]
    if len(fresh_layers) != len(base_layers):
        layer_drift.append(
            f"pass count {len(fresh_layers)} vs {len(base_layers)}")
    lines.append("")
    lines.append(
        f"layer accounting: {len(fresh.get('layers', []))} passes — "
        + (f"texel counts drifted on {', '.join(layer_drift)}"
           if layer_drift else "output texel counts all match the baseline"))
    lines.append("")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    ci_perf = json.load(open(sys.argv[1]))
    lines = ["## Bench counter diff vs committed baselines", ""]

    diff_section(
        lines, "a9 — compile/bind split", "a9_host_cache",
        ci_perf.get("a9_counters", []),
        ["workload", "mode"],
        ["programs_linked", "textures_created", "pool_hits"],
        "host_ms",
    )
    diff_section(
        lines, "a10 — concurrent serving", "a10_serving",
        ci_perf.get("a10_counters", []),
        ["mix", "workers", "cache"],
        ["links", "post_warmup_links"],
        "jobs_per_sec",
    )
    diff_section(
        lines, "a11 — pipeline serving", "a11_pipeline_serving",
        ci_perf.get("a11_counters", []),
        ["workload", "mode", "workers"],
        ["links", "post_warmup_links", "post_warmup_gl_objects", "identical"],
        "jobs_per_sec",
    )
    diff_a12(lines, ci_perf.get("a12_serving_latency", {}))
    diff_a13(lines, ci_perf.get("a13_chaos", {}))
    diff_a14(lines, ci_perf.get("a14_registry", {}))
    diff_a15(lines, ci_perf.get("a15_spmd", {}))
    diff_a16(lines, ci_perf.get("a16_quant", {}))
    lines.append("_counters compare exactly; timing ratios are advisory "
                 "(shared runners are noisy). The blocking contracts live in "
                 "`ci_perf_gate.py`._")

    table = "\n".join(lines) + "\n"
    sys.stdout.write(table)
    if len(sys.argv) > 2:
        pathlib.Path(sys.argv[2]).write_text(table)


if __name__ == "__main__":
    main()
