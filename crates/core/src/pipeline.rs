//! Multi-pass execution records and readback strategies (workaround #7).
//!
//! ES 2 cannot read a texture back to client memory directly (there is no
//! `glGetTexImage`). The paper names two complementary ways out, both
//! implemented by [`crate::ComputeContext`]:
//!
//! 1. **Copy shader** ([`Readback::CopyShader`]): draw a pass-through
//!    fragment shader that samples the texture into the default
//!    framebuffer, then `glReadPixels`.
//! 2. **Kernel ordering** ([`crate::ComputeContext::run_and_read`]): order
//!    the passes so the *final* kernel renders straight into the default
//!    framebuffer — no extra shader needed.
//!
//! Core ES 2 additionally allows reading an FBO whose colour attachment is
//! the texture ([`Readback::DirectFbo`]); all strategies must agree
//! bit-exactly, which the integration tests verify.

use gpes_gles2::DrawStats;

/// Strategy for reading a GPU array back to host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Readback {
    /// Read through an FBO binding of the backing texture.
    #[default]
    DirectFbo,
    /// Blit via the pass-through copy shader into the default framebuffer.
    CopyShader,
}

/// Record of one executed pass (kernel or internal copy).
#[derive(Debug, Clone, PartialEq)]
pub struct PassRecord {
    /// Kernel name (internal passes are prefixed `gpes.`).
    pub kernel: String,
    /// Pipeline statistics of the draw.
    pub stats: DrawStats,
    /// Texels in the render target (fragments expected).
    pub output_texels: u64,
}

impl PassRecord {
    /// Fragment-stage ALU+SFU+fetch operations per output texel.
    pub fn ops_per_texel(&self) -> f64 {
        if self.output_texels == 0 {
            0.0
        } else {
            self.stats.fs_profile.total_ops() as f64 / self.output_texels as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpes_glsl::exec::OpProfile;

    #[test]
    fn ops_per_texel() {
        let rec = PassRecord {
            kernel: "k".into(),
            stats: DrawStats {
                fs_profile: OpProfile {
                    alu_ops: 90,
                    sfu_ops: 8,
                    tex_fetches: 2,
                    ..OpProfile::default()
                },
                ..DrawStats::default()
            },
            output_texels: 10,
        };
        assert_eq!(rec.ops_per_texel(), 10.0);
        let empty = PassRecord {
            kernel: "e".into(),
            stats: DrawStats::default(),
            output_texels: 0,
        };
        assert_eq!(empty.ops_per_texel(), 0.0);
    }

    #[test]
    fn default_strategy_is_direct_fbo() {
        assert_eq!(Readback::default(), Readback::DirectFbo);
    }
}
