//! Multi-pass execution records and readback strategies (workaround #7).
//!
//! ES 2 cannot read a texture back to client memory directly (there is no
//! `glGetTexImage`). The paper names two complementary ways out, both
//! implemented by [`crate::ComputeContext`]:
//!
//! 1. **Copy shader** ([`Readback::CopyShader`]): draw a pass-through
//!    fragment shader that samples the texture into the default
//!    framebuffer, then `glReadPixels`.
//! 2. **Kernel ordering** ([`crate::ComputeContext::run_and_read`]): order
//!    the passes so the *final* kernel renders straight into the default
//!    framebuffer — no extra shader needed.
//!
//! Core ES 2 additionally allows reading an FBO whose colour attachment is
//! the texture ([`Readback::DirectFbo`]); all strategies must agree
//! bit-exactly, which the integration tests verify.
//!
//! This module also hosts the retained [`Pipeline`] API: declare a
//! multi-pass dag once, then run it with zero per-iteration shader
//! compiles and (in steady state) zero new GL objects.

use crate::addressing::ArrayLayout;
use crate::buffer::{GpuArray, GpuMatrix, GpuScalar, GpuTexels};
use crate::codec::ScalarType;
use crate::error::ComputeError;
use crate::kernel::{InputEncoding, Kernel, OutputKind, OutputShape};
use crate::ComputeContext;
use gpes_gles2::{DrawStats, TextureId};
use gpes_glsl::Value;
use std::collections::HashMap;
use std::fmt;

/// Strategy for reading a GPU array back to host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Readback {
    /// Read through an FBO binding of the backing texture.
    #[default]
    DirectFbo,
    /// Blit via the pass-through copy shader into the default framebuffer.
    CopyShader,
}

/// Record of one executed pass (kernel or internal copy).
#[derive(Debug, Clone, PartialEq)]
pub struct PassRecord {
    /// Kernel name (internal passes are prefixed `gpes.`).
    pub kernel: String,
    /// Pipeline statistics of the draw.
    pub stats: DrawStats,
    /// Texels in the render target (fragments expected).
    pub output_texels: u64,
    /// Whether the render target was *reused* — served from the context's
    /// recycling pool or overwritten in place by the pipeline's fast path
    /// — rather than freshly allocated (always `false` for screen passes).
    /// In a steady-state iteration loop every render-to-texture pass
    /// should report `true`.
    pub reused_target: bool,
}

impl PassRecord {
    /// Fragment-stage ALU+SFU+fetch operations per output texel.
    pub fn ops_per_texel(&self) -> f64 {
        if self.output_texels == 0 {
            0.0
        } else {
            self.stats.fs_profile.total_ops() as f64 / self.output_texels as f64
        }
    }
}

// ---- the retained Pipeline API ----------------------------------------------

/// What a pipeline buffer holds, for read/encoding validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BufKind {
    /// §IV-encoded scalars of one type.
    Scalar(ScalarType),
    /// Raw RGBA8 texels.
    Texels,
}

impl BufKind {
    fn accepts(self, encoding: InputEncoding) -> bool {
        match encoding {
            InputEncoding::Scalar(s) => self == BufKind::Scalar(s),
            // Raw-texel fetches reinterpret any RGBA8 buffer.
            InputEncoding::RawTexel => true,
        }
    }

    fn of_output(kind: OutputKind) -> BufKind {
        match kind {
            OutputKind::Scalar(s) => BufKind::Scalar(s),
            OutputKind::RawTexel => BufKind::Texels,
        }
    }
}

/// One named buffer's current generation during (and after) a run.
#[derive(Debug, Clone, Copy)]
struct BufferState {
    texture: TextureId,
    layout: ArrayLayout,
    kind: BufKind,
    /// Whether the pipeline allocated this texture (and may recycle it).
    /// Seed textures stay owned by the caller.
    owned: bool,
}

type ShapeFn = Box<dyn Fn(usize) -> OutputShape>;
type UniformFn = Box<dyn Fn(usize) -> Value>;
type UntilFn = Box<dyn Fn(usize) -> bool>;

/// One declared pass of a [`Pipeline`]: a kernel plus the buffer wiring
/// and per-iteration overrides.
pub struct Pass {
    kernel: Kernel,
    /// (kernel input name, pipeline buffer name).
    reads: Vec<(String, String)>,
    write: Option<(String, OutputShape)>,
    output_fn: Option<ShapeFn>,
    uniforms: Vec<(String, Value)>,
    uniform_fns: Vec<(String, UniformFn)>,
}

impl Pass {
    /// Starts a pass around a compiled kernel (the kernel is cloned; its
    /// program stays shared through the context's cache).
    pub fn new(kernel: &Kernel) -> Pass {
        Pass {
            kernel: kernel.clone(),
            reads: Vec::new(),
            write: None,
            output_fn: None,
            uniforms: Vec::new(),
            uniform_fns: Vec::new(),
        }
    }

    /// Feeds kernel input `input` from pipeline buffer `buffer`. Inputs
    /// without a `read` keep the kernel's build-time default binding
    /// (useful for constant textures like a DP wall matrix).
    pub fn read(mut self, input: &str, buffer: &str) -> Self {
        self.reads.push((input.to_owned(), buffer.to_owned()));
        self
    }

    /// Writes the pass output into buffer `buffer` with a fixed shape.
    /// Writing a buffer the pass also reads is the ping-pong case: the
    /// draw goes to a spare target and the name is re-pointed afterwards,
    /// so the GL feedback rule is never violated.
    pub fn write(mut self, buffer: &str, shape: OutputShape) -> Self {
        self.write = Some((buffer.to_owned(), shape));
        self
    }

    /// [`Pass::write`] with a linear output of `len` elements.
    pub fn write_len(self, buffer: &str, len: usize) -> Self {
        self.write(buffer, OutputShape::Linear(len))
    }

    /// [`Pass::write`] with a `rows × cols` grid output.
    pub fn write_grid(self, buffer: &str, rows: u32, cols: u32) -> Self {
        self.write(buffer, OutputShape::Grid { rows, cols })
    }

    /// Makes the output shape a function of the iteration index — the
    /// reduction-tree case, where each pass shrinks the domain.
    pub fn output_per_iter(mut self, f: impl Fn(usize) -> OutputShape + 'static) -> Self {
        self.output_fn = Some(Box::new(f));
        self
    }

    /// Overrides a declared uniform with a fixed value for this pass.
    pub fn uniform(mut self, name: &str, value: Value) -> Self {
        self.uniforms.push((name.to_owned(), value));
        self
    }

    /// Overrides a declared uniform per iteration (`f` receives the
    /// zero-based iteration index) — the paper's workloads use this for
    /// `n_live`, `row_idx`, `kcol` and FFT stage widths.
    pub fn uniform_per_iter(mut self, name: &str, f: impl Fn(usize) -> Value + 'static) -> Self {
        self.uniform_fns.push((name.to_owned(), Box::new(f)));
        self
    }
}

impl fmt::Debug for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pass")
            .field("kernel", &self.kernel.name())
            .field("reads", &self.reads)
            .field("write", &self.write)
            .field("dynamic_output", &self.output_fn.is_some())
            .field("uniforms", &self.uniforms)
            .field(
                "per_iter_uniforms",
                &self
                    .uniform_fns
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// A per-run override of one declared pipeline source: the named buffer
/// starts this run pointing at the given data instead of the texture
/// captured at build time. Constructed from typed GPU buffers so the
/// element kind is checked against the declaration before the run.
#[derive(Debug, Clone)]
pub struct SourceSeed {
    name: String,
    texture: TextureId,
    layout: ArrayLayout,
    kind: BufKind,
}

impl SourceSeed {
    /// Seeds source `name` from an array for one run.
    pub fn array<T: GpuScalar>(name: impl Into<String>, array: &GpuArray<T>) -> SourceSeed {
        SourceSeed {
            name: name.into(),
            texture: array.texture,
            layout: array.layout,
            kind: BufKind::Scalar(T::SCALAR),
        }
    }

    /// Seeds source `name` from a matrix for one run.
    pub fn matrix<T: GpuScalar>(name: impl Into<String>, matrix: &GpuMatrix<T>) -> SourceSeed {
        SourceSeed {
            name: name.into(),
            texture: matrix.texture,
            layout: matrix.layout,
            kind: BufKind::Scalar(T::SCALAR),
        }
    }

    /// Seeds source `name` from a raw texel buffer for one run.
    pub fn texels(name: impl Into<String>, texels: &GpuTexels) -> SourceSeed {
        SourceSeed {
            name: name.into(),
            texture: texels.texture,
            layout: texels.layout,
            kind: BufKind::Texels,
        }
    }

    /// Seeds source `name` from a runtime-tagged array for one run; the
    /// tag is checked against the declared buffer kind exactly as the
    /// typed constructors are.
    pub fn any(name: impl Into<String>, array: &crate::buffer::AnyGpuArray) -> SourceSeed {
        SourceSeed {
            name: name.into(),
            texture: array.texture(),
            layout: array.layout(),
            kind: BufKind::Scalar(array.scalar()),
        }
    }
}

/// Builder for [`Pipeline`]s; see [`Pipeline::builder`].
pub struct PipelineBuilder {
    name: String,
    sources: Vec<(String, TextureId, ArrayLayout, BufKind)>,
    passes: Vec<Pass>,
    iterations: Option<usize>,
    iteration_cap: Option<usize>,
    until: Option<UntilFn>,
    ping_pongs: Vec<(String, String)>,
}

impl PipelineBuilder {
    /// Seeds buffer `name` from an uploaded (or previously computed)
    /// array. The texture stays owned by the caller — the pipeline never
    /// recycles it.
    pub fn source<T: GpuScalar>(mut self, name: &str, array: &GpuArray<T>) -> Self {
        self.sources.push((
            name.to_owned(),
            array.texture,
            array.layout,
            BufKind::Scalar(T::SCALAR),
        ));
        self
    }

    /// Seeds buffer `name` from a matrix.
    pub fn source_matrix<T: GpuScalar>(mut self, name: &str, matrix: &GpuMatrix<T>) -> Self {
        self.sources.push((
            name.to_owned(),
            matrix.texture,
            matrix.layout,
            BufKind::Scalar(T::SCALAR),
        ));
        self
    }

    /// Seeds buffer `name` from a raw texel buffer.
    pub fn source_texels(mut self, name: &str, texels: &GpuTexels) -> Self {
        self.sources.push((
            name.to_owned(),
            texels.texture,
            texels.layout,
            BufKind::Texels,
        ));
        self
    }

    /// Seeds buffer `name` from a runtime-tagged array — the buffer takes
    /// the array's scalar kind, so passes reading it must declare a
    /// matching input encoding.
    pub fn source_any(mut self, name: &str, array: &crate::buffer::AnyGpuArray) -> Self {
        self.sources.push((
            name.to_owned(),
            array.texture(),
            array.layout(),
            BufKind::Scalar(array.scalar()),
        ));
        self
    }

    /// Appends a pass; passes execute in declaration order each iteration.
    pub fn pass(mut self, pass: Pass) -> Self {
        self.passes.push(pass);
        self
    }

    /// Runs the dag a fixed number of iterations (default 1). With a
    /// known count the final pass can be routed straight to the default
    /// framebuffer by [`Pipeline::run_and_read`].
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Runs the dag until `stop(completed_iterations)` returns `true`
    /// (checked after each iteration). Combine with
    /// [`PipelineBuilder::iterations`] to cap the loop silently, or with
    /// [`PipelineBuilder::iteration_cap`] to make cap exhaustion a typed
    /// error; without either the pipeline aborts after 1 000 000
    /// iterations.
    pub fn until(mut self, stop: impl Fn(usize) -> bool + 'static) -> Self {
        self.until = Some(Box::new(stop));
        self
    }

    /// Caps an `until`-driven loop at `cap` iterations, turning cap
    /// exhaustion into [`ComputeError::IterationCap`] instead of a silent
    /// stop — the contract a serving engine needs so a job whose
    /// predicate never fires fails loudly rather than hanging or lying.
    /// Ignored when a fixed [`PipelineBuilder::iterations`] count is set.
    pub fn iteration_cap(mut self, cap: usize) -> Self {
        self.iteration_cap = Some(cap.max(1));
        self
    }

    /// Swaps buffers `front` and `back` after every iteration — the
    /// classic double-buffer for dags where *several* passes read the old
    /// generation before anyone may overwrite it (e.g. the FFT's re/im
    /// stage pair). Single-pass feedback (`.read("x", "x").write("x", …)`)
    /// does not need this; it swaps implicitly.
    pub fn ping_pong(mut self, front: &str, back: &str) -> Self {
        self.ping_pongs.push((front.to_owned(), back.to_owned()));
        self
    }

    /// Validates the wiring against every kernel's signature.
    ///
    /// # Errors
    ///
    /// [`ComputeError::BadKernel`] for passes without a write, reads of
    /// undeclared buffers or kernel inputs, encoding mismatches, unknown
    /// or type-mismatched uniform overrides, and unknown ping-pong names.
    pub fn build(self) -> Result<Pipeline, ComputeError> {
        if self.passes.is_empty() {
            return Err(ComputeError::bad_kernel(format!(
                "pipeline `{}` declares no passes",
                self.name
            )));
        }
        let mut kinds: HashMap<&str, BufKind> = HashMap::new();
        for (name, _, _, kind) in &self.sources {
            if kinds.insert(name, *kind).is_some() {
                return Err(ComputeError::bad_kernel(format!(
                    "pipeline `{}` declares source `{name}` twice",
                    self.name
                )));
            }
        }
        // Register every written buffer for kind checking. A buffer must
        // hold ONE kind — seeding or rewriting it with a different element
        // kind would let a later read decode garbage.
        for pass in &self.passes {
            let (write_name, _) = pass.write.as_ref().ok_or_else(|| {
                ComputeError::bad_kernel(format!(
                    "pass `{}` of pipeline `{}` writes no buffer",
                    pass.kernel.name(),
                    self.name
                ))
            })?;
            let kind = BufKind::of_output(pass.kernel.output_kind());
            match kinds.get(write_name.as_str()) {
                None => {
                    kinds.insert(write_name, kind);
                }
                Some(existing) if *existing != kind => {
                    return Err(ComputeError::bad_kernel(format!(
                        "buffer `{write_name}` holds {existing:?}, but pass `{}` \
                         writes {kind:?}",
                        pass.kernel.name()
                    )));
                }
                Some(_) => {}
            }
        }
        // A read must be satisfiable on the FIRST iteration — from a
        // source or an earlier pass's write. (A buffer first written by a
        // later pass is empty when iteration 0 reaches the read, and the
        // end-of-iteration ping-pong swap cannot rescue it either, so the
        // dag would always fail at runtime.)
        let mut available: std::collections::HashSet<&str> =
            self.sources.iter().map(|(n, _, _, _)| n.as_str()).collect();
        for pass in &self.passes {
            for (input, buffer) in &pass.reads {
                let spec = pass
                    .kernel
                    .inputs
                    .iter()
                    .find(|s| &s.name == input)
                    .ok_or_else(|| {
                        ComputeError::bad_kernel(format!(
                            "kernel `{}` declares no input `{input}`",
                            pass.kernel.name()
                        ))
                    })?;
                let kind = kinds.get(buffer.as_str()).ok_or_else(|| {
                    ComputeError::bad_kernel(format!(
                        "pipeline `{}` has no buffer `{buffer}` (read by `{}`)",
                        self.name,
                        pass.kernel.name()
                    ))
                })?;
                if !kind.accepts(spec.encoding) {
                    return Err(ComputeError::bad_kernel(format!(
                        "buffer `{buffer}` holds {kind:?}, but input `{input}` of `{}` wants {:?}",
                        pass.kernel.name(),
                        spec.encoding
                    )));
                }
                if !available.contains(buffer.as_str()) {
                    return Err(ComputeError::bad_kernel(format!(
                        "pass `{}` reads buffer `{buffer}` before its first write",
                        pass.kernel.name()
                    )));
                }
            }
            for (name, value) in &pass.uniforms {
                check_uniform_decl(&pass.kernel, name, Some(value))?;
            }
            for (name, _) in &pass.uniform_fns {
                check_uniform_decl(&pass.kernel, name, None)?;
            }
            if let Some((write_name, _)) = &pass.write {
                available.insert(write_name);
            }
        }
        for (front, back) in &self.ping_pongs {
            for name in [front, back] {
                if !kinds.contains_key(name.as_str()) {
                    return Err(ComputeError::bad_kernel(format!(
                        "ping-pong names unknown buffer `{name}`"
                    )));
                }
            }
        }
        Ok(Pipeline {
            name: self.name,
            sources: self.sources,
            passes: self.passes,
            iterations: self.iterations,
            iteration_cap: self.iteration_cap,
            until: self.until,
            ping_pongs: self.ping_pongs,
        })
    }
}

fn check_uniform_decl(
    kernel: &Kernel,
    name: &str,
    value: Option<&Value>,
) -> Result<(), ComputeError> {
    let decl = kernel
        .uniforms
        .iter()
        .find(|(n, _)| n == name)
        .ok_or_else(|| {
            ComputeError::bad_kernel(format!(
                "kernel `{}` declares no uniform `{name}`",
                kernel.name()
            ))
        })?;
    if let Some(v) = value {
        if std::mem::discriminant(&decl.1) != std::mem::discriminant(v) {
            return Err(ComputeError::bad_kernel(format!(
                "uniform `{name}` of kernel `{}` is {}, bound {}",
                kernel.name(),
                decl.1.ty(),
                v.ty()
            )));
        }
    }
    Ok(())
}

/// A retained multi-pass execution plan: kernels compile once at build
/// time; [`Pipeline::run`] only rebinds textures and uniforms, recycling
/// render targets through the context pool so steady-state iteration
/// allocates no GL objects.
///
/// ```
/// use gpes_core::{ComputeContext, Kernel, OutputShape, Pass, Pipeline, ScalarType};
/// use gpes_glsl::Value;
///
/// # fn main() -> Result<(), gpes_core::ComputeError> {
/// let mut cc = ComputeContext::new(64, 64)?;
/// let x = cc.upload(&[1.0f32, 2.0, 3.0, 4.0])?;
/// let step = Kernel::builder("double")
///     .input("x", &x)
///     .output(ScalarType::F32, 4)
///     .body("return fetch_x(idx) * 2.0;")
///     .build(&mut cc)?;
/// // Declare once: x ← double(x), five times (implicit ping-pong).
/// let pipe = Pipeline::builder("pow2")
///     .source("x", &x)
///     .pass(Pass::new(&step).read("x", "x").write_len("x", 4))
///     .iterations(5)
///     .build()?;
/// let out: Vec<f32> = pipe.run_and_read(&mut cc, "x")?;
/// assert_eq!(out, vec![32.0, 64.0, 96.0, 128.0]);
/// assert_eq!(cc.stats().programs_linked, 1);
/// # Ok(())
/// # }
/// ```
pub struct Pipeline {
    name: String,
    sources: Vec<(String, TextureId, ArrayLayout, BufKind)>,
    passes: Vec<Pass>,
    iterations: Option<usize>,
    iteration_cap: Option<usize>,
    until: Option<UntilFn>,
    ping_pongs: Vec<(String, String)>,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("name", &self.name)
            .field(
                "sources",
                &self
                    .sources
                    .iter()
                    .map(|(n, _, _, _)| n.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("passes", &self.passes)
            .field("iterations", &self.iterations)
            .field("has_until", &self.until.is_some())
            .field("ping_pongs", &self.ping_pongs)
            .finish()
    }
}

/// Iteration safety net when only an `until` predicate drives the loop.
const MAX_OPEN_ITERATIONS: usize = 1_000_000;

impl Pipeline {
    /// Starts declaring a pipeline named `name` (names appear in errors).
    pub fn builder(name: impl Into<String>) -> PipelineBuilder {
        PipelineBuilder {
            name: name.into(),
            sources: Vec::new(),
            passes: Vec::new(),
            iterations: None,
            iteration_cap: None,
            until: None,
            ping_pongs: Vec::new(),
        }
    }

    /// The pipeline's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Executes the dag and returns a handle over the surviving buffers.
    /// The pipeline is retained: `run` may be called any number of times
    /// (each run re-seeds from the sources).
    ///
    /// # Errors
    ///
    /// Runtime wiring errors (reading a buffer before its first write),
    /// per-iteration uniform type mismatches, and GL/shader errors.
    pub fn run(&self, cc: &mut ComputeContext) -> Result<PipelineRun, ComputeError> {
        let (buffers, _) = self.run_internal(cc, None, &[])?;
        Ok(PipelineRun { buffers })
    }

    /// [`Pipeline::run`] with per-run source overrides: each seed
    /// re-points a declared source buffer at fresh data for this run
    /// only, so one retained pipeline serves many requests without being
    /// rebuilt — the serving engine's hot path.
    ///
    /// # Errors
    ///
    /// `BadKernel` for seeds naming undeclared sources or carrying the
    /// wrong element kind, plus everything [`Pipeline::run`] can raise.
    pub fn run_seeded(
        &self,
        cc: &mut ComputeContext,
        seeds: &[SourceSeed],
    ) -> Result<PipelineRun, ComputeError> {
        self.check_seeds(seeds)?;
        let (buffers, _) = self.run_internal(cc, None, seeds)?;
        Ok(PipelineRun { buffers })
    }

    /// [`Pipeline::run_and_read`] with per-run source overrides; see
    /// [`Pipeline::run_seeded`].
    ///
    /// # Errors
    ///
    /// As [`Pipeline::run_seeded`] and [`Pipeline::run_and_read`].
    pub fn run_and_read_seeded<T: GpuScalar>(
        &self,
        cc: &mut ComputeContext,
        seeds: &[SourceSeed],
        buffer: &str,
    ) -> Result<Vec<T>, ComputeError> {
        self.check_seeds(seeds)?;
        let screen_target = self.screen_routable::<T>(cc, buffer);
        let (buffers, screen) = self.run_internal(cc, screen_target.as_deref(), seeds)?;
        if let Some((bytes, layout)) = screen {
            PipelineRun { buffers }.finish(cc);
            return Ok(T::decode_framebuffer(&bytes, layout.len));
        }
        let run = PipelineRun { buffers };
        let out = run.read::<T>(cc, buffer);
        run.finish(cc);
        out
    }

    fn check_seeds(&self, seeds: &[SourceSeed]) -> Result<(), ComputeError> {
        for seed in seeds {
            let declared = self
                .sources
                .iter()
                .find(|(n, _, _, _)| *n == seed.name)
                .ok_or_else(|| {
                    ComputeError::bad_kernel(format!(
                        "pipeline `{}` declares no source `{}` to seed",
                        self.name, seed.name
                    ))
                })?;
            if declared.3 != seed.kind {
                return Err(ComputeError::bad_kernel(format!(
                    "source `{}` of pipeline `{}` holds {:?}, seeded with {:?}",
                    seed.name, self.name, declared.3, seed.kind
                )));
            }
        }
        Ok(())
    }

    /// Executes the dag and reads buffer `buffer` back, retiring every
    /// pipeline-owned texture into the context pool. When the iteration
    /// count is fixed and `buffer` is the final pass's output fitting the
    /// screen, the final pass renders **straight into the default
    /// framebuffer** (the paper's workaround #7 "careful kernel
    /// ordering") — no extra texture, no extra pass.
    ///
    /// # Errors
    ///
    /// Type mismatches between `T` and the buffer contents, plus
    /// everything [`Pipeline::run`] can raise.
    pub fn run_and_read<T: GpuScalar>(
        &self,
        cc: &mut ComputeContext,
        buffer: &str,
    ) -> Result<Vec<T>, ComputeError> {
        self.run_and_read_seeded(cc, &[], buffer)
    }

    /// Whether `run_and_read::<T>(_, buffer)` may route the final pass to
    /// the default framebuffer.
    fn screen_routable<T: GpuScalar>(&self, cc: &ComputeContext, buffer: &str) -> Option<String> {
        if self.until.is_some() {
            return None; // iteration count unknown up front
        }
        let total = self.iterations.unwrap_or(1);
        if total == 0 {
            return None;
        }
        let last = self.passes.last()?;
        let (write_name, static_shape) = last.write.as_ref()?;
        if write_name != buffer || last.kernel.output_kind() != OutputKind::Scalar(T::SCALAR) {
            return None;
        }
        // A ping-ponged name is re-pointed after the final pass, so the
        // requested buffer would no longer be the final pass's output —
        // screen-routing it would skip the swap and change semantics.
        if self
            .ping_pongs
            .iter()
            .any(|(front, back)| front == buffer || back == buffer)
        {
            return None;
        }
        let shape = match &last.output_fn {
            Some(f) => f(total - 1),
            None => *static_shape,
        };
        let layout = shape.resolve(cc.max_texture_side()).ok()?;
        let (sw, sh) = cc.screen_size();
        (layout.width <= sw && layout.height <= sh).then(|| buffer.to_owned())
    }

    /// The run loop. `screen_buffer` names the buffer whose final write
    /// should go to the default framebuffer instead of a texture; the
    /// read-back bytes are returned alongside the buffer map.
    #[allow(clippy::type_complexity)]
    fn run_internal(
        &self,
        cc: &mut ComputeContext,
        screen_buffer: Option<&str>,
        seeds: &[SourceSeed],
    ) -> Result<(Vec<(String, BufferState)>, Option<(Vec<u8>, ArrayLayout)>), ComputeError> {
        let mut bufs: HashMap<String, BufferState> = HashMap::new();
        for (name, texture, layout, kind) in &self.sources {
            bufs.insert(
                name.clone(),
                BufferState {
                    texture: *texture,
                    layout: *layout,
                    kind: *kind,
                    owned: false,
                },
            );
        }
        for seed in seeds {
            bufs.insert(
                seed.name.clone(),
                BufferState {
                    texture: seed.texture,
                    layout: seed.layout,
                    kind: seed.kind,
                    owned: false,
                },
            );
        }
        let fixed_total = if self.until.is_none() {
            Some(self.iterations.unwrap_or(1))
        } else {
            None
        };
        let cap = self
            .iterations
            .or(self.iteration_cap)
            .unwrap_or(MAX_OPEN_ITERATIONS);
        let mut screen: Option<(Vec<u8>, ArrayLayout)> = None;
        let mut completed = 0usize;
        let mut stopped = false;
        while completed < cap {
            let last_iteration = fixed_total == Some(completed + 1);
            for (pi, pass) in self.passes.iter().enumerate() {
                let to_screen = last_iteration
                    && pi + 1 == self.passes.len()
                    && screen_buffer.is_some()
                    && pass.write.as_ref().map(|(n, _)| n.as_str()) == screen_buffer;
                let bytes = self.run_pass(cc, pass, completed, &mut bufs, to_screen)?;
                if let Some(b) = bytes {
                    screen = Some(b);
                }
            }
            for (front, back) in &self.ping_pongs {
                if let (Some(&f), Some(&b)) = (bufs.get(front), bufs.get(back)) {
                    bufs.insert(front.clone(), b);
                    bufs.insert(back.clone(), f);
                }
            }
            completed += 1;
            if fixed_total == Some(completed) {
                break;
            }
            if let Some(stop) = &self.until {
                if stop(completed) {
                    stopped = true;
                    break;
                }
            }
        }
        // A fixed `.iterations` count caps an `until` loop silently (the
        // documented combination); an explicit `.iteration_cap` — or the
        // safety-net default — makes exhaustion a typed error.
        if self.until.is_some() && !stopped && self.iterations.is_none() && completed >= cap {
            return Err(ComputeError::IterationCap {
                pipeline: self.name.clone(),
                cap,
            });
        }
        Ok((bufs.into_iter().collect(), screen))
    }

    /// Executes one pass of one iteration.
    fn run_pass(
        &self,
        cc: &mut ComputeContext,
        pass: &Pass,
        iteration: usize,
        bufs: &mut HashMap<String, BufferState>,
        to_screen: bool,
    ) -> Result<Option<(Vec<u8>, ArrayLayout)>, ComputeError> {
        let kernel = &pass.kernel;
        // Inputs in texture-unit order: mapped buffers override defaults.
        let mut inputs = Vec::with_capacity(kernel.inputs.len());
        for spec in &kernel.inputs {
            let slot = match pass.reads.iter().find(|(input, _)| *input == spec.name) {
                Some((_, buffer)) => {
                    let b = bufs.get(buffer).ok_or_else(|| {
                        ComputeError::bad_kernel(format!(
                            "pass `{}` reads buffer `{buffer}` before its first write",
                            kernel.name()
                        ))
                    })?;
                    (b.texture, b.layout)
                }
                None => (spec.texture, spec.layout),
            };
            inputs.push(slot);
        }
        let (write_name, static_shape) = pass.write.as_ref().expect("validated at build");
        let shape = match &pass.output_fn {
            Some(f) => f(iteration),
            None => *static_shape,
        };
        let layout = shape.resolve(cc.max_texture_side())?;
        // Static overrides were validated at build; per-iteration values
        // are produced fresh, so re-check their types here.
        let mut dynamic: Vec<(String, Value)> = Vec::with_capacity(pass.uniform_fns.len());
        for (name, f) in &pass.uniform_fns {
            let value = f(iteration);
            check_uniform_decl(kernel, name, Some(&value))?;
            dynamic.push((name.clone(), value));
        }
        let overrides: [&[(String, Value)]; 2] = [&pass.uniforms, &dynamic];

        if to_screen {
            cc.dispatch_for_pipeline(kernel, inputs, layout, &overrides, true, false)?;
            let bytes = cc.gl().read_pixels(0, 0, layout.width, layout.height)?;
            return Ok(Some((bytes, layout)));
        }

        let out_kind = BufKind::of_output(kernel.output_kind());
        // In-place fast path: overwrite the buffer's own texture when the
        // pipeline owns it, the dimensions match and this pass does not
        // sample it (no GL feedback loop).
        let in_place = bufs.get(write_name.as_str()).is_some_and(|b| {
            b.owned
                && b.layout.width == layout.width
                && b.layout.height == layout.height
                && !inputs.iter().any(|&(t, _)| t == b.texture)
        });
        let result = if in_place {
            let texture = bufs[write_name.as_str()].texture;
            cc.attach_render_target(texture)?;
            let drawn = cc.dispatch_for_pipeline(kernel, inputs, layout, &overrides, false, true);
            cc.gl().bind_framebuffer(None)?;
            drawn?;
            let slot = bufs.get_mut(write_name.as_str()).expect("checked above");
            slot.layout = layout;
            slot.kind = out_kind;
            None
        } else {
            let (target, pooled) = cc.acquire_render_target(layout)?;
            let drawn = cc.dispatch_for_pipeline(kernel, inputs, layout, &overrides, false, pooled);
            cc.gl().bind_framebuffer(None)?;
            drawn?;
            let old = bufs.insert(
                write_name.clone(),
                BufferState {
                    texture: target,
                    layout,
                    kind: out_kind,
                    owned: true,
                },
            );
            if let Some(old) = old {
                if old.owned {
                    cc.recycle_texture(old.texture);
                }
            }
            None
        };
        Ok(result)
    }
}

/// The buffers left behind by one [`Pipeline::run`]. Read what you need,
/// then call [`PipelineRun::finish`] — dropping the run without it strands
/// the owned textures outside the recycling pool.
#[derive(Debug)]
#[must_use = "read the buffers, then call `finish(cc)` to recycle them"]
pub struct PipelineRun {
    buffers: Vec<(String, BufferState)>,
}

impl PipelineRun {
    fn get(&self, name: &str) -> Result<&BufferState, ComputeError> {
        self.buffers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b)
            .ok_or_else(|| ComputeError::bad_kernel(format!("pipeline has no buffer `{name}`")))
    }

    /// The layout of a surviving buffer.
    pub fn layout(&self, name: &str) -> Option<ArrayLayout> {
        self.buffers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.layout)
    }

    /// Reads a buffer back through the direct-FBO path.
    ///
    /// # Errors
    ///
    /// `BadKernel` on element-type mismatches; GL errors.
    pub fn read<T: GpuScalar>(
        &self,
        cc: &mut ComputeContext,
        name: &str,
    ) -> Result<Vec<T>, ComputeError> {
        let b = self.get(name)?;
        if b.kind != BufKind::Scalar(T::SCALAR) {
            return Err(ComputeError::bad_kernel(format!(
                "buffer `{name}` holds {:?}, requested {}",
                b.kind,
                T::SCALAR
            )));
        }
        let array: GpuArray<T> = GpuArray::new(b.texture, b.layout);
        cc.read_array(&array, Readback::DirectFbo)
    }

    /// Reads a scalar buffer back as a runtime-tagged tensor through the
    /// direct-FBO path — a u8 buffer comes back as
    /// [`crate::TensorData::U8`], never widened to f32 on the host.
    ///
    /// # Errors
    ///
    /// `BadKernel` for raw-texel buffers; GL errors.
    pub fn read_any(
        &self,
        cc: &mut ComputeContext,
        name: &str,
    ) -> Result<crate::TensorData, ComputeError> {
        let b = self.get(name)?;
        let scalar = match b.kind {
            BufKind::Scalar(scalar) => scalar,
            BufKind::Texels => {
                return Err(ComputeError::bad_kernel(format!(
                    "buffer `{name}` holds raw texels; use read_texels"
                )))
            }
        };
        let array = crate::buffer::AnyGpuArray {
            texture: b.texture,
            layout: b.layout,
            scalar,
        };
        cc.read_array_any(&array, Readback::DirectFbo)
    }

    /// Transfers ownership of a buffer's texture out of the run as a
    /// typed array (it will no longer be recycled by
    /// [`PipelineRun::finish`]).
    ///
    /// # Errors
    ///
    /// `BadKernel` on element-type mismatches.
    pub fn take_array<T: GpuScalar>(&mut self, name: &str) -> Result<GpuArray<T>, ComputeError> {
        let kind = self.get(name)?.kind;
        if kind != BufKind::Scalar(T::SCALAR) {
            return Err(ComputeError::bad_kernel(format!(
                "buffer `{name}` holds {kind:?}, requested {}",
                T::SCALAR
            )));
        }
        let slot = self
            .buffers
            .iter_mut()
            .find(|(n, _)| n == name)
            .expect("checked by get");
        slot.1.owned = false;
        Ok(GpuArray::new(slot.1.texture, slot.1.layout))
    }

    /// Retires every pipeline-owned texture into the context's recycling
    /// pool, so the next run (of any same-shaped pipeline) allocates
    /// nothing.
    pub fn finish(self, cc: &mut ComputeContext) {
        for (_, b) in self.buffers {
            if b.owned {
                cc.recycle_texture(b.texture);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpes_glsl::exec::OpProfile;

    #[test]
    fn ops_per_texel() {
        let rec = PassRecord {
            kernel: "k".into(),
            stats: DrawStats {
                fs_profile: OpProfile {
                    alu_ops: 90,
                    sfu_ops: 8,
                    tex_fetches: 2,
                    ..OpProfile::default()
                },
                ..DrawStats::default()
            },
            output_texels: 10,
            reused_target: false,
        };
        assert_eq!(rec.ops_per_texel(), 10.0);
        let empty = PassRecord {
            kernel: "e".into(),
            stats: DrawStats::default(),
            output_texels: 0,
            reused_target: false,
        };
        assert_eq!(empty.ops_per_texel(), 0.0);
    }

    #[test]
    fn default_strategy_is_direct_fbo() {
        assert_eq!(Readback::default(), Readback::DirectFbo);
    }
}
