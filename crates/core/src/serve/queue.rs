use super::worker::{
    worker_main, WorkerConfig, PIPELINES_PER_WORKER_CAP, RESIDENTS_PER_WORKER_CAP,
};
use super::*;

// ---- handles -------------------------------------------------------------

/// The queued → running → finished lifecycle of a task, shared between
/// the handle (for [`JobHandle::cancel`]) and the worker (for claiming
/// the task at dequeue). Compare-and-swap transitions make cancellation
/// race-free: exactly one side wins the `Queued` state.
pub(crate) struct TaskControl {
    pub(crate) state: AtomicU8,
}

pub(crate) const TASK_QUEUED: u8 = 0;
pub(crate) const TASK_RUNNING: u8 = 1;
pub(crate) const TASK_CANCELLED: u8 = 2;
pub(crate) const TASK_FINISHED: u8 = 3;

impl TaskControl {
    fn new() -> TaskControl {
        TaskControl {
            state: AtomicU8::new(TASK_QUEUED),
        }
    }

    /// A worker (or the shedder/aborter) claims the task for fulfilment.
    /// Fails exactly when the task was already cancelled — the handle
    /// fulfilled it, the claimer must drop the payload untouched.
    pub(crate) fn claim(&self) -> bool {
        self.state
            .compare_exchange(
                TASK_QUEUED,
                TASK_RUNNING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// The handle cancels the task. Succeeds exactly when it was still
    /// queued — the winner fulfils the handle with
    /// [`ComputeError::Cancelled`].
    fn cancel(&self) -> bool {
        self.state
            .compare_exchange(
                TASK_QUEUED,
                TASK_CANCELLED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// The worker returns a claimed task to the queue for a retry: back
    /// to `Queued`, so the handle can still cancel it while it waits for
    /// its next attempt. Only the claiming worker may call this.
    pub(crate) fn requeue(&self) {
        self.state.store(TASK_QUEUED, Ordering::Release);
    }

    fn finish(&self) {
        self.state.store(TASK_FINISHED, Ordering::Release);
    }
}

/// The result slot's three-state lifecycle: distinguishing `Taken` from
/// `Pending` lets a second `wait()` return a typed error (instead of
/// hanging forever on a slot that will never refill) and lets `Drop`
/// count only genuinely unobserved errors.
pub(crate) enum Slot<T> {
    Pending,
    Ready(Result<T, ComputeError>),
    Taken,
}

pub(crate) struct HandleInner<T> {
    pub(crate) slot: Slot<T>,
    /// The handle was dropped with the slot still pending; when the
    /// worker later fulfils it with an error, that error is counted as
    /// unobserved instead of stored for nobody.
    pub(crate) abandoned: bool,
    /// Registered by a [`CompletionSet`]: on fulfilment the token is
    /// pushed to the set's ready list (outside the handle lock).
    pub(crate) watcher: Option<(Arc<SetCore>, u64)>,
}

pub(crate) struct HandleState<T> {
    pub(crate) inner: Mutex<HandleInner<T>>,
    pub(crate) cv: Condvar,
    pub(crate) control: TaskControl,
    pub(crate) metrics: Arc<EngineMetrics>,
}

pub(crate) fn taken_twice<T>() -> Result<T, ComputeError> {
    Err(ComputeError::EngineInternal {
        message: "job result already taken".into(),
    })
}

/// A typed future for a submitted job: the worker fulfils it, the caller
/// blocks on [`JobHandle::wait`], polls [`JobHandle::try_wait`], bounds
/// the wait with [`JobHandle::wait_timeout`]/[`JobHandle::wait_deadline`],
/// or multiplexes many handles through a [`CompletionSet`]. A handle for
/// still-queued work can be revoked with [`JobHandle::cancel`].
pub struct JobHandle<T> {
    state: Arc<HandleState<T>>,
}

impl<T> JobHandle<T> {
    fn new(metrics: &Arc<EngineMetrics>) -> (JobHandle<T>, Arc<HandleState<T>>) {
        let state = Arc::new(HandleState {
            inner: Mutex::new(HandleInner {
                slot: Slot::Pending,
                abandoned: false,
                watcher: None,
            }),
            cv: Condvar::new(),
            control: TaskControl::new(),
            metrics: Arc::clone(metrics),
        });
        (
            JobHandle {
                state: Arc::clone(&state),
            },
            state,
        )
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    ///
    /// Whatever the dispatch produced on the worker (bad bindings, GL or
    /// shader errors), or a typed serving error: queue-shed
    /// ([`ComputeError::DeadlineExceeded`]), cancellation
    /// ([`ComputeError::Cancelled`]), or engine shutdown/worker death
    /// ([`ComputeError::EngineShutdown`] /
    /// [`ComputeError::EngineInternal`]) — never a hang.
    pub fn wait(self) -> Result<T, ComputeError> {
        let mut inner = lock_recover(&self.state.inner);
        loop {
            match std::mem::replace(&mut inner.slot, Slot::Pending) {
                Slot::Ready(result) => {
                    inner.slot = Slot::Taken;
                    return result;
                }
                Slot::Taken => {
                    inner.slot = Slot::Taken;
                    return taken_twice();
                }
                Slot::Pending => {}
            }
            inner = wait_recover(&self.state.cv, inner);
        }
    }

    /// Returns the result if the job already finished, `None` if it is
    /// still pending. Never blocks. Taking the result consumes it: a
    /// later `try_wait`/`wait` yields [`ComputeError::EngineInternal`].
    pub fn try_wait(&self) -> Option<Result<T, ComputeError>> {
        let mut inner = lock_recover(&self.state.inner);
        match std::mem::replace(&mut inner.slot, Slot::Pending) {
            Slot::Ready(result) => {
                inner.slot = Slot::Taken;
                Some(result)
            }
            Slot::Taken => {
                inner.slot = Slot::Taken;
                Some(taken_twice())
            }
            Slot::Pending => None,
        }
    }

    /// Blocks at most `timeout` for the result; `None` on timeout (the
    /// job keeps running — the handle remains valid to wait again).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, ComputeError>> {
        self.wait_deadline(Instant::now() + timeout)
    }

    /// Blocks until `deadline` for the result; `None` if it passes first
    /// (the job keeps running — the handle remains valid to wait again).
    pub fn wait_deadline(&self, deadline: Instant) -> Option<Result<T, ComputeError>> {
        let mut inner = lock_recover(&self.state.inner);
        loop {
            match std::mem::replace(&mut inner.slot, Slot::Pending) {
                Slot::Ready(result) => {
                    inner.slot = Slot::Taken;
                    return Some(result);
                }
                Slot::Taken => {
                    inner.slot = Slot::Taken;
                    return Some(taken_twice());
                }
                Slot::Pending => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timed_out) = self
                .state
                .cv
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
            if timed_out.timed_out() && matches!(inner.slot, Slot::Pending) {
                return None;
            }
        }
    }

    /// Whether a result is ready (non-blocking).
    pub fn is_finished(&self) -> bool {
        !matches!(lock_recover(&self.state.inner).slot, Slot::Pending)
    }

    /// Cancels the job if it is still queued: the handle resolves to
    /// [`ComputeError::Cancelled`] and no worker will execute it (the
    /// queue entry is discarded at dequeue). Returns `true` if this call
    /// won the race; `false` if the job already started, finished, or
    /// was cancelled before.
    pub fn cancel(&self) -> bool {
        if self.state.control.cancel() {
            EngineMetrics::bump(&self.state.metrics.cancelled);
            fulfil(&self.state, Err(ComputeError::Cancelled));
            true
        } else {
            false
        }
    }
}

impl<T> Drop for JobHandle<T> {
    fn drop(&mut self) {
        let mut inner = lock_recover(&self.state.inner);
        match inner.slot {
            // Fulfilled but never observed: surface an error result in
            // the snapshot instead of discarding it silently.
            Slot::Ready(Err(_)) => {
                inner.slot = Slot::Taken;
                EngineMetrics::bump(&self.state.metrics.unobserved_errors);
            }
            Slot::Ready(Ok(_)) | Slot::Taken => {}
            // Still in flight: mark abandoned so `fulfil` counts a late
            // error instead of storing it for nobody.
            Slot::Pending => inner.abandoned = true,
        }
    }
}

/// Fulfils a handle. Marks the task finished, stores (or — for an
/// abandoned handle — accounts) the result, and wakes direct waiters and
/// any [`CompletionSet`] watcher. The watcher is notified *after* the
/// handle lock is released: the set's ready-list lock is never taken
/// while a handle lock is held, so the two lock orders cannot deadlock.
pub(crate) fn fulfil<T>(state: &HandleState<T>, result: Result<T, ComputeError>) {
    state.control.finish();
    let watcher = {
        let mut inner = lock_recover(&state.inner);
        if inner.abandoned {
            if result.is_err() {
                EngineMetrics::bump(&state.metrics.unobserved_errors);
            }
            inner.slot = Slot::Taken;
        } else {
            inner.slot = Slot::Ready(result);
        }
        inner.watcher.take()
    };
    state.cv.notify_all();
    if let Some((core, token)) = watcher {
        lock_recover(&core.ready).push(token);
        core.cv.notify_all();
    }
}

// ---- completion set ------------------------------------------------------

/// Shared notification core of a [`CompletionSet`]: fulfilled members
/// push their token here and signal the one condvar every
/// [`CompletionSet::wait_any`] caller sleeps on.
pub(crate) struct SetCore {
    pub(crate) ready: Mutex<Vec<u64>>,
    pub(crate) cv: Condvar,
}

/// Multiplexes many [`JobHandle`]s onto one condvar, so a caller can
/// drive thousands of in-flight jobs without a blocked thread per job:
/// [`CompletionSet::insert`] registers a handle, [`CompletionSet::wait_any`]
/// blocks until *any* member finishes and returns its result.
///
/// ```no_run
/// # use gpes_core::serve::{CompletionSet, Engine, Job, KernelSpec};
/// # fn demo(engine: &Engine, jobs: Vec<Job>) -> Result<(), gpes_core::ComputeError> {
/// let mut set = CompletionSet::new();
/// for job in jobs {
///     set.insert(engine.submit(job)?);
/// }
/// while let Some((_token, result)) = set.wait_any() {
///     let data = result?;
///     // ... consume `data` as each job lands, in completion order ...
/// #   let _ = data;
/// }
/// # Ok(())
/// # }
/// ```
pub struct CompletionSet<T> {
    core: Arc<SetCore>,
    pending: HashMap<u64, JobHandle<T>>,
    next_token: u64,
}

impl<T> Default for CompletionSet<T> {
    fn default() -> CompletionSet<T> {
        CompletionSet::new()
    }
}

impl<T> CompletionSet<T> {
    /// An empty set.
    pub fn new() -> CompletionSet<T> {
        CompletionSet {
            core: Arc::new(SetCore {
                ready: Mutex::new(Vec::new()),
                cv: Condvar::new(),
            }),
            pending: HashMap::new(),
            next_token: 0,
        }
    }

    /// Adds a handle to the set and returns its token (echoed back by
    /// [`CompletionSet::wait_any`] when this job finishes). A handle that
    /// already finished is immediately ready.
    pub fn insert(&mut self, handle: JobHandle<T>) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        {
            let mut inner = lock_recover(&handle.state.inner);
            if matches!(inner.slot, Slot::Pending) {
                inner.watcher = Some((Arc::clone(&self.core), token));
            } else {
                lock_recover(&self.core.ready).push(token);
            }
        }
        self.pending.insert(token, handle);
        token
    }

    /// Handles still tracked (finished-but-uncollected members count
    /// until `wait_any` returns them).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no handles remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Returns a finished member's `(token, result)` without blocking,
    /// or `None` if nothing has finished (or the set is empty).
    pub fn try_next(&mut self) -> Option<(u64, Result<T, ComputeError>)> {
        let token = lock_recover(&self.core.ready).pop()?;
        Some((token, self.collect(token)))
    }

    /// Blocks until any member finishes and returns its `(token,
    /// result)`; `None` when the set is empty. Engine shutdown, shed
    /// deadlines and cancellations all fulfil their handles, so this
    /// never hangs on an abandoned job.
    pub fn wait_any(&mut self) -> Option<(u64, Result<T, ComputeError>)> {
        if self.pending.is_empty() {
            return None;
        }
        let core = Arc::clone(&self.core);
        let token = {
            let mut ready = lock_recover(&core.ready);
            loop {
                if let Some(token) = ready.pop() {
                    break token;
                }
                ready = wait_recover(&core.cv, ready);
            }
        };
        Some((token, self.collect(token)))
    }

    /// [`CompletionSet::wait_any`] bounded by `timeout`: `None` if the
    /// set is empty or nothing finished in time.
    pub fn wait_any_timeout(
        &mut self,
        timeout: Duration,
    ) -> Option<(u64, Result<T, ComputeError>)> {
        if self.pending.is_empty() {
            return None;
        }
        let deadline = Instant::now() + timeout;
        let core = Arc::clone(&self.core);
        let token = {
            let mut ready = lock_recover(&core.ready);
            loop {
                if let Some(token) = ready.pop() {
                    break token;
                }
                let now = Instant::now();
                if now >= deadline {
                    return None;
                }
                ready = core
                    .cv
                    .wait_timeout(ready, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        };
        Some((token, self.collect(token)))
    }

    /// Takes the result out of a ready member. The ready-list lock is
    /// already released here — taking the handle's inner lock cannot
    /// deadlock against a concurrent `fulfil`.
    fn collect(&mut self, token: u64) -> Result<T, ComputeError> {
        match self.pending.remove(&token) {
            Some(handle) => match handle.try_wait() {
                Some(result) => result,
                // A token is only pushed after fulfilment, so the slot
                // must be ready; defensive rather than reachable.
                None => taken_twice(),
            },
            None => taken_twice(),
        }
    }
}

// ---- engine --------------------------------------------------------------

/// How worker contexts cache programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// One process-wide [`SharedProgramCache`] behind every worker: each
    /// distinct kernel links exactly once per process.
    #[default]
    Shared,
    /// Workers keep only their per-context caches — every worker relinks
    /// every kernel it sees. Exists for the `a10` ablation; N workers
    /// pay N× the link cost.
    PerContext,
}

/// Where a single-kernel job's result goes: the legacy `Vec<f32>` handle
/// ([`Engine::submit`]) or a typed [`TensorData`] handle
/// ([`Engine::submit_typed`]). The worker computes a `TensorData` either
/// way; the `F32` sink unwraps it at fulfilment.
#[derive(Clone)]
pub(crate) enum SingleSink {
    F32(Arc<HandleState<Vec<f32>>>),
    Tensor(Arc<HandleState<TensorData>>),
}

impl SingleSink {
    pub(crate) fn control(&self) -> &TaskControl {
        match self {
            SingleSink::F32(handle) => &handle.control,
            SingleSink::Tensor(handle) => &handle.control,
        }
    }

    pub(crate) fn fulfil(self, result: Result<TensorData, ComputeError>) {
        match self {
            SingleSink::F32(handle) => {
                let result = result.map(|t| match t {
                    TensorData::F32(v) => v,
                    // submit() admits only all-f32 specs, so a typed
                    // result can never reach an F32 sink.
                    other => unreachable!("f32 job produced {:?} output", other.scalar()),
                });
                fulfil(&handle, result);
            }
            SingleSink::Tensor(handle) => fulfil(&handle, result),
        }
    }
}

/// `submit`/`try_submit` resolve to `Vec<f32>`, so they only admit specs
/// whose inputs and output are all f32; typed specs go through
/// [`Engine::submit_typed`].
fn check_f32_job(job: &Job) -> Result<(), ComputeError> {
    if !job.kernel.is_all_f32() {
        return Err(spec::bad_job(format!(
            "kernel spec `{}` declares typed tensors; submit it with Engine::submit_typed",
            job.kernel.name
        )));
    }
    Ok(())
}

pub(crate) enum Task {
    Single(Job, SingleSink),
    Batch(Submission, Arc<HandleState<BatchResult>>),
    Pipeline(PipelineJob, Arc<HandleState<PipelineResult>>),
}

impl Task {
    pub(crate) fn control(&self) -> &TaskControl {
        match self {
            Task::Single(_, sink) => sink.control(),
            Task::Batch(_, handle) => &handle.control,
            Task::Pipeline(_, handle) => &handle.control,
        }
    }

    /// The per-job [`RetryPolicy`] override, if the submission carried
    /// one.
    pub(crate) fn retry_override(&self) -> Option<RetryPolicy> {
        match self {
            Task::Single(job, _) => job.retry,
            Task::Batch(submission, _) => submission.retry,
            Task::Pipeline(job, _) => job.retry,
        }
    }

    /// Fulfils the task's handle with `error` — used when no worker will
    /// ever execute it (shutdown, dead pool), so `wait()` cannot hang.
    /// No-op for a task its handle already cancelled.
    pub(crate) fn abort(self, error: ComputeError, metrics: &EngineMetrics) {
        if !self.control().claim() {
            return;
        }
        EngineMetrics::bump(&metrics.aborted);
        match self {
            Task::Single(_, sink) => sink.fulfil(Err(error)),
            Task::Batch(_, handle) => fulfil(&handle, Err(error)),
            Task::Pipeline(_, handle) => fulfil(&handle, Err(error)),
        }
    }

    /// Fulfils an already-claimed task with
    /// [`ComputeError::DeadlineExceeded`] — the worker shed it at dequeue
    /// without touching the GPU.
    pub(crate) fn shed(self, queued_ms: u64) {
        let error = ComputeError::DeadlineExceeded { queued_ms };
        match self {
            Task::Single(_, sink) => sink.fulfil(Err(error)),
            Task::Batch(_, handle) => fulfil(&handle, Err(error)),
            Task::Pipeline(_, handle) => fulfil(&handle, Err(error)),
        }
    }

    /// The tenant the submission was tagged with, if any.
    pub(crate) fn tenant(&self) -> Option<&TenantId> {
        match self {
            Task::Single(job, _) => job.tenant.as_ref(),
            Task::Batch(submission, _) => submission.tenant.as_ref(),
            Task::Pipeline(job, _) => job.tenant.as_ref(),
        }
    }
}

/// A task plus its admission metadata: the deadline workers check at
/// dequeue, and the enqueue timestamp feeding the queue-latency
/// histogram.
pub(crate) struct QueuedTask {
    pub(crate) payload: Task,
    pub(crate) deadline: Option<Instant>,
    pub(crate) enqueued_at: Instant,
    /// Executions already attempted (0 on first admission); carried by
    /// transient-failure requeues so [`RetryPolicy::max_attempts`]
    /// bounds the total across the job's whole life.
    pub(crate) attempt: u32,
    /// The tenant's in-flight slot, when the task is tenant-tagged.
    /// Rides the task everywhere it moves (queue, worker, requeue) and
    /// releases on drop, after the handle is fulfilled.
    pub(crate) tenant_permit: Option<TenantPermit>,
}

pub(crate) struct QueueState {
    pub(crate) tasks: VecDeque<QueuedTask>,
    pub(crate) shutdown: bool,
    /// Workers still in their serve loop. If this reaches zero while
    /// tasks remain (every worker retired after a panic), the retiring
    /// worker aborts the leftovers instead of leaving waiters hanging.
    pub(crate) live_workers: usize,
}

pub(crate) struct EngineShared {
    pub(crate) queue: Mutex<QueueState>,
    /// Workers sleep here waiting for tasks.
    pub(crate) cv: Condvar,
    /// Blocking `submit*` callers sleep here waiting for a queue slot.
    pub(crate) space: Condvar,
    /// The admission bound on `queue.tasks`.
    pub(crate) capacity: usize,
    pub(crate) metrics: Arc<EngineMetrics>,
    /// The per-tenant ledger: quotas, in-flight permits, counters.
    pub(crate) tenants: Arc<TenantTable>,
}

/// Default admission bound: generous enough that a caller not thinking
/// about backpressure never sees [`ComputeError::QueueFull`], small
/// enough that a runaway producer cannot exhaust memory.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Default time a blocking `submit*` waits for a queue slot before
/// giving up with [`ComputeError::QueueFull`].
pub const DEFAULT_SUBMIT_TIMEOUT: Duration = Duration::from_secs(30);

/// How workers retry *transient* failures
/// ([`ComputeError::is_transient`]): driver resource exhaustion and
/// context loss, real or injected by an [`EngineBuilder::fault_plan`].
/// Permanent errors (bad kernels, domain violations, shed/cancelled
/// outcomes) are never retried. A retried job counts toward the
/// snapshot's `retried` diagnostic but is still fulfilled exactly once,
/// so the balance identity is unchanged; its deadline keeps applying, so
/// a retry storm cannot outlive the job's latency budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum executions of one job, the first attempt included
    /// (minimum 1, so `1` disables retries).
    pub max_attempts: u32,
    /// Sleep between attempts, applied on the worker off the queue
    /// lock. Keep it zero for deterministic tests.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, no backoff. Invisible without fault injection:
    /// the simulated driver only produces transient errors from an
    /// installed [`gpes_gles2::FaultPlan`].
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure, transient or not, surfaces on the
    /// job handle immediately.
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    pub(crate) fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

/// Configuration for an [`Engine`]; obtained from [`Engine::builder`].
pub struct EngineBuilder {
    workers: usize,
    width: u32,
    height: u32,
    limits: Option<Limits>,
    dispatch: Option<Dispatch>,
    exec_mode: Option<ExecMode>,
    cache_policy: CachePolicy,
    cache: Option<Arc<SharedProgramCache>>,
    queue_capacity: usize,
    submit_timeout: Duration,
    fault_plan: Option<FaultPlan>,
    retry: RetryPolicy,
    shared_cache_capacity: Option<usize>,
    pipeline_cache_capacity: usize,
    resident_cache_capacity: usize,
    default_quotas: TenantQuotas,
}

impl EngineBuilder {
    /// Number of worker contexts/threads (default 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Screen size of each worker context (default 256×256); bounds the
    /// largest job output.
    pub fn screen(mut self, width: u32, height: u32) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Driver limits for each worker context.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Per-draw rasteriser dispatch inside each worker. Defaults to the
    /// `GPES_TEST_DISPATCH` environment override when set, otherwise
    /// [`Dispatch::Serial`]: engine parallelism comes from the worker
    /// pool, and oversubscribing cores with band threads × workers slows
    /// serving down.
    pub fn dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = Some(dispatch);
        self
    }

    /// Shader execution mode for every worker context. Defaults to the
    /// `GPES_EXECUTOR` environment override when set, otherwise
    /// [`ExecMode::default`] (the SPMD lane VM). The resolved choice is
    /// reported back through [`EngineSnapshot::exec_mode`].
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = Some(mode);
        self
    }

    /// Selects the [`CachePolicy`] (default [`CachePolicy::Shared`]).
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Supplies an existing shared cache (implies
    /// [`CachePolicy::Shared`]) — lets several engines, or an engine and
    /// direct-dispatch contexts, share one set of linked programs.
    pub fn shared_cache(mut self, cache: Arc<SharedProgramCache>) -> Self {
        self.cache = Some(cache);
        self.cache_policy = CachePolicy::Shared;
        self
    }

    /// Bounds the admission queue (default
    /// [`DEFAULT_QUEUE_CAPACITY`], minimum 1). Once `capacity` tasks are
    /// queued, `try_submit*` rejects with [`ComputeError::QueueFull`]
    /// immediately and blocking `submit*` waits up to the
    /// [`EngineBuilder::submit_timeout`] for a slot.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// How long a blocking `submit*` waits for a queue slot before
    /// giving up with [`ComputeError::QueueFull`] (default
    /// [`DEFAULT_SUBMIT_TIMEOUT`]).
    pub fn submit_timeout(mut self, timeout: Duration) -> Self {
        self.submit_timeout = timeout;
        self
    }

    /// Installs deterministic driver-fault injection: worker `i`'s
    /// context gets `plan.derive(i)` — an independent but reproducible
    /// schedule from one seed. Injected faults surface as transient
    /// errors the [`RetryPolicy`] absorbs; context losses additionally
    /// force a worker context rebuild (counted in
    /// [`EngineSnapshot::recovered_contexts`]). The plan follows a
    /// worker across rebuilds, so one-shot losses fire exactly once.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the engine-wide [`RetryPolicy`] for transient failures
    /// (default: 3 attempts, no backoff). Jobs override it per
    /// submission with [`Job::retry_policy`] /
    /// [`Submission::retry_policy`] / [`PipelineJob::retry_policy`].
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Bounds the *engine-created* shared program cache (default
    /// [`crate::cache::DEFAULT_SHARED_CACHE_CAPACITY`], minimum 1).
    /// Ignored when [`EngineBuilder::shared_cache`] supplies an existing
    /// cache — that cache keeps its own bound — and under
    /// [`CachePolicy::PerContext`].
    pub fn shared_cache_capacity(mut self, capacity: usize) -> Self {
        self.shared_cache_capacity = Some(capacity.max(1));
        self
    }

    /// Bounds each worker's retained-pipeline cache (default 32,
    /// minimum 1): distinct [`PipelineSpec`]s a worker keeps built
    /// before FIFO-evicting the oldest.
    pub fn pipeline_cache_capacity(mut self, capacity: usize) -> Self {
        self.pipeline_cache_capacity = capacity.max(1);
        self
    }

    /// Bounds each worker's resident-input cache (default 64,
    /// minimum 1): distinct [`ResidentInput`]s a worker keeps on the GPU
    /// before FIFO-evicting the oldest upload.
    pub fn resident_cache_capacity(mut self, capacity: usize) -> Self {
        self.resident_cache_capacity = capacity.max(1);
        self
    }

    /// Sets the quota every tenant starts with (default
    /// [`TenantQuotas::default`]); individual tenants are overridden
    /// later with [`KernelRegistry::set_quotas`].
    pub fn tenant_quotas(mut self, quotas: TenantQuotas) -> Self {
        self.default_quotas = quotas;
        self
    }

    /// Builds the engine: creates the worker contexts (so configuration
    /// errors surface here, on the caller's thread) and starts the pool.
    ///
    /// # Errors
    ///
    /// Context-creation failures (e.g. a screen size beyond the limits).
    pub fn build(self) -> Result<Engine, ComputeError> {
        let cache = match self.cache_policy {
            CachePolicy::Shared => Some(self.cache.unwrap_or_else(|| {
                Arc::new(match self.shared_cache_capacity {
                    Some(capacity) => SharedProgramCache::with_capacity(capacity),
                    None => SharedProgramCache::new(),
                })
            })),
            CachePolicy::PerContext => None,
        };
        let dispatch = self
            .dispatch
            .or_else(Dispatch::from_env)
            .unwrap_or(Dispatch::Serial);
        let exec_mode = self
            .exec_mode
            .or_else(ExecMode::from_env)
            .unwrap_or_default();
        let limits = self.limits.clone().unwrap_or_default();
        let config = WorkerConfig {
            width: self.width,
            height: self.height,
            limits: self.limits,
            dispatch,
            exec_mode,
            cache: cache.clone(),
            fault_plan: self.fault_plan,
            retry: self.retry,
            pipeline_cap: self.pipeline_cache_capacity,
            resident_cap: self.resident_cache_capacity,
        };
        let mut contexts = Vec::with_capacity(self.workers);
        for index in 0..self.workers {
            contexts.push(config.make_context(index)?);
        }
        let shared = Arc::new(EngineShared {
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
                live_workers: self.workers,
            }),
            cv: Condvar::new(),
            space: Condvar::new(),
            capacity: self.queue_capacity,
            metrics: Arc::new(EngineMetrics::default()),
            tenants: Arc::new(TenantTable::new(self.default_quotas)),
        });
        let worker_stats: Arc<Vec<Mutex<ContextStats>>> = Arc::new(
            (0..self.workers)
                .map(|_| Mutex::new(ContextStats::default()))
                .collect(),
        );
        let resident_stats: Arc<Vec<Mutex<ResidentStats>>> = Arc::new(
            (0..self.workers)
                .map(|_| Mutex::new(ResidentStats::default()))
                .collect(),
        );
        let mut handles = Vec::with_capacity(self.workers);
        for (index, cc) in contexts.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&worker_stats);
            let residents = Arc::clone(&resident_stats);
            let config = config.clone();
            handles.push(std::thread::spawn(move || {
                worker_main(cc, config, shared, stats, residents, index)
            }));
        }
        Ok(Engine {
            shared,
            workers: handles,
            cache,
            worker_stats,
            resident_stats,
            submit_timeout: self.submit_timeout,
            limits,
            exec_mode,
        })
    }
}

/// The serving engine: a queue of [`Job`]s/[`Submission`]s drained by a
/// pool of worker compute contexts behind one shared program cache. See
/// the [module docs](crate::serve) for the architecture.
pub struct Engine {
    pub(crate) shared: Arc<EngineShared>,
    pub(crate) workers: Vec<JoinHandle<()>>,
    pub(crate) cache: Option<Arc<SharedProgramCache>>,
    pub(crate) worker_stats: Arc<Vec<Mutex<ContextStats>>>,
    pub(crate) resident_stats: Arc<Vec<Mutex<ResidentStats>>>,
    pub(crate) submit_timeout: Duration,
    /// Resolved driver limits of the worker contexts — what the
    /// registry's admission pipeline validates output shapes against.
    pub(crate) limits: Limits,
    /// Resolved shader execution mode of every worker context.
    pub(crate) exec_mode: ExecMode,
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            workers: 1,
            width: 256,
            height: 256,
            limits: None,
            dispatch: None,
            exec_mode: None,
            cache_policy: CachePolicy::default(),
            cache: None,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            submit_timeout: DEFAULT_SUBMIT_TIMEOUT,
            fault_plan: None,
            retry: RetryPolicy::default(),
            shared_cache_capacity: None,
            pipeline_cache_capacity: PIPELINES_PER_WORKER_CAP,
            resident_cache_capacity: RESIDENTS_PER_WORKER_CAP,
            default_quotas: TenantQuotas::default(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The process-wide program cache, when the policy is
    /// [`CachePolicy::Shared`].
    pub fn cache(&self) -> Option<&Arc<SharedProgramCache>> {
        self.cache.as_ref()
    }

    /// Snapshot of each worker's [`ContextStats`] (updated after every
    /// completed task).
    pub fn worker_stats(&self) -> Vec<ContextStats> {
        self.worker_stats.iter().map(|s| *lock_recover(s)).collect()
    }

    /// Snapshot of each worker's [`ResidentStats`] (updated after every
    /// completed task).
    pub fn resident_stats(&self) -> Vec<ResidentStats> {
        self.resident_stats
            .iter()
            .map(|s| *lock_recover(s))
            .collect()
    }

    /// Tasks sitting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.shared.queue).tasks.len()
    }

    /// The admission bound configured at build time.
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// A point-in-time [`EngineSnapshot`]: admission/outcome counters,
    /// queue depth and high-water mark, queue- and service-latency
    /// histograms, and the merged GL-side statistics across every
    /// worker. Cheap enough to call on every reporting tick.
    pub fn snapshot(&self) -> EngineSnapshot {
        let m = &self.shared.metrics;
        let (queue_depth, live_workers) = {
            let queue = lock_recover(&self.shared.queue);
            (queue.tasks.len() as u64, queue.live_workers)
        };
        let mut context = ContextStats::default();
        for s in self.worker_stats() {
            context = context.merged(&s);
        }
        // Field-wise sum (unlike `ResidentStats::merged`, which models a
        // context swap and keeps only the live occupancy).
        let mut residents = ResidentStats::default();
        for s in self.resident_stats() {
            residents.uploads += s.uploads;
            residents.hits += s.hits;
            residents.evictions += s.evictions;
            residents.resident_textures += s.resident_textures;
        }
        EngineSnapshot {
            submitted: EngineMetrics::read(&m.submitted),
            completed: EngineMetrics::read(&m.completed),
            failed: EngineMetrics::read(&m.failed),
            rejected: EngineMetrics::read(&m.rejected),
            shed: EngineMetrics::read(&m.shed),
            cancelled: EngineMetrics::read(&m.cancelled),
            aborted: EngineMetrics::read(&m.aborted),
            unobserved_errors: EngineMetrics::read(&m.unobserved_errors),
            retried: EngineMetrics::read(&m.retried),
            recovered_contexts: EngineMetrics::read(&m.recovered_contexts),
            faults_injected: EngineMetrics::read(&m.faults_injected),
            queue_depth,
            queue_depth_high_water: EngineMetrics::read(&m.queue_depth_high_water),
            queue_capacity: self.shared.capacity,
            live_workers,
            queue_latency: *lock_recover(&m.queue_latency),
            service_latency: *lock_recover(&m.service_latency),
            context,
            residents,
            shared_cache: self.cache.as_ref().map(|c| c.stats()),
            tenants: self.shared.tenants.snapshot(),
            exec_mode: self.exec_mode.label(),
        }
    }

    /// A [`KernelRegistry`] handle bound to this engine: dynamic kernel
    /// source admitted through it is validated against these workers'
    /// driver limits and fingerprinted into this engine's shared program
    /// cache. Handles are cheap to clone and thread-safe.
    pub fn registry(&self) -> KernelRegistry {
        KernelRegistry {
            tenants: Arc::clone(&self.shared.tenants),
            cache: self.cache.clone(),
            limits: self.limits.clone(),
            // Engine workers never enable strict shader compilation on
            // their contexts; admission still runs the strict checks, but
            // the fingerprint must match what workers actually link.
            strict: false,
        }
    }

    /// Programs linked process-wide on behalf of this engine: the shared
    /// cache's link count, or (per-context policy) the sum of worker
    /// links. The number the `a10` gate holds constant as workers scale.
    pub fn programs_linked(&self) -> u64 {
        match &self.cache {
            Some(cache) => cache.stats().links,
            None => self.worker_stats().iter().map(|s| s.programs_linked).sum(),
        }
    }

    /// Enqueues a single-kernel job. Blocks up to the configured
    /// [`EngineBuilder::submit_timeout`] when the queue is full, then
    /// gives up with [`ComputeError::QueueFull`]; use
    /// [`Engine::try_submit`] to never block.
    ///
    /// # Errors
    ///
    /// Validation errors (input arity) and admission errors
    /// ([`ComputeError::QueueFull`], [`ComputeError::EngineShutdown`])
    /// surface here; execution errors surface on the handle.
    pub fn submit(&self, job: Job) -> Result<JobHandle<Vec<f32>>, ComputeError> {
        check_f32_job(&job)?;
        job.validate()?;
        let deadline = job.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Single(job, SingleSink::F32(state)), deadline, true)?;
        Ok(handle)
    }

    /// Non-blocking [`Engine::submit`]: a full queue rejects with
    /// [`ComputeError::QueueFull`] immediately.
    pub fn try_submit(&self, job: Job) -> Result<JobHandle<Vec<f32>>, ComputeError> {
        check_f32_job(&job)?;
        job.validate()?;
        let deadline = job.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Single(job, SingleSink::F32(state)), deadline, false)?;
        Ok(handle)
    }

    /// [`Engine::submit`] for typed kernels: the handle resolves to the
    /// output's [`TensorData`] in the spec's declared output scalar, so
    /// quantized results come back as their own bytes. Accepts all-f32
    /// specs too (the result is then `TensorData::F32`).
    ///
    /// # Errors
    ///
    /// Validation errors (input arity, scalar mismatches) and admission
    /// errors surface here; execution errors surface on the handle.
    pub fn submit_typed(&self, job: Job) -> Result<JobHandle<TensorData>, ComputeError> {
        job.validate()?;
        let deadline = job.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Single(job, SingleSink::Tensor(state)), deadline, true)?;
        Ok(handle)
    }

    /// Non-blocking [`Engine::submit_typed`]: a full queue rejects with
    /// [`ComputeError::QueueFull`] immediately.
    pub fn try_submit_typed(&self, job: Job) -> Result<JobHandle<TensorData>, ComputeError> {
        job.validate()?;
        let deadline = job.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(
            Task::Single(job, SingleSink::Tensor(state)),
            deadline,
            false,
        )?;
        Ok(handle)
    }

    /// Enqueues a multi-kernel DAG as one unit of work. Blocks up to the
    /// configured [`EngineBuilder::submit_timeout`] when the queue is
    /// full; use [`Engine::try_submit_batch`] to never block.
    ///
    /// # Errors
    ///
    /// Validation errors (arity, forward references, bad readback marks)
    /// and admission errors surface here; execution errors surface on
    /// the handle.
    pub fn submit_batch(
        &self,
        submission: Submission,
    ) -> Result<JobHandle<BatchResult>, ComputeError> {
        submission.validate()?;
        let deadline = submission.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Batch(submission, state), deadline, true)?;
        Ok(handle)
    }

    /// Non-blocking [`Engine::submit_batch`]: a full queue rejects with
    /// [`ComputeError::QueueFull`] immediately.
    pub fn try_submit_batch(
        &self,
        submission: Submission,
    ) -> Result<JobHandle<BatchResult>, ComputeError> {
        submission.validate()?;
        let deadline = submission.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Batch(submission, state), deadline, false)?;
        Ok(handle)
    }

    /// Enqueues a whole retained pipeline as one job: the worker builds
    /// (or cache-hits) the pipeline for the job's [`PipelineSpec`], seeds
    /// it with the job's sources, runs every iteration on-GPU and reads
    /// back the marked buffers. Steady state links no programs and
    /// creates no GL objects — the `a11` CI gate's contract.
    ///
    /// # Errors
    ///
    /// Validation errors (source arity/lengths, evicted residents,
    /// unknown read buffers) surface here; execution errors — including
    /// [`ComputeError::IterationCap`] for an `until` predicate that never
    /// fires — surface on the handle.
    pub fn submit_pipeline(
        &self,
        job: PipelineJob,
    ) -> Result<JobHandle<PipelineResult>, ComputeError> {
        job.validate()?;
        let deadline = job.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Pipeline(job, state), deadline, true)?;
        Ok(handle)
    }

    /// Non-blocking [`Engine::submit_pipeline`]: a full queue rejects
    /// with [`ComputeError::QueueFull`] immediately.
    pub fn try_submit_pipeline(
        &self,
        job: PipelineJob,
    ) -> Result<JobHandle<PipelineResult>, ComputeError> {
        job.validate()?;
        let deadline = job.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Pipeline(job, state), deadline, false)?;
        Ok(handle)
    }

    /// Admission: every path counts toward `submitted`, and every
    /// refusal (full queue, shutdown, dead pool) counts toward
    /// `rejected` — so the snapshot's balance identity covers admission
    /// failures too. A blocking submit parks on the `space` condvar
    /// until a worker frees a slot or the submit timeout expires.
    fn enqueue(
        &self,
        task: Task,
        deadline: Option<Instant>,
        blocking: bool,
    ) -> Result<(), ComputeError> {
        let shared = &self.shared;
        let metrics = &shared.metrics;
        EngineMetrics::bump(&metrics.submitted);
        let tenant = task.tenant().cloned();
        let reject = |error: ComputeError| {
            EngineMetrics::bump(&metrics.rejected);
            if let Some(tenant) = &tenant {
                shared.tenants.note_rejected(tenant);
            }
            Err(error)
        };
        // Tenant admission happens before the queue lock: a tenant at its
        // in-flight quota is refused without contending with workers, and
        // the permit rides the queued task from here on.
        let tenant_permit = match &tenant {
            Some(tenant) => match shared.tenants.acquire_job(tenant) {
                Ok(permit) => Some(permit),
                Err(error) => return reject(error),
            },
            None => None,
        };
        let mut queue = lock_recover(&shared.queue);
        let mut give_up_at: Option<Instant> = None;
        loop {
            if queue.shutdown {
                return reject(ComputeError::EngineShutdown);
            }
            if queue.live_workers == 0 {
                return reject(ComputeError::EngineInternal {
                    message: "engine has no live workers".into(),
                });
            }
            if queue.tasks.len() < shared.capacity {
                queue.tasks.push_back(QueuedTask {
                    payload: task,
                    deadline,
                    enqueued_at: Instant::now(),
                    attempt: 0,
                    tenant_permit,
                });
                metrics.raise_high_water(queue.tasks.len() as u64);
                drop(queue);
                shared.cv.notify_one();
                if let Some(tenant) = &tenant {
                    shared.tenants.note_job(tenant);
                }
                return Ok(());
            }
            if !blocking {
                return reject(ComputeError::QueueFull {
                    capacity: shared.capacity,
                });
            }
            let at = *give_up_at.get_or_insert_with(|| Instant::now() + self.submit_timeout);
            let now = Instant::now();
            if now >= at {
                return reject(ComputeError::QueueFull {
                    capacity: shared.capacity,
                });
            }
            queue = shared
                .space
                .wait_timeout(queue, at - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Stops accepting work, aborts every still-queued task with
    /// [`ComputeError::EngineShutdown`] (their handles resolve — no
    /// `wait()` hangs) and joins every worker. In-progress tasks finish
    /// normally first. (Dropping the engine does the same.)
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let leftovers: Vec<QueuedTask> = {
            let mut queue = lock_recover(&self.shared.queue);
            queue.shutdown = true;
            queue.tasks.drain(..).collect()
        };
        self.shared.cv.notify_all();
        self.shared.space.notify_all();
        for task in leftovers {
            task.payload
                .abort(ComputeError::EngineShutdown, &self.shared.metrics);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
