use super::*;

// ---- worker --------------------------------------------------------------

/// Everything needed to (re)create one worker's context — kept so a
/// worker can replace its context after a panicking job rather than keep
/// serving from state a panic may have left half-updated.
#[derive(Clone)]
pub(crate) struct WorkerConfig {
    pub(crate) width: u32,
    pub(crate) height: u32,
    pub(crate) limits: Option<Limits>,
    pub(crate) dispatch: Dispatch,
    pub(crate) exec_mode: ExecMode,
    pub(crate) cache: Option<Arc<SharedProgramCache>>,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) retry: RetryPolicy,
    /// Per-worker retained-pipeline cache bound
    /// ([`EngineBuilder::pipeline_cache_capacity`]).
    pub(crate) pipeline_cap: usize,
    /// Per-worker resident-input cache bound
    /// ([`EngineBuilder::resident_cache_capacity`]).
    pub(crate) resident_cap: usize,
}

impl WorkerConfig {
    /// Creates (or re-creates) worker `worker`'s context. An engine-level
    /// fault plan is derived per worker index, so each context gets an
    /// independent-but-reproducible schedule; a context rebuilt after a
    /// loss has this fresh derivation overwritten with the old context's
    /// carried plan, so consumed one-shots stay consumed.
    pub(crate) fn make_context(&self, worker: usize) -> Result<ComputeContext, ComputeError> {
        let mut cc = match &self.limits {
            Some(limits) => ComputeContext::with_limits(self.width, self.height, limits.clone())?,
            None => ComputeContext::new(self.width, self.height)?,
        };
        cc.set_dispatch(self.dispatch);
        cc.set_exec_mode(self.exec_mode);
        if let Some(cache) = &self.cache {
            cc.set_shared_program_cache(Arc::clone(cache));
        }
        if let Some(plan) = &self.fault_plan {
            cc.install_fault_plan(plan.derive(worker as u64));
        }
        Ok(cc)
    }
}

/// Runs `f` with the worker context, converting a panic into an error so
/// the caller's [`JobHandle::wait`] never deadlocks. Returns whether the
/// task panicked (⇒ the context must be replaced: a panic can unwind out
/// of the middle of a draw, leaving context state half-updated).
pub(crate) fn run_shielded<T>(
    cc: &mut ComputeContext,
    f: impl FnOnce(&mut ComputeContext) -> Result<T, ComputeError>,
) -> (Result<T, ComputeError>, bool) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(cc))) {
        Ok(result) => (result, false),
        Err(_) => (
            Err(ComputeError::EngineInternal {
                message: "engine worker panicked while serving this job".into(),
            }),
            true,
        ),
    }
}

/// Marks this worker as out of the serve loop. If it was the last one
/// and tasks remain (every worker retired after a panic), the leftovers
/// are aborted so their `wait()` calls return instead of hanging; any
/// producer blocked on admission is woken to observe the dead pool.
pub(crate) fn retire_worker(shared: &EngineShared) {
    let leftovers: Vec<QueuedTask> = {
        let mut queue = lock_recover(&shared.queue);
        queue.live_workers = queue.live_workers.saturating_sub(1);
        if queue.live_workers == 0 {
            queue.tasks.drain(..).collect()
        } else {
            Vec::new()
        }
    };
    shared.space.notify_all();
    for task in leftovers {
        task.payload.abort(
            ComputeError::EngineInternal {
                message: "engine has no live workers".into(),
            },
            &shared.metrics,
        );
    }
}

/// A pending fulfilment: the task's result, held until after the worker
/// has published its stats so a caller returning from `wait()` observes
/// stats that already include its job.
pub(crate) enum Completed {
    Single(SingleSink, Result<TensorData, ComputeError>),
    Batch(
        Arc<HandleState<BatchResult>>,
        Result<BatchResult, ComputeError>,
    ),
    Pipeline(
        Arc<HandleState<PipelineResult>>,
        Result<PipelineResult, ComputeError>,
    ),
}

impl Completed {
    fn is_err(&self) -> bool {
        self.error().is_some()
    }

    fn error(&self) -> Option<&ComputeError> {
        match self {
            Completed::Single(_, result) => result.as_ref().err(),
            Completed::Batch(_, result) => result.as_ref().err(),
            Completed::Pipeline(_, result) => result.as_ref().err(),
        }
    }

    fn fulfil(self) {
        match self {
            Completed::Single(sink, result) => sink.fulfil(result),
            Completed::Batch(handle, result) => fulfil(&handle, result),
            Completed::Pipeline(handle, result) => fulfil(&handle, result),
        }
    }
}

/// Built pipelines a worker caches across requests, keyed by
/// [`PipelineSpec::fingerprint`]; beyond the cap the oldest entry is
/// dropped (its placeholder texture recycled — the programs stay in the
/// context/shared caches, so rebuilding links nothing).
pub(crate) const PIPELINES_PER_WORKER_CAP: usize = 32;

/// Resident-input textures a worker holds; beyond the cap the oldest is
/// recycled and counted as an eviction (the next use re-uploads).
pub(crate) const RESIDENTS_PER_WORKER_CAP: usize = 64;

/// Everything a worker retains across requests *on top of* its context:
/// built pipelines and resident-input textures. Tied to the context's
/// lifetime — a panic-replaced context gets a fresh (empty) state, since
/// cached kernels and textures belong to the dead context.
pub(crate) struct WorkerState {
    pub(crate) pipelines: FifoCache<u64, ServedPipeline>,
    /// `(resident id, texture width, texture height)` → handle + uploaded
    /// array; the dims keep one residency usable under several declared
    /// shapes, and the handle lets the post-task sweep notice evictions.
    pub(crate) residents: FifoCache<(u64, u32, u32), (ResidentInput, AnyGpuArray)>,
    pub(crate) resident_stats: ResidentStats,
}

impl Default for WorkerState {
    fn default() -> WorkerState {
        WorkerState::with_caps(PIPELINES_PER_WORKER_CAP, RESIDENTS_PER_WORKER_CAP)
    }
}

impl WorkerState {
    /// A fresh state with explicit cache bounds
    /// ([`EngineBuilder::pipeline_cache_capacity`] /
    /// [`EngineBuilder::resident_cache_capacity`]).
    pub(crate) fn with_caps(pipeline_cap: usize, resident_cap: usize) -> WorkerState {
        WorkerState {
            pipelines: FifoCache::new(pipeline_cap),
            residents: FifoCache::new(resident_cap),
            resident_stats: ResidentStats::default(),
        }
    }

    /// Returns the cached pipeline for `spec`, building (and caching) it
    /// on first sight.
    fn pipeline_for(
        &mut self,
        cc: &mut ComputeContext,
        spec: &PipelineSpec,
    ) -> Result<&ServedPipeline, ComputeError> {
        let key = spec.fingerprint();
        if !self.pipelines.contains(&key) {
            let served = spec.build(cc)?;
            for (_, evicted) in self.pipelines.insert(key, served) {
                for placeholder in evicted.placeholders {
                    cc.recycle_any(placeholder);
                }
            }
        }
        Ok(self.pipelines.get(&key).expect("just ensured present"))
    }

    /// Resolves a resident input to its per-worker texture under the
    /// requested shape, uploading on first use and evicting oldest-first
    /// past the cap. An evicted handle drops its entries and fails.
    fn resident_array(
        &mut self,
        cc: &mut ComputeContext,
        input: &ResidentInput,
        shape: SourceShape,
    ) -> Result<AnyGpuArray, ComputeError> {
        let id = input.inner.id;
        if input.is_evicted() {
            self.sweep_evicted(cc);
            return Err(bad_job(format!(
                "job references an evicted ResidentInput (id {id})"
            )));
        }
        let layout = match shape {
            SourceShape::Linear(_) => {
                crate::addressing::ArrayLayout::for_len(input.len(), cc.max_texture_side())?
            }
            SourceShape::Grid { rows, cols } => {
                crate::addressing::ArrayLayout::grid(rows, cols, cc.max_texture_side())?
            }
        };
        let key = (id, layout.width, layout.height);
        if let Some((_, array)) = self.residents.get(&key) {
            self.resident_stats.hits += 1;
            return Ok(*array);
        }
        let array = match shape {
            SourceShape::Linear(_) => cc.upload_any(&input.inner.data)?,
            SourceShape::Grid { rows, cols } => {
                cc.upload_any_matrix(rows, cols, &input.inner.data)?
            }
        };
        self.resident_stats.uploads += 1;
        for (_, (_, evicted)) in self.residents.insert(key, (input.clone(), array)) {
            cc.recycle_any(evicted);
            self.resident_stats.evictions += 1;
        }
        self.resident_stats.resident_textures = self.residents.len() as u64;
        Ok(array)
    }

    /// Recycles every residency whose handle has been evicted. Runs after
    /// each task, so `ResidentInput::evict` reclaims a worker's texture at
    /// its next task boundary — not only if the dead handle is referenced
    /// again.
    fn sweep_evicted(&mut self, cc: &mut ComputeContext) {
        let dead = self
            .residents
            .extract_if(|_, (handle, _)| handle.is_evicted());
        for (_, (_, array)) in dead {
            cc.recycle_any(array);
            self.resident_stats.evictions += 1;
        }
        self.resident_stats.resident_textures = self.residents.len() as u64;
    }
}

/// Publishes the worker's injected-fault watermark delta to the shared
/// metrics; returns the new watermark. Never subtracts, so a stale
/// reading (after a failed rebuild dropped the plan) is a no-op.
pub(crate) fn publish_faults(metrics: &EngineMetrics, published: u64, now: u64) -> u64 {
    if now > published {
        EngineMetrics::add(&metrics.faults_injected, now - published);
        now
    } else {
        published
    }
}

/// Returns a claimed task to the queue for another attempt. The control
/// goes back to `Queued` (so the handle can still cancel the retry) and
/// the admission timestamp restarts — but `submitted` is NOT re-bumped:
/// a retry is the same admitted job, so the snapshot balance identity
/// counts it exactly once. Hands the task back (`Some`, still claimed)
/// when the queue cannot take it: shutdown, dead pool, or full.
pub(crate) fn requeue_transient(shared: &EngineShared, queued: QueuedTask) -> Option<QueuedTask> {
    let mut queue = lock_recover(&shared.queue);
    if queue.shutdown || queue.live_workers == 0 || queue.tasks.len() >= shared.capacity {
        return Some(queued);
    }
    queued.payload.control().requeue();
    queue.tasks.push_back(QueuedTask {
        enqueued_at: Instant::now(),
        ..queued
    });
    shared.metrics.raise_high_water(queue.tasks.len() as u64);
    drop(queue);
    shared.cv.notify_one();
    None
}

/// Runs one task by reference (so a transient failure can re-run or
/// requeue the same payload), pairing the shielded result with its
/// handle.
pub(crate) fn run_task(
    cc: &mut ComputeContext,
    state: &mut WorkerState,
    payload: &Task,
) -> (Completed, bool) {
    match payload {
        Task::Single(job, sink) => {
            let (result, panicked) = run_shielded(cc, |cc| run_job(cc, state, job));
            (Completed::Single(sink.clone(), result), panicked)
        }
        Task::Batch(submission, handle) => {
            let (result, panicked) = run_shielded(cc, |cc| run_submission(cc, state, submission));
            (Completed::Batch(Arc::clone(handle), result), panicked)
        }
        Task::Pipeline(job, handle) => {
            let (result, panicked) = run_shielded(cc, |cc| run_pipeline(cc, state, job));
            (Completed::Pipeline(Arc::clone(handle), result), panicked)
        }
    }
}

pub(crate) fn worker_main(
    mut cc: ComputeContext,
    config: WorkerConfig,
    shared: Arc<EngineShared>,
    stats: Arc<Vec<Mutex<ContextStats>>>,
    resident_stats: Arc<Vec<Mutex<ResidentStats>>>,
    index: usize,
) {
    // Counters accumulated by contexts this worker already retired (after
    // a panicking job or a context loss); published stats are always
    // `base + current`, so a context swap never zeroes the worker's
    // visible accounting.
    let mut base = ContextStats::default();
    let mut resident_base = ResidentStats::default();
    let mut state = WorkerState::with_caps(config.pipeline_cap, config.resident_cap);
    // Injected-fault watermark already published to the engine metrics;
    // the fault plan travels across context rebuilds, so the per-context
    // counter is monotonic for this worker's lifetime.
    let mut faults_published = 0u64;
    'serve: loop {
        let mut queued = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    drop(queue);
                    retire_worker(&shared);
                    return;
                }
                queue = wait_recover(&shared.cv, queue);
            }
        };
        // A slot just freed up: wake one producer blocked on admission.
        shared.space.notify_one();
        let queue_latency = queued.enqueued_at.elapsed();
        lock_recover(&shared.metrics.queue_latency).record(queue_latency);
        // Claim the task: losing means the handle cancelled it (and
        // fulfilled itself) — discard the payload untouched.
        if !queued.payload.control().claim() {
            continue;
        }
        // Deadline shed: expired work never touches the GPU. Requeued
        // retries pass through here again, so the deadline keeps ruling
        // however many attempts the job takes.
        if let Some(deadline) = queued.deadline {
            if Instant::now() >= deadline {
                EngineMetrics::bump(&shared.metrics.shed);
                let queued_ms = u64::try_from(queue_latency.as_millis()).unwrap_or(u64::MAX);
                queued.payload.shed(queued_ms);
                continue;
            }
        }
        let policy = queued.payload.retry_override().unwrap_or(config.retry);
        let started = Instant::now();
        // Execute, self-healing around transient failures: a lost context
        // is rebuilt and the job replayed in place; other transient
        // failures go back to the queue (or, if the queue is unavailable,
        // retry in place); permanent outcomes break out for fulfilment.
        let completed = loop {
            let (completed, panicked) = run_task(&mut cc, &mut state, &queued.payload);
            if panicked || cc.context_lost() {
                // Fresh context, same wiring; the worker state dies with
                // the context — its cached pipelines and resident
                // textures belonged to the context that panicked or was
                // lost, and repopulate lazily on the replacement. The
                // fault plan (PRNG position, consumed one-shots, counts)
                // moves onto the fresh context so a one-shot loss fires
                // exactly once. If even the rebuild fails the worker
                // retires (remaining queue entries drain to other
                // workers, or are aborted if this was the last one).
                base = base.merged(&cc.stats());
                resident_base = resident_base.merged(&state.resident_stats);
                resident_base.resident_textures = 0;
                state = WorkerState::with_caps(config.pipeline_cap, config.resident_cap);
                let plan = cc.take_fault_plan();
                match config.make_context(index) {
                    Ok(mut fresh) => {
                        if let Some(plan) = plan {
                            faults_published =
                                publish_faults(&shared.metrics, faults_published, plan.injected());
                            fresh.install_fault_plan(plan);
                        }
                        cc = fresh;
                        EngineMetrics::bump(&shared.metrics.recovered_contexts);
                    }
                    Err(_) => {
                        lock_recover(&shared.metrics.service_latency).record(started.elapsed());
                        EngineMetrics::bump(&shared.metrics.completed);
                        EngineMetrics::bump(&shared.metrics.failed);
                        drop(queued.tenant_permit.take());
                        completed.fulfil();
                        retire_worker(&shared);
                        return;
                    }
                }
            }
            if panicked {
                // Panics are never retried: the typed internal error
                // surfaces (from the already-rebuilt context).
                break completed;
            }
            match completed.error() {
                Some(e) if e.is_transient() && queued.attempt + 1 < policy.attempts() => {
                    queued.attempt += 1;
                    EngineMetrics::bump(&shared.metrics.retried);
                    if !policy.backoff.is_zero() {
                        std::thread::sleep(policy.backoff);
                    }
                    if e.is_context_loss() {
                        // Replay in place on the just-rebuilt context.
                        continue;
                    }
                    match requeue_transient(&shared, queued) {
                        // Back in the queue; this worker moves on.
                        None => continue 'serve,
                        // Queue unavailable (shutdown / full / dead
                        // pool): retry in place rather than dropping
                        // the attempt.
                        Some(returned) => {
                            queued = returned;
                            continue;
                        }
                    }
                }
                _ => break completed,
            }
        };
        // Reclaim residencies whose handles were evicted since the last
        // task, then publish stats (and drain the per-request pass log)
        // BEFORE fulfilling the handle: a caller returning from `wait()`
        // must observe worker stats that include its job.
        state.sweep_evicted(&mut cc);
        cc.take_pass_log();
        *lock_recover(&stats[index]) = base.merged(&cc.stats());
        *lock_recover(&resident_stats[index]) = resident_base.merged(&state.resident_stats);
        faults_published = publish_faults(&shared.metrics, faults_published, cc.faults_injected());
        lock_recover(&shared.metrics.service_latency).record(started.elapsed());
        EngineMetrics::bump(&shared.metrics.completed);
        if completed.is_err() {
            EngineMetrics::bump(&shared.metrics.failed);
        }
        // Release the tenant's in-flight slot before fulfilment, so a
        // caller resuming from `wait()` can immediately resubmit without
        // tripping its own quota.
        drop(queued.tenant_permit.take());
        completed.fulfil();
    }
}

/// Executes one job exactly as a direct caller would: upload (or resolve
/// resident) inputs, build (cache-hit) the kernel, dispatch with
/// overrides, read back through the FBO path, recycle every *per-job*
/// texture — resident textures stay on the worker.
pub(crate) fn run_job(
    cc: &mut ComputeContext,
    state: &mut WorkerState,
    job: &Job,
) -> Result<TensorData, ComputeError> {
    let mut arrays = Vec::with_capacity(job.inputs.len());
    let mut uploads = Vec::new();
    let mut failure = None;
    for input in &job.inputs {
        let uploaded = match input {
            JobInput::Data(data) => Some(cc.upload(data.as_slice()).map(|a| a.erase())),
            JobInput::Tensor(tensor) => Some(cc.upload_any(tensor)),
            JobInput::Resident(resident) => {
                match state.resident_array(cc, resident, SourceShape::Linear(None)) {
                    Ok(array) => {
                        arrays.push(array);
                        None
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
        };
        match uploaded {
            Some(Ok(array)) => {
                uploads.push(array);
                arrays.push(array);
            }
            Some(Err(e)) => {
                failure = Some(e);
                break;
            }
            None => {}
        }
    }
    let result = match failure {
        Some(e) => Err(e),
        None => dispatch_spec(cc, &job.kernel, &arrays, &job.uniforms),
    };
    for array in uploads {
        cc.recycle_any(array);
    }
    let out = result?;
    let host = cc.read_array_any(&out, Readback::DirectFbo);
    cc.recycle_any(out);
    host
}

/// Executes a whole retained pipeline as one job: cache-hit (or build)
/// the pipeline for the spec, seed every declared source from the job,
/// run all iterations on-GPU, read back the marked buffers, retire every
/// per-job texture into the pool.
pub(crate) fn run_pipeline(
    cc: &mut ComputeContext,
    state: &mut WorkerState,
    job: &PipelineJob,
) -> Result<PipelineResult, ComputeError> {
    state.pipeline_for(cc, &job.spec)?;
    let mut seeds = Vec::with_capacity(job.sources.len());
    let mut uploads: Vec<AnyGpuArray> = Vec::new();
    let mut failure = None;
    for (decl, input) in job.spec.sources.iter().zip(&job.sources) {
        let resolved = match input {
            JobInput::Data(data) => {
                let uploaded = match decl.shape {
                    SourceShape::Linear(_) => cc.upload(data.as_slice()).map(|a| a.erase()),
                    SourceShape::Grid { rows, cols } => cc
                        .upload_matrix(rows, cols, data.as_slice())
                        .map(|m| m.as_array().erase()),
                };
                match uploaded {
                    Ok(array) => {
                        uploads.push(array);
                        array
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            JobInput::Tensor(tensor) => {
                let uploaded = match decl.shape {
                    SourceShape::Linear(_) => cc.upload_any(tensor),
                    SourceShape::Grid { rows, cols } => cc.upload_any_matrix(rows, cols, tensor),
                };
                match uploaded {
                    Ok(array) => {
                        uploads.push(array);
                        array
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            JobInput::Resident(resident) => match state.resident_array(cc, resident, decl.shape) {
                Ok(array) => array,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            },
        };
        seeds.push(SourceSeed::any(decl.name.clone(), &resolved));
    }
    let result = match failure {
        Some(e) => Err(e),
        None => {
            let served = state
                .pipelines
                .get(&job.spec.fingerprint())
                .expect("built by pipeline_for above");
            served.pipeline.run_seeded(cc, &seeds).and_then(|run| {
                let mut outputs = Vec::with_capacity(job.reads.len());
                let mut read_failure = None;
                for buffer in &job.reads {
                    match run.read_any(cc, buffer) {
                        Ok(data) => outputs.push((buffer.clone(), data)),
                        Err(e) => {
                            read_failure = Some(e);
                            break;
                        }
                    }
                }
                run.finish(cc);
                match read_failure {
                    Some(e) => Err(e),
                    None => Ok(PipelineResult { outputs }),
                }
            })
        }
    };
    for array in uploads {
        cc.recycle_any(array);
    }
    result
}

/// Executes a submission's steps in order on one worker, keeping step
/// outputs on the GPU for later steps, reading back only marked steps.
pub(crate) fn run_submission(
    cc: &mut ComputeContext,
    state: &mut WorkerState,
    submission: &Submission,
) -> Result<BatchResult, ComputeError> {
    let n = submission.steps.len();
    let mut step_outputs: Vec<Option<AnyGpuArray>> = (0..n).map(|_| None).collect();
    let mut uploads: Vec<AnyGpuArray> = Vec::new();
    let mut failure: Option<ComputeError> = None;
    for (i, step) in submission.steps.iter().enumerate() {
        let mut arrays: Vec<AnyGpuArray> = Vec::with_capacity(step.inputs.len());
        let mut ok = true;
        for input in &step.inputs {
            let array = match input {
                StepInput::Data(data) => match cc.upload(data.as_slice()) {
                    Ok(array) => {
                        // Track the upload for recycling; the borrow the
                        // kernel needs is the (Copy) texture + layout pair.
                        let array = array.erase();
                        uploads.push(array);
                        array
                    }
                    Err(e) => {
                        failure = Some(e);
                        ok = false;
                        break;
                    }
                },
                StepInput::Step(j) => match &step_outputs[*j] {
                    Some(array) => *array,
                    None => {
                        failure = Some(bad_job(format!("step {i} reads failed step {j}")));
                        ok = false;
                        break;
                    }
                },
                StepInput::Resident(resident) => {
                    match state.resident_array(cc, resident, SourceShape::Linear(None)) {
                        Ok(array) => array,
                        Err(e) => {
                            failure = Some(e);
                            ok = false;
                            break;
                        }
                    }
                }
            };
            arrays.push(array);
        }
        if !ok {
            break;
        }
        match dispatch_spec(cc, &step.kernel, &arrays, &step.uniforms) {
            Ok(out) => step_outputs[i] = Some(out),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }

    let mut outputs: Vec<Option<Vec<f32>>> = (0..n).map(|_| None).collect();
    if failure.is_none() {
        let read: Vec<usize> = if submission.read.is_empty() {
            vec![n - 1]
        } else {
            submission.read.clone()
        };
        for &r in &read {
            match step_outputs[r].as_ref() {
                Some(array) => match cc.read_array_any(array, Readback::DirectFbo) {
                    // Submission validation admits only all-f32 specs, so
                    // every step readback is an f32 tensor.
                    Ok(TensorData::F32(host)) => outputs[r] = Some(host),
                    Ok(other) => {
                        failure = Some(bad_job(format!(
                            "step {r} produced {:?} output in an f32 submission",
                            other.scalar()
                        )));
                        break;
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                },
                None => {
                    failure = Some(bad_job(format!("readback of unexecuted step {r}")));
                    break;
                }
            }
        }
    }

    for array in uploads {
        cc.recycle_any(array);
    }
    for array in step_outputs.into_iter().flatten() {
        cc.recycle_any(array);
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(BatchResult { outputs }),
    }
}

/// Builds the spec's kernel over `arrays` and dispatches it once with the
/// given uniform overrides. The output array carries the spec's declared
/// output scalar.
pub(crate) fn dispatch_spec(
    cc: &mut ComputeContext,
    spec: &KernelSpec,
    arrays: &[AnyGpuArray],
    uniforms: &[(String, Value)],
) -> Result<AnyGpuArray, ComputeError> {
    // Arity and scalar agreement are validated inside
    // `KernelSpec::build_any`.
    let kernel = spec.build_any(cc, arrays)?;
    let mut bindings = Bindings::new();
    for (name, value) in uniforms {
        bindings.set_uniform(name, value.clone());
    }
    cc.run_to_array_any_with(&kernel, &bindings)
}
