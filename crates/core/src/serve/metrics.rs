//! Serving observability: the engine's admission/outcome counters,
//! per-job latency histograms, and the merged [`EngineSnapshot`] that
//! [`super::Engine::snapshot`] exports.
//!
//! The instrumentation is deliberately lightweight — fixed-size
//! log-spaced histogram buckets and relaxed atomic counters, nothing
//! allocated on the serving path — so it can stay on in production the
//! way mobile-GPU delegates keep their latency accounting on.

use crate::cache::SharedCacheStats;
use crate::context::ContextStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks a mutex, recovering the data from a poisoned lock instead of
/// propagating the panic. Every engine critical section stores plain
/// already-consistent values (a result slot, a stats struct, histogram
/// counts), so the data behind a lock poisoned by a panicking thread is
/// still usable — recovery turns "one worker panicked" into "that job
/// failed" instead of cascading panics out of every later `wait()` or
/// `stats()` caller.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on a condvar, recovering from poisoning like [`lock_recover`].
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Number of fixed log-spaced buckets in a [`LatencyHistogram`]: bucket
/// `i` counts samples in `[2^(i-1), 2^i)` microseconds (bucket 0 is
/// `< 1 µs`), so the top bucket starts at `2^30 µs` ≈ 18 minutes —
/// far beyond any sane serving latency.
pub const LATENCY_BUCKETS: usize = 32;

/// A fixed-bucket, log-spaced latency histogram. Recording is O(1) with
/// no allocation; buckets double in width (powers of two microseconds),
/// so the same 32 buckets cover sub-microsecond queue hops and
/// multi-second convergence pipelines with bounded relative error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
    count: u64,
    total_micros: u64,
    max_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            counts: [0; LATENCY_BUCKETS],
            count: 0,
            total_micros: 0,
            max_micros: 0,
        }
    }
}

fn bucket_index(micros: u64) -> usize {
    // 0 µs → bucket 0; otherwise 1 + floor(log2(µs)), clamped.
    let bits = 64 - micros.leading_zeros() as usize;
    bits.min(LATENCY_BUCKETS - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.counts[bucket_index(micros)] += 1;
        self.count += 1;
        self.total_micros = self.total_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded sample, in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Mean of the recorded samples, in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.count).unwrap_or(0)
    }

    /// An upper bound on the `q`-quantile (0.0–1.0), in microseconds:
    /// the upper edge of the first bucket at which the cumulative count
    /// reaches `q * count` (the exact max for the final sample). Bucket
    /// resolution means the bound is within 2× of the true quantile.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket i is 2^i µs (bucket 0 holds 0 µs);
                // never report a bound above the recorded max.
                let edge = if i == 0 { 1 } else { 1u64 << i };
                return edge.min(self.max_micros.max(1));
            }
        }
        self.max_micros
    }

    /// The raw bucket counts: `(lower_µs, upper_µs, count)` per occupied
    /// bucket, in ascending order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(i, &c)| {
            if c == 0 {
                None
            } else {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                Some((lower, 1u64 << i, c))
            }
        })
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_micros = self.total_micros.saturating_add(other.total_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// One-line summary: `p50 .. p90 .. p99 .. max .. mean .. us` — the
    /// form the `a12` ablation prints and `ci_perf_gate.py` parses.
    pub fn format_summary(&self) -> String {
        format!(
            "p50 {} us   p90 {} us   p99 {} us   max {} us   mean {} us   samples {}",
            self.quantile_micros(0.50),
            self.quantile_micros(0.90),
            self.quantile_micros(0.99),
            self.max_micros(),
            self.mean_micros(),
            self.count(),
        )
    }
}

/// The engine's internal counter block: relaxed atomics bumped on the
/// submit path and by workers, shared with every [`super::JobHandle`] so
/// dropping an unobserved failed handle can still account for the error.
#[derive(Debug, Default)]
pub(crate) struct EngineMetrics {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected: AtomicU64,
    pub shed: AtomicU64,
    pub cancelled: AtomicU64,
    pub aborted: AtomicU64,
    pub unobserved_errors: AtomicU64,
    pub retried: AtomicU64,
    pub recovered_contexts: AtomicU64,
    pub faults_injected: AtomicU64,
    pub queue_depth_high_water: AtomicU64,
    pub queue_latency: Mutex<LatencyHistogram>,
    pub service_latency: Mutex<LatencyHistogram>,
}

impl EngineMetrics {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    pub fn add(counter: &AtomicU64, delta: u64) {
        counter.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn raise_high_water(&self, depth: u64) {
        self.queue_depth_high_water
            .fetch_max(depth, Ordering::Relaxed);
    }
}

/// A point-in-time view of the engine's serving health: admission and
/// outcome counters, queue depth, per-job latency distributions, and the
/// merged GL-side statistics ([`ContextStats`] over every worker,
/// [`super::ResidentStats`], and the [`SharedCacheStats`] when the cache
/// policy is shared). Obtained from [`super::Engine::snapshot`]; printed
/// by the `a12` ablation and gated in CI.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Jobs that passed validation and entered admission (accepted *or*
    /// rejected) — the left side of the balance identity below.
    pub submitted: u64,
    /// Jobs a worker finished executing (successfully or with an
    /// execution error — see [`EngineSnapshot::failed`]).
    pub completed: u64,
    /// The subset of `completed` that finished with an error.
    pub failed: u64,
    /// Submissions turned away at admission: a full queue
    /// ([`crate::ComputeError::QueueFull`]), a shut-down engine
    /// ([`crate::ComputeError::EngineShutdown`]), or a pool with no live
    /// workers ([`crate::ComputeError::EngineInternal`]).
    pub rejected: u64,
    /// Jobs shed at dequeue because their deadline had passed
    /// ([`crate::ComputeError::DeadlineExceeded`]) — never touched the GPU.
    pub shed: u64,
    /// Jobs cancelled while queued ([`crate::ComputeError::Cancelled`]).
    pub cancelled: u64,
    /// Jobs aborted un-run at shutdown or worker-pool death
    /// ([`crate::ComputeError::EngineShutdown`] /
    /// [`crate::ComputeError::EngineInternal`]).
    pub aborted: u64,
    /// Error results nobody waited for: the job's handle was dropped (or
    /// its `CompletionSet` abandoned) and the stored error discarded.
    /// Keeps failed work visible even when no caller observes it.
    pub unobserved_errors: u64,
    /// Extra execution attempts granted by the [`super::RetryPolicy`]
    /// after transient failures (context-loss replays included). Not part
    /// of the balance identity: a retried job was submitted once and is
    /// fulfilled once, however many attempts it took.
    pub retried: u64,
    /// Worker contexts torn down and rebuilt — after an injected/real
    /// context loss or a panicking job. Resident textures and per-worker
    /// pipeline caches die with the old context and repopulate lazily.
    pub recovered_contexts: u64,
    /// Driver faults injected by the workers' [`gpes_gles2::FaultPlan`]s
    /// (context losses included); `0` when no plan is installed.
    pub faults_injected: u64,
    /// Tasks sitting in the queue right now.
    pub queue_depth: u64,
    /// Deepest the queue has ever been.
    pub queue_depth_high_water: u64,
    /// The admission bound.
    pub queue_capacity: usize,
    /// Workers still serving.
    pub live_workers: usize,
    /// Time from submit to dequeue, for every dequeued job (executed,
    /// shed and cancelled alike).
    pub queue_latency: LatencyHistogram,
    /// Time from dequeue to fulfilment, for executed jobs only.
    pub service_latency: LatencyHistogram,
    /// Field-wise sum of every worker's [`ContextStats`].
    pub context: ContextStats,
    /// Field-wise sum of every worker's [`super::ResidentStats`].
    pub residents: super::ResidentStats,
    /// The process-wide program cache counters, when the engine runs the
    /// shared cache policy.
    pub shared_cache: Option<SharedCacheStats>,
    /// Per-tenant accounting (admitted / rejected / evicted / jobs /
    /// in-flight), sorted by tenant name; empty when no submission was
    /// ever tenant-tagged. Tenant-tagged rejections also count into the
    /// global `rejected`, so the balance identity is unaffected.
    pub tenants: Vec<super::TenantCounters>,
    /// Resolved shader execution mode of the worker contexts, as the
    /// compact [`gpes_gles2::ExecMode::label`] (`tree`, `scalar`,
    /// `spmdN`). Paired with [`ContextStats::spmd_batches`] this lets the
    /// CI gate assert the SPMD path actually ran, not just that outputs
    /// matched.
    pub exec_mode: String,
}

impl EngineSnapshot {
    /// Whether the outcome counters cover every admitted job:
    /// `submitted == completed + rejected + shed + cancelled + aborted`.
    /// Holds exactly when the engine is quiescent (no job queued or
    /// running); in-flight work makes the left side larger by the number
    /// of jobs still in the pipe. Retries do not appear in the identity:
    /// a transient failure re-runs the *same* admitted job (bumping only
    /// [`EngineSnapshot::retried`]), so a retried-then-completed job
    /// still balances exactly once.
    pub fn counters_balanced(&self) -> bool {
        self.submitted == self.completed + self.rejected + self.shed + self.cancelled + self.aborted
    }

    /// Jobs admitted but not yet fulfilled (queued or running) implied by
    /// the counters.
    pub fn in_flight(&self) -> u64 {
        self.submitted.saturating_sub(
            self.completed + self.rejected + self.shed + self.cancelled + self.aborted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_spaced() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_micros(), 1000);
        let buckets: Vec<_> = h.buckets().collect();
        // 0µs → [0,1); 1µs → [1,2); 3µs → [2,4); 1000µs → [512,1024).
        assert_eq!(
            buckets,
            vec![(0, 1, 1), (1, 2, 1), (2, 4, 1), (512, 1024, 1)]
        );
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_micros(5000));
        // p50/p90 land in the [64,128) bucket; p99 too (99 of 100
        // samples); the max is exact.
        assert_eq!(h.quantile_micros(0.50), 128);
        assert_eq!(h.quantile_micros(0.90), 128);
        assert_eq!(h.quantile_micros(0.99), 128);
        assert_eq!(h.quantile_micros(1.0), 5000);
        assert_eq!(h.max_micros(), 5000);
        assert_eq!(h.mean_micros(), (99 * 100 + 5000) / 100);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(20));
        b.record(Duration::from_micros(40));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_micros(), 40);
        assert!(!a.format_summary().is_empty());
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile_micros(0.99), 0);
        assert_eq!(h.mean_micros(), 0);
        assert_eq!(h.buckets().count(), 0);
    }
}
