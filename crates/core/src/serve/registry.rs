//! Multi-tenant dynamic kernel registry: GLSL **source** admission at
//! the serving boundary.
//!
//! Every kernel the engine served before this module existed was
//! compiled into the binary. The production shape of the paper's claim
//! — fragment shaders as a general-purpose compute substrate — is a
//! service that accepts kernel source from *untrusted tenants at
//! runtime*, the way a mobile inference runtime generates and compiles
//! shader source behind a program cache. The [`KernelRegistry`] is that
//! boundary:
//!
//! ```text
//!   tenant source (KernelSpec body + helpers)
//!        │
//!        ▼
//!   signature stage   names, arity, output shape vs driver limits
//!        │                      └─ AdmissionRejected{stage: Signature}
//!        ▼
//!   parse stage       preprocess + parse the generated fragment shader
//!        │                      └─ AdmissionRejected{stage: Parse}
//!        ▼
//!   strict stage      GLSL ES Appendix-A minimum guarantees
//!        │                      └─ AdmissionRejected{stage: Strict}
//!        ▼
//!   sema stage        full semantic analysis
//!        │                      └─ AdmissionRejected{stage: Sema}
//!        ▼
//!   quota check       per-tenant registered-kernel budget
//!        │                      └─ QuotaExceeded / FIFO eviction
//!        ▼
//!   RegisteredKernel  fingerprint = source + limits + strictness
//! ```
//!
//! The validated source is **byte-identical** to what a worker later
//! compiles (admission and the worker share one generator), so admission
//! success means the job cannot fail shader compilation at serve time,
//! and the fingerprint is exactly the [`SharedProgramCache`] key — a
//! registered kernel links at most once per process no matter how many
//! tenants or workers touch it.
//!
//! Tenancy is enforced in three places:
//!
//! * **admission** — [`KernelRegistry::register`] refuses invalid source
//!   with [`ComputeError::AdmissionRejected`] (stage-tagged, never a
//!   panic) and applies the registered-kernel budget;
//! * **submit** — jobs tagged with a [`TenantId`] (see
//!   [`RegisteredKernel::job`]) take an in-flight permit against
//!   [`TenantQuotas::max_in_flight`]; beyond it the engine rejects with
//!   [`ComputeError::QuotaExceeded`] *before* the task enters the queue,
//!   so one flooding tenant exhausts its own budget, not the pool;
//! * **eviction** — retiring or displacing a tenant's kernel removes
//!   exactly that tenant's entry from the shared program cache, and a
//!   tenant over its resident-byte budget has its *own* oldest resident
//!   evicted ([`ResidentInput::evict`]; workers reclaim the texture at
//!   their next task boundary). Neighbours are never evicted on a noisy
//!   tenant's behalf.
//!
//! Per-tenant counters (admitted / rejected / evicted / jobs /
//! in-flight) surface through [`EngineSnapshot::tenants`]; the global
//! balance identity is untouched because tenant rejections count into
//! the engine's `submitted`/`rejected` like any other admission refusal.

use super::*;
use crate::cache::program_key;
use crate::error::{AdmissionStage, QuotaResource};
use crate::kernel::{generate_fragment_source, is_valid_name, InputEncoding, OutputKind};
use crate::{FloatSpecials, PackBias};
use gpes_glsl::admission as glsl_admission;
use gpes_glsl::ShaderKind;

/// An opaque tenant identity. Cheap to clone (`Arc`-backed); equal ids
/// share quotas and counters.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// Wraps a tenant name.
    pub fn new(name: impl AsRef<str>) -> TenantId {
        TenantId(Arc::from(name.as_ref()))
    }

    /// The tenant name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for TenantId {
    fn from(name: &str) -> TenantId {
        TenantId::new(name)
    }
}

impl From<String> for TenantId {
    fn from(name: String) -> TenantId {
        TenantId::new(name)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::fmt::Debug for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TenantId({})", self.0)
    }
}

/// Per-tenant resource budgets. The defaults are deliberately generous —
/// a tenant that never thinks about quotas should never see
/// [`ComputeError::QuotaExceeded`] — while still bounding what any
/// single tenant can pin: linked programs, resident texture bytes, and
/// queue slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Registered kernels the tenant may hold at once. Registering past
    /// the budget FIFO-evicts the tenant's *oldest* kernel (its program
    /// leaves the shared cache; the eviction is counted). `0` bans
    /// registration outright with a typed
    /// [`ComputeError::QuotaExceeded`].
    pub max_kernels: usize,
    /// Total bytes of [`ResidentInput`] data the tenant may keep
    /// resident through [`KernelRegistry::register_resident`]. Going
    /// past the budget FIFO-evicts the tenant's oldest residents; a
    /// single resident larger than the whole budget is refused with
    /// [`ComputeError::QuotaExceeded`].
    pub max_resident_bytes: usize,
    /// Jobs the tenant may have queued or running at once. The
    /// `submit*`/`try_submit*` families reject tenant-tagged work past
    /// this with [`ComputeError::QuotaExceeded`] before it enters the
    /// queue.
    pub max_in_flight: usize,
}

impl Default for TenantQuotas {
    fn default() -> TenantQuotas {
        TenantQuotas {
            max_kernels: 32,
            max_resident_bytes: 16 << 20,
            max_in_flight: 256,
        }
    }
}

impl TenantQuotas {
    /// Sets the registered-kernel budget.
    #[must_use]
    pub fn max_kernels(mut self, n: usize) -> Self {
        self.max_kernels = n;
        self
    }

    /// Sets the resident-byte budget.
    #[must_use]
    pub fn max_resident_bytes(mut self, bytes: usize) -> Self {
        self.max_resident_bytes = bytes;
        self
    }

    /// Sets the in-flight job budget.
    #[must_use]
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n;
        self
    }
}

/// A tenant's point-in-time accounting, exported through
/// [`EngineSnapshot::tenants`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantCounters {
    /// The tenant's name.
    pub tenant: String,
    /// Kernel sources that passed the full admission pipeline.
    pub admitted: u64,
    /// Typed refusals charged to this tenant: admission failures, quota
    /// rejections, and engine admission refusals of its tagged jobs.
    pub rejected: u64,
    /// Tenant-scoped cache evictions: displaced registered kernels
    /// (program cache) and displaced residents (resident-byte budget).
    pub evicted: u64,
    /// Tenant-tagged jobs accepted into the engine queue.
    pub jobs: u64,
    /// Tenant-tagged jobs currently queued or running.
    pub in_flight: u64,
}

struct KernelEntry {
    fingerprint: u64,
    /// The full shared-program-cache key, kept so retiring or displacing
    /// this registration can remove exactly its program.
    key: Arc<str>,
}

#[derive(Default)]
struct TenantState {
    quotas: Option<TenantQuotas>,
    kernels: VecDeque<KernelEntry>,
    residents: VecDeque<(ResidentInput, usize)>,
    resident_bytes: usize,
    in_flight: u64,
    admitted: u64,
    rejected: u64,
    evicted: u64,
    jobs: u64,
}

/// The engine-wide tenant ledger: quotas, registered-kernel FIFOs,
/// resident-byte accounting and counters, all under one short-lived
/// lock. Shared by the [`Engine`] (submit-time checks, snapshot) and
/// every [`KernelRegistry`] handle.
pub(crate) struct TenantTable {
    default_quotas: TenantQuotas,
    inner: Mutex<HashMap<TenantId, TenantState>>,
}

impl TenantTable {
    pub(crate) fn new(default_quotas: TenantQuotas) -> TenantTable {
        TenantTable {
            default_quotas,
            inner: Mutex::new(HashMap::new()),
        }
    }

    fn with_state<R>(
        &self,
        tenant: &TenantId,
        f: impl FnOnce(TenantQuotas, &mut TenantState) -> R,
    ) -> R {
        let mut inner = lock_recover(&self.inner);
        let state = inner.entry(tenant.clone()).or_default();
        let quotas = state.quotas.unwrap_or(self.default_quotas);
        f(quotas, state)
    }

    /// Overrides one tenant's quotas (others keep the engine default).
    pub(crate) fn set_quotas(&self, tenant: &TenantId, quotas: TenantQuotas) {
        self.with_state(tenant, |_, state| state.quotas = Some(quotas));
    }

    /// Charges a typed refusal to the tenant.
    pub(crate) fn note_rejected(&self, tenant: &TenantId) {
        self.with_state(tenant, |_, state| state.rejected += 1);
    }

    /// Counts a tenant-tagged job accepted into the queue.
    pub(crate) fn note_job(&self, tenant: &TenantId) {
        self.with_state(tenant, |_, state| state.jobs += 1);
    }

    /// Takes an in-flight slot for one tenant-tagged job, refusing past
    /// [`TenantQuotas::max_in_flight`]. The permit releases the slot on
    /// drop, whatever the job's outcome (completed, failed, shed,
    /// cancelled, aborted or requeued-then-resolved).
    pub(crate) fn acquire_job(
        self: &Arc<Self>,
        tenant: &TenantId,
    ) -> Result<TenantPermit, ComputeError> {
        self.with_state(tenant, |quotas, state| {
            if state.in_flight >= quotas.max_in_flight as u64 {
                return Err(ComputeError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    resource: QuotaResource::InFlightJobs,
                });
            }
            state.in_flight += 1;
            Ok(())
        })?;
        Ok(TenantPermit {
            table: Arc::clone(self),
            tenant: tenant.clone(),
        })
    }

    fn release_job(&self, tenant: &TenantId) {
        self.with_state(tenant, |_, state| {
            state.in_flight = state.in_flight.saturating_sub(1);
        });
    }

    /// Records an admitted kernel, FIFO-evicting the tenant's oldest
    /// past [`TenantQuotas::max_kernels`] (removing its program from the
    /// shared cache). A zero budget refuses outright.
    fn admit_kernel(
        &self,
        tenant: &TenantId,
        fingerprint: u64,
        key: Arc<str>,
        cache: Option<&SharedProgramCache>,
    ) -> Result<(), ComputeError> {
        self.with_state(tenant, |quotas, state| {
            if quotas.max_kernels == 0 {
                state.rejected += 1;
                return Err(ComputeError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    resource: QuotaResource::RegisteredKernels,
                });
            }
            while state.kernels.len() >= quotas.max_kernels {
                let oldest = state.kernels.pop_front().expect("len checked above");
                if let Some(cache) = cache {
                    cache.remove_key(&oldest.key);
                }
                state.evicted += 1;
            }
            state.kernels.push_back(KernelEntry { fingerprint, key });
            state.admitted += 1;
            Ok(())
        })
    }

    /// Forgets a registration and removes its program from the shared
    /// cache. Returns whether the fingerprint was registered.
    fn retire_kernel(
        &self,
        tenant: &TenantId,
        fingerprint: u64,
        cache: Option<&SharedProgramCache>,
    ) -> bool {
        self.with_state(tenant, |_, state| {
            let before = state.kernels.len();
            state.kernels.retain(|entry| {
                if entry.fingerprint == fingerprint {
                    if let Some(cache) = cache {
                        cache.remove_key(&entry.key);
                    }
                    false
                } else {
                    true
                }
            });
            let removed = (before - state.kernels.len()) as u64;
            state.evicted += removed;
            removed > 0
        })
    }

    /// Accounts resident data against the tenant's byte budget,
    /// FIFO-evicting the tenant's own oldest residents to make room. A
    /// single resident larger than the whole budget is refused.
    fn admit_resident(
        &self,
        tenant: &TenantId,
        resident: &ResidentInput,
        bytes: usize,
    ) -> Result<(), ComputeError> {
        self.with_state(tenant, |quotas, state| {
            if bytes > quotas.max_resident_bytes {
                state.rejected += 1;
                return Err(ComputeError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    resource: QuotaResource::ResidentBytes,
                });
            }
            while state.resident_bytes + bytes > quotas.max_resident_bytes {
                let (oldest, oldest_bytes) = state
                    .residents
                    .pop_front()
                    .expect("resident_bytes implies entries");
                oldest.evict();
                state.resident_bytes -= oldest_bytes;
                state.evicted += 1;
            }
            state.residents.push_back((resident.clone(), bytes));
            state.resident_bytes += bytes;
            Ok(())
        })
    }

    /// Point-in-time counters for every tenant, sorted by name.
    pub(crate) fn snapshot(&self) -> Vec<TenantCounters> {
        let inner = lock_recover(&self.inner);
        let mut rows: Vec<TenantCounters> = inner
            .iter()
            .map(|(tenant, state)| TenantCounters {
                tenant: tenant.to_string(),
                admitted: state.admitted,
                rejected: state.rejected,
                evicted: state.evicted,
                jobs: state.jobs,
                in_flight: state.in_flight,
            })
            .collect();
        rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        rows
    }
}

/// An RAII in-flight slot: rides the queued task and returns the slot to
/// the tenant on drop, so every outcome path — completion, failure,
/// deadline shed, cancellation drain, shutdown abort — releases exactly
/// once, and a transient-failure requeue (which moves the task rather
/// than re-admitting it) never double-counts.
pub(crate) struct TenantPermit {
    table: Arc<TenantTable>,
    tenant: TenantId,
}

impl Drop for TenantPermit {
    fn drop(&mut self) {
        self.table.release_job(&self.tenant);
    }
}

/// A successfully admitted dynamic kernel: the validated [`KernelSpec`]
/// plus its process-wide fingerprint (a hash of the shared-program-cache
/// key: generated source + driver limits + strictness). Submit jobs
/// against it exactly like a compiled-in spec — [`RegisteredKernel::job`]
/// tags them with the owning tenant so quotas apply.
#[derive(Clone)]
pub struct RegisteredKernel {
    tenant: TenantId,
    spec: Arc<KernelSpec>,
    fingerprint: u64,
}

impl RegisteredKernel {
    /// The owning tenant.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// The validated spec — usable with [`Job::new`] (untagged) or a
    /// direct in-context build for differential runs.
    pub fn spec(&self) -> &Arc<KernelSpec> {
        &self.spec
    }

    /// The registration fingerprint. Equal fingerprints denote the same
    /// generated source under the same limits and strictness, and share
    /// one linked program.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Starts a [`Job`] against this kernel, tagged with the owning
    /// tenant so [`TenantQuotas::max_in_flight`] applies at submit.
    pub fn job(&self) -> Job {
        Job::new(&self.spec).tenant(self.tenant.clone())
    }
}

impl std::fmt::Debug for RegisteredKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredKernel")
            .field("tenant", &self.tenant)
            .field("kernel", &self.spec.name())
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

/// The serving boundary for kernel **source**: validates, fingerprints
/// and quota-accounts tenant-submitted [`KernelSpec`]s. Obtained from
/// [`Engine::registry`]; handles are cheap to clone and share the
/// engine's tenant ledger and program cache.
///
/// ```
/// use gpes_core::serve::{Engine, KernelSpec};
///
/// # fn main() -> Result<(), gpes_core::ComputeError> {
/// let engine = Engine::builder().workers(1).build()?;
/// let registry = engine.registry();
/// let scale = registry.register(
///     "tenant-a",
///     KernelSpec::new("scale")
///         .input("x")
///         .uniform_f32("k", 3.0)
///         .output(4)
///         .body("return k * fetch_x(idx);"),
/// )?;
/// let handle = engine.submit(scale.job().data(vec![1.0, 2.0, 3.0, 4.0]))?;
/// assert_eq!(handle.wait()?, vec![3.0, 6.0, 9.0, 12.0]);
/// # engine.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct KernelRegistry {
    pub(crate) tenants: Arc<TenantTable>,
    pub(crate) cache: Option<Arc<SharedProgramCache>>,
    pub(crate) limits: Limits,
    /// Whether worker contexts link under strict (Appendix-A) drivers —
    /// part of the fingerprint. Admission *always* applies the strict
    /// checks regardless: source a low-end driver would reject is
    /// refused even when the serving simulator is permissive.
    pub(crate) strict: bool,
}

impl KernelRegistry {
    /// Overrides `tenant`'s quotas (tenants otherwise use the engine-wide
    /// default, [`EngineBuilder::tenant_quotas`]).
    pub fn set_quotas(&self, tenant: impl Into<TenantId>, quotas: TenantQuotas) {
        self.tenants.set_quotas(&tenant.into(), quotas);
    }

    /// Point-in-time per-tenant counters (also surfaced in
    /// [`EngineSnapshot::tenants`]).
    pub fn tenant_counters(&self) -> Vec<TenantCounters> {
        self.tenants.snapshot()
    }

    /// Admits tenant-submitted kernel source through the full pipeline —
    /// signature → parse → strict → sema → quota — and registers the
    /// fingerprinted result.
    ///
    /// # Errors
    ///
    /// [`ComputeError::AdmissionRejected`] (stage-tagged) for source that
    /// fails validation; [`ComputeError::QuotaExceeded`] for a tenant
    /// with a zero kernel budget. Rejections are charged to the tenant's
    /// counters and never panic, whatever bytes the source contains.
    pub fn register(
        &self,
        tenant: impl Into<TenantId>,
        spec: KernelSpec,
    ) -> Result<RegisteredKernel, ComputeError> {
        let tenant = tenant.into();
        let source = match self.admission_source(&spec) {
            Ok(source) => source,
            Err(error) => {
                self.tenants.note_rejected(&tenant);
                return Err(error);
            }
        };
        let vs = crate::geometry::passthrough_vertex_shader();
        let key: Arc<str> = Arc::from(program_key(&vs, &source, &self.limits, self.strict));
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let fingerprint = hasher.finish();
        self.tenants
            .admit_kernel(&tenant, fingerprint, key, self.cache.as_deref())?;
        Ok(RegisteredKernel {
            tenant,
            spec: Arc::new(spec),
            fingerprint,
        })
    }

    /// Runs the admission pipeline without registering — a dry run for
    /// callers that want to validate before accounting.
    ///
    /// # Errors
    ///
    /// [`ComputeError::AdmissionRejected`] exactly as
    /// [`KernelRegistry::register`]; no counters move.
    pub fn check(&self, spec: &KernelSpec) -> Result<(), ComputeError> {
        self.admission_source(spec).map(drop)
    }

    /// Signature-validates `spec`, generates the exact fragment source a
    /// worker will compile, and runs the GLSL admission pipeline on it.
    fn admission_source(&self, spec: &KernelSpec) -> Result<String, ComputeError> {
        let reject = |stage: AdmissionStage, message: String| ComputeError::AdmissionRejected {
            stage,
            message,
        };
        let shape = spec.output.ok_or_else(|| {
            reject(
                AdmissionStage::Signature,
                format!("kernel `{}` declares no output", spec.name),
            )
        })?;
        if spec.body.trim().is_empty() {
            return Err(reject(
                AdmissionStage::Signature,
                format!("kernel `{}` has an empty body", spec.name),
            ));
        }
        for (i, (name, _)) in spec.inputs.iter().enumerate() {
            if !is_valid_name(name) {
                return Err(reject(
                    AdmissionStage::Signature,
                    format!("input name `{name}` is not a valid GLSL identifier"),
                ));
            }
            if spec.inputs[..i].iter().any(|(other, _)| other == name) {
                return Err(reject(
                    AdmissionStage::Signature,
                    format!("duplicate input name `{name}`"),
                ));
            }
        }
        for (i, (name, _)) in spec.uniforms.iter().enumerate() {
            if !is_valid_name(name) {
                return Err(reject(
                    AdmissionStage::Signature,
                    format!("uniform name `{name}` is not a valid GLSL identifier"),
                ));
            }
            if spec.uniforms[..i].iter().any(|(other, _)| other == name) {
                return Err(reject(
                    AdmissionStage::Signature,
                    format!("duplicate uniform name `{name}`"),
                ));
            }
        }
        // Oversized outputs are a signature-stage refusal: the shape can
        // never resolve under the engine's driver limits.
        shape
            .resolve(self.limits.max_texture_size)
            .map_err(|e| reject(AdmissionStage::Signature, e.to_string()))?;
        let inputs: Vec<(&str, InputEncoding)> = spec
            .inputs
            .iter()
            .map(|(name, scalar)| (name.as_str(), InputEncoding::Scalar(*scalar)))
            .collect();
        let source = generate_fragment_source(
            PackBias::default(),
            FloatSpecials::default(),
            &inputs,
            &spec.uniforms,
            &spec.functions,
            OutputKind::Scalar(spec.output_scalar),
            &spec.body,
        );
        glsl_admission::admit(ShaderKind::Fragment, &source).map_err(|diag| {
            let stage = match diag.stage {
                glsl_admission::AdmissionStage::Parse => AdmissionStage::Parse,
                glsl_admission::AdmissionStage::Strict => AdmissionStage::Strict,
                glsl_admission::AdmissionStage::Sema => AdmissionStage::Sema,
            };
            reject(stage, diag.to_string())
        })?;
        Ok(source)
    }

    /// Retires a registration: forgets it and removes its program from
    /// the shared cache (workers that already adopted the program keep
    /// serving in-flight jobs; the cache just stops advertising it).
    /// Returns whether the fingerprint was still registered.
    pub fn retire(&self, kernel: &RegisteredKernel) -> bool {
        self.tenants
            .retire_kernel(&kernel.tenant, kernel.fingerprint, self.cache.as_deref())
    }

    /// Promotes tenant data to per-worker GPU residency under the
    /// tenant's byte budget, FIFO-evicting the tenant's own oldest
    /// residents to make room.
    ///
    /// # Errors
    ///
    /// [`ComputeError::QuotaExceeded`] when `data` alone exceeds
    /// [`TenantQuotas::max_resident_bytes`].
    pub fn register_resident(
        &self,
        tenant: impl Into<TenantId>,
        data: Vec<f32>,
    ) -> Result<ResidentInput, ComputeError> {
        self.register_resident_tensor(tenant, data)
    }

    /// [`KernelRegistry::register_resident`] for typed tensors: the byte
    /// budget meters the tensor's own element size, so quantized u8
    /// weights cost a quarter of their f32 equivalent.
    ///
    /// # Errors
    ///
    /// [`ComputeError::QuotaExceeded`] when `data` alone exceeds
    /// [`TenantQuotas::max_resident_bytes`].
    pub fn register_resident_tensor(
        &self,
        tenant: impl Into<TenantId>,
        data: impl Into<TensorData>,
    ) -> Result<ResidentInput, ComputeError> {
        let tenant = tenant.into();
        let data = data.into();
        let bytes = data.byte_len();
        let resident = ResidentInput::new_tensor(data);
        self.tenants.admit_resident(&tenant, &resident, bytes)?;
        Ok(resident)
    }
}
