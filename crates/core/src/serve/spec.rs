use super::*;

// ---- kernel specification ------------------------------------------------

/// A context-free description of a compute kernel: everything
/// [`crate::KernelBuilder`] needs, minus the textures, so the same spec
/// can be built (cheaply, through the program caches) on any worker
/// context. Specs are immutable once built; wrap them in [`Arc`] and
/// reuse them across jobs.
///
/// Inputs and the output each carry a [`ScalarType`] (default `F32`), so
/// quantized u8/i16 tensors are first-class: a typed spec samples its
/// inputs through the matching §IV codec and packs its output the same
/// way, and the serving layer moves those tensors without ever widening
/// to f32 on the host.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    pub(crate) name: String,
    pub(crate) inputs: Vec<(String, ScalarType)>,
    pub(crate) uniforms: Vec<(String, Value)>,
    pub(crate) output: Option<OutputShape>,
    pub(crate) output_scalar: ScalarType,
    pub(crate) body: String,
    pub(crate) functions: String,
}

impl KernelSpec {
    /// Starts a spec for a kernel named `name`.
    pub fn new(name: impl Into<String>) -> KernelSpec {
        KernelSpec {
            name: name.into(),
            inputs: Vec::new(),
            uniforms: Vec::new(),
            output: None,
            output_scalar: ScalarType::F32,
            body: String::new(),
            functions: String::new(),
        }
    }

    /// Declares an `f32` array input; jobs supply its data positionally,
    /// in declaration order.
    pub fn input(self, name: impl Into<String>) -> Self {
        self.input_typed(name, ScalarType::F32)
    }

    /// Declares an array input of an explicit scalar type — how quantized
    /// tensors enter a kernel. Jobs must supply data of exactly this type
    /// ([`Job::tensor`] / [`PipelineJob::source_tensor`]).
    pub fn input_typed(mut self, name: impl Into<String>, scalar: ScalarType) -> Self {
        self.inputs.push((name.into(), scalar));
        self
    }

    /// Declares a uniform with a default value.
    pub fn uniform(mut self, name: impl Into<String>, value: Value) -> Self {
        self.uniforms.push((name.into(), value));
        self
    }

    /// Declares a `uniform float` with a default value.
    pub fn uniform_f32(self, name: impl Into<String>, value: f32) -> Self {
        self.uniform(name, Value::Float(value))
    }

    /// Declares the linear output length (`f32` output).
    pub fn output(mut self, len: usize) -> Self {
        self.output = Some(OutputShape::Linear(len));
        self
    }

    /// Declares a `rows × cols` output grid (`f32` output).
    pub fn output_grid(mut self, rows: u32, cols: u32) -> Self {
        self.output = Some(OutputShape::Grid { rows, cols });
        self
    }

    /// Declares a linear output of `len` elements packed as `scalar` —
    /// the kernel's scalar return is encoded through the matching §IV
    /// codec, so downstream passes and readbacks see that type.
    pub fn output_typed(mut self, scalar: ScalarType, len: usize) -> Self {
        self.output = Some(OutputShape::Linear(len));
        self.output_scalar = scalar;
        self
    }

    /// Declares a `rows × cols` output grid packed as `scalar`.
    pub fn output_grid_typed(mut self, scalar: ScalarType, rows: u32, cols: u32) -> Self {
        self.output = Some(OutputShape::Grid { rows, cols });
        self.output_scalar = scalar;
        self
    }

    /// The kernel body (contents of `float kernel(idx, row, col)`).
    pub fn body(mut self, body: impl Into<String>) -> Self {
        self.body = body.into();
        self
    }

    /// Extra GLSL helper functions available to the body.
    pub fn functions(mut self, source: impl Into<String>) -> Self {
        self.functions = source.into();
        self
    }

    /// The declared input names, in positional order.
    pub fn input_names(&self) -> impl Iterator<Item = &str> {
        self.inputs.iter().map(|(n, _)| n.as_str())
    }

    /// The declared `(name, scalar)` input pairs, in positional order.
    pub fn input_types(&self) -> &[(String, ScalarType)] {
        &self.inputs
    }

    /// The scalar type the kernel's output is packed as.
    pub fn output_scalar(&self) -> ScalarType {
        self.output_scalar
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether every input and the output are `f32` — the only shape the
    /// (f32-wired) [`Submission`] DAG path accepts.
    pub(crate) fn is_all_f32(&self) -> bool {
        self.output_scalar == ScalarType::F32
            && self.inputs.iter().all(|(_, s)| *s == ScalarType::F32)
    }

    /// Builds the kernel against `arrays` (parallel to the declared
    /// inputs) on `cc` — a program-cache hit everywhere but the first
    /// build of this spec in the process (shared cache) or context.
    /// Public so direct (non-engine) dispatch of a spec generates the
    /// byte-identical program an engine worker runs — the differential
    /// tests and the `a10` ablation rely on it.
    ///
    /// # Errors
    ///
    /// Spec/kernel validation and compile errors, as
    /// [`crate::KernelBuilder::build`].
    pub fn build(
        &self,
        cc: &mut ComputeContext,
        arrays: &[GpuArray<f32>],
    ) -> Result<Kernel, ComputeError> {
        let erased: Vec<AnyGpuArray> = arrays.iter().map(|a| a.erase()).collect();
        self.build_any(cc, &erased)
    }

    /// [`KernelSpec::build`] over type-erased arrays: each array's runtime
    /// scalar tag must equal the declared input scalar, so a quantized
    /// kernel can never silently sample its bytes through the wrong
    /// codec.
    ///
    /// # Errors
    ///
    /// Arity or scalar mismatches against the declaration, plus
    /// spec/kernel validation and compile errors as
    /// [`crate::KernelBuilder::build`].
    pub fn build_any(
        &self,
        cc: &mut ComputeContext,
        arrays: &[AnyGpuArray],
    ) -> Result<Kernel, ComputeError> {
        if arrays.len() != self.inputs.len() {
            return Err(bad_job(format!(
                "kernel spec `{}` declares {} inputs, got {} arrays",
                self.name,
                self.inputs.len(),
                arrays.len()
            )));
        }
        let shape = self
            .output
            .ok_or_else(|| bad_job(format!("kernel spec `{}` declares no output", self.name)))?;
        let mut b = Kernel::builder(self.name.clone());
        for ((name, scalar), array) in self.inputs.iter().zip(arrays) {
            if array.scalar() != *scalar {
                return Err(bad_job(format!(
                    "input `{name}` of kernel spec `{}` is declared {scalar:?}, got a \
                     {:?} array",
                    self.name,
                    array.scalar()
                )));
            }
            b = b.input_any(name, array);
        }
        for (name, value) in &self.uniforms {
            b = b.uniform(name, value.clone());
        }
        if !self.functions.is_empty() {
            b = b.functions(self.functions.clone());
        }
        b = match shape {
            OutputShape::Linear(len) => b.output(self.output_scalar, len),
            OutputShape::Grid { rows, cols } => b.output_grid(self.output_scalar, rows, cols),
        };
        b.body(self.body.clone()).build(cc)
    }
}

pub(crate) fn bad_job(message: String) -> ComputeError {
    ComputeError::BadKernel { message }
}

// ---- resident inputs -----------------------------------------------------

/// Process-unique ids for [`ResidentInput`]s (and spec-hash closure
/// tokens); never reused, so a stale worker cache entry can never alias a
/// new handle.
pub(crate) static NEXT_UNIQUE_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_unique_id() -> u64 {
    NEXT_UNIQUE_ID.fetch_add(1, Ordering::Relaxed)
}

pub(crate) struct ResidentInner {
    pub(crate) id: u64,
    pub(crate) data: TensorData,
    pub(crate) evicted: AtomicBool,
}

/// Host data promoted to **per-worker GPU residency**: the first job on
/// each worker that references the handle uploads it, every later job on
/// that worker — kernel, DAG step or pipeline source — binds the
/// already-uploaded texture. The serving analog of model weights: pay the
/// host→GPU transfer once per worker, not once per request.
///
/// Cloning the handle is cheap (it is `Arc`-backed) and refers to the
/// same residency. [`ResidentInput::evict`] retires the handle
/// everywhere: workers drop their textures and any job still referencing
/// it fails with a validation error instead of silently re-uploading.
/// Workers additionally bound how many residencies they hold; entries
/// past the cap are evicted oldest-first (transparently re-uploaded on
/// next use) with the eviction counted in [`ResidentStats`].
#[derive(Clone)]
pub struct ResidentInput {
    pub(crate) inner: Arc<ResidentInner>,
}

impl ResidentInput {
    /// Wraps `f32` host data for per-worker GPU residency.
    pub fn new(data: Vec<f32>) -> ResidentInput {
        ResidentInput::new_tensor(data)
    }

    /// Wraps typed host data — quantized weights stay u8/i16 on the GPU,
    /// the TFLite-delegate trick without the f32 widening.
    pub fn new_tensor(data: impl Into<TensorData>) -> ResidentInput {
        ResidentInput {
            inner: Arc::new(ResidentInner {
                id: next_unique_id(),
                data: data.into(),
                evicted: AtomicBool::new(false),
            }),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.data.len()
    }

    /// The runtime scalar tag of the resident data.
    pub fn scalar(&self) -> ScalarType {
        self.inner.data.scalar()
    }

    /// Whether the input is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.data.is_empty()
    }

    /// Retires the residency everywhere: each worker recycles its
    /// uploaded texture at its next task boundary, and any subsequent job
    /// referencing this handle fails validation. Irreversible — re-upload
    /// under a fresh handle instead.
    pub fn evict(&self) {
        self.inner.evicted.store(true, Ordering::Release);
    }

    /// Whether [`ResidentInput::evict`] has been called.
    pub fn is_evicted(&self) -> bool {
        self.inner.evicted.load(Ordering::Acquire)
    }

    fn check_live(&self, what: &str) -> Result<(), ComputeError> {
        if self.is_evicted() {
            return Err(bad_job(format!(
                "{what} references an evicted ResidentInput (id {})",
                self.inner.id
            )));
        }
        Ok(())
    }
}

impl std::fmt::Debug for ResidentInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentInput")
            .field("id", &self.inner.id)
            .field("len", &self.inner.data.len())
            .field("evicted", &self.is_evicted())
            .finish()
    }
}

/// Per-worker residency counters — the [`ContextStats`]-style accounting
/// for [`ResidentInput`] textures. In steady state (every referenced
/// residency within the per-worker cap) `uploads` freezes and every
/// access is a hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidentStats {
    /// Host→GPU uploads performed for resident inputs (first use per
    /// worker, or re-upload after a capacity eviction).
    pub uploads: u64,
    /// Accesses served from the worker's resident textures.
    pub hits: u64,
    /// Entries dropped — capacity evictions plus retired handles noticed.
    pub evictions: u64,
    /// Entries currently held by the worker.
    pub resident_textures: u64,
}

impl ResidentStats {
    pub(crate) fn merged(&self, other: &ResidentStats) -> ResidentStats {
        ResidentStats {
            uploads: self.uploads + other.uploads,
            hits: self.hits + other.hits,
            evictions: self.evictions + other.evictions,
            // Current occupancy, not a lifetime total: the live state wins.
            resident_textures: other.resident_textures,
        }
    }
}

/// One input of a [`Job`] or [`PipelineJob`]: fresh host data uploaded
/// when the job runs (and recycled after), or a reference to a
/// per-worker [`ResidentInput`].
#[derive(Debug, Clone)]
pub enum JobInput {
    /// `f32` host data uploaded per request. `Arc`-held so fan-out jobs
    /// share one buffer without copying.
    Data(Arc<Vec<f32>>),
    /// Typed host data uploaded per request — quantized u8/i16 tensors
    /// travel as themselves, no f32 widening at the host boundary.
    Tensor(Arc<TensorData>),
    /// An input resident on the worker across requests.
    Resident(ResidentInput),
}

impl JobInput {
    fn len(&self) -> usize {
        match self {
            JobInput::Data(d) => d.len(),
            JobInput::Tensor(t) => t.len(),
            JobInput::Resident(r) => r.len(),
        }
    }

    fn scalar(&self) -> ScalarType {
        match self {
            JobInput::Data(_) => ScalarType::F32,
            JobInput::Tensor(t) => t.scalar(),
            JobInput::Resident(r) => r.scalar(),
        }
    }

    fn check_live(&self, what: &str) -> Result<(), ComputeError> {
        match self {
            JobInput::Data(_) | JobInput::Tensor(_) => Ok(()),
            JobInput::Resident(r) => r.check_live(what),
        }
    }
}

// ---- jobs and submissions ------------------------------------------------

/// One input of a [`Submission`] step: fresh host data, the on-GPU
/// output of an earlier step in the same submission, or a per-worker
/// resident input.
#[derive(Debug, Clone)]
pub enum StepInput {
    /// Host data uploaded when the step runs. `Arc`-held so fan-out
    /// submissions can share one buffer without copying.
    Data(Arc<Vec<f32>>),
    /// The output array of step `i` (must precede this step); it stays on
    /// the GPU — no readback/re-upload between steps. Prefer wiring
    /// through a [`StepHandle`] (`handle.into()`) over raw indices.
    Step(usize),
    /// An input resident on the worker across requests.
    Resident(ResidentInput),
}

/// A typed reference to a step appended to a [`Submission`] — returned by
/// [`Submission::step`] so DAG wiring never hand-counts indices: pass it
/// to later steps via `handle.into()` ([`StepInput`]) and to
/// [`Submission::read`] / [`BatchResult::output`] directly. Handles are
/// only meaningful for the submission that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepHandle(usize);

impl StepHandle {
    /// The raw step index (escape hatch for manual wiring).
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<StepHandle> for StepInput {
    fn from(handle: StepHandle) -> StepInput {
        StepInput::Step(handle.0)
    }
}

/// A single kernel dispatch: spec + positional input data + optional
/// dispatch-time uniform overrides. Result type: `Vec<f32>`.
#[derive(Debug, Clone)]
pub struct Job {
    pub(crate) kernel: Arc<KernelSpec>,
    pub(crate) inputs: Vec<JobInput>,
    pub(crate) uniforms: Vec<(String, Value)>,
    pub(crate) deadline: Option<Instant>,
    pub(crate) retry: Option<RetryPolicy>,
    pub(crate) tenant: Option<TenantId>,
}

impl Job {
    /// Starts a job running `kernel`.
    pub fn new(kernel: &Arc<KernelSpec>) -> Job {
        Job {
            kernel: Arc::clone(kernel),
            inputs: Vec::new(),
            uniforms: Vec::new(),
            deadline: None,
            retry: None,
            tenant: None,
        }
    }

    /// Tags the job with a tenant, making [`TenantQuotas::max_in_flight`]
    /// apply at submit time and counting the job in the tenant's
    /// [`TenantCounters`]. [`RegisteredKernel::job`] applies this
    /// automatically.
    pub fn tenant(mut self, tenant: impl Into<TenantId>) -> Job {
        self.tenant = Some(tenant.into());
        self
    }

    /// Overrides the engine's [`RetryPolicy`] for this job only (e.g.
    /// [`RetryPolicy::none`] for work that must not run twice).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Job {
        self.retry = Some(policy);
        self
    }

    /// Sets an absolute deadline: if no worker has dequeued the job by
    /// `at`, it is shed with [`ComputeError::DeadlineExceeded`] before
    /// any GPU work happens.
    pub fn deadline(mut self, at: Instant) -> Job {
        self.deadline = Some(at);
        self
    }

    /// [`Job::deadline`] relative to now.
    pub fn timeout(self, after: Duration) -> Job {
        let at = Instant::now() + after;
        self.deadline(at)
    }

    /// Appends `f32` host data for the next declared input.
    pub fn data(mut self, data: Vec<f32>) -> Job {
        self.inputs.push(JobInput::Data(Arc::new(data)));
        self
    }

    /// Appends shared `f32` host data for the next declared input.
    pub fn data_shared(mut self, data: &Arc<Vec<f32>>) -> Job {
        self.inputs.push(JobInput::Data(Arc::clone(data)));
        self
    }

    /// Appends typed host data for the next declared input — must match
    /// the scalar the spec declared with [`KernelSpec::input_typed`].
    pub fn tensor(mut self, data: impl Into<TensorData>) -> Job {
        self.inputs.push(JobInput::Tensor(Arc::new(data.into())));
        self
    }

    /// Appends shared typed host data for the next declared input.
    pub fn tensor_shared(mut self, data: &Arc<TensorData>) -> Job {
        self.inputs.push(JobInput::Tensor(Arc::clone(data)));
        self
    }

    /// Binds a per-worker [`ResidentInput`] to the next declared input —
    /// no upload happens on workers that already hold it.
    pub fn resident(mut self, input: &ResidentInput) -> Job {
        self.inputs.push(JobInput::Resident(input.clone()));
        self
    }

    /// Overrides a uniform for this dispatch only.
    pub fn uniform(mut self, name: impl Into<String>, value: Value) -> Job {
        self.uniforms.push((name.into(), value));
        self
    }

    /// Overrides a `float` uniform for this dispatch only.
    pub fn uniform_f32(self, name: impl Into<String>, value: f32) -> Job {
        self.uniform(name, Value::Float(value))
    }

    pub(crate) fn validate(&self) -> Result<(), ComputeError> {
        if self.inputs.len() != self.kernel.inputs.len() {
            return Err(bad_job(format!(
                "job for `{}` supplies {} inputs, spec declares {}",
                self.kernel.name,
                self.inputs.len(),
                self.kernel.inputs.len()
            )));
        }
        for ((name, scalar), input) in self.kernel.inputs.iter().zip(&self.inputs) {
            input.check_live(&format!("job for `{}`", self.kernel.name))?;
            if input.scalar() != *scalar {
                return Err(bad_job(format!(
                    "input `{name}` of job for `{}` is declared {scalar:?}, supplied \
                     {:?} data",
                    self.kernel.name,
                    input.scalar()
                )));
            }
        }
        Ok(())
    }
}

pub(crate) struct Step {
    pub(crate) kernel: Arc<KernelSpec>,
    pub(crate) inputs: Vec<StepInput>,
    pub(crate) uniforms: Vec<(String, Value)>,
}

/// A batched multi-kernel DAG: several dispatches submitted as one unit,
/// executed back-to-back on a single worker. Later steps read earlier
/// steps' outputs directly from GPU memory ([`StepInput::Step`]), so a
/// k-kernel chain costs one queue round-trip instead of k, and no
/// intermediate ever crosses the host boundary.
#[derive(Default)]
pub struct Submission {
    pub(crate) steps: Vec<Step>,
    pub(crate) read: Vec<usize>,
    pub(crate) deadline: Option<Instant>,
    pub(crate) retry: Option<RetryPolicy>,
    pub(crate) tenant: Option<TenantId>,
}

impl Submission {
    /// An empty submission.
    pub fn new() -> Submission {
        Submission::default()
    }

    /// Sets an absolute deadline: if no worker has dequeued the
    /// submission by `at`, it is shed with
    /// [`ComputeError::DeadlineExceeded`] before any GPU work happens.
    pub fn deadline(&mut self, at: Instant) {
        self.deadline = Some(at);
    }

    /// [`Submission::deadline`] relative to now.
    pub fn timeout(&mut self, after: Duration) {
        self.deadline = Some(Instant::now() + after);
    }

    /// Overrides the engine's [`RetryPolicy`] for this submission only.
    pub fn retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Tags the submission with a tenant, making
    /// [`TenantQuotas::max_in_flight`] apply at submit time and counting
    /// it in the tenant's [`TenantCounters`].
    pub fn tenant(&mut self, tenant: impl Into<TenantId>) {
        self.tenant = Some(tenant.into());
    }

    /// Appends a step and returns its [`StepHandle`] — later steps wire
    /// to it with `handle.into()`, readbacks with
    /// [`Submission::read`]`(handle)`, so no index is ever hand-counted.
    pub fn step(
        &mut self,
        kernel: &Arc<KernelSpec>,
        inputs: Vec<StepInput>,
        uniforms: Vec<(String, Value)>,
    ) -> StepHandle {
        self.steps.push(Step {
            kernel: Arc::clone(kernel),
            inputs,
            uniforms,
        });
        StepHandle(self.steps.len() - 1)
    }

    /// Marks a step for readback; its result appears in the
    /// [`BatchResult`]. When no step is marked, the final step is read.
    pub fn read(&mut self, step: StepHandle) {
        if !self.read.contains(&step.0) {
            self.read.push(step.0);
        }
    }

    /// Number of steps queued so far.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the submission has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    pub(crate) fn validate(&self) -> Result<(), ComputeError> {
        if self.steps.is_empty() {
            return Err(bad_job("submission has no steps".into()));
        }
        for (i, step) in self.steps.iter().enumerate() {
            if step.inputs.len() != step.kernel.inputs.len() {
                return Err(bad_job(format!(
                    "step {i} (`{}`) supplies {} inputs, spec declares {}",
                    step.kernel.name,
                    step.inputs.len(),
                    step.kernel.inputs.len()
                )));
            }
            // The DAG path moves Vec<f32> end to end; typed tensor chains
            // are what PipelineSpec is for.
            if !step.kernel.is_all_f32() {
                return Err(bad_job(format!(
                    "step {i} (`{}`) declares typed tensors; submissions are f32-only — \
                     express quantized chains as a PipelineSpec",
                    step.kernel.name
                )));
            }
            for input in &step.inputs {
                match input {
                    StepInput::Step(j) => {
                        if *j >= i {
                            return Err(bad_job(format!(
                                "step {i} reads step {j}: steps may only read earlier steps"
                            )));
                        }
                    }
                    StepInput::Resident(r) => {
                        r.check_live(&format!("step {i} (`{}`)", step.kernel.name))?;
                        if r.scalar() != ScalarType::F32 {
                            return Err(bad_job(format!(
                                "step {i} (`{}`) binds a {:?} resident input; submissions \
                                 are f32-only",
                                step.kernel.name,
                                r.scalar()
                            )));
                        }
                    }
                    StepInput::Data(_) => {}
                }
            }
        }
        for &r in &self.read {
            if r >= self.steps.len() {
                return Err(bad_job(format!("readback of nonexistent step {r}")));
            }
        }
        Ok(())
    }
}

/// Results of a [`Submission`]: one `Vec<f32>` per step marked for
/// readback (`None` for unread steps).
#[derive(Debug, Clone)]
pub struct BatchResult {
    pub(crate) outputs: Vec<Option<Vec<f32>>>,
}

impl BatchResult {
    /// The readback of a step, if it was marked with
    /// [`Submission::read`].
    pub fn output(&self, step: StepHandle) -> Option<&[f32]> {
        self.outputs.get(step.0).and_then(|o| o.as_deref())
    }

    /// Consumes the result into per-step optional outputs.
    pub fn into_outputs(self) -> Vec<Option<Vec<f32>>> {
        self.outputs
    }
}

// ---- pipeline specs ------------------------------------------------------

pub(crate) type SharedShapeFn = Arc<dyn Fn(usize) -> OutputShape + Send + Sync>;
pub(crate) type SharedUniformFn = Arc<dyn Fn(usize) -> Value + Send + Sync>;
pub(crate) type SharedUntilFn = Arc<dyn Fn(usize) -> bool + Send + Sync>;

/// Default iteration cap applied to `until`-driven [`PipelineSpec`]s that
/// set no explicit cap: a serving engine must never run a convergence
/// loop open-ended on a worker, so cap exhaustion surfaces as
/// [`ComputeError::IterationCap`] on the job handle instead of a hang.
pub const DEFAULT_SERVE_ITERATION_CAP: usize = 65_536;

/// How a [`PipelineSpec`] source is shaped (and therefore uploaded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SourceShape {
    /// Linear array; `Some(len)` additionally pins the expected length.
    Linear(Option<usize>),
    /// Row-major `rows × cols` matrix.
    Grid { rows: u32, cols: u32 },
}

#[derive(Debug, Clone)]
pub(crate) struct SourceDecl {
    pub(crate) name: String,
    pub(crate) shape: SourceShape,
    pub(crate) scalar: ScalarType,
}

/// One declared pass of a [`PipelineSpec`]: a context-free kernel plus
/// buffer wiring and per-iteration overrides — the [`Pass`] builder with
/// every context-bound piece removed. Unlike [`Pass`], **every** kernel
/// input must be wired to a pipeline buffer with [`PassSpec::read`]: a
/// spec has no build-time textures to fall back on.
#[derive(Clone)]
pub struct PassSpec {
    pub(crate) kernel: Arc<KernelSpec>,
    pub(crate) reads: Vec<(String, String)>,
    pub(crate) write: Option<(String, OutputShape)>,
    pub(crate) output_fn: Option<SharedShapeFn>,
    pub(crate) uniforms: Vec<(String, Value)>,
    pub(crate) uniform_fns: Vec<(String, SharedUniformFn)>,
}

impl PassSpec {
    /// Starts a pass around a kernel spec.
    pub fn new(kernel: &Arc<KernelSpec>) -> PassSpec {
        PassSpec {
            kernel: Arc::clone(kernel),
            reads: Vec::new(),
            write: None,
            output_fn: None,
            uniforms: Vec::new(),
            uniform_fns: Vec::new(),
        }
    }

    /// Feeds kernel input `input` from pipeline buffer `buffer`.
    pub fn read(mut self, input: &str, buffer: &str) -> Self {
        self.reads.push((input.to_owned(), buffer.to_owned()));
        self
    }

    /// Writes the pass output into buffer `buffer` with a fixed shape.
    pub fn write(mut self, buffer: &str, shape: OutputShape) -> Self {
        self.write = Some((buffer.to_owned(), shape));
        self
    }

    /// [`PassSpec::write`] with a linear output of `len` elements.
    pub fn write_len(self, buffer: &str, len: usize) -> Self {
        self.write(buffer, OutputShape::Linear(len))
    }

    /// [`PassSpec::write`] with a `rows × cols` grid output.
    pub fn write_grid(self, buffer: &str, rows: u32, cols: u32) -> Self {
        self.write(buffer, OutputShape::Grid { rows, cols })
    }

    /// Makes the output shape a function of the iteration index (the
    /// reduction-tree case). `Send + Sync` because the spec crosses into
    /// worker threads.
    pub fn output_per_iter(
        mut self,
        f: impl Fn(usize) -> OutputShape + Send + Sync + 'static,
    ) -> Self {
        self.output_fn = Some(Arc::new(f));
        self
    }

    /// Overrides a declared uniform with a fixed value for this pass.
    pub fn uniform(mut self, name: &str, value: Value) -> Self {
        self.uniforms.push((name.to_owned(), value));
        self
    }

    /// Overrides a declared uniform per iteration (FFT stage widths,
    /// reduction `n_live`, …).
    pub fn uniform_per_iter(
        mut self,
        name: &str,
        f: impl Fn(usize) -> Value + Send + Sync + 'static,
    ) -> Self {
        self.uniform_fns.push((name.to_owned(), Arc::new(f)));
        self
    }
}

impl std::fmt::Debug for PassSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassSpec")
            .field("kernel", &self.kernel.name)
            .field("reads", &self.reads)
            .field("write", &self.write)
            .field("dynamic_output", &self.output_fn.is_some())
            .field("uniforms", &self.uniforms)
            .field(
                "per_iter_uniforms",
                &self
                    .uniform_fns
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Builder for [`PipelineSpec`]s; see [`PipelineSpec::builder`].
pub struct PipelineSpecBuilder {
    name: String,
    sources: Vec<SourceDecl>,
    passes: Vec<PassSpec>,
    iterations: Option<usize>,
    iteration_cap: Option<usize>,
    until: Option<SharedUntilFn>,
    ping_pongs: Vec<(String, String)>,
}

impl PipelineSpecBuilder {
    /// Declares a linear `f32` source buffer; jobs supply its data
    /// positionally, in declaration order.
    pub fn source(self, name: &str) -> Self {
        self.source_typed(name, ScalarType::F32)
    }

    /// Declares a linear source buffer of an explicit scalar type — jobs
    /// must seed it with matching [`TensorData`].
    pub fn source_typed(mut self, name: &str, scalar: ScalarType) -> Self {
        self.sources.push(SourceDecl {
            name: name.to_owned(),
            shape: SourceShape::Linear(None),
            scalar,
        });
        self
    }

    /// Declares a linear `f32` source buffer of exactly `len` elements
    /// (validated against each job's data).
    pub fn source_len(self, name: &str, len: usize) -> Self {
        self.source_len_typed(name, ScalarType::F32, len)
    }

    /// Declares a typed linear source buffer of exactly `len` elements.
    pub fn source_len_typed(mut self, name: &str, scalar: ScalarType, len: usize) -> Self {
        self.sources.push(SourceDecl {
            name: name.to_owned(),
            shape: SourceShape::Linear(Some(len)),
            scalar,
        });
        self
    }

    /// Declares a row-major `rows × cols` `f32` matrix source buffer.
    pub fn source_grid(self, name: &str, rows: u32, cols: u32) -> Self {
        self.source_grid_typed(name, ScalarType::F32, rows, cols)
    }

    /// Declares a typed row-major `rows × cols` matrix source buffer —
    /// how a quantized image enters a CNN pipeline.
    pub fn source_grid_typed(
        mut self,
        name: &str,
        scalar: ScalarType,
        rows: u32,
        cols: u32,
    ) -> Self {
        self.sources.push(SourceDecl {
            name: name.to_owned(),
            shape: SourceShape::Grid { rows, cols },
            scalar,
        });
        self
    }

    /// Appends a pass; passes execute in declaration order each iteration.
    pub fn pass(mut self, pass: PassSpec) -> Self {
        self.passes.push(pass);
        self
    }

    /// Runs the dag a fixed number of iterations (default 1).
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Caps an `until`-driven loop, turning cap exhaustion into
    /// [`ComputeError::IterationCap`] on the job handle. Defaults to
    /// [`DEFAULT_SERVE_ITERATION_CAP`] when an `until` predicate is set
    /// without a fixed iteration count.
    pub fn iteration_cap(mut self, cap: usize) -> Self {
        self.iteration_cap = Some(cap.max(1));
        self
    }

    /// Runs the dag until `stop(completed_iterations)` returns `true`
    /// (checked after each iteration).
    pub fn until(mut self, stop: impl Fn(usize) -> bool + Send + Sync + 'static) -> Self {
        self.until = Some(Arc::new(stop));
        self
    }

    /// Swaps buffers `front` and `back` after every iteration (the FFT's
    /// explicit double-buffer pair).
    pub fn ping_pong(mut self, front: &str, back: &str) -> Self {
        self.ping_pongs.push((front.to_owned(), back.to_owned()));
        self
    }

    /// Validates the wiring — context-free, so a malformed spec is
    /// rejected on the caller's thread, not on a worker — and seals the
    /// spec with its cache fingerprint.
    ///
    /// # Errors
    ///
    /// [`ComputeError::BadKernel`] for empty dags, duplicate sources,
    /// passes without a write, unwired kernel inputs, reads of buffers
    /// before their first write, unknown or type-mismatched uniform
    /// overrides, and unknown ping-pong names.
    pub fn build(self) -> Result<PipelineSpec, ComputeError> {
        if self.passes.is_empty() {
            return Err(bad_job(format!(
                "pipeline spec `{}` declares no passes",
                self.name
            )));
        }
        let mut buffers: HashSet<&str> = HashSet::new();
        // Every buffer carries one scalar type for the pipeline's whole
        // life: sources fix theirs at declaration, written buffers take
        // the writing kernel's output scalar, and every read/rewrite must
        // agree — so a u8 activation can never be sampled as f32.
        let mut scalars: HashMap<&str, ScalarType> = HashMap::new();
        for decl in &self.sources {
            if !buffers.insert(&decl.name) {
                return Err(bad_job(format!(
                    "pipeline spec `{}` declares source `{}` twice",
                    self.name, decl.name
                )));
            }
            scalars.insert(&decl.name, decl.scalar);
        }
        // A read must be satisfiable on the FIRST iteration, exactly as
        // in `PipelineBuilder::build`.
        let mut available: HashSet<&str> = self.sources.iter().map(|d| d.name.as_str()).collect();
        for pass in &self.passes {
            let kernel = &pass.kernel;
            let (write_name, _) = pass.write.as_ref().ok_or_else(|| {
                bad_job(format!(
                    "pass `{}` of pipeline spec `{}` writes no buffer",
                    kernel.name, self.name
                ))
            })?;
            if kernel.output.is_none() {
                return Err(bad_job(format!(
                    "kernel spec `{}` (pass of `{}`) declares no output",
                    kernel.name, self.name
                )));
            }
            for (input, _) in &kernel.inputs {
                let mapped = pass.reads.iter().filter(|(i, _)| i == input).count();
                if mapped != 1 {
                    return Err(bad_job(format!(
                        "input `{input}` of pass `{}` in pipeline spec `{}` has {mapped} \
                         read mappings; a spec pass must wire every input exactly once",
                        kernel.name, self.name
                    )));
                }
            }
            for (input, buffer) in &pass.reads {
                let Some((_, want)) = kernel.inputs.iter().find(|(n, _)| n == input) else {
                    return Err(bad_job(format!(
                        "kernel spec `{}` declares no input `{input}`",
                        kernel.name
                    )));
                };
                if !available.contains(buffer.as_str()) {
                    return Err(bad_job(format!(
                        "pass `{}` reads buffer `{buffer}` before its first write",
                        kernel.name
                    )));
                }
                if let Some(have) = scalars.get(buffer.as_str()) {
                    if have != want {
                        return Err(bad_job(format!(
                            "input `{input}` of pass `{}` in pipeline spec `{}` is declared \
                             {want:?}, but buffer `{buffer}` holds {have:?}",
                            kernel.name, self.name
                        )));
                    }
                }
            }
            for (name, value) in &pass.uniforms {
                check_spec_uniform(kernel, name, Some(value))?;
            }
            for (name, _) in &pass.uniform_fns {
                check_spec_uniform(kernel, name, None)?;
            }
            if let Some(have) = scalars.get(write_name.as_str()) {
                if *have != kernel.output_scalar {
                    return Err(bad_job(format!(
                        "pass `{}` writes {:?} into buffer `{write_name}` of pipeline spec \
                         `{}`, which holds {have:?}; a buffer keeps one scalar type",
                        kernel.name, kernel.output_scalar, self.name
                    )));
                }
            }
            scalars.insert(write_name, kernel.output_scalar);
            buffers.insert(write_name);
            available.insert(write_name);
        }
        for (front, back) in &self.ping_pongs {
            for name in [front, back] {
                if !buffers.contains(name.as_str()) {
                    return Err(bad_job(format!(
                        "ping-pong names unknown buffer `{name}` in pipeline spec `{}`",
                        self.name
                    )));
                }
            }
            if scalars.get(front.as_str()) != scalars.get(back.as_str()) {
                return Err(bad_job(format!(
                    "ping-pong pair `{front}`/`{back}` of pipeline spec `{}` mixes scalar \
                     types ({:?} vs {:?})",
                    self.name,
                    scalars.get(front.as_str()),
                    scalars.get(back.as_str())
                )));
            }
        }
        let iteration_cap = match (self.iteration_cap, &self.until, self.iterations) {
            (Some(cap), _, _) => Some(cap),
            (None, Some(_), None) => Some(DEFAULT_SERVE_ITERATION_CAP),
            _ => None,
        };
        let fingerprint = spec_fingerprint(&self);
        Ok(PipelineSpec {
            name: self.name,
            sources: self.sources,
            passes: self.passes,
            iterations: self.iterations,
            iteration_cap,
            until: self.until,
            ping_pongs: self.ping_pongs,
            fingerprint,
        })
    }
}

pub(crate) fn check_spec_uniform(
    kernel: &KernelSpec,
    name: &str,
    value: Option<&Value>,
) -> Result<(), ComputeError> {
    let decl = kernel
        .uniforms
        .iter()
        .find(|(n, _)| n == name)
        .ok_or_else(|| {
            bad_job(format!(
                "kernel spec `{}` declares no uniform `{name}`",
                kernel.name
            ))
        })?;
    if let Some(v) = value {
        if std::mem::discriminant(&decl.1) != std::mem::discriminant(v) {
            return Err(bad_job(format!(
                "uniform `{name}` of kernel spec `{}` is {}, bound {}",
                kernel.name,
                decl.1.ty(),
                v.ty()
            )));
        }
    }
    Ok(())
}

/// Computes the per-worker cache key for a spec: a structural hash of
/// everything serialisable, with every closure (per-iteration uniform,
/// dynamic output shape, `until` predicate) contributing a process-unique
/// token instead — two structurally identical closure-free specs share a
/// cached pipeline, while closure-bearing specs never alias.
pub(crate) fn spec_fingerprint(b: &PipelineSpecBuilder) -> u64 {
    let mut h = DefaultHasher::new();
    b.name.hash(&mut h);
    for decl in &b.sources {
        decl.name.hash(&mut h);
        format!("{:?}", decl.shape).hash(&mut h);
        decl.scalar.hash(&mut h);
    }
    for pass in &b.passes {
        let k = &pass.kernel;
        k.name.hash(&mut h);
        k.inputs.hash(&mut h);
        for (name, value) in &k.uniforms {
            name.hash(&mut h);
            format!("{value:?}").hash(&mut h);
        }
        format!("{:?}", k.output).hash(&mut h);
        k.output_scalar.hash(&mut h);
        k.body.hash(&mut h);
        k.functions.hash(&mut h);
        pass.reads.hash(&mut h);
        format!("{:?}", pass.write).hash(&mut h);
        for (name, value) in &pass.uniforms {
            name.hash(&mut h);
            format!("{value:?}").hash(&mut h);
        }
        if pass.output_fn.is_some() {
            next_unique_id().hash(&mut h);
        }
        for (name, _) in &pass.uniform_fns {
            name.hash(&mut h);
            next_unique_id().hash(&mut h);
        }
    }
    b.iterations.hash(&mut h);
    b.iteration_cap.hash(&mut h);
    if b.until.is_some() {
        next_unique_id().hash(&mut h);
    }
    b.ping_pongs.hash(&mut h);
    h.finish()
}

/// A context-free description of a whole retained multi-pass pipeline:
/// everything [`Pipeline::builder`] captures — passes, buffer wiring,
/// per-iteration uniforms and shapes, ping-pong pairs, iteration counts
/// and `until` predicates — minus the textures, so any engine worker can
/// build, cache and run it. The serving analog of recording an op-graph
/// once and replaying it per request (the TFLite-delegate / CNNdroid
/// amortisation, lifted to multi-pass kernels).
///
/// Specs are immutable once built; wrap them in [`Arc`] and submit them
/// through [`Engine::submit_pipeline`]. Each worker builds the pipeline
/// once (all programs through the shared cache) and caches it by
/// [`PipelineSpec::fingerprint`], so steady-state serving links zero
/// programs and creates zero GL objects.
///
/// ```
/// use gpes_core::serve::{Engine, PassSpec, PipelineJob, PipelineSpec, KernelSpec};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), gpes_core::ComputeError> {
/// let double = Arc::new(
///     KernelSpec::new("double")
///         .input("x")
///         .output(4)
///         .body("return fetch_x(idx) * 2.0;"),
/// );
/// // x ← double(x), five times (implicit ping-pong), declared once.
/// let spec = Arc::new(
///     PipelineSpec::builder("pow2")
///         .source_len("x", 4)
///         .pass(PassSpec::new(&double).read("x", "x").write_len("x", 4))
///         .iterations(5)
///         .build()?,
/// );
/// let engine = Engine::builder().workers(2).build()?;
/// let job = PipelineJob::new(&spec)
///     .source(vec![1.0, 2.0, 3.0, 4.0])
///     .read("x");
/// let result = engine.submit_pipeline(job)?.wait()?;
/// assert_eq!(result.output("x").unwrap(), &[32.0, 64.0, 96.0, 128.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct PipelineSpec {
    pub(crate) name: String,
    pub(crate) sources: Vec<SourceDecl>,
    pub(crate) passes: Vec<PassSpec>,
    pub(crate) iterations: Option<usize>,
    pub(crate) iteration_cap: Option<usize>,
    pub(crate) until: Option<SharedUntilFn>,
    pub(crate) ping_pongs: Vec<(String, String)>,
    pub(crate) fingerprint: u64,
}

impl std::fmt::Debug for PipelineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSpec")
            .field("name", &self.name)
            .field(
                "sources",
                &self
                    .sources
                    .iter()
                    .map(|d| d.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("passes", &self.passes)
            .field("iterations", &self.iterations)
            .field("iteration_cap", &self.iteration_cap)
            .field("has_until", &self.until.is_some())
            .field("ping_pongs", &self.ping_pongs)
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

impl PipelineSpec {
    /// Starts declaring a pipeline spec named `name`.
    pub fn builder(name: impl Into<String>) -> PipelineSpecBuilder {
        PipelineSpecBuilder {
            name: name.into(),
            sources: Vec::new(),
            passes: Vec::new(),
            iterations: None,
            iteration_cap: None,
            until: None,
            ping_pongs: Vec::new(),
        }
    }

    /// The spec's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-worker cache key: a structural hash of the spec, with
    /// closures contributing process-unique tokens (two structurally
    /// identical closure-free specs share a cached pipeline;
    /// closure-bearing specs never alias).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The declared source names, in positional order.
    pub fn source_names(&self) -> impl Iterator<Item = &str> {
        self.sources.iter().map(|d| d.name.as_str())
    }

    /// The buffer names a job may mark for readback.
    fn has_buffer(&self, name: &str) -> bool {
        self.sources.iter().any(|d| d.name == name)
            || self
                .passes
                .iter()
                .any(|p| p.write.as_ref().is_some_and(|(w, _)| w == name))
    }

    /// Builds the retained pipeline on `cc` — a program-cache hit for
    /// every pass everywhere but the first build in the process (shared
    /// cache) or context. Public so direct (non-engine) execution of a
    /// spec builds the byte-identical pipeline an engine worker runs —
    /// the differential tests and the `a11` ablation rely on it.
    ///
    /// # Errors
    ///
    /// Kernel build/compile errors and pipeline validation errors.
    pub fn build(&self, cc: &mut ComputeContext) -> Result<ServedPipeline, ComputeError> {
        // Every source and kernel default binding points at a 1-texel
        // placeholder of the buffer's scalar type: a run seeds every
        // declared source with real data, and spec validation guarantees
        // every kernel input is wired to a pipeline buffer, so the
        // placeholder is never sampled — but its scalar tag must match
        // the declaration for the typed build to pass.
        let mut placeholders: Vec<(ScalarType, AnyGpuArray)> = Vec::new();
        fn placeholder_for(
            cc: &mut ComputeContext,
            pool: &mut Vec<(ScalarType, AnyGpuArray)>,
            scalar: ScalarType,
        ) -> Result<AnyGpuArray, ComputeError> {
            if let Some((_, a)) = pool.iter().find(|(s, _)| *s == scalar) {
                return Ok(*a);
            }
            let a = cc.upload_any(&TensorData::zeros(scalar, 1))?;
            pool.push((scalar, a));
            Ok(a)
        }
        let mut builder = Pipeline::builder(self.name.clone());
        for decl in &self.sources {
            let placeholder = placeholder_for(cc, &mut placeholders, decl.scalar)?;
            builder = builder.source_any(&decl.name, &placeholder);
        }
        for pass in &self.passes {
            let mut arrays = Vec::with_capacity(pass.kernel.inputs.len());
            for (_, scalar) in &pass.kernel.inputs {
                arrays.push(placeholder_for(cc, &mut placeholders, *scalar)?);
            }
            let kernel = pass.kernel.build_any(cc, &arrays)?;
            let mut p = Pass::new(&kernel);
            for (input, buffer) in &pass.reads {
                p = p.read(input, buffer);
            }
            let (write_name, shape) = pass.write.as_ref().expect("validated by spec build");
            p = p.write(write_name, *shape);
            if let Some(f) = &pass.output_fn {
                let f = Arc::clone(f);
                p = p.output_per_iter(move |i| f(i));
            }
            for (name, value) in &pass.uniforms {
                p = p.uniform(name, value.clone());
            }
            for (name, f) in &pass.uniform_fns {
                let f = Arc::clone(f);
                p = p.uniform_per_iter(name, move |i| f(i));
            }
            builder = builder.pass(p);
        }
        if let Some(n) = self.iterations {
            builder = builder.iterations(n);
        }
        if let Some(cap) = self.iteration_cap {
            builder = builder.iteration_cap(cap);
        }
        if let Some(until) = &self.until {
            let until = Arc::clone(until);
            builder = builder.until(move |i| until(i));
        }
        for (front, back) in &self.ping_pongs {
            builder = builder.ping_pong(front, back);
        }
        Ok(ServedPipeline {
            pipeline: builder.build()?,
            placeholders: placeholders.into_iter().map(|(_, a)| a).collect(),
        })
    }
}

/// A [`PipelineSpec`] compiled against one context: the retained
/// [`Pipeline`] plus the source metadata needed to seed it per request.
/// Obtained from [`PipelineSpec::build`]; engine workers cache one per
/// spec fingerprint.
pub struct ServedPipeline {
    pub(crate) pipeline: Pipeline,
    /// The 1-texel arrays (one per scalar type the spec touches) backing
    /// build-time bindings; recycled when the worker evicts the cached
    /// pipeline.
    pub(crate) placeholders: Vec<AnyGpuArray>,
}

impl ServedPipeline {
    /// The retained pipeline (run it with
    /// [`Pipeline::run_seeded`], seeding every declared source).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }
}

/// A whole retained pipeline submitted as one engine job: the spec plus
/// per-request source data (fresh or resident) and the buffers to read
/// back. Result type: [`PipelineResult`].
#[derive(Debug, Clone)]
pub struct PipelineJob {
    pub(crate) spec: Arc<PipelineSpec>,
    pub(crate) sources: Vec<JobInput>,
    pub(crate) reads: Vec<String>,
    pub(crate) deadline: Option<Instant>,
    pub(crate) retry: Option<RetryPolicy>,
    pub(crate) tenant: Option<TenantId>,
}

impl PipelineJob {
    /// Starts a job running `spec`.
    pub fn new(spec: &Arc<PipelineSpec>) -> PipelineJob {
        PipelineJob {
            spec: Arc::clone(spec),
            sources: Vec::new(),
            reads: Vec::new(),
            deadline: None,
            retry: None,
            tenant: None,
        }
    }

    /// Tags the job with a tenant, making [`TenantQuotas::max_in_flight`]
    /// apply at submit time and counting it in the tenant's
    /// [`TenantCounters`].
    pub fn tenant(mut self, tenant: impl Into<TenantId>) -> PipelineJob {
        self.tenant = Some(tenant.into());
        self
    }

    /// Overrides the engine's [`RetryPolicy`] for this job only.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> PipelineJob {
        self.retry = Some(policy);
        self
    }

    /// Sets an absolute deadline: if no worker has dequeued the job by
    /// `at`, it is shed with [`ComputeError::DeadlineExceeded`] before
    /// any GPU work happens.
    pub fn deadline(mut self, at: Instant) -> PipelineJob {
        self.deadline = Some(at);
        self
    }

    /// [`PipelineJob::deadline`] relative to now.
    pub fn timeout(self, after: Duration) -> PipelineJob {
        let at = Instant::now() + after;
        self.deadline(at)
    }

    /// Appends `f32` host data for the next declared source.
    pub fn source(mut self, data: Vec<f32>) -> PipelineJob {
        self.sources.push(JobInput::Data(Arc::new(data)));
        self
    }

    /// Appends shared `f32` host data for the next declared source.
    pub fn source_shared(mut self, data: &Arc<Vec<f32>>) -> PipelineJob {
        self.sources.push(JobInput::Data(Arc::clone(data)));
        self
    }

    /// Appends typed host data for the next declared source — must match
    /// the scalar declared with [`PipelineSpecBuilder::source_typed`]
    /// (or the `_len`/`_grid` variants).
    pub fn source_tensor(mut self, data: impl Into<TensorData>) -> PipelineJob {
        self.sources.push(JobInput::Tensor(Arc::new(data.into())));
        self
    }

    /// Appends shared typed host data for the next declared source.
    pub fn source_tensor_shared(mut self, data: &Arc<TensorData>) -> PipelineJob {
        self.sources.push(JobInput::Tensor(Arc::clone(data)));
        self
    }

    /// Binds a per-worker [`ResidentInput`] to the next declared source.
    pub fn source_resident(mut self, input: &ResidentInput) -> PipelineJob {
        self.sources.push(JobInput::Resident(input.clone()));
        self
    }

    /// Marks buffer `buffer` for readback after the run (post ping-pong
    /// swaps, exactly like reading a [`crate::PipelineRun`]).
    pub fn read(mut self, buffer: &str) -> PipelineJob {
        if !self.reads.iter().any(|b| b == buffer) {
            self.reads.push(buffer.to_owned());
        }
        self
    }

    pub(crate) fn validate(&self) -> Result<(), ComputeError> {
        let spec = &self.spec;
        if self.sources.len() != spec.sources.len() {
            return Err(bad_job(format!(
                "pipeline job for `{}` supplies {} sources, spec declares {}",
                spec.name,
                self.sources.len(),
                spec.sources.len()
            )));
        }
        for (decl, input) in spec.sources.iter().zip(&self.sources) {
            input.check_live(&format!("pipeline job for `{}`", spec.name))?;
            if input.scalar() != decl.scalar {
                return Err(bad_job(format!(
                    "source `{}` of pipeline `{}` is declared {:?}, supplied {:?} data",
                    decl.name,
                    spec.name,
                    decl.scalar,
                    input.scalar()
                )));
            }
            let want = match decl.shape {
                SourceShape::Linear(None) => None,
                SourceShape::Linear(Some(len)) => Some(len),
                SourceShape::Grid { rows, cols } => Some(rows as usize * cols as usize),
            };
            if let Some(want) = want {
                if input.len() != want {
                    return Err(bad_job(format!(
                        "source `{}` of pipeline `{}` wants {want} elements, job \
                         supplies {}",
                        decl.name,
                        spec.name,
                        input.len()
                    )));
                }
            }
        }
        if self.reads.is_empty() {
            return Err(bad_job(format!(
                "pipeline job for `{}` reads no buffers; mark at least one with .read()",
                spec.name
            )));
        }
        for buffer in &self.reads {
            if !spec.has_buffer(buffer) {
                return Err(bad_job(format!(
                    "pipeline `{}` has no buffer `{buffer}` to read",
                    spec.name
                )));
            }
        }
        Ok(())
    }
}

/// Results of a [`PipelineJob`]: one [`TensorData`] per buffer marked
/// with [`PipelineJob::read`] — the buffer's declared scalar type, so a
/// quantized readback arrives as its own bytes, never widened to f32.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    pub(crate) outputs: Vec<(String, TensorData)>,
}

impl PipelineResult {
    /// The readback of an `f32` buffer `name`, if it was marked (`None`
    /// for unmarked buffers *and* for typed buffers — read those with
    /// [`PipelineResult::tensor`]).
    pub fn output(&self, name: &str) -> Option<&[f32]> {
        self.tensor(name).and_then(|t| t.as_f32())
    }

    /// The typed readback of buffer `name`, if it was marked.
    pub fn tensor(&self, name: &str) -> Option<&TensorData> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, data)| data)
    }

    /// Consumes the result into `(buffer, tensor)` pairs, in read order.
    pub fn into_outputs(self) -> Vec<(String, TensorData)> {
        self.outputs
    }
}
