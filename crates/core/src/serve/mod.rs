//! `gpes-serve` — a concurrent multi-kernel serving engine over the
//! retained compute API.
//!
//! The deployment shape this models is the one on-device inference stacks
//! (CNNdroid, the TFLite GPU delegate) settle on: many independent
//! compute requests arrive at one device, one-time program compilation is
//! amortised across all of them, and a small pool of worker contexts
//! drains a submission queue. Concretely:
//!
//! * an [`Engine`] owns N worker threads, each with its own
//!   [`ComputeContext`] (GL contexts are single-threaded by construction,
//!   exactly as on real hardware — sharing happens at the *program*
//!   level, not the context level);
//! * every worker context is wired to one process-wide
//!   [`SharedProgramCache`], so each distinct kernel links exactly once
//!   no matter which worker sees it first ([`CachePolicy::PerContext`]
//!   exists for the `a10` ablation that measures what N× relinking
//!   costs);
//! * requests are [`Job`]s (one kernel dispatch), [`Submission`]s (a
//!   multi-kernel DAG that runs on one worker without per-step queue
//!   round-trips, intermediates staying on the GPU), or [`PipelineJob`]s
//!   (a whole retained multi-pass [`crate::Pipeline`] described by a
//!   context-free [`PipelineSpec`] — iteration loops, ping-pong pairs,
//!   per-iteration uniforms and `until` predicates run entirely on one
//!   worker, with the built pipeline cached per worker by spec hash);
//! * constant inputs can be made **resident** ([`ResidentInput`]): each
//!   worker uploads them once and every later job — kernel, DAG or
//!   pipeline — reuses the on-GPU texture, with capacity evictions
//!   accounted in [`ResidentStats`];
//! * workers **self-heal**: transient driver failures (resource
//!   exhaustion, context loss — injectable deterministically via
//!   [`EngineBuilder::fault_plan`]) are retried under a [`RetryPolicy`];
//!   a lost context is torn down and rebuilt (shared programs re-adopted
//!   through the cache, resident textures and cached pipelines
//!   repopulated lazily) and the in-flight job replayed — callers see
//!   success or a typed permanent error, never a stale-handle panic;
//! * admission is **bounded**: the queue holds at most
//!   [`EngineBuilder::queue_capacity`] tasks. `try_submit*` rejects
//!   immediately with [`ComputeError::QueueFull`]; the blocking
//!   `submit*` family waits up to [`EngineBuilder::submit_timeout`] for
//!   a slot and then rejects the same way — no submission path ever
//!   blocks indefinitely;
//! * jobs may carry a **deadline** ([`Job::deadline`] /
//!   [`Submission::deadline`] / [`PipelineJob::deadline`]): a worker
//!   checks it at dequeue and sheds expired work with
//!   [`ComputeError::DeadlineExceeded`] *before* touching the GPU.
//!   [`JobHandle::cancel`] aborts queued-but-unstarted work the same
//!   way ([`ComputeError::Cancelled`]);
//! * results come back through typed [`JobHandle`]s — blocking
//!   [`JobHandle::wait`], non-blocking [`JobHandle::try_wait`] /
//!   [`JobHandle::wait_timeout`] / [`JobHandle::wait_deadline`], or a
//!   [`CompletionSet`] that multiplexes any number of in-flight handles
//!   over one condvar so a caller can drive thousands of jobs without a
//!   thread each;
//! * [`Engine::snapshot`] exports an [`EngineSnapshot`]: admission and
//!   outcome counters (`submitted = completed + rejected + shed +
//!   cancelled + aborted` at quiescence), queue depth and high-water
//!   mark, log-spaced queue/service latency histograms, and the merged
//!   [`ContextStats`] / [`crate::SharedCacheStats`] / [`ResidentStats`].
//!
//! Kernels are described by a context-free [`KernelSpec`] rather than a
//! built [`crate::Kernel`], because a kernel object is bound to the
//! context that compiled it. A spec carries exactly the information
//! [`crate::KernelBuilder`] needs, so a worker executing a job performs
//! the same upload → build → dispatch → read sequence a caller would
//! perform directly — the engine differential test asserts the outputs
//! are bit-identical.
//!
//! ```
//! use gpes_core::serve::{Engine, Job, KernelSpec};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), gpes_core::ComputeError> {
//! let engine = Engine::builder().workers(2).build()?;
//! let saxpy = Arc::new(
//!     KernelSpec::new("saxpy")
//!         .input("x")
//!         .input("y")
//!         .uniform_f32("alpha", 2.0)
//!         .output(4)
//!         .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
//! );
//! let job = Job::new(&saxpy)
//!     .data(vec![1.0, 2.0, 3.0, 4.0])
//!     .data(vec![10.0, 20.0, 30.0, 40.0]);
//! let handle = engine.submit(job)?;
//! assert_eq!(handle.wait()?, vec![12.0, 24.0, 36.0, 48.0]);
//! # Ok(())
//! # }
//! ```

pub mod metrics;
pub mod registry;

mod queue;
mod spec;
mod worker;

pub use metrics::{EngineSnapshot, LatencyHistogram};
pub use queue::*;
pub use registry::*;
pub use spec::*;

use crate::buffer::{AnyGpuArray, GpuArray, TensorData};
use crate::cache::{FifoCache, SharedProgramCache};
use crate::codec::ScalarType;
use crate::context::{ComputeContext, ContextStats};
use crate::error::ComputeError;
use crate::kernel::{Kernel, OutputShape};
use crate::pipeline::{Pass, Pipeline, Readback, SourceSeed};
use crate::Bindings;
use gpes_gles2::{Dispatch, ExecMode, FaultPlan, Limits};
use gpes_glsl::Value;
use metrics::{lock_recover, wait_recover, EngineMetrics};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
