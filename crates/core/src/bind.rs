//! Per-dispatch bindings: the "bind" half of the compile/bind split.
//!
//! A [`crate::Kernel`] owns only the *compiled program and its signature*
//! (input names/encodings, declared uniforms, output kind). Everything
//! that changes between dispatches — which textures feed the inputs, the
//! output shape, uniform values — travels in a [`Bindings`] value handed
//! to [`crate::ComputeContext::run_to_array_with`] and friends. Rebinding
//! a ping-pong texture therefore costs a few uniform stores, never a
//! shader recompile.
//!
//! ```
//! use gpes_core::{Bindings, ComputeContext, Kernel, ScalarType};
//! use gpes_glsl::Value;
//!
//! # fn main() -> Result<(), gpes_core::ComputeError> {
//! let mut cc = ComputeContext::new(64, 64)?;
//! let a = cc.upload(&[1.0f32, 2.0])?;
//! let b = cc.upload(&[10.0f32, 20.0])?;
//! let k = Kernel::builder("scale")
//!     .input("x", &a)
//!     .uniform_f32("gain", 2.0)
//!     .output(ScalarType::F32, 2)
//!     .body("return fetch_x(idx) * gain;")
//!     .build(&mut cc)?;
//! // Dispatch once with the build-time defaults…
//! assert_eq!(cc.run_f32(&k)?, vec![2.0, 4.0]);
//! // …then rebind the input and override the uniform: same program.
//! let rebound = Bindings::new().input("x", &b).uniform("gain", Value::Float(0.5));
//! assert_eq!(cc.run_f32_with(&k, &rebound)?, vec![5.0, 10.0]);
//! assert_eq!(cc.stats().programs_linked, 1);
//! # Ok(())
//! # }
//! ```

use crate::buffer::{GpuArray, GpuMatrix, GpuScalar, GpuTexels};
use crate::kernel::{InputBinding, InputEncoding, OutputShape};
use gpes_glsl::Value;

/// Per-dispatch state for a [`crate::Kernel`]: input textures, output
/// shape and uniform overrides. Anything left unset falls back to the
/// kernel's build-time defaults.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    pub(crate) inputs: Vec<InputBinding>,
    pub(crate) output: Option<OutputShape>,
    pub(crate) uniforms: Vec<(String, Value)>,
}

impl Bindings {
    /// An empty override set (all kernel defaults apply).
    pub fn new() -> Bindings {
        Bindings::default()
    }

    fn push_input(&mut self, binding: InputBinding) {
        if let Some(slot) = self.inputs.iter_mut().find(|b| b.name == binding.name) {
            *slot = binding;
        } else {
            self.inputs.push(binding);
        }
    }

    /// Rebinds a typed array input declared at build time with
    /// [`crate::KernelBuilder::input`].
    pub fn input<T: GpuScalar>(mut self, name: &str, array: &GpuArray<T>) -> Self {
        self.push_input(InputBinding {
            name: name.to_owned(),
            texture: array.texture,
            layout: array.layout,
            encoding: InputEncoding::Scalar(T::SCALAR),
        });
        self
    }

    /// Rebinds a matrix input declared with
    /// [`crate::KernelBuilder::input_matrix`].
    pub fn input_matrix<T: GpuScalar>(mut self, name: &str, matrix: &GpuMatrix<T>) -> Self {
        self.push_input(InputBinding {
            name: name.to_owned(),
            texture: matrix.texture,
            layout: matrix.layout,
            encoding: InputEncoding::Scalar(T::SCALAR),
        });
        self
    }

    /// Rebinds a raw-texel input declared with
    /// [`crate::KernelBuilder::input_texels`] or
    /// [`crate::KernelBuilder::input_raw`].
    pub fn input_texels(mut self, name: &str, texels: &GpuTexels) -> Self {
        self.push_input(InputBinding {
            name: name.to_owned(),
            texture: texels.texture,
            layout: texels.layout,
            encoding: InputEncoding::RawTexel,
        });
        self
    }

    /// Rebinds a typed array *as raw texels* (pairs with
    /// [`crate::KernelBuilder::input_raw`]).
    pub fn input_raw<T: GpuScalar>(mut self, name: &str, array: &GpuArray<T>) -> Self {
        self.push_input(InputBinding {
            name: name.to_owned(),
            texture: array.texture,
            layout: array.layout,
            encoding: InputEncoding::RawTexel,
        });
        self
    }

    /// Overrides the output domain with `len` linear elements.
    pub fn output_len(mut self, len: usize) -> Self {
        self.output = Some(OutputShape::Linear(len));
        self
    }

    /// Overrides the output domain with a `rows × cols` grid.
    pub fn output_grid(mut self, rows: u32, cols: u32) -> Self {
        self.output = Some(OutputShape::Grid { rows, cols });
        self
    }

    /// Overrides the output domain with an explicit [`OutputShape`].
    pub fn output_shape(mut self, shape: OutputShape) -> Self {
        self.output = Some(shape);
        self
    }

    /// Typed uniform override (checked against the kernel's declared
    /// uniform type at dispatch; mismatches are a
    /// [`crate::ComputeError::BadKernel`]).
    pub fn set_uniform(&mut self, name: &str, value: Value) {
        if let Some((_, slot)) = self.uniforms.iter_mut().find(|(n, _)| n == name) {
            *slot = value;
        } else {
            self.uniforms.push((name.to_owned(), value));
        }
    }

    /// Builder-style form of [`Bindings::set_uniform`].
    pub fn uniform(mut self, name: &str, value: Value) -> Self {
        self.set_uniform(name, value);
        self
    }

    /// Convenience: override a `float` uniform.
    pub fn uniform_f32(self, name: &str, value: f32) -> Self {
        self.uniform(name, Value::Float(value))
    }

    /// Convenience: override an `int` uniform.
    pub fn uniform_i32(self, name: &str, value: i32) -> Self {
        self.uniform(name, Value::Int(value))
    }

    /// Whether no overrides are present (pure-default dispatch).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty() && self.output.is_none() && self.uniforms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn later_overrides_replace_earlier_ones() {
        let mut b = Bindings::new().uniform_f32("gain", 1.0);
        b.set_uniform("gain", Value::Float(3.0));
        assert_eq!(b.uniforms.len(), 1);
        assert_eq!(b.uniforms[0].1, Value::Float(3.0));
        assert!(!b.is_empty());
        assert!(Bindings::new().is_empty());
    }

    #[test]
    fn output_overrides() {
        let b = Bindings::new().output_len(10);
        assert_eq!(b.output, Some(OutputShape::Linear(10)));
        let b = b.output_grid(2, 3);
        assert_eq!(b.output, Some(OutputShape::Grid { rows: 2, cols: 3 }));
    }
}
