//! §III workarounds 3 & 4: mapping 1-D arrays onto 2-D textures with
//! normalised coordinates.
//!
//! ES 2 has no 1-D textures and no unnormalised texel coordinates, so a
//! linear index `i` must become a texel `(x, y) = (i mod W, ⌊i/W⌋)` and
//! then a normalised centre `((x+0.5)/W, (y+0.5)/H)` — the classic
//! Lefohn/Purcell address translation the paper reuses.

use crate::error::ComputeError;

/// Layout of a linear array inside a 2-D texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Number of live elements.
    pub len: usize,
    /// Texture width in texels.
    pub width: u32,
    /// Texture height in texels.
    pub height: u32,
}

impl ArrayLayout {
    /// Chooses a near-square texture for `len` elements, bounded by
    /// `max_side` texels per dimension.
    ///
    /// # Errors
    ///
    /// [`ComputeError::TooLarge`] if `len` does not fit and
    /// [`ComputeError::BadKernel`] if `len` is zero.
    pub fn for_len(len: usize, max_side: u32) -> Result<ArrayLayout, ComputeError> {
        if len == 0 {
            return Err(ComputeError::bad_kernel("array length must be non-zero"));
        }
        let width = ((len as f64).sqrt().ceil() as u64).clamp(1, max_side as u64) as u32;
        let rows = len.div_ceil(width as usize);
        if rows > max_side as usize {
            return Err(ComputeError::TooLarge {
                what: format!("array of {len} elements (needs {width}x{rows} texels)"),
            });
        }
        Ok(ArrayLayout {
            len,
            width,
            height: rows as u32,
        })
    }

    /// An explicit 2-D grid layout (for matrices): `width = cols`,
    /// `height = rows`, `len = rows·cols`.
    ///
    /// # Errors
    ///
    /// [`ComputeError::TooLarge`] when a dimension exceeds `max_side`.
    pub fn grid(rows: u32, cols: u32, max_side: u32) -> Result<ArrayLayout, ComputeError> {
        if rows == 0 || cols == 0 {
            return Err(ComputeError::bad_kernel("grid dimensions must be non-zero"));
        }
        if rows > max_side || cols > max_side {
            return Err(ComputeError::TooLarge {
                what: format!("{rows}x{cols} grid"),
            });
        }
        Ok(ArrayLayout {
            len: rows as usize * cols as usize,
            width: cols,
            height: rows,
        })
    }

    /// Total texel count (may exceed `len` by up to `width − 1`).
    pub fn texel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Texel coordinates of element `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ len` (debug builds).
    pub fn coord_of(&self, index: usize) -> (u32, u32) {
        debug_assert!(index < self.texel_count());
        (
            (index % self.width as usize) as u32,
            (index / self.width as usize) as u32,
        )
    }

    /// Linear index of texel `(x, y)`.
    pub fn index_of(&self, x: u32, y: u32) -> usize {
        y as usize * self.width as usize + x as usize
    }

    /// Normalised coordinates of the texel centre for element `index`
    /// (what `texture2D` must receive for an exact nearest fetch).
    pub fn normalized_center(&self, index: usize) -> (f32, f32) {
        let (x, y) = self.coord_of(index);
        (
            (x as f32 + 0.5) / self.width as f32,
            (y as f32 + 0.5) / self.height as f32,
        )
    }
}

/// Emits the GLSL fetch helper for input `name` with the given layout and
/// unpack function: `float fetch_<name>(float idx)`.
///
/// `swizzle` selects the texel channels the unpack function consumes
/// (`""` for a full `vec4`, `".r"` for byte formats, `".xy"` for the
/// two-byte short formats). The texture and dimension uniforms are named
/// `u_<name>` and `u_<name>_dims` respectively.
pub fn glsl_fetch_1d(name: &str, unpack_fn: &str, swizzle: &str) -> String {
    format!(
        "uniform sampler2D u_{name};\n\
         uniform vec2 u_{name}_dims;\n\
         float fetch_{name}(float idx) {{\n\
         \x20   // +0.5 guards the division against SFU reciprocal error\n\
         \x20   // when idx is an exact multiple of the width.\n\
         \x20   float y = floor((idx + 0.5) / u_{name}_dims.x);\n\
         \x20   float x = idx - y * u_{name}_dims.x;\n\
         \x20   vec2 uv = vec2((x + 0.5) / u_{name}_dims.x, (y + 0.5) / u_{name}_dims.y);\n\
         \x20   return {unpack_fn}(texture2D(u_{name}, uv){swizzle});\n\
         }}\n"
    )
}

/// Emits the 2-D fetch helper: `float fetch_<name>_rc(float row, float col)`.
pub fn glsl_fetch_2d(name: &str, unpack_fn: &str, swizzle: &str) -> String {
    format!(
        "float fetch_{name}_rc(float row, float col) {{\n\
         \x20   vec2 uv = vec2((col + 0.5) / u_{name}_dims.x, (row + 0.5) / u_{name}_dims.y);\n\
         \x20   return {unpack_fn}(texture2D(u_{name}, uv){swizzle});\n\
         }}\n"
    )
}

/// Emits the raw-texel fetch helper: `vec4 fetch_<name>_texel(float idx)`.
///
/// Hands the body the undecoded RGBA colour of texel `idx` — the escape
/// hatch for kernels that define their own texel interpretation (packed
/// pairs, complex numbers, related-work formats).
pub fn glsl_fetch_texel_1d(name: &str) -> String {
    format!(
        "uniform sampler2D u_{name};\n\
         uniform vec2 u_{name}_dims;\n\
         vec4 fetch_{name}_texel(float idx) {{\n\
         \x20   float y = floor((idx + 0.5) / u_{name}_dims.x);\n\
         \x20   float x = idx - y * u_{name}_dims.x;\n\
         \x20   vec2 uv = vec2((x + 0.5) / u_{name}_dims.x, (y + 0.5) / u_{name}_dims.y);\n\
         \x20   return texture2D(u_{name}, uv);\n\
         }}\n"
    )
}

/// Emits the raw-texel 2-D fetch helper:
/// `vec4 fetch_<name>_texel_rc(float row, float col)`.
pub fn glsl_fetch_texel_2d(name: &str) -> String {
    format!(
        "vec4 fetch_{name}_texel_rc(float row, float col) {{\n\
         \x20   vec2 uv = vec2((col + 0.5) / u_{name}_dims.x, (row + 0.5) / u_{name}_dims.y);\n\
         \x20   return texture2D(u_{name}, uv);\n\
         }}\n"
    )
}

/// Emits the output-index helper used by kernel main bodies:
/// `idx = ⌊gl_FragCoord.y⌋·W + ⌊gl_FragCoord.x⌋`.
pub fn glsl_out_index() -> &'static str {
    "uniform vec2 u_out_dims;\n\
     float gpes_out_index() {\n\
     \x20   return floor(gl_FragCoord.y) * u_out_dims.x + floor(gl_FragCoord.x);\n\
     }\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_layouts() {
        let l = ArrayLayout::for_len(1024, 2048).expect("layout");
        assert_eq!((l.width, l.height), (32, 32));
        let l = ArrayLayout::for_len(1000, 2048).expect("layout");
        assert_eq!(l.width, 32);
        assert_eq!(l.height, 32); // 32*32 = 1024 ≥ 1000
        let l = ArrayLayout::for_len(1, 2048).expect("layout");
        assert_eq!((l.width, l.height), (1, 1));
    }

    #[test]
    fn coordinate_round_trip() {
        let l = ArrayLayout::for_len(1000, 2048).expect("layout");
        for i in [0usize, 1, 31, 32, 999] {
            let (x, y) = l.coord_of(i);
            assert_eq!(l.index_of(x, y), i);
        }
    }

    #[test]
    fn normalized_centers_are_inside_unit_square() {
        let l = ArrayLayout::for_len(77, 2048).expect("layout");
        for i in 0..77 {
            let (u, v) = l.normalized_center(i);
            assert!(u > 0.0 && u < 1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn zero_len_rejected() {
        assert!(ArrayLayout::for_len(0, 2048).is_err());
    }

    #[test]
    fn too_large_rejected() {
        let err = ArrayLayout::for_len(usize::MAX / 2, 4096).unwrap_err();
        assert!(matches!(err, ComputeError::TooLarge { .. }));
    }

    #[test]
    fn grid_layout() {
        let l = ArrayLayout::grid(3, 5, 2048).expect("grid");
        assert_eq!(l.len, 15);
        assert_eq!((l.width, l.height), (5, 3));
        assert_eq!(l.coord_of(7), (2, 1)); // row 1, col 2
        assert!(ArrayLayout::grid(0, 5, 2048).is_err());
        assert!(ArrayLayout::grid(5000, 5, 2048).is_err());
    }

    #[test]
    fn fetch_codegen_compiles() {
        let src = format!(
            "precision highp float;\n\
             float gpes_unpack_byte(float t) {{ return floor(t * 255.0 + 0.5); }}\n\
             float gpes_unpack_uint(vec4 t) {{ return gpes_unpack_byte(t.x); }}\n\
             {}{}{}\
             void main() {{\n\
               float idx = gpes_out_index();\n\
               gl_FragColor = vec4(fetch_a(idx) + fetch_a_rc(1.0, 2.0));\n\
             }}",
            glsl_fetch_1d("a", "gpes_unpack_uint", ""),
            glsl_fetch_2d("a", "gpes_unpack_uint", ""),
            glsl_out_index(),
        );
        gpes_glsl::compile(gpes_glsl::ShaderKind::Fragment, &src)
            .unwrap_or_else(|e| panic!("fetch codegen failed: {e}\n{src}"));
    }

    #[test]
    fn raw_texel_fetch_codegen_compiles() {
        let src = format!(
            "precision highp float;\n\
             {}{}\
             void main() {{\n\
               gl_FragColor = fetch_a_texel(3.0) + fetch_a_texel_rc(1.0, 2.0);\n\
             }}",
            glsl_fetch_texel_1d("a"),
            glsl_fetch_texel_2d("a"),
        );
        gpes_glsl::compile(gpes_glsl::ShaderKind::Fragment, &src)
            .unwrap_or_else(|e| panic!("raw fetch codegen failed: {e}\n{src}"));
    }
}
