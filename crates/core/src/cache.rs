//! Process-wide program cache: link each generated shader once, share the
//! linked [`Program`] across every compute context and worker thread.
//!
//! A [`crate::ComputeContext`] already memoises programs per context
//! (PR 3's compile/bind split). A server-style deployment runs *N* worker
//! contexts, and without sharing each worker would relink the same kernel
//! mix — N× the link work for identical bytecode. `SharedProgramCache`
//! lifts the cache to the process: it is `Arc`-held, interior-mutexed,
//! and keyed by the generated `vertex\0fragment` source exactly like the
//! per-context cache, so a kernel built on any worker links at most once
//! process-wide. The cached value is a pristine linked
//! [`Program`] whose lowered bytecode stages are `Arc`-shared
//! ([`gpes_gles2::Program::fragment_executable_shared`]); installing it
//! into a context clones only the cheap interface tables.
//!
//! This is the CNNdroid / TFLite-delegate amortisation argument applied
//! across contexts and threads instead of across iterations.

use crate::error::ComputeError;
use gpes_gles2::{Limits, Program};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Counters for a [`SharedProgramCache`] — the process-wide complement of
/// [`crate::ContextStats`].
///
/// `links` is the number the a10 ablation locks down: with the shared
/// cache in front of N workers it must stay constant as N grows, and must
/// not grow at all once the kernel mix has been warmed up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Programs actually compiled and linked (cache misses that did the
    /// work).
    pub links: u64,
    /// Lookups served from the cache without linking.
    pub hits: u64,
    /// Lookups that found no entry (every miss becomes a link unless the
    /// link itself fails).
    pub misses: u64,
    /// Entries discarded to keep the cache within its capacity bound.
    pub evictions: u64,
}

/// A bounded insertion-order (FIFO) map: inserting past `capacity`
/// evicts the oldest entries, which are **returned** to the caller so
/// site-specific retirement (recycling a texture, counting an eviction)
/// stays at the call site. One implementation behind the shared program
/// cache and both engine worker caches (pipelines, residencies), so the
/// eviction bookkeeping cannot drift between them.
pub(crate) struct FifoCache<K, V> {
    map: HashMap<K, V>,
    /// Keys in insertion order; the front is the next eviction, so
    /// staying within capacity is O(1) instead of a min-scan per insert.
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: std::hash::Hash + Eq + Clone, V> FifoCache<K, V> {
    pub(crate) fn new(capacity: usize) -> FifoCache<K, V> {
        FifoCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    pub(crate) fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts the entry and returns whatever was evicted to stay within
    /// capacity (never the entry just inserted, which joins at the back).
    pub(crate) fn insert(&mut self, key: K, value: V) -> Vec<(K, V)> {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
        }
        let mut evicted = Vec::new();
        while self.map.len() > self.capacity {
            match self.order.pop_front() {
                Some(oldest) => {
                    if let Some(value) = self.map.remove(&oldest) {
                        evicted.push((oldest, value));
                    }
                }
                None => break,
            }
        }
        evicted
    }

    /// Removes and returns every entry matching the predicate.
    pub(crate) fn extract_if(&mut self, mut pred: impl FnMut(&K, &V) -> bool) -> Vec<(K, V)> {
        let keys: Vec<K> = self
            .map
            .iter()
            .filter(|(k, v)| pred(k, v))
            .map(|(k, _)| k.clone())
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(value) = self.map.remove(&key) {
                out.push((key, value));
            }
        }
        if !out.is_empty() {
            self.order.retain(|k| self.map.contains_key(k));
        }
        out
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

struct Inner {
    /// `vs \0 fs` source → linked program.
    cache: FifoCache<String, Arc<Program>>,
    stats: SharedCacheStats,
}

/// A thread-safe, process-wide cache of linked shader programs.
///
/// Cloneable via `Arc`; all methods take `&self`. Linking happens while
/// the interior mutex is held, which is what makes the concurrency
/// guarantee exact: when N threads race to build the same kernel, one
/// links and N−1 observe the finished entry — never N links, never a
/// torn entry.
///
/// # Example
///
/// ```
/// use gpes_core::{cache::SharedProgramCache, ComputeContext};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), gpes_core::ComputeError> {
/// let cache = Arc::new(SharedProgramCache::new());
/// let mut a = ComputeContext::new(16, 16)?;
/// let mut b = ComputeContext::new(16, 16)?;
/// a.set_shared_program_cache(Arc::clone(&cache));
/// b.set_shared_program_cache(Arc::clone(&cache));
/// // Identical kernels built on `a` and `b` now link exactly once.
/// # Ok(())
/// # }
/// ```
pub struct SharedProgramCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

/// Default capacity: generous for any realistic kernel mix, small enough
/// that a pathological source-per-request workload cannot retain linked
/// programs without bound.
pub const DEFAULT_SHARED_CACHE_CAPACITY: usize = 512;

impl SharedProgramCache {
    /// Creates a cache with the default capacity bound.
    pub fn new() -> SharedProgramCache {
        SharedProgramCache::with_capacity(DEFAULT_SHARED_CACHE_CAPACITY)
    }

    /// Creates a cache holding at most `capacity` linked programs;
    /// inserting beyond that evicts the oldest entries first.
    pub fn with_capacity(capacity: usize) -> SharedProgramCache {
        SharedProgramCache {
            inner: Mutex::new(Inner {
                cache: FifoCache::new(capacity),
                stats: SharedCacheStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached program for `vs`/`fs`, linking (and caching) it
    /// on first sight. The link runs under the cache lock so concurrent
    /// requests for one source produce exactly one link.
    ///
    /// The `limits` and `strict` flag are part of the cache key: a
    /// program linked under a permissive driver must not be served to a
    /// context simulating a strict (Appendix-A) or tighter-limits
    /// driver, where the same source might not link at all.
    ///
    /// # Errors
    ///
    /// Compile/link diagnostics from the GL layer. Failures are not
    /// cached; a later call retries the link.
    pub fn get_or_link(
        &self,
        vs: &str,
        fs: &str,
        limits: &Limits,
        strict: bool,
    ) -> Result<Arc<Program>, ComputeError> {
        let key = program_key(vs, fs, limits, strict);
        let mut inner = self.inner.lock().expect("shared program cache poisoned");
        if let Some(program) = inner.cache.get(&key) {
            let program = Arc::clone(program);
            inner.stats.hits += 1;
            return Ok(program);
        }
        inner.stats.misses += 1;
        let program = Arc::new(Program::link_with(vs, fs, limits, strict)?);
        inner.stats.links += 1;
        // FIFO eviction past capacity: evicted entries still referenced
        // elsewhere stay alive through their `Arc`s; the cache just stops
        // advertising them.
        inner.stats.evictions += inner.cache.insert(key, Arc::clone(&program)).len() as u64;
        Ok(program)
    }

    /// Snapshot of the hit/miss/link/eviction counters.
    pub fn stats(&self) -> SharedCacheStats {
        self.inner
            .lock()
            .expect("shared program cache poisoned")
            .stats
    }

    /// Number of programs currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("shared program cache poisoned")
            .cache
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound this cache evicts towards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every cached entry (outstanding `Arc` handles stay valid).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("shared program cache poisoned")
            .cache
            .clear();
    }

    /// Evicts one entry by exact key, if cached. Used by the kernel
    /// registry for *tenant-scoped* eviction: retiring a tenant's kernel
    /// removes exactly that tenant's program, never a neighbour's.
    /// Outstanding `Arc` handles (programs already adopted by worker
    /// contexts) stay valid. Returns whether an entry was removed.
    pub(crate) fn remove_key(&self, key: &str) -> bool {
        let mut inner = self.inner.lock().expect("shared program cache poisoned");
        let removed = !inner.cache.extract_if(|k, _| k == key).is_empty();
        if removed {
            inner.stats.evictions += 1;
        }
        removed
    }
}

/// The process-wide program identity: source + driver limits + strictness.
/// This string *is* the fingerprint the serving registry hands back for a
/// dynamically registered kernel — two registrations with equal keys share
/// one linked program no matter which tenant or worker triggers the link.
pub(crate) fn program_key(vs: &str, fs: &str, limits: &Limits, strict: bool) -> String {
    format!(
        "{strict}\u{0}{}:{}:{}:{}\u{0}{vs}\u{0}{fs}",
        limits.max_texture_size,
        limits.max_texture_units,
        limits.max_varying_vectors,
        limits.max_vertex_attribs,
    )
}

impl Default for SharedProgramCache {
    fn default() -> SharedProgramCache {
        SharedProgramCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry;

    fn fs(body: &str) -> String {
        format!("precision highp float;\nvoid main() {{ gl_FragColor = vec4({body}); }}\n")
    }

    #[test]
    fn second_lookup_hits_without_linking() {
        let cache = SharedProgramCache::new();
        let vs = geometry::passthrough_vertex_shader();
        let a = cache
            .get_or_link(&vs, &fs("0.5"), &Limits::default(), false)
            .expect("link");
        let b = cache
            .get_or_link(&vs, &fs("0.5"), &Limits::default(), false)
            .expect("hit");
        assert!(Arc::ptr_eq(&a, &b), "both handles share one program");
        let stats = cache.stats();
        assert_eq!((stats.links, stats.hits, stats.misses), (1, 1, 1));
    }

    #[test]
    fn link_errors_are_not_cached() {
        let cache = SharedProgramCache::new();
        let vs = geometry::passthrough_vertex_shader();
        let bad = "precision highp float;\nvoid main() { gl_FragColor = nonsense(); }\n";
        assert!(cache
            .get_or_link(&vs, bad, &Limits::default(), false)
            .is_err());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().links, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn strict_and_limits_partition_the_cache() {
        // A shader a permissive driver links but Appendix A rejects: the
        // non-strict entry must never be served to a strict context.
        let cache = SharedProgramCache::new();
        let vs = geometry::passthrough_vertex_shader();
        let dynamic = "precision highp float;\nuniform float u_n;\n\
             void main() {\n\
               float acc = 0.0;\n\
               for (float i = 0.0; i < u_n; i += 1.0) { acc += 1.0; }\n\
               gl_FragColor = vec4(acc);\n\
             }";
        cache
            .get_or_link(&vs, dynamic, &Limits::default(), false)
            .expect("permissive link");
        assert!(
            cache
                .get_or_link(&vs, dynamic, &Limits::default(), true)
                .is_err(),
            "strict lookup must revalidate, not hit the permissive entry"
        );
        // Distinct limits are distinct entries too.
        let small = Limits {
            max_texture_size: 64,
            ..Limits::default()
        };
        cache
            .get_or_link(&vs, &fs("0.5"), &Limits::default(), false)
            .expect("default limits");
        cache
            .get_or_link(&vs, &fs("0.5"), &small, false)
            .expect("small limits");
        assert_eq!(cache.stats().links, 3);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let cache = SharedProgramCache::with_capacity(2);
        let vs = geometry::passthrough_vertex_shader();
        for body in ["0.1", "0.2", "0.3"] {
            cache
                .get_or_link(&vs, &fs(body), &Limits::default(), false)
                .expect("link");
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The oldest ("0.1") was evicted: fetching it again relinks…
        cache
            .get_or_link(&vs, &fs("0.1"), &Limits::default(), false)
            .expect("relink");
        assert_eq!(cache.stats().links, 4);
        // …while the newest survivor ("0.3") still hits.
        cache
            .get_or_link(&vs, &fs("0.3"), &Limits::default(), false)
            .expect("hit");
        assert_eq!(cache.stats().hits, 1);
    }
}
