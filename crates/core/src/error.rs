//! Error type for the GPGPU framework.

use gpes_gles2::GlError;
use std::fmt;

/// Errors produced by the `gpes-core` framework.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputeError {
    /// An underlying GL call failed.
    Gl(GlError),
    /// A kernel or buffer does not fit the context's surface/texture sizes.
    TooLarge {
        /// What was too large.
        what: String,
    },
    /// The kernel specification is inconsistent (duplicate names, missing
    /// inputs, type misuse).
    BadKernel {
        /// Description of the problem.
        message: String,
    },
    /// A value was outside a codec's exactly-representable domain (e.g. an
    /// integer beyond ±2²⁴ routed through the fp32 path).
    Domain {
        /// Description of the violation.
        message: String,
    },
    /// An `until`-driven pipeline exhausted its iteration cap without the
    /// predicate firing. Distinct from [`ComputeError::BadKernel`] so a
    /// serving engine can classify a runaway convergence loop without
    /// string-matching: the job is well-formed, the *data* never converged.
    IterationCap {
        /// The pipeline that hit the cap.
        pipeline: String,
        /// The cap that was exhausted.
        cap: usize,
    },
}

impl fmt::Display for ComputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeError::Gl(e) => write!(f, "gl: {e}"),
            ComputeError::TooLarge { what } => write!(f, "{what} exceeds context capacity"),
            ComputeError::BadKernel { message } => write!(f, "bad kernel: {message}"),
            ComputeError::Domain { message } => write!(f, "domain error: {message}"),
            ComputeError::IterationCap { pipeline, cap } => write!(
                f,
                "pipeline `{pipeline}` ran {cap} iterations without its `until` \
                 predicate firing"
            ),
        }
    }
}

impl std::error::Error for ComputeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ComputeError::Gl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GlError> for ComputeError {
    fn from(e: GlError) -> Self {
        ComputeError::Gl(e)
    }
}

impl ComputeError {
    pub(crate) fn bad_kernel(message: impl Into<String>) -> Self {
        ComputeError::BadKernel {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ComputeError::bad_kernel("duplicate input `a`");
        assert!(e.to_string().contains("duplicate"));
        let e = ComputeError::TooLarge {
            what: "output of 10000000 elements".into(),
        };
        assert!(e.to_string().contains("capacity"));
    }

    #[test]
    fn gl_errors_convert() {
        let ge = GlError::Link {
            message: "nope".into(),
        };
        let ce: ComputeError = ge.into();
        assert!(matches!(ce, ComputeError::Gl(_)));
    }
}
