//! Error type for the GPGPU framework.

use gpes_gles2::GlError;
use std::fmt;

/// The admission-pipeline stage at which a dynamically submitted kernel
/// source was rejected (see `gpes_core::serve::KernelRegistry`). Ordered
/// as the pipeline runs them: signature → parse → strict → sema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionStage {
    /// Core-side signature validation: names, arity, output shape vs the
    /// engine's driver limits. Nothing GLSL was parsed yet.
    Signature,
    /// The generated fragment source failed to preprocess, lex or parse.
    Parse,
    /// Parsed fine, but violates a GLSL ES Appendix-A restriction
    /// (unbounded loop, `while`, non-constant index …) that a strict
    /// mobile driver would reject at compile time.
    Strict,
    /// Semantic analysis rejected the source (type errors, undeclared
    /// identifiers, bad calls).
    Sema,
}

impl fmt::Display for AdmissionStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdmissionStage::Signature => "signature",
            AdmissionStage::Parse => "parse",
            AdmissionStage::Strict => "strict",
            AdmissionStage::Sema => "sema",
        })
    }
}

/// The per-tenant resource whose quota a registration or submission
/// exceeded (see `gpes_core::serve::TenantQuotas`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuotaResource {
    /// `TenantQuotas::max_kernels` registered kernels.
    RegisteredKernels,
    /// `TenantQuotas::max_resident_bytes` of resident input data.
    ResidentBytes,
    /// `TenantQuotas::max_in_flight` queued or running jobs.
    InFlightJobs,
}

impl fmt::Display for QuotaResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QuotaResource::RegisteredKernels => "registered kernels",
            QuotaResource::ResidentBytes => "resident bytes",
            QuotaResource::InFlightJobs => "in-flight jobs",
        })
    }
}

/// Errors produced by the `gpes-core` framework.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputeError {
    /// An underlying GL call failed.
    Gl(GlError),
    /// A kernel or buffer does not fit the context's surface/texture sizes.
    TooLarge {
        /// What was too large.
        what: String,
    },
    /// The kernel specification is inconsistent (duplicate names, missing
    /// inputs, type misuse).
    BadKernel {
        /// Description of the problem.
        message: String,
    },
    /// A value was outside a codec's exactly-representable domain (e.g. an
    /// integer beyond ±2²⁴ routed through the fp32 path).
    Domain {
        /// Description of the violation.
        message: String,
    },
    /// An `until`-driven pipeline exhausted its iteration cap without the
    /// predicate firing. Distinct from [`ComputeError::BadKernel`] so a
    /// serving engine can classify a runaway convergence loop without
    /// string-matching: the job is well-formed, the *data* never converged.
    IterationCap {
        /// The pipeline that hit the cap.
        pipeline: String,
        /// The cap that was exhausted.
        cap: usize,
    },
    /// The engine's bounded admission queue was full: a `try_submit*`
    /// found no slot, or a blocking `submit*` timed out waiting for one.
    /// The typed backpressure signal — callers shed load or retry, the
    /// engine never buffers unboundedly.
    QueueFull {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The job's deadline passed before a worker dequeued it; the work
    /// was shed *before* touching the GPU.
    DeadlineExceeded {
        /// How long the job sat in the queue before being shed, in
        /// milliseconds.
        queued_ms: u64,
    },
    /// The job was cancelled via `JobHandle::cancel` while still queued;
    /// it never ran.
    Cancelled,
    /// The engine shut down (explicitly or by drop) with this job still
    /// queued; it was aborted without running.
    EngineShutdown,
    /// An engine invariant broke (e.g. a job result consumed twice, or a
    /// pool with no live workers left). Jobs affected get this instead of
    /// a hang or a cascading panic.
    EngineInternal {
        /// Description of the broken invariant.
        message: String,
    },
    /// A dynamically submitted kernel source failed the registry's
    /// admission pipeline. The kernel never reached a worker, let alone
    /// the GPU; nothing was cached.
    AdmissionRejected {
        /// Which pipeline stage rejected it.
        stage: AdmissionStage,
        /// The stage's diagnostic.
        message: String,
    },
    /// A registration or submission would exceed one of the tenant's
    /// quotas. The request was refused without consuming the resource.
    QuotaExceeded {
        /// The tenant whose quota was hit.
        tenant: String,
        /// Which quota was hit.
        resource: QuotaResource,
    },
}

impl fmt::Display for ComputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeError::Gl(e) => write!(f, "gl: {e}"),
            ComputeError::TooLarge { what } => write!(f, "{what} exceeds context capacity"),
            ComputeError::BadKernel { message } => write!(f, "bad kernel: {message}"),
            ComputeError::Domain { message } => write!(f, "domain error: {message}"),
            ComputeError::IterationCap { pipeline, cap } => write!(
                f,
                "pipeline `{pipeline}` ran {cap} iterations without its `until` \
                 predicate firing"
            ),
            ComputeError::QueueFull { capacity } => write!(
                f,
                "engine queue is full ({capacity} tasks); shed load or retry"
            ),
            ComputeError::DeadlineExceeded { queued_ms } => write!(
                f,
                "job deadline passed after {queued_ms} ms in the queue; shed before \
                 execution"
            ),
            ComputeError::Cancelled => write!(f, "job cancelled before execution"),
            ComputeError::EngineShutdown => {
                write!(f, "engine shut down before running this job")
            }
            ComputeError::EngineInternal { message } => {
                write!(f, "engine internal error: {message}")
            }
            ComputeError::AdmissionRejected { stage, message } => {
                write!(f, "kernel admission rejected at {stage} stage: {message}")
            }
            ComputeError::QuotaExceeded { tenant, resource } => {
                write!(f, "tenant `{tenant}` exceeded its {resource} quota")
            }
        }
    }
}

impl std::error::Error for ComputeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ComputeError::Gl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GlError> for ComputeError {
    fn from(e: GlError) -> Self {
        ComputeError::Gl(e)
    }
}

impl ComputeError {
    pub(crate) fn bad_kernel(message: impl Into<String>) -> Self {
        ComputeError::BadKernel {
            message: message.into(),
        }
    }

    /// Whether this error is *transient*: retrying the same work can
    /// legitimately succeed, because the failure came from the driver's
    /// (simulated) resource pressure rather than from the job itself.
    /// The serving engine's [`crate::serve::RetryPolicy`] re-runs
    /// transient failures mechanically; everything else — bad kernels,
    /// domain violations, shed/cancelled/aborted outcomes — is permanent
    /// and surfaces to the caller unchanged.
    ///
    /// | Error | Classification |
    /// |---|---|
    /// | `Gl(ResourceExhausted)` | transient |
    /// | `Gl(ContextLost)` | transient (needs a context rebuild first) |
    /// | every other variant | permanent |
    pub fn is_transient(&self) -> bool {
        matches!(self, ComputeError::Gl(e) if e.is_transient())
    }

    /// Whether this error means the GL context died
    /// ([`GlError::ContextLost`]): transient, but retrying is only useful
    /// on a *rebuilt* context — every handle into the old one is dead.
    pub fn is_context_loss(&self) -> bool {
        matches!(self, ComputeError::Gl(GlError::ContextLost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ComputeError::bad_kernel("duplicate input `a`");
        assert!(e.to_string().contains("duplicate"));
        let e = ComputeError::TooLarge {
            what: "output of 10000000 elements".into(),
        };
        assert!(e.to_string().contains("capacity"));
    }

    #[test]
    fn serving_error_display_forms() {
        let e = ComputeError::QueueFull { capacity: 4 };
        assert!(e.to_string().contains("full"));
        let e = ComputeError::DeadlineExceeded { queued_ms: 12 };
        assert!(e.to_string().contains("deadline"));
        assert!(ComputeError::Cancelled.to_string().contains("cancelled"));
        assert!(ComputeError::EngineShutdown
            .to_string()
            .contains("shut down"));
        let e = ComputeError::EngineInternal {
            message: "result already taken".into(),
        };
        assert!(e.to_string().contains("result already taken"));
    }

    #[test]
    fn admission_error_display_forms() {
        let e = ComputeError::AdmissionRejected {
            stage: AdmissionStage::Strict,
            message: "non-constant loop bound".into(),
        };
        let text = e.to_string();
        assert!(text.contains("strict") && text.contains("non-constant"));
        let e = ComputeError::QuotaExceeded {
            tenant: "acme".into(),
            resource: QuotaResource::InFlightJobs,
        };
        let text = e.to_string();
        assert!(text.contains("acme") && text.contains("in-flight jobs"));
        for stage in [
            AdmissionStage::Signature,
            AdmissionStage::Parse,
            AdmissionStage::Strict,
            AdmissionStage::Sema,
        ] {
            assert!(!stage.to_string().is_empty());
        }
    }

    #[test]
    fn transient_classification() {
        let exhausted = ComputeError::Gl(GlError::ResourceExhausted {
            message: "texture upload".into(),
        });
        assert!(exhausted.is_transient() && !exhausted.is_context_loss());
        let lost = ComputeError::Gl(GlError::ContextLost);
        assert!(lost.is_transient() && lost.is_context_loss());
        for permanent in [
            ComputeError::bad_kernel("dup"),
            ComputeError::Cancelled,
            ComputeError::QueueFull { capacity: 4 },
            ComputeError::DeadlineExceeded { queued_ms: 1 },
            ComputeError::Gl(GlError::Link {
                message: "nope".into(),
            }),
            ComputeError::AdmissionRejected {
                stage: AdmissionStage::Parse,
                message: "unexpected token".into(),
            },
            ComputeError::QuotaExceeded {
                tenant: "acme".into(),
                resource: QuotaResource::RegisteredKernels,
            },
        ] {
            assert!(!permanent.is_transient(), "{permanent} must be permanent");
        }
    }

    #[test]
    fn gl_errors_convert() {
        let ge = GlError::Link {
            message: "nope".into(),
        };
        let ce: ComputeError = ge.into();
        assert!(matches!(ce, ComputeError::Gl(_)));
    }
}
