//! The compute context: uploads, kernel dispatch and readback over the
//! simulated GLES2 driver.

use crate::addressing::ArrayLayout;
use crate::bind::Bindings;
use crate::buffer::{AnyGpuArray, GpuArray, GpuMatrix, GpuScalar, GpuTexels, TensorData};
use crate::cache::SharedProgramCache;
use crate::codec::{FloatSpecials, PackBias, ScalarType};
use crate::error::ComputeError;
use crate::geometry::{self, FULLSCREEN_QUAD, FULLSCREEN_QUAD_VERTICES, POSITION_ATTRIBUTE};
use crate::kernel::Kernel;
use crate::kernel::OutputKind;
use crate::pipeline::{PassRecord, Readback};
use gpes_gles2::{
    Context, Dispatch, DrawStats, ExecMode, Filter, FramebufferId, PrimitiveMode, ProgramId,
    TexFormat, TextureId, Wrap,
};
use gpes_glsl::exec::FloatModel;
use gpes_glsl::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Host-side object-churn counters for a [`ComputeContext`].
///
/// Steady-state iteration over the compile/bind split should create
/// **zero** new GL objects: every program comes out of the program cache
/// and every render target out of the recycling pool. Snapshot these
/// counters before and after an iteration loop to assert that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Programs actually compiled and linked (cache misses).
    pub programs_linked: u64,
    /// Programs installed from a process-wide [`SharedProgramCache`]
    /// without linking anything in this context (a GL object was still
    /// created to hold the adopted program).
    pub programs_adopted: u64,
    /// Kernel builds served by the program cache without a link.
    pub program_cache_hits: u64,
    /// Textures freshly allocated (pool misses), render targets and
    /// uploads alike.
    pub textures_created: u64,
    /// Textures served from the recycling pool (as render targets or
    /// upload storage).
    pub texture_pool_hits: u64,
    /// Textures returned to the pool via the `recycle_*` family.
    pub textures_recycled: u64,
    /// SPMD fragment batches dispatched across all draws. Zero under the
    /// scalar executors; the CI gate asserts it is positive whenever
    /// [`ExecMode::Spmd`] is selected, proving the lane path really ran.
    pub spmd_batches: u64,
    /// SPMD batches replayed scalar-style after a lane trap, plus draws
    /// that fell back to a scalar executor (lowerer rejected the shader,
    /// or the vertex stage, which is always scalar under `Spmd`).
    pub scalar_fallbacks: u64,
    /// Typed `f32` tensors that crossed the host↔GPU boundary (uploads
    /// and readbacks alike). A fully quantized serving path performs
    /// **zero** of these after warmup — the a16 CI gate asserts exactly
    /// that.
    pub f32_host_transfers: u64,
    /// Non-f32 (u8/i16/… §IV codec) tensors that crossed the host↔GPU
    /// boundary. The quantized twin of `f32_host_transfers`: a u8 CNN
    /// request moves its image up and its scores back as themselves, so
    /// this counter moves while the f32 one stands still.
    pub quantized_host_transfers: u64,
}

impl ContextStats {
    /// GL objects allocated so far (programs + textures): the number that
    /// must stop growing once an iteration loop reaches steady state.
    pub fn gl_objects_created(&self) -> u64 {
        self.programs_linked + self.programs_adopted + self.textures_created
    }

    /// Field-wise sum of two snapshots — used to accumulate counters
    /// across a context's lifetimes (e.g. an engine worker that replaced
    /// its context after a panicking job must not report zeroed stats).
    pub fn merged(&self, other: &ContextStats) -> ContextStats {
        ContextStats {
            programs_linked: self.programs_linked + other.programs_linked,
            programs_adopted: self.programs_adopted + other.programs_adopted,
            program_cache_hits: self.program_cache_hits + other.program_cache_hits,
            textures_created: self.textures_created + other.textures_created,
            texture_pool_hits: self.texture_pool_hits + other.texture_pool_hits,
            textures_recycled: self.textures_recycled + other.textures_recycled,
            spmd_batches: self.spmd_batches + other.spmd_batches,
            scalar_fallbacks: self.scalar_fallbacks + other.scalar_fallbacks,
            f32_host_transfers: self.f32_host_transfers + other.f32_host_transfers,
            quantized_host_transfers: self.quantized_host_transfers
                + other.quantized_host_transfers,
        }
    }
}

/// A kernel's bindings after validation against its signature and merging
/// with the build-time defaults: what one dispatch actually uses.
struct ResolvedDispatch {
    layout: ArrayLayout,
    /// Parallel to the kernel's input list (texture-unit order).
    inputs: Vec<(TextureId, ArrayLayout)>,
}

/// A GPGPU compute context over OpenGL ES 2 (the paper's framework).
///
/// Owns a GL context whose default framebuffer acts as the "screen"; all
/// final readbacks go through it or through FBO-attached textures, exactly
/// as the API allows on real hardware.
///
/// The context also owns two caches that keep iteration loops free of GL
/// object churn (the TFLite-delegate / CNNdroid pattern):
///
/// * a **program cache** keyed by generated fragment source — building an
///   identical kernel twice links one program;
/// * a **render-target pool** — textures released with the `recycle_*`
///   methods are reused by later render-to-texture dispatches of the same
///   dimensions.
pub struct ComputeContext {
    gl: Context,
    pack_bias: PackBias,
    specials: FloatSpecials,
    scratch_fbo: FramebufferId,
    copy_program: Option<ProgramId>,
    pass_log: Vec<PassRecord>,
    /// `vs \0 fs` source → linked program.
    program_cache: HashMap<String, ProgramId>,
    program_cache_enabled: bool,
    /// Optional process-wide cache consulted on local misses: workers in a
    /// serving pool install shared linked programs instead of relinking.
    shared_cache: Option<Arc<SharedProgramCache>>,
    /// `(width, height)` → recycled RGBA8 render targets.
    target_pool: HashMap<(TexFormat, u32, u32), Vec<TextureId>>,
    /// Textures currently held across all pool buckets.
    pooled_textures: usize,
    stats: ContextStats,
}

/// Per-`(width, height)` cap on pooled textures — a ping-pong dag needs at
/// most a handful of spares per shape; beyond that, recycling deletes.
const POOL_BUCKET_CAP: usize = 8;

/// Total pooled-texture cap across all buckets, so a long-lived context
/// serving many distinct shapes cannot retain memory without bound.
const POOL_TOTAL_CAP: usize = 256;

impl ComputeContext {
    /// Creates a context whose default framebuffer ("screen") is
    /// `width × height` — final outputs read through the screen path must
    /// fit inside it.
    ///
    /// # Errors
    ///
    /// Propagates GL context creation failures.
    pub fn new(width: u32, height: u32) -> Result<ComputeContext, ComputeError> {
        ComputeContext::from_gl(Context::new(width, height)?)
    }

    /// Creates a compute context with explicit driver limits — useful to
    /// exercise the chunked-execution paths on a simulated device with a
    /// small `GL_MAX_TEXTURE_SIZE`.
    ///
    /// # Errors
    ///
    /// Propagates GL context creation failures.
    pub fn with_limits(
        width: u32,
        height: u32,
        limits: gpes_gles2::Limits,
    ) -> Result<ComputeContext, ComputeError> {
        ComputeContext::from_gl(Context::new_with_limits(width, height, limits)?)
    }

    fn from_gl(mut gl: Context) -> Result<ComputeContext, ComputeError> {
        let scratch_fbo = gl.create_framebuffer();
        Ok(ComputeContext {
            gl,
            pack_bias: PackBias::default(),
            specials: FloatSpecials::default(),
            scratch_fbo,
            copy_program: None,
            pass_log: Vec::new(),
            program_cache: HashMap::new(),
            program_cache_enabled: true,
            shared_cache: None,
            target_pool: HashMap::new(),
            pooled_textures: 0,
            stats: ContextStats::default(),
        })
    }

    /// Object-churn counters (program cache / render-target pool).
    pub fn stats(&self) -> ContextStats {
        self.stats
    }

    /// Enables or disables the program cache (on by default; the off
    /// position exists for the `a9` host-cost ablation, which measures
    /// what rebuild-per-pass used to cost).
    pub fn set_program_cache_enabled(&mut self, enabled: bool) {
        self.program_cache_enabled = enabled;
    }

    /// Attaches a process-wide [`SharedProgramCache`]: local cache misses
    /// consult it and *install* the shared linked program instead of
    /// linking here, so N contexts building the same kernel link it once
    /// process-wide. See [`crate::serve::Engine`], which wires one cache
    /// through every worker context.
    pub fn set_shared_program_cache(&mut self, cache: Arc<SharedProgramCache>) {
        self.shared_cache = Some(cache);
    }

    /// The attached process-wide program cache, if any.
    pub fn shared_program_cache(&self) -> Option<&Arc<SharedProgramCache>> {
        self.shared_cache.as_ref()
    }

    /// Drops every cached program and deletes the underlying GL objects.
    /// Kernels built earlier keep working only if rebuilt; call this when
    /// retiring a family of shaders for good.
    pub fn clear_program_cache(&mut self) {
        for (_, id) in self.program_cache.drain() {
            self.gl.delete_program(id);
        }
    }

    /// Deletes every pooled render target.
    pub fn clear_target_pool(&mut self) {
        for (_, textures) in self.target_pool.drain() {
            for id in textures {
                self.gl.delete_texture(id);
            }
        }
        self.pooled_textures = 0;
    }

    /// Escape hatch to the underlying GL context.
    pub fn gl(&mut self) -> &mut Context {
        &mut self.gl
    }

    /// Installs a deterministic driver [`gpes_gles2::FaultPlan`] on the
    /// underlying context — see [`gpes_gles2::Context::install_fault_plan`].
    pub fn install_fault_plan(&mut self, plan: gpes_gles2::FaultPlan) {
        self.gl.install_fault_plan(plan);
    }

    /// Removes and returns the installed fault plan with its advanced
    /// state, so it can follow the worker onto a rebuilt context.
    pub fn take_fault_plan(&mut self) -> Option<gpes_gles2::FaultPlan> {
        self.gl.take_fault_plan()
    }

    /// Whether the underlying GL context has been lost (poisoned): every
    /// further GL call fails with `GlError::ContextLost` until the
    /// context is torn down and rebuilt.
    pub fn context_lost(&self) -> bool {
        self.gl.is_lost()
    }

    /// Faults the installed plan has injected so far (`0` with none).
    pub fn faults_injected(&self) -> u64 {
        self.gl.faults_injected()
    }

    /// The output byte bias mode (ablation A1). Takes effect for kernels
    /// built afterwards.
    pub fn set_pack_bias(&mut self, bias: PackBias) {
        self.pack_bias = bias;
    }

    /// Current pack bias.
    pub fn pack_bias(&self) -> PackBias {
        self.pack_bias
    }

    /// Float special-value handling for kernels built afterwards.
    pub fn set_float_specials(&mut self, specials: FloatSpecials) {
        self.specials = specials;
    }

    /// Current special-value handling.
    pub fn float_specials(&self) -> FloatSpecials {
        self.specials
    }

    /// Sets the simulated GPU float model (experiment E2).
    pub fn set_float_model(&mut self, model: FloatModel) {
        self.gl.set_float_model(model);
    }

    /// Sets fragment dispatch parallelism.
    pub fn set_dispatch(&mut self, dispatch: Dispatch) {
        self.gl.set_dispatch(dispatch);
    }

    /// Selects the shader execution mode: the SPMD lane VM (default),
    /// the scalar bytecode VM, or the tree-walking interpreter retained
    /// as the differential-testing oracle. All three are bit-identical
    /// in outputs and op profiles.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.gl.set_exec_mode(mode);
    }

    /// The current shader execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.gl.exec_mode()
    }

    /// Maximum texture side length supported by the driver.
    pub fn max_texture_side(&self) -> u32 {
        self.gl.limits().max_texture_size
    }

    // ---- uploads ---------------------------------------------------------

    /// Uploads a slice as a [`GpuArray`] (near-square texture layout,
    /// nearest filtering, clamp-to-edge).
    ///
    /// # Errors
    ///
    /// Layout or GL errors (e.g. data larger than the texture limit).
    pub fn upload<T: GpuScalar>(&mut self, data: &[T]) -> Result<GpuArray<T>, ComputeError> {
        let layout = ArrayLayout::for_len(data.len(), self.max_texture_side())?;
        let texture = self.upload_with_layout(data, layout)?;
        Ok(GpuArray::new(texture, layout))
    }

    /// Uploads a row-major matrix as a [`GpuMatrix`]
    /// (texel `(col, row)` = element `(row, col)`).
    ///
    /// # Errors
    ///
    /// `BadKernel` when `data.len() != rows*cols`; layout/GL errors.
    pub fn upload_matrix<T: GpuScalar>(
        &mut self,
        rows: u32,
        cols: u32,
        data: &[T],
    ) -> Result<GpuMatrix<T>, ComputeError> {
        if data.len() != rows as usize * cols as usize {
            return Err(ComputeError::bad_kernel(format!(
                "matrix data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        let layout = ArrayLayout::grid(rows, cols, self.max_texture_side())?;
        let texture = self.upload_with_layout(data, layout)?;
        Ok(GpuMatrix::new(texture, layout))
    }

    fn upload_with_layout<T: GpuScalar>(
        &mut self,
        data: &[T],
        layout: ArrayLayout,
    ) -> Result<TextureId, ComputeError> {
        self.note_host_transfer(T::SCALAR);
        let texels = T::encode_texels(data, layout.texel_count());
        let texture = self.alloc_texture(T::tex_format(), layout.width, layout.height);
        self.gl.tex_image_2d(
            texture,
            T::tex_format(),
            layout.width,
            layout.height,
            &texels,
        )?;
        self.gl
            .set_texture_filter(texture, Filter::Nearest, Filter::Nearest)?;
        self.gl
            .set_texture_wrap(texture, Wrap::ClampToEdge, Wrap::ClampToEdge)?;
        Ok(texture)
    }

    /// Frees the texture behind an array.
    pub fn delete_array<T: GpuScalar>(&mut self, array: GpuArray<T>) {
        self.gl.delete_texture(array.texture);
    }

    /// Frees the texture behind a matrix.
    pub fn delete_matrix<T: GpuScalar>(&mut self, matrix: GpuMatrix<T>) {
        self.gl.delete_texture(matrix.texture);
    }

    /// Returns an array's texture to the render-target pool instead of
    /// deleting it — the right retirement for ping-pong intermediates, so
    /// the next same-shaped render-to-texture dispatch allocates nothing.
    /// Non-RGBA8 textures (byte/short uploads) cannot serve as render
    /// targets and are deleted instead.
    pub fn recycle_array<T: GpuScalar>(&mut self, array: GpuArray<T>) {
        self.recycle_texture(array.texture);
    }

    /// [`ComputeContext::recycle_array`] for matrices.
    pub fn recycle_matrix<T: GpuScalar>(&mut self, matrix: GpuMatrix<T>) {
        self.recycle_texture(matrix.texture);
    }

    /// [`ComputeContext::recycle_array`] for raw texel buffers.
    pub fn recycle_texels(&mut self, texels: GpuTexels) {
        self.recycle_texture(texels.texture);
    }

    pub(crate) fn recycle_texture(&mut self, id: TextureId) {
        match self.gl.texture_info(id) {
            // Buckets are keyed by format as well as size: RGBA8 entries
            // can serve as render targets with storage in place, while
            // byte/short upload formats (LUMINANCE8, LUMINANCE_ALPHA8)
            // are re-imaged on reuse — pooling them keeps a steady-state
            // quantized upload loop at zero texture creations.
            Ok((format, w, h)) if self.pooled_textures < POOL_TOTAL_CAP => {
                let bucket = self.target_pool.entry((format, w, h)).or_default();
                if bucket.len() < POOL_BUCKET_CAP {
                    bucket.push(id);
                    self.pooled_textures += 1;
                    self.stats.textures_recycled += 1;
                } else {
                    self.gl.delete_texture(id);
                }
            }
            // Stale handles and pool overflow just go away.
            _ => self.gl.delete_texture(id),
        }
    }

    // Typed convenience aliases (discoverability).

    /// Uploads `f32` data; alias of [`ComputeContext::upload`].
    pub fn upload_f32(&mut self, data: &[f32]) -> Result<GpuArray<f32>, ComputeError> {
        self.upload(data)
    }

    /// Uploads `u32` data; alias of [`ComputeContext::upload`].
    pub fn upload_u32(&mut self, data: &[u32]) -> Result<GpuArray<u32>, ComputeError> {
        self.upload(data)
    }

    /// Uploads `i32` data; alias of [`ComputeContext::upload`].
    pub fn upload_i32(&mut self, data: &[i32]) -> Result<GpuArray<i32>, ComputeError> {
        self.upload(data)
    }

    /// Uploads `u8` data; alias of [`ComputeContext::upload`].
    pub fn upload_u8(&mut self, data: &[u8]) -> Result<GpuArray<u8>, ComputeError> {
        self.upload(data)
    }

    /// Uploads `u16` data; alias of [`ComputeContext::upload`].
    pub fn upload_u16(&mut self, data: &[u16]) -> Result<GpuArray<u16>, ComputeError> {
        self.upload(data)
    }

    /// Uploads `i16` data; alias of [`ComputeContext::upload`].
    pub fn upload_i16(&mut self, data: &[i16]) -> Result<GpuArray<i16>, ComputeError> {
        self.upload(data)
    }

    /// Uploads `i8` data; alias of [`ComputeContext::upload`].
    pub fn upload_i8(&mut self, data: &[i8]) -> Result<GpuArray<i8>, ComputeError> {
        self.upload(data)
    }

    /// Uploads raw RGBA8 texels (`4·width·height` bytes) as an untyped
    /// [`GpuTexels`] buffer for kernels that interpret texels themselves.
    ///
    /// # Errors
    ///
    /// `BadKernel` when the byte count does not match the dimensions;
    /// layout/GL errors as in [`ComputeContext::upload`].
    pub fn upload_texels(
        &mut self,
        width: u32,
        height: u32,
        bytes: &[u8],
    ) -> Result<GpuTexels, ComputeError> {
        if bytes.len() != 4 * width as usize * height as usize {
            return Err(ComputeError::bad_kernel(format!(
                "texel data is {} bytes, {width}x{height} RGBA8 needs {}",
                bytes.len(),
                4 * width as usize * height as usize
            )));
        }
        let layout = ArrayLayout::grid(height, width, self.max_texture_side())?;
        let texture = self.alloc_texture(TexFormat::Rgba8, width, height);
        self.gl
            .tex_image_2d(texture, TexFormat::Rgba8, width, height, bytes)?;
        self.gl
            .set_texture_filter(texture, Filter::Nearest, Filter::Nearest)?;
        self.gl
            .set_texture_wrap(texture, Wrap::ClampToEdge, Wrap::ClampToEdge)?;
        Ok(GpuTexels::new(texture, layout))
    }

    /// Uploads a linear run of RGBA8 texels into a near-square texture.
    ///
    /// # Errors
    ///
    /// Layout or GL errors (e.g. more texels than the texture limit).
    pub fn upload_texels_linear(&mut self, texels: &[[u8; 4]]) -> Result<GpuTexels, ComputeError> {
        let layout = ArrayLayout::for_len(texels.len(), self.max_texture_side())?;
        let mut bytes = Vec::with_capacity(layout.texel_count() * 4);
        for t in texels {
            bytes.extend_from_slice(t);
        }
        bytes.resize(layout.texel_count() * 4, 0);
        let texture = self.alloc_texture(TexFormat::Rgba8, layout.width, layout.height);
        self.gl.tex_image_2d(
            texture,
            TexFormat::Rgba8,
            layout.width,
            layout.height,
            &bytes,
        )?;
        self.gl
            .set_texture_filter(texture, Filter::Nearest, Filter::Nearest)?;
        self.gl
            .set_texture_wrap(texture, Wrap::ClampToEdge, Wrap::ClampToEdge)?;
        Ok(GpuTexels::new(texture, layout))
    }

    /// Frees the texture behind a texel buffer.
    pub fn delete_texels(&mut self, texels: GpuTexels) {
        self.gl.delete_texture(texels.texture);
    }

    // ---- kernel plumbing (used by KernelBuilder) ----------------------------

    /// Compiles (or fetches from the cache) a program pair.
    pub(crate) fn compile_program_cached(
        &mut self,
        vs: &str,
        fs: &str,
    ) -> Result<ProgramId, ComputeError> {
        let key = format!("{vs}\u{0}{fs}");
        if self.program_cache_enabled {
            if let Some(&id) = self.program_cache.get(&key) {
                self.stats.program_cache_hits += 1;
                return Ok(id);
            }
        }
        // Local miss: adopt from the process-wide cache when one is
        // attached (linking there at most once per source per process),
        // otherwise link in this context.
        let shared = if self.program_cache_enabled {
            self.shared_cache.clone()
        } else {
            None
        };
        let id = match shared {
            Some(shared) => {
                let strict = self.gl.strict_shaders();
                let program = shared.get_or_link(vs, fs, self.gl.limits(), strict)?;
                self.stats.programs_adopted += 1;
                self.gl.install_program((*program).clone())
            }
            None => {
                let id = self.gl.create_program(vs, fs)?;
                self.stats.programs_linked += 1;
                id
            }
        };
        if self.program_cache_enabled {
            self.program_cache.insert(key, id);
        }
        Ok(id)
    }

    pub(crate) fn compile_kernel_program(
        &mut self,
        fragment_source: &str,
    ) -> Result<ProgramId, ComputeError> {
        let vs = geometry::passthrough_vertex_shader();
        self.compile_program_cached(&vs, fragment_source)
    }

    /// Updates a *default* uniform declared at build time; alias of
    /// [`Kernel::set_uniform`] kept for call-site symmetry with the
    /// dispatch methods.
    ///
    /// # Errors
    ///
    /// `BadKernel` for unknown names or type mismatches.
    pub fn set_kernel_uniform(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        value: Value,
    ) -> Result<(), ComputeError> {
        kernel.set_uniform(name, value)
    }

    // ---- binding resolution + execution -------------------------------------

    /// Checks a [`Bindings`] override set against a kernel's signature and
    /// merges it with the kernel's defaults.
    fn resolve_bindings(
        &self,
        kernel: &Kernel,
        bindings: &Bindings,
    ) -> Result<ResolvedDispatch, ComputeError> {
        for b in &bindings.inputs {
            let spec = kernel
                .inputs
                .iter()
                .find(|s| s.name == b.name)
                .ok_or_else(|| {
                    ComputeError::bad_kernel(format!(
                        "kernel `{}` declares no input `{}`",
                        kernel.name, b.name
                    ))
                })?;
            if spec.encoding != b.encoding {
                return Err(ComputeError::bad_kernel(format!(
                    "input `{}` of kernel `{}` is declared {:?}, bound {:?}",
                    b.name, kernel.name, spec.encoding, b.encoding
                )));
            }
        }
        for (name, value) in &bindings.uniforms {
            let decl = kernel
                .uniforms
                .iter()
                .find(|(n, _)| n == name)
                .ok_or_else(|| {
                    ComputeError::bad_kernel(format!(
                        "kernel `{}` declares no uniform `{name}`",
                        kernel.name
                    ))
                })?;
            if std::mem::discriminant(&decl.1) != std::mem::discriminant(value) {
                return Err(ComputeError::bad_kernel(format!(
                    "uniform `{name}` of kernel `{}` is {}, bound {}",
                    kernel.name,
                    decl.1.ty(),
                    value.ty()
                )));
            }
        }
        let layout = match bindings.output {
            None => kernel.output_layout,
            Some(shape) => shape.resolve(self.max_texture_side())?,
        };
        let inputs = kernel
            .inputs
            .iter()
            .map(|spec| {
                bindings
                    .inputs
                    .iter()
                    .find(|b| b.name == spec.name)
                    .map(|b| (b.texture, b.layout))
                    .unwrap_or((spec.texture, spec.layout))
            })
            .collect();
        Ok(ResolvedDispatch { layout, inputs })
    }

    /// Issues one draw for `kernel` under resolved bindings. All uniform
    /// state (sampler units, dimension vectors, user uniforms) is applied
    /// here, per dispatch — programs are shared through the cache, so
    /// nothing may rely on values persisting inside the GL program. The
    /// kernel's declared defaults go first, then each `overrides` slice in
    /// order (later wins).
    fn dispatch_resolved(
        &mut self,
        kernel: &Kernel,
        resolved: &ResolvedDispatch,
        overrides: &[&[(String, Value)]],
        to_screen: bool,
        reused_target: bool,
    ) -> Result<DrawStats, ComputeError> {
        self.gl.use_program(kernel.program)?;
        self.gl.set_uniform(
            "u_out_dims",
            Value::Vec2([resolved.layout.width as f32, resolved.layout.height as f32]),
        )?;
        for (unit, ((sampler, dims), &(texture, layout))) in kernel
            .input_uniform_names
            .iter()
            .zip(&resolved.inputs)
            .enumerate()
        {
            self.gl.bind_texture(unit as u32, texture)?;
            self.gl.set_uniform(sampler, Value::Int(unit as i32))?;
            self.gl.set_uniform(
                dims,
                Value::Vec2([layout.width as f32, layout.height as f32]),
            )?;
        }
        for unit in kernel.inputs.len()..self.gl.limits().max_texture_units {
            self.gl.unbind_texture(unit as u32);
        }
        for (name, value) in kernel
            .uniforms
            .iter()
            .chain(overrides.iter().flat_map(|slice| slice.iter()))
        {
            self.gl.set_uniform(name, value.clone())?;
        }
        self.gl
            .set_attribute(POSITION_ATTRIBUTE, 2, &FULLSCREEN_QUAD)?;
        let (w, h) = (resolved.layout.width, resolved.layout.height);
        if to_screen {
            self.gl.bind_framebuffer(None)?;
        }
        self.gl.viewport(0, 0, w as i32, h as i32);
        let stats = self
            .gl
            .draw_arrays(PrimitiveMode::Triangles, 0, FULLSCREEN_QUAD_VERTICES)?;
        self.note_draw(&stats);
        self.pass_log.push(PassRecord {
            kernel: kernel.name.clone(),
            stats,
            output_texels: resolved.layout.texel_count() as u64,
            reused_target,
        });
        Ok(stats)
    }

    /// Pops a valid same-format same-sized texture from the recycling
    /// pool, if any.
    fn pooled_texture(&mut self, format: TexFormat, width: u32, height: u32) -> Option<TextureId> {
        let pool = self.target_pool.get_mut(&(format, width, height))?;
        while let Some(id) = pool.pop() {
            self.pooled_textures = self.pooled_textures.saturating_sub(1);
            // Skip handles the caller deleted behind the pool's back.
            if self.gl.texture_info(id).is_ok() {
                self.stats.texture_pool_hits += 1;
                return Some(id);
            }
        }
        None
    }

    /// A texture object for `width × height` texels of `format`:
    /// recycled when the pool has one (the caller re-images or overdraws
    /// it), fresh otherwise.
    fn alloc_texture(&mut self, format: TexFormat, width: u32, height: u32) -> TextureId {
        match self.pooled_texture(format, width, height) {
            Some(id) => id,
            None => {
                self.stats.textures_created += 1;
                self.gl.create_texture()
            }
        }
    }

    /// Acquires an RGBA8 render target shaped like `layout` — from the
    /// recycling pool when possible — attaches it to the scratch FBO and
    /// leaves that FBO bound. Returns the texture and whether it was
    /// pooled.
    pub(crate) fn acquire_render_target(
        &mut self,
        layout: ArrayLayout,
    ) -> Result<(TextureId, bool), ComputeError> {
        // Pooled textures are always RGBA8 with storage in place; kernel
        // dispatches draw a full-coverage quad that overwrites every
        // texel, so no clear is needed (callers driving scissored draws
        // through the raw `gl()` hatch must clear themselves). Sampler
        // parameters are re-asserted in case the caller changed them on
        // the recycled texture.
        if let Some(id) = self.pooled_texture(TexFormat::Rgba8, layout.width, layout.height) {
            self.gl
                .set_texture_filter(id, Filter::Nearest, Filter::Nearest)?;
            self.gl
                .set_texture_wrap(id, Wrap::ClampToEdge, Wrap::ClampToEdge)?;
            self.gl.framebuffer_texture(self.scratch_fbo, id)?;
            self.gl.bind_framebuffer(Some(self.scratch_fbo))?;
            return Ok((id, true));
        }
        let target = self.gl.create_texture();
        self.stats.textures_created += 1;
        self.gl
            .tex_storage(target, TexFormat::Rgba8, layout.width, layout.height)?;
        self.gl
            .set_texture_filter(target, Filter::Nearest, Filter::Nearest)?;
        self.gl
            .set_texture_wrap(target, Wrap::ClampToEdge, Wrap::ClampToEdge)?;
        self.gl.framebuffer_texture(self.scratch_fbo, target)?;
        self.gl.bind_framebuffer(Some(self.scratch_fbo))?;
        Ok((target, false))
    }

    /// Attaches an already-owned texture as the render target (used by the
    /// pipeline's in-place fast path) and leaves the scratch FBO bound.
    pub(crate) fn attach_render_target(&mut self, target: TextureId) -> Result<(), ComputeError> {
        self.gl.framebuffer_texture(self.scratch_fbo, target)?;
        self.gl.bind_framebuffer(Some(self.scratch_fbo))?;
        Ok(())
    }

    /// Runs a kernel into a render-to-texture target under explicit
    /// [`Bindings`], returning the result as a new [`GpuArray`].
    ///
    /// # Errors
    ///
    /// `BadKernel` when `T` does not match the kernel's declared output
    /// type or the bindings disagree with the kernel signature; GL/shader
    /// errors during the draw.
    pub fn run_to_array_with<T: GpuScalar>(
        &mut self,
        kernel: &Kernel,
        bindings: &Bindings,
    ) -> Result<GpuArray<T>, ComputeError> {
        if kernel.output_kind != OutputKind::Scalar(T::SCALAR) {
            return Err(ComputeError::bad_kernel(format!(
                "kernel `{}` outputs {:?}, requested {}",
                kernel.name,
                kernel.output_kind,
                T::SCALAR
            )));
        }
        let resolved = self.resolve_bindings(kernel, bindings)?;
        let (target, pooled) = self.acquire_render_target(resolved.layout)?;
        let result =
            self.dispatch_resolved(kernel, &resolved, &[&bindings.uniforms], false, pooled);
        self.gl.bind_framebuffer(None)?;
        result?;
        Ok(GpuArray::new(target, resolved.layout))
    }

    /// Runs a kernel into a fresh texture (render-to-texture) under its
    /// build-time default bindings.
    ///
    /// # Errors
    ///
    /// As [`ComputeContext::run_to_array_with`].
    pub fn run_to_array<T: GpuScalar>(
        &mut self,
        kernel: &Kernel,
    ) -> Result<GpuArray<T>, ComputeError> {
        self.run_to_array_with(kernel, &Bindings::new())
    }

    /// Runs a kernel straight into the default framebuffer — the paper's
    /// "careful kernel ordering" readback strategy (workaround #7) — and
    /// decodes the result, under explicit [`Bindings`].
    ///
    /// # Errors
    ///
    /// [`ComputeError::TooLarge`] when the output exceeds the screen;
    /// type-mismatch and GL errors as in
    /// [`ComputeContext::run_to_array_with`].
    pub fn run_and_read_with<T: GpuScalar>(
        &mut self,
        kernel: &Kernel,
        bindings: &Bindings,
    ) -> Result<Vec<T>, ComputeError> {
        if kernel.output_kind != OutputKind::Scalar(T::SCALAR) {
            return Err(ComputeError::bad_kernel(format!(
                "kernel `{}` outputs {:?}, requested {}",
                kernel.name,
                kernel.output_kind,
                T::SCALAR
            )));
        }
        let resolved = self.resolve_bindings(kernel, bindings)?;
        let layout = resolved.layout;
        let (sw, sh) = self.screen_size();
        if layout.width > sw || layout.height > sh {
            return Err(ComputeError::TooLarge {
                what: format!(
                    "kernel output {}x{} vs {}x{} screen",
                    layout.width, layout.height, sw, sh
                ),
            });
        }
        self.dispatch_resolved(kernel, &resolved, &[&bindings.uniforms], true, false)?;
        let bytes = self.gl.read_pixels(0, 0, layout.width, layout.height)?;
        self.note_host_transfer(T::SCALAR);
        Ok(T::decode_framebuffer(&bytes, layout.len))
    }

    /// Default-bindings form of [`ComputeContext::run_and_read_with`].
    ///
    /// # Errors
    ///
    /// As [`ComputeContext::run_and_read_with`].
    pub fn run_and_read<T: GpuScalar>(&mut self, kernel: &Kernel) -> Result<Vec<T>, ComputeError> {
        self.run_and_read_with(kernel, &Bindings::new())
    }

    /// Alias of [`ComputeContext::run_and_read`] for `f32` kernels.
    pub fn run_f32(&mut self, kernel: &Kernel) -> Result<Vec<f32>, ComputeError> {
        self.run_and_read(kernel)
    }

    /// Alias of [`ComputeContext::run_and_read_with`] for `f32` kernels.
    pub fn run_f32_with(
        &mut self,
        kernel: &Kernel,
        bindings: &Bindings,
    ) -> Result<Vec<f32>, ComputeError> {
        self.run_and_read_with(kernel, bindings)
    }

    /// Runs a raw-texel kernel into a render target under explicit
    /// [`Bindings`] and returns the untyped result for further passes.
    ///
    /// # Errors
    ///
    /// `BadKernel` when the kernel has a scalar (non-raw) output or the
    /// bindings disagree with the signature; GL or shader errors.
    pub fn run_to_texels_with(
        &mut self,
        kernel: &Kernel,
        bindings: &Bindings,
    ) -> Result<GpuTexels, ComputeError> {
        if kernel.output_kind != OutputKind::RawTexel {
            return Err(ComputeError::bad_kernel(format!(
                "kernel `{}` has a scalar output; use run_to_array",
                kernel.name
            )));
        }
        let resolved = self.resolve_bindings(kernel, bindings)?;
        let (target, pooled) = self.acquire_render_target(resolved.layout)?;
        let result =
            self.dispatch_resolved(kernel, &resolved, &[&bindings.uniforms], false, pooled);
        self.gl.bind_framebuffer(None)?;
        result?;
        Ok(GpuTexels::new(target, resolved.layout))
    }

    /// Default-bindings form of [`ComputeContext::run_to_texels_with`].
    ///
    /// # Errors
    ///
    /// As [`ComputeContext::run_to_texels_with`].
    pub fn run_to_texels(&mut self, kernel: &Kernel) -> Result<GpuTexels, ComputeError> {
        self.run_to_texels_with(kernel, &Bindings::new())
    }

    /// Runs a raw-texel kernel straight into the default framebuffer under
    /// explicit [`Bindings`] and returns the RGBA bytes row by row.
    ///
    /// # Errors
    ///
    /// `BadKernel` for scalar-output kernels, [`ComputeError::TooLarge`]
    /// when the output exceeds the screen, and GL errors.
    pub fn run_and_read_texels_with(
        &mut self,
        kernel: &Kernel,
        bindings: &Bindings,
    ) -> Result<Vec<u8>, ComputeError> {
        if kernel.output_kind != OutputKind::RawTexel {
            return Err(ComputeError::bad_kernel(format!(
                "kernel `{}` has a scalar output; use run_and_read",
                kernel.name
            )));
        }
        let resolved = self.resolve_bindings(kernel, bindings)?;
        let layout = resolved.layout;
        let (sw, sh) = self.screen_size();
        if layout.width > sw || layout.height > sh {
            return Err(ComputeError::TooLarge {
                what: format!(
                    "kernel output {}x{} vs {}x{} screen",
                    layout.width, layout.height, sw, sh
                ),
            });
        }
        self.dispatch_resolved(kernel, &resolved, &[&bindings.uniforms], true, false)?;
        Ok(self.gl.read_pixels(0, 0, layout.width, layout.height)?)
    }

    /// Default-bindings form of
    /// [`ComputeContext::run_and_read_texels_with`].
    ///
    /// # Errors
    ///
    /// As [`ComputeContext::run_and_read_texels_with`].
    pub fn run_and_read_texels(&mut self, kernel: &Kernel) -> Result<Vec<u8>, ComputeError> {
        self.run_and_read_texels_with(kernel, &Bindings::new())
    }

    /// Pipeline entry point: dispatch under pre-resolved pieces. The
    /// uniform `overrides` slices apply after the kernel defaults, in
    /// order (the pipeline passes its static overrides, then the
    /// per-iteration values). Returns the draw stats.
    pub(crate) fn dispatch_for_pipeline(
        &mut self,
        kernel: &Kernel,
        inputs: Vec<(TextureId, ArrayLayout)>,
        layout: ArrayLayout,
        overrides: &[&[(String, Value)]],
        to_screen: bool,
        reused_target: bool,
    ) -> Result<DrawStats, ComputeError> {
        let resolved = ResolvedDispatch { layout, inputs };
        self.dispatch_resolved(kernel, &resolved, overrides, to_screen, reused_target)
    }

    /// Reads a texel buffer back as RGBA bytes through the FBO path.
    ///
    /// # Errors
    ///
    /// GL errors (e.g. a deleted backing texture).
    pub fn read_texels(&mut self, texels: &GpuTexels) -> Result<Vec<u8>, ComputeError> {
        let layout = texels.layout;
        self.gl
            .framebuffer_texture(self.scratch_fbo, texels.texture)?;
        self.gl.bind_framebuffer(Some(self.scratch_fbo))?;
        let bytes = self.gl.read_pixels(0, 0, layout.width, layout.height);
        self.gl.bind_framebuffer(None)?;
        Ok(bytes?)
    }

    /// Reads an array back to host memory using the chosen strategy.
    ///
    /// # Errors
    ///
    /// GL errors; `TooLarge` for the copy-shader path when the array
    /// exceeds the screen.
    pub fn read_array<T: GpuScalar>(
        &mut self,
        array: &GpuArray<T>,
        strategy: Readback,
    ) -> Result<Vec<T>, ComputeError> {
        let layout = array.layout;
        let bytes = match strategy {
            Readback::DirectFbo => {
                self.gl
                    .framebuffer_texture(self.scratch_fbo, array.texture)?;
                self.gl.bind_framebuffer(Some(self.scratch_fbo))?;
                let bytes = self.gl.read_pixels(0, 0, layout.width, layout.height);
                self.gl.bind_framebuffer(None)?;
                bytes?
            }
            Readback::CopyShader => {
                let (sw, sh) = self.screen_size();
                if layout.width > sw || layout.height > sh {
                    return Err(ComputeError::TooLarge {
                        what: format!(
                            "array {}x{} vs {}x{} screen",
                            layout.width, layout.height, sw, sh
                        ),
                    });
                }
                let copy = self.copy_program()?;
                self.gl.bind_framebuffer(None)?;
                self.gl.use_program(copy)?;
                self.gl.bind_texture(0, array.texture)?;
                for unit in 1..self.gl.limits().max_texture_units {
                    self.gl.unbind_texture(unit as u32);
                }
                self.gl.set_uniform("u_src", Value::Int(0))?;
                self.gl
                    .set_attribute(POSITION_ATTRIBUTE, 2, &FULLSCREEN_QUAD)?;
                self.gl
                    .viewport(0, 0, layout.width as i32, layout.height as i32);
                let stats =
                    self.gl
                        .draw_arrays(PrimitiveMode::Triangles, 0, FULLSCREEN_QUAD_VERTICES)?;
                self.note_draw(&stats);
                self.pass_log.push(PassRecord {
                    kernel: "gpes.copy".into(),
                    stats,
                    output_texels: layout.texel_count() as u64,
                    reused_target: false,
                });
                self.gl.read_pixels(0, 0, layout.width, layout.height)?
            }
        };
        self.note_host_transfer(T::SCALAR);
        Ok(T::decode_framebuffer(&bytes, layout.len))
    }

    /// [`ComputeContext::read_array`] over a runtime-tagged array: decodes
    /// through the codec named by the array's scalar tag and returns the
    /// matching [`TensorData`] variant — u8/i16 buffers come back as
    /// themselves, never widened through f32 on the host.
    ///
    /// # Errors
    ///
    /// As [`ComputeContext::read_array`].
    pub fn read_array_any(
        &mut self,
        array: &AnyGpuArray,
        strategy: Readback,
    ) -> Result<TensorData, ComputeError> {
        fn typed<T: GpuScalar>(
            cc: &mut ComputeContext,
            array: &AnyGpuArray,
            strategy: Readback,
        ) -> Result<Vec<T>, ComputeError> {
            let typed = array.downcast::<T>().expect("scalar matched by caller");
            cc.read_array(&typed, strategy)
        }
        Ok(match array.scalar() {
            ScalarType::U8 => TensorData::U8(typed(self, array, strategy)?),
            ScalarType::I8 => TensorData::I8(typed(self, array, strategy)?),
            ScalarType::U16 => TensorData::U16(typed(self, array, strategy)?),
            ScalarType::I16 => TensorData::I16(typed(self, array, strategy)?),
            ScalarType::U32 => TensorData::U32(typed(self, array, strategy)?),
            ScalarType::I32 => TensorData::I32(typed(self, array, strategy)?),
            ScalarType::F32 => TensorData::F32(typed(self, array, strategy)?),
        })
    }

    /// Uploads a runtime-tagged tensor as a linear array, preserving its
    /// scalar format on the wire (a u8 tensor travels through the
    /// LUMINANCE8 path, an i16 one through LUMINANCE_ALPHA8, …).
    ///
    /// # Errors
    ///
    /// As [`ComputeContext::upload`].
    pub fn upload_any(&mut self, data: &TensorData) -> Result<AnyGpuArray, ComputeError> {
        Ok(match data {
            TensorData::U8(v) => self.upload(v)?.erase(),
            TensorData::I8(v) => self.upload(v)?.erase(),
            TensorData::U16(v) => self.upload(v)?.erase(),
            TensorData::I16(v) => self.upload(v)?.erase(),
            TensorData::U32(v) => self.upload(v)?.erase(),
            TensorData::I32(v) => self.upload(v)?.erase(),
            TensorData::F32(v) => self.upload(v)?.erase(),
        })
    }

    /// Uploads a runtime-tagged tensor as a `rows × cols` matrix viewed
    /// linearly; the grid shape drives the texture layout exactly as
    /// [`ComputeContext::upload_matrix`].
    ///
    /// # Errors
    ///
    /// As [`ComputeContext::upload_matrix`].
    pub fn upload_any_matrix(
        &mut self,
        rows: u32,
        cols: u32,
        data: &TensorData,
    ) -> Result<AnyGpuArray, ComputeError> {
        Ok(match data {
            TensorData::U8(v) => self.upload_matrix(rows, cols, v)?.as_array().erase(),
            TensorData::I8(v) => self.upload_matrix(rows, cols, v)?.as_array().erase(),
            TensorData::U16(v) => self.upload_matrix(rows, cols, v)?.as_array().erase(),
            TensorData::I16(v) => self.upload_matrix(rows, cols, v)?.as_array().erase(),
            TensorData::U32(v) => self.upload_matrix(rows, cols, v)?.as_array().erase(),
            TensorData::I32(v) => self.upload_matrix(rows, cols, v)?.as_array().erase(),
            TensorData::F32(v) => self.upload_matrix(rows, cols, v)?.as_array().erase(),
        })
    }

    /// [`ComputeContext::recycle_array`] for runtime-tagged arrays.
    pub fn recycle_any(&mut self, array: AnyGpuArray) {
        self.recycle_texture(array.texture());
    }

    /// Runs a kernel into a render-to-texture target under explicit
    /// [`Bindings`], returning a runtime-tagged handle carrying the
    /// kernel's declared output scalar — the dispatch path for serving
    /// workers chaining mixed-format passes.
    ///
    /// # Errors
    ///
    /// `BadKernel` for raw-texel kernels; binding/GL errors as
    /// [`ComputeContext::run_to_array_with`].
    pub fn run_to_array_any_with(
        &mut self,
        kernel: &Kernel,
        bindings: &Bindings,
    ) -> Result<AnyGpuArray, ComputeError> {
        let scalar = match kernel.output_kind {
            OutputKind::Scalar(scalar) => scalar,
            OutputKind::RawTexel => {
                return Err(ComputeError::bad_kernel(format!(
                    "kernel `{}` has a raw-texel output; use run_to_texels",
                    kernel.name
                )))
            }
        };
        let resolved = self.resolve_bindings(kernel, bindings)?;
        let (target, pooled) = self.acquire_render_target(resolved.layout)?;
        let result =
            self.dispatch_resolved(kernel, &resolved, &[&bindings.uniforms], false, pooled);
        self.gl.bind_framebuffer(None)?;
        result?;
        Ok(AnyGpuArray {
            texture: target,
            layout: resolved.layout,
            scalar,
        })
    }

    fn copy_program(&mut self) -> Result<ProgramId, ComputeError> {
        if let Some(id) = self.copy_program {
            return Ok(id);
        }
        let id = self.gl.create_program(
            &geometry::passthrough_vertex_shader(),
            &geometry::copy_fragment_shader(),
        )?;
        self.copy_program = Some(id);
        Ok(id)
    }

    /// Dimensions of the default framebuffer ("screen").
    pub fn screen_size(&self) -> (u32, u32) {
        self.gl.default_size()
    }

    /// Folds one draw's executor counters into the context-lifetime stats.
    fn note_draw(&mut self, stats: &DrawStats) {
        self.stats.spmd_batches += stats.spmd_batches;
        self.stats.scalar_fallbacks += stats.scalar_fallbacks;
    }

    /// Counts one typed tensor crossing the host↔GPU boundary.
    fn note_host_transfer(&mut self, scalar: ScalarType) {
        if scalar == ScalarType::F32 {
            self.stats.f32_host_transfers += 1;
        } else {
            self.stats.quantized_host_transfers += 1;
        }
    }

    /// Records a pass executed outside the fragment-kernel dispatcher
    /// (used by the vertex-compute path).
    pub(crate) fn record_pass(&mut self, kernel: &str, stats: DrawStats, output_texels: u64) {
        self.note_draw(&stats);
        self.pass_log.push(PassRecord {
            kernel: kernel.to_owned(),
            stats,
            output_texels,
            reused_target: false,
        });
    }

    /// Drains the log of executed passes (kernel name + draw stats),
    /// consumed by the `gpes-perf` timing model.
    pub fn take_pass_log(&mut self) -> Vec<PassRecord> {
        std::mem::take(&mut self.pass_log)
    }

    /// Read-only view of the pass log.
    pub fn pass_log(&self) -> &[PassRecord] {
        &self.pass_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ScalarType;

    #[test]
    fn upload_and_direct_read_round_trip_f32() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let data = vec![1.5f32, -2.25, 3.75, 0.0, 1.0e-20];
        let arr = cc.upload(&data).expect("upload");
        let back = cc.read_array(&arr, Readback::DirectFbo).expect("read");
        assert_eq!(back, data);
    }

    #[test]
    fn upload_and_copy_shader_read_round_trip_u32() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let data = vec![0u32, 1, 65535, 1 << 24, 123_456];
        let arr = cc.upload(&data).expect("upload");
        let back = cc.read_array(&arr, Readback::CopyShader).expect("read");
        assert_eq!(back, data);
    }

    #[test]
    fn byte_arrays_round_trip_both_strategies() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let data: Vec<u8> = (0..=255).collect();
        let arr = cc.upload(&data).expect("upload");
        // LUMINANCE8 is not colour-renderable: DirectFbo must fail…
        let err = cc.read_array(&arr, Readback::DirectFbo).unwrap_err();
        assert!(matches!(err, ComputeError::Gl(_)));
        // …but the copy shader path works (it renders into RGBA8).
        let back = cc.read_array(&arr, Readback::CopyShader).expect("read");
        assert_eq!(back, data);
    }

    #[test]
    fn simple_kernel_end_to_end() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let a = cc.upload(&[1.0f32, 2.0, 3.0, 4.0]).expect("a");
        let b = cc.upload(&[10.0f32, 20.0, 30.0, 40.0]).expect("b");
        let k = Kernel::builder("add")
            .input("a", &a)
            .input("b", &b)
            .output(ScalarType::F32, 4)
            .body("return fetch_a(idx) + fetch_b(idx);")
            .build(&mut cc)
            .expect("build");
        let out = cc.run_f32(&k).expect("run");
        assert_eq!(out, vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(cc.pass_log().len(), 1);
        assert_eq!(cc.pass_log()[0].kernel, "add");
    }

    #[test]
    fn kernel_chaining_through_run_to_array() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let a = cc.upload(&[1.0f32, 2.0, 3.0]).expect("a");
        let double = Kernel::builder("double")
            .input("a", &a)
            .output(ScalarType::F32, 3)
            .body("return fetch_a(idx) * 2.0;")
            .build(&mut cc)
            .expect("build double");
        let doubled: GpuArray<f32> = cc.run_to_array(&double).expect("run 1");
        let add_one = Kernel::builder("inc")
            .input("x", &doubled)
            .output(ScalarType::F32, 3)
            .body("return fetch_x(idx) + 1.0;")
            .build(&mut cc)
            .expect("build inc");
        let out = cc.run_f32(&add_one).expect("run 2");
        assert_eq!(out, vec![3.0, 5.0, 7.0]);
        assert_eq!(cc.take_pass_log().len(), 2);
        assert!(cc.pass_log().is_empty());
    }

    #[test]
    fn u16_kernel_end_to_end_and_chained() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let a = cc.upload_u16(&[1, 300, 65000, 0x1234]).expect("a");
        let b = cc.upload_u16(&[2, 700, 535, 1]).expect("b");
        let k = Kernel::builder("add_u16")
            .input("a", &a)
            .input("b", &b)
            .output(ScalarType::U16, 4)
            .body("return mod(fetch_a(idx) + fetch_b(idx), 65536.0);")
            .build(&mut cc)
            .expect("build");
        let out: Vec<u16> = cc.run_and_read(&k).expect("run");
        assert_eq!(out, vec![3, 1000, 65535, 0x1235]);
        // Chain: the RGBA8 render target must fetch identically to the
        // LUMINANCE_ALPHA upload (.ra placement).
        let mid: GpuArray<u16> = cc.run_to_array(&k).expect("rtt");
        let inc = Kernel::builder("inc_u16")
            .input("x", &mid)
            .output(ScalarType::U16, 4)
            .body("return fetch_x(idx) + 1.0;")
            .build(&mut cc)
            .expect("build inc");
        let out: Vec<u16> = cc.run_and_read(&inc).expect("run inc");
        assert_eq!(out, vec![4, 1001, 0, 0x1236]); // 65535+1 wraps via mod in pack
    }

    #[test]
    fn i16_kernel_end_to_end() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let v = cc
            .upload_i16(&[-5, 5, i16::MIN + 1, i16::MAX, -12345])
            .expect("v");
        let k = Kernel::builder("neg_i16")
            .input("v", &v)
            .output(ScalarType::I16, 5)
            .body("return -fetch_v(idx);")
            .build(&mut cc)
            .expect("build");
        let out: Vec<i16> = cc.run_and_read(&k).expect("run");
        assert_eq!(out, vec![5, -5, i16::MAX, i16::MIN + 1, 12345]);
    }

    #[test]
    fn texel_upload_and_raw_kernel_round_trip() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let t = cc
            .upload_texels(2, 1, &[10, 20, 30, 40, 50, 60, 70, 80])
            .expect("texels");
        assert_eq!(t.len(), 2);
        let k = Kernel::builder("passthrough")
            .input_texels("t", &t)
            .output_texels(2)
            .body("return fetch_t_texel(idx);")
            .build(&mut cc)
            .expect("build");
        let bytes = cc.run_and_read_texels(&k).expect("run");
        assert_eq!(bytes, vec![10, 20, 30, 40, 50, 60, 70, 80]);
        // Render-to-texture + read_texels path agrees.
        let out = cc.run_to_texels(&k).expect("rtt");
        assert_eq!(cc.read_texels(&out).expect("read"), bytes);
        // Kind mismatches are rejected both ways.
        assert!(cc.run_and_read::<f32>(&k).is_err());
        let s = cc.upload(&[1.0f32]).expect("s");
        let scalar_kernel = Kernel::builder("id")
            .input("s", &s)
            .output(ScalarType::F32, 1)
            .body("return fetch_s(idx);")
            .build(&mut cc)
            .expect("build");
        assert!(cc.run_and_read_texels(&scalar_kernel).is_err());
        assert!(cc.run_to_texels(&scalar_kernel).is_err());
    }

    #[test]
    fn wrong_output_type_is_rejected() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let a = cc.upload(&[1.0f32]).expect("a");
        let k = Kernel::builder("id")
            .input("a", &a)
            .output(ScalarType::F32, 1)
            .body("return fetch_a(idx);")
            .build(&mut cc)
            .expect("build");
        let err = cc.run_and_read::<u32>(&k).unwrap_err();
        assert!(matches!(err, ComputeError::BadKernel { .. }));
    }

    #[test]
    fn output_larger_than_screen_is_rejected_on_screen_path() {
        let mut cc = ComputeContext::new(4, 4).expect("context");
        let a = cc.upload(&vec![1.0f32; 100]).expect("a");
        let k = Kernel::builder("id")
            .input("a", &a)
            .output(ScalarType::F32, 100)
            .body("return fetch_a(idx);")
            .build(&mut cc)
            .expect("build");
        let err = cc.run_f32(&k).unwrap_err();
        assert!(matches!(err, ComputeError::TooLarge { .. }));
        // …but render-to-texture still works.
        let arr: GpuArray<f32> = cc.run_to_array(&k).expect("rtt");
        let back = cc.read_array(&arr, Readback::DirectFbo).expect("read");
        assert_eq!(back.len(), 100);
    }

    #[test]
    fn uniform_update_changes_result() {
        let mut cc = ComputeContext::new(8, 8).expect("context");
        let a = cc.upload(&[1.0f32, 2.0]).expect("a");
        let mut k = Kernel::builder("scale")
            .input("a", &a)
            .uniform_f32("gain", 2.0)
            .output(ScalarType::F32, 2)
            .body("return fetch_a(idx) * gain;")
            .build(&mut cc)
            .expect("build");
        assert_eq!(cc.run_f32(&k).expect("run"), vec![2.0, 4.0]);
        cc.set_kernel_uniform(&mut k, "gain", Value::Float(-3.0))
            .expect("set");
        assert_eq!(cc.run_f32(&k).expect("run"), vec![-3.0, -6.0]);
        // Overrides beat the default without touching it.
        let b = crate::Bindings::new().uniform_f32("gain", 10.0);
        assert_eq!(cc.run_f32_with(&k, &b).expect("run"), vec![10.0, 20.0]);
        assert_eq!(cc.run_f32(&k).expect("run"), vec![-3.0, -6.0]);
    }

    #[test]
    fn texture_pool_is_bounded() {
        let mut cc = ComputeContext::new(8, 8).expect("context");
        // Recycle far more same-shape textures than the bucket cap holds.
        for _ in 0..(2 * super::POOL_BUCKET_CAP) {
            let arr = cc.upload(&[1.0f32; 4]).expect("upload");
            cc.delete_array(arr); // ensure fresh allocations next upload
        }
        let mut arrays = Vec::new();
        for _ in 0..(2 * super::POOL_BUCKET_CAP) {
            arrays.push(cc.upload(&[1.0f32; 4]).expect("upload"));
        }
        for arr in arrays {
            cc.recycle_array(arr);
        }
        // Only POOL_BUCKET_CAP made it into the pool; the rest deleted.
        assert_eq!(cc.stats().textures_recycled, super::POOL_BUCKET_CAP as u64);
        assert_eq!(cc.pooled_textures, super::POOL_BUCKET_CAP);
        cc.clear_target_pool();
        assert_eq!(cc.pooled_textures, 0);
    }

    #[test]
    fn matrix_upload_and_fetch_rc() {
        let mut cc = ComputeContext::new(8, 8).expect("context");
        // 2x3 matrix [[1,2,3],[4,5,6]]
        let m = cc
            .upload_matrix(2, 3, &[1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0])
            .expect("matrix");
        assert_eq!((m.rows(), m.cols()), (2, 3));
        // Transpose via fetch_rc.
        let k = Kernel::builder("transpose")
            .input_matrix("m", &m)
            .output_grid(ScalarType::F32, 3, 2)
            .body("return fetch_m_rc(col, row);")
            .build(&mut cc)
            .expect("build");
        let out = cc.run_f32(&k).expect("run");
        assert_eq!(out, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }
}
