//! Chunked execution for arrays larger than the device can hold in one
//! texture (or read back through one framebuffer).
//!
//! ES 2 guarantees only a modest `GL_MAX_TEXTURE_SIZE` (64 is the spec
//! minimum; 2048 is typical on the paper's class of hardware), and the
//! readback path is additionally capped by the EGL surface ("screen")
//! size. A million-element array therefore may not fit in a single pass.
//! [`run_chunked`] splits an element-wise kernel over as many
//! upload→dispatch→readback rounds as needed, handing the kernel the
//! chunk's global base index so position-dependent kernels stay correct.
//!
//! The paper's own benchmarks (2×1 Mi-element `sum`) implicitly rely on
//! this kind of staging on real hardware, where the 1080p-ish surface
//! cannot return 1 Mi texels in one `glReadPixels`.

use crate::buffer::{GpuArray, GpuScalar};
use crate::error::ComputeError;
use crate::kernel::Kernel;
use crate::ComputeContext;

/// Maximum elements a single chunk can carry on this context: bounded by
/// the texture size limit and by the screen (readback) size.
pub fn max_chunk_elements(cc: &ComputeContext) -> usize {
    let side = cc.max_texture_side() as usize;
    let (sw, sh) = cc.screen_size();
    let screen_side = sw.min(sh) as usize;
    let cap = side.min(screen_side);
    cap * cap
}

/// Builds and runs an element-wise kernel over `data` in chunks, reading
/// every chunk back through the default framebuffer and concatenating.
///
/// `build` receives the chunk's input array and the chunk's **global
/// base index**; the kernel body sees per-chunk `idx`, so a kernel that
/// needs the global position adds the base (conventionally exposed as a
/// `uniform float` by the builder closure).
///
/// # Errors
///
/// `BadKernel` for empty inputs; upload/build/run errors from the
/// framework.
///
/// # Examples
///
/// ```
/// use gpes_core::{chunked, ComputeContext, Kernel, ScalarType};
///
/// # fn main() -> Result<(), gpes_core::ComputeError> {
/// let mut cc = ComputeContext::new(16, 16)?;
/// let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
/// // 16x16 screen → ≤256 elements per chunk → 4 chunks.
/// let out = chunked::run_chunked(&mut cc, &data, |cc, chunk, base| {
///     Kernel::builder("scale")
///         .input("x", chunk)
///         .uniform_f32("base", base as f32)
///         .output(ScalarType::F32, chunk.len())
///         .body("return fetch_x(idx) + base;")
///         .build(cc)
/// })?;
/// assert_eq!(out[999], 999.0 + 768.0); // base of the last chunk
/// # Ok(())
/// # }
/// ```
pub fn run_chunked<T, F>(
    cc: &mut ComputeContext,
    data: &[T],
    mut build: F,
) -> Result<Vec<T>, ComputeError>
where
    T: GpuScalar,
    F: FnMut(&mut ComputeContext, &GpuArray<T>, usize) -> Result<Kernel, ComputeError>,
{
    if data.is_empty() {
        return Err(ComputeError::bad_kernel("chunked run over an empty array"));
    }
    let chunk_elems = max_chunk_elements(cc);
    let mut out = Vec::with_capacity(data.len());
    for (chunk_no, chunk) in data.chunks(chunk_elems).enumerate() {
        let base = chunk_no * chunk_elems;
        let arr = cc.upload(chunk)?;
        // The builder runs per chunk, but identical generated sources hit
        // the context's program cache: one link serves every chunk.
        let kernel = build(cc, &arr, base)?;
        let mut part: Vec<T> = cc.run_and_read(&kernel)?;
        out.append(&mut part);
        cc.recycle_array(arr);
    }
    Ok(out)
}

/// Two-input variant of [`run_chunked`] for zip-style kernels
/// (`sum`, `saxpy`, …).
///
/// # Errors
///
/// `BadKernel` when lengths differ or inputs are empty; framework errors
/// as in [`run_chunked`].
pub fn run_chunked2<T, F>(
    cc: &mut ComputeContext,
    a: &[T],
    b: &[T],
    mut build: F,
) -> Result<Vec<T>, ComputeError>
where
    T: GpuScalar,
    F: FnMut(
        &mut ComputeContext,
        &GpuArray<T>,
        &GpuArray<T>,
        usize,
    ) -> Result<Kernel, ComputeError>,
{
    if a.len() != b.len() {
        return Err(ComputeError::bad_kernel(format!(
            "chunked inputs differ in length: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    if a.is_empty() {
        return Err(ComputeError::bad_kernel("chunked run over an empty array"));
    }
    let chunk_elems = max_chunk_elements(cc);
    let mut out = Vec::with_capacity(a.len());
    for (chunk_no, (ca, cb)) in a.chunks(chunk_elems).zip(b.chunks(chunk_elems)).enumerate() {
        let base = chunk_no * chunk_elems;
        let ga = cc.upload(ca)?;
        let gb = cc.upload(cb)?;
        let kernel = build(cc, &ga, &gb, base)?;
        let mut part: Vec<T> = cc.run_and_read(&kernel)?;
        out.append(&mut part);
        cc.recycle_array(ga);
        cc.recycle_array(gb);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ScalarType;
    use gpes_gles2::Limits;

    fn tiny_device() -> ComputeContext {
        // 8x8 screen and an 8-texel texture cap: 64 elements per chunk.
        ComputeContext::with_limits(
            8,
            8,
            Limits {
                max_texture_size: 8,
                ..Limits::default()
            },
        )
        .expect("context")
    }

    #[test]
    fn chunk_capacity_honours_both_limits() {
        let cc = tiny_device();
        assert_eq!(max_chunk_elements(&cc), 64);
        // Screen smaller than the texture cap: screen wins.
        let cc = ComputeContext::with_limits(
            4,
            4,
            Limits {
                max_texture_size: 8,
                ..Limits::default()
            },
        )
        .expect("context");
        assert_eq!(max_chunk_elements(&cc), 16);
    }

    #[test]
    fn oversized_array_fails_unchunked_but_runs_chunked() {
        let mut cc = tiny_device();
        let data: Vec<f32> = (0..500).map(|i| i as f32 * 0.5).collect();
        // Direct upload of 500 elements cannot fit 8x8 textures.
        assert!(matches!(
            cc.upload(&data),
            Err(ComputeError::TooLarge { .. })
        ));
        let out = run_chunked(&mut cc, &data, |cc, chunk, _base| {
            Kernel::builder("triple")
                .input("x", chunk)
                .output(ScalarType::F32, chunk.len())
                .body("return fetch_x(idx) * 3.0;")
                .build(cc)
        })
        .expect("chunked run");
        assert_eq!(out.len(), 500);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32 * 1.5, "element {i}");
        }
        // 500 elements at 64 per chunk → 8 passes.
        assert_eq!(cc.pass_log().len(), 8);
        // The generated source is chunk-independent (output shape and the
        // chunk base are dispatch state), so one program serves all 8 —
        // and recycled chunk uploads feed the texture pool.
        assert_eq!(cc.stats().programs_linked, 1);
        assert_eq!(cc.stats().program_cache_hits, 7);
        assert!(cc.stats().texture_pool_hits >= 6);
    }

    #[test]
    fn global_index_via_base_uniform() {
        let mut cc = tiny_device();
        let data = vec![0.0f32; 200];
        let out = run_chunked(&mut cc, &data, |cc, chunk, base| {
            Kernel::builder("global_idx")
                .input("x", chunk)
                .uniform_f32("base", base as f32)
                .output(ScalarType::F32, chunk.len())
                .body("return fetch_x(idx) + base + idx;")
                .build(cc)
        })
        .expect("chunked run");
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32, "global index at {i}");
        }
    }

    #[test]
    fn two_input_chunked_sum_matches_cpu_u32() {
        let mut cc = tiny_device();
        let a: Vec<u32> = (0..300).map(|i| i * 7).collect();
        let b: Vec<u32> = (0..300).map(|i| i + 1000).collect();
        let out = run_chunked2(&mut cc, &a, &b, |cc, ga, gb, _| {
            gpes_kernels_free_sum(cc, ga, gb)
        })
        .expect("chunked run");
        let expect: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(out, expect);
    }

    // A local u32 sum builder (gpes-kernels depends on gpes-core, so the
    // real one cannot be used here without a cycle).
    fn gpes_kernels_free_sum(
        cc: &mut ComputeContext,
        a: &GpuArray<u32>,
        b: &GpuArray<u32>,
    ) -> Result<Kernel, ComputeError> {
        Kernel::builder("sum_u32")
            .input("a", a)
            .input("b", b)
            .output(ScalarType::U32, a.len())
            .body("return fetch_a(idx) + fetch_b(idx);")
            .build(cc)
    }

    #[test]
    fn length_mismatch_and_empty_rejected() {
        let mut cc = tiny_device();
        let err = run_chunked2(&mut cc, &[1.0f32], &[1.0f32, 2.0], |cc, a, b, _| {
            gpes_kernels_free_sum_f32(cc, a, b)
        })
        .unwrap_err();
        assert!(err.to_string().contains("length"));
        let empty: &[f32] = &[];
        assert!(run_chunked(&mut cc, empty, |cc, chunk, _| {
            Kernel::builder("id")
                .input("x", chunk)
                .output(ScalarType::F32, chunk.len())
                .body("return fetch_x(idx);")
                .build(cc)
        })
        .is_err());
    }

    fn gpes_kernels_free_sum_f32(
        cc: &mut ComputeContext,
        a: &GpuArray<f32>,
        b: &GpuArray<f32>,
    ) -> Result<Kernel, ComputeError> {
        Kernel::builder("sum_f32")
            .input("a", a)
            .input("b", b)
            .output(ScalarType::F32, a.len())
            .body("return fetch_a(idx) + fetch_b(idx);")
            .build(cc)
    }
}
