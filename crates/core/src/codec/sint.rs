//! §IV-D: `signed int`.
//!
//! The paper reconstructs signed integers "as unsigned and adjusted" by
//! the two's-complement wrap constant. Subtracting 2³² directly in fp32 is
//! catastrophic near 2³² (ulp = 512 there), so this implementation uses
//! the algebraically identical bit-complement form, which stays inside the
//! 24-bit-exact window:
//!
//! * unpack: if the top byte ≥ 128, compute `m = Σ (255−bᵢ)·256ⁱ` and
//!   return `−(m+1)` (since `−v = ~v + 1`);
//! * pack (v < 0): decompose `m = −v−1` and complement each byte.
//!
//! This deviation from the paper's printed formulas is recorded in
//! `DESIGN.md` §2.

use super::{mirror_store_byte, mirror_unpack_byte, PackBias};

/// Magnitude bound for exact round trips through fp32.
pub const EXACT_MAX: i32 = 1 << 24;

/// GLSL pack/unpack for `signed int` values carried in a full texel.
pub const GLSL: &str = "\
float gpes_unpack_sint(vec4 t) {\n\
    float b0 = gpes_unpack_byte(t.x);\n\
    float b1 = gpes_unpack_byte(t.y);\n\
    float b2 = gpes_unpack_byte(t.z);\n\
    float b3 = gpes_unpack_byte(t.w);\n\
    if (b3 >= 128.0) {\n\
        float m = (255.0 - b0) + (255.0 - b1) * 256.0\n\
                + (255.0 - b2) * 65536.0 + (255.0 - b3) * 16777216.0;\n\
        return -(m + 1.0);\n\
    }\n\
    return b0 + b1 * 256.0 + b2 * 65536.0 + b3 * 16777216.0;\n\
}\n\
vec4 gpes_pack_sint(float v) {\n\
    if (v < 0.0) {\n\
        float m = -v - 1.0;\n\
        float b0 = 255.0 - mod(m, 256.0);\n\
        float r1 = floor(m / 256.0);\n\
        float b1 = 255.0 - mod(r1, 256.0);\n\
        float r2 = floor(r1 / 256.0);\n\
        float b2 = 255.0 - mod(r2, 256.0);\n\
        float b3 = 255.0 - mod(floor(r2 / 256.0), 256.0);\n\
        return vec4(gpes_pack_byte(b0), gpes_pack_byte(b1),\n\
                    gpes_pack_byte(b2), gpes_pack_byte(b3));\n\
    }\n\
    return gpes_pack_uint(v);\n\
}\n";

/// Host-side encode: two's-complement little-endian bytes.
#[inline]
pub fn encode(v: i32) -> [u8; 4] {
    v.to_le_bytes()
}

/// Host-side decode.
#[inline]
pub fn decode(bytes: [u8; 4]) -> i32 {
    i32::from_le_bytes(bytes)
}

/// Slice-level upload encode: two's-complement little-endian words into
/// RGBA texels, zero-padded to `texel_count` — one preallocated pass.
pub fn encode_slice(values: &[i32], texel_count: usize) -> Vec<u8> {
    let mut out = vec![0u8; texel_count * 4];
    for (px, &v) in out.chunks_exact_mut(4).zip(values) {
        px.copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Slice-level readback decode: `len` words from RGBA8 framebuffer bytes.
pub fn decode_slice(bytes: &[u8], len: usize) -> Vec<i32> {
    let mut out = vec![0i32; len.min(bytes.len() / 4)];
    for (v, px) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *v = i32::from_le_bytes([px[0], px[1], px[2], px[3]]);
    }
    out
}

/// Whether `v` survives the fp32 shader path exactly.
#[inline]
pub fn is_exact(v: i32) -> bool {
    v.unsigned_abs() <= EXACT_MAX as u32
}

/// Rust mirror of the shader unpack.
#[inline]
pub fn mirror_unpack(texel: [u8; 4]) -> f32 {
    let b0 = mirror_unpack_byte(texel[0]);
    let b1 = mirror_unpack_byte(texel[1]);
    let b2 = mirror_unpack_byte(texel[2]);
    let b3 = mirror_unpack_byte(texel[3]);
    if b3 >= 128.0 {
        let m = (255.0 - b0)
            + (255.0 - b1) * 256.0
            + (255.0 - b2) * 65536.0
            + (255.0 - b3) * 16777216.0;
        -(m + 1.0)
    } else {
        b0 + b1 * 256.0 + b2 * 65536.0 + b3 * 16777216.0
    }
}

/// Rust mirror of the shader pack + store.
#[inline]
pub fn mirror_pack(v: f32, bias: PackBias) -> [u8; 4] {
    if v < 0.0 {
        let m = -v - 1.0;
        let b0 = 255.0 - m % 256.0;
        let r1 = (m / 256.0).floor();
        let b1 = 255.0 - r1 % 256.0;
        let r2 = (r1 / 256.0).floor();
        let b2 = 255.0 - r2 % 256.0;
        let b3 = 255.0 - (r2 / 256.0).floor() % 256.0;
        [
            mirror_store_byte(b0, bias),
            mirror_store_byte(b1, bias),
            mirror_store_byte(b2, bias),
            mirror_store_byte(b3, bias),
        ]
    } else {
        super::uint::mirror_pack(v, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_notable_values() {
        for v in [
            0i32,
            1,
            -1,
            127,
            -128,
            255,
            -256,
            65536,
            -65537,
            (1 << 24) - 1,
            -(1 << 24),
            1 << 24,
        ] {
            assert!(is_exact(v), "{v}");
            let up = mirror_unpack(encode(v));
            assert_eq!(up, v as f32, "unpack {v}");
            let stored = mirror_pack(up, PackBias::HalfTexel);
            assert_eq!(decode(stored), v, "pack {v}");
        }
    }

    #[test]
    fn two_complement_bytes() {
        assert_eq!(encode(-1), [255, 255, 255, 255]);
        assert_eq!(encode(-256), [0, 255, 255, 255]);
        assert_eq!(mirror_unpack([0, 255, 255, 255]), -256.0);
    }

    #[test]
    fn negative_arithmetic_survives() {
        let a = mirror_unpack(encode(-1_000_000));
        let b = mirror_unpack(encode(250_000));
        let out = mirror_pack(a + b, PackBias::HalfTexel);
        assert_eq!(decode(out), -750_000);
        let out = mirror_pack(a * 2.0, PackBias::HalfTexel);
        assert_eq!(decode(out), -2_000_000);
    }

    #[test]
    fn sign_flip_boundary() {
        // Values straddling zero.
        for v in -300..300 {
            let up = mirror_unpack(encode(v));
            assert_eq!(decode(mirror_pack(up, PackBias::PaperDelta)), v);
        }
    }
}
