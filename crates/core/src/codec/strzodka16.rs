//! Related-work baseline (§VI): Strzodka, *Virtual 16 bit precise
//! operations on RGBA8 textures* (VMV 2002).
//!
//! The DATE paper positions its §IV codecs against this scheme: Strzodka
//! emulates 16-bit integer precision on hardware whose shader paths only
//! offer 8-bit fixed point, by splitting each value into a high and a low
//! byte held in *two texture channels* and performing arithmetic on the
//! halves with explicit carry propagation. The paper's two criticisms,
//! which this module exists to make measurable (ablation A5), are:
//!
//! 1. **Custom memory format.** The split is big-endian by channel and
//!    signed values use an excess-32768 bias — not the CPU's
//!    little-endian two's complement. Host data must be transformed
//!    element by element before upload and after readback, whereas the
//!    §IV integer codecs upload unmodified 32-bit integers (a plain
//!    `memcpy`).
//! 2. **Integer-only.** The scheme has no floating-point story, "which
//!    are indispensable for GPGPU computations".
//!
//! One RGBA8 texel carries **two** virtual-16 values (RG and BA pairs),
//! twice the density of the §IV 32-bit codecs — the honest advantage the
//! ablation also reports.
//!
//! ## Substrate note
//!
//! On Strzodka's original fixed-point hardware each half-operation needed
//! multi-pass rendering tricks; on a VideoCore-class fp32 shader core the
//! halves fit exactly in a float register, so the virtual operations run
//! in a single pass here. What the comparison preserves is the *format*
//! and its CPU↔GPU interoperability cost, which is what §VI argues about.

use super::{mirror_store_byte, mirror_unpack_byte, PackBias};

/// Bias added to signed values before the byte split (excess-32768).
pub const SIGN_BIAS: i32 = 32768;

/// Largest magnitude exactly representable: the format is 16-bit by
/// construction (vs. 2²⁴ for the §IV integer codecs).
pub const EXACT_MAX: u32 = u16::MAX as u32;

/// GLSL library for virtual-16-bit values.
///
/// A value travels as `vec2(hi, lo)` with both components holding *byte
/// values* in `[0, 255]`. All arithmetic keeps the halves below 2¹⁶, far
/// inside fp32's exact-integer range.
pub const GLSL: &str = "\
vec2 gpes_v16_from_bytes(vec2 t) {\n\
    return vec2(gpes_unpack_byte(t.x), gpes_unpack_byte(t.y));\n\
}\n\
float gpes_v16_value(vec2 a) {\n\
    return a.x * 256.0 + a.y;\n\
}\n\
vec2 gpes_v16_make(float v) {\n\
    float hi = floor(v / 256.0);\n\
    return vec2(mod(hi, 256.0), v - hi * 256.0);\n\
}\n\
vec2 gpes_v16_add(vec2 a, vec2 b) {\n\
    float lo = a.y + b.y;\n\
    float carry = floor(lo / 256.0);\n\
    return vec2(mod(a.x + b.x + carry, 256.0), lo - carry * 256.0);\n\
}\n\
vec2 gpes_v16_sub(vec2 a, vec2 b) {\n\
    float lo = a.y - b.y;\n\
    float borrow = lo < 0.0 ? 1.0 : 0.0;\n\
    return vec2(mod(a.x - b.x - borrow + 512.0, 256.0), lo + borrow * 256.0);\n\
}\n\
vec2 gpes_v16_scale(vec2 a, float k) {\n\
    float lo = a.y * k;\n\
    float carry = floor(lo / 256.0);\n\
    return vec2(mod(a.x * k + carry, 256.0), lo - carry * 256.0);\n\
}\n\
float gpes_v16_lt(vec2 a, vec2 b) {\n\
    if (a.x != b.x) { return a.x < b.x ? 1.0 : 0.0; }\n\
    return a.y < b.y ? 1.0 : 0.0;\n\
}\n\
vec2 gpes_v16_pack(vec2 a) {\n\
    return vec2(gpes_pack_byte(a.x), gpes_pack_byte(a.y));\n\
}\n";

/// Host-side encode of an unsigned 16-bit value into the custom
/// big-endian channel split `[hi, lo]`.
#[inline]
pub fn encode_u16(v: u16) -> [u8; 2] {
    [(v >> 8) as u8, (v & 0xFF) as u8]
}

/// Host-side decode from the channel split.
#[inline]
pub fn decode_u16(bytes: [u8; 2]) -> u16 {
    ((bytes[0] as u16) << 8) | bytes[1] as u16
}

/// Host-side encode of a signed value in excess-32768 (the "custom
/// format, not the common 2's complement" of §VI).
#[inline]
pub fn encode_i16(v: i16) -> [u8; 2] {
    encode_u16((v as i32 + SIGN_BIAS) as u16)
}

/// Host-side decode of an excess-32768 value.
#[inline]
pub fn decode_i16(bytes: [u8; 2]) -> i16 {
    (decode_u16(bytes) as i32 - SIGN_BIAS) as i16
}

/// Packs a slice of `u16` values two per RGBA8 texel (RG then BA),
/// zero-padded to `texel_count` texels.
///
/// Slice-level hot path: a preallocated single pass of branch-free byte
/// splits (2 bytes out per value) that the autovectoriser can widen,
/// instead of growing a `Vec` pair by pair.
pub fn encode_texels(values: &[u16], texel_count: usize) -> Vec<u8> {
    let mut out = vec![0u8; texel_count * 4];
    for (dst, &v) in out.chunks_exact_mut(2).zip(values) {
        dst.copy_from_slice(&encode_u16(v));
    }
    out
}

/// Recovers `len` values from RGBA8 texel bytes written by
/// [`encode_texels`] (or by a shader through `gpes_v16_pack`).
pub fn decode_texels(bytes: &[u8], len: usize) -> Vec<u16> {
    let mut out = vec![0u16; len.min(bytes.len() / 2)];
    for (v, src) in out.iter_mut().zip(bytes.chunks_exact(2)) {
        *v = decode_u16([src[0], src[1]]);
    }
    out
}

/// A virtual-16 value as the shader sees it: `(hi, lo)` byte values.
pub type Halves = [f32; 2];

/// Rust mirror of `gpes_v16_from_bytes` ∘ texel fetch.
#[inline]
pub fn mirror_unpack(bytes: [u8; 2]) -> Halves {
    [mirror_unpack_byte(bytes[0]), mirror_unpack_byte(bytes[1])]
}

/// Rust mirror of `gpes_v16_add` (mod-2¹⁶ addition on halves).
#[inline]
pub fn mirror_add(a: Halves, b: Halves) -> Halves {
    let lo = a[1] + b[1];
    let carry = (lo / 256.0).floor();
    [(a[0] + b[0] + carry) % 256.0, lo - carry * 256.0]
}

/// Rust mirror of `gpes_v16_sub` (mod-2¹⁶ subtraction on halves).
#[inline]
pub fn mirror_sub(a: Halves, b: Halves) -> Halves {
    let lo = a[1] - b[1];
    let borrow = if lo < 0.0 { 1.0 } else { 0.0 };
    [(a[0] - b[0] - borrow + 512.0) % 256.0, lo + borrow * 256.0]
}

/// Rust mirror of `gpes_v16_scale` (multiply by an integer scalar; exact
/// while `k ≤ 255`).
#[inline]
pub fn mirror_scale(a: Halves, k: f32) -> Halves {
    let lo = a[1] * k;
    let carry = (lo / 256.0).floor();
    [(a[0] * k + carry) % 256.0, lo - carry * 256.0]
}

/// Rust mirror of `gpes_v16_lt`.
#[inline]
pub fn mirror_lt(a: Halves, b: Halves) -> bool {
    if a[0] != b[0] {
        a[0] < b[0]
    } else {
        a[1] < b[1]
    }
}

/// Rust mirror of `gpes_v16_pack` + framebuffer store.
#[inline]
pub fn mirror_pack(a: Halves, bias: PackBias) -> [u8; 2] {
    [mirror_store_byte(a[0], bias), mirror_store_byte(a[1], bias)]
}

/// How a format's host-side data moves between CPU memory and texel
/// bytes — the interoperability cost §VI argues about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InteropProfile {
    /// Whether CPU-native memory can be uploaded without per-element
    /// transformation.
    pub memcpy_compatible: bool,
    /// Host arithmetic/shuffle operations per element on upload+readback.
    pub host_ops_per_element: u32,
    /// Exactly representable integer bits through the shader path.
    pub exact_bits: u32,
    /// Values carried per RGBA8 texel.
    pub values_per_texel: u32,
    /// Whether the format family covers floating point at all.
    pub covers_float: bool,
}

/// Interop profile of this baseline.
pub fn interop_profile() -> InteropProfile {
    InteropProfile {
        memcpy_compatible: false,
        // Split + bias on upload, join + unbias on readback.
        host_ops_per_element: 4,
        exact_bits: 16,
        values_per_texel: 2,
        covers_float: false,
    }
}

/// Interop profile of the paper's §IV-C/D integer codecs, for the A5
/// comparison table.
pub fn paper_uint_interop_profile() -> InteropProfile {
    InteropProfile {
        memcpy_compatible: true,
        host_ops_per_element: 0,
        exact_bits: 24,
        values_per_texel: 1,
        covers_float: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u16_split_is_big_endian_by_channel() {
        assert_eq!(encode_u16(0x1234), [0x12, 0x34]);
        assert_eq!(decode_u16([0x12, 0x34]), 0x1234);
        // The whole point of §VI: this is NOT the CPU's memory order.
        assert_ne!(encode_u16(0x1234), 0x1234u16.to_le_bytes());
    }

    #[test]
    fn u16_round_trip_exhaustive() {
        for v in 0..=u16::MAX {
            assert_eq!(decode_u16(encode_u16(v)), v);
        }
    }

    #[test]
    fn i16_excess_bias_round_trip_exhaustive() {
        for v in i16::MIN..=i16::MAX {
            assert_eq!(decode_i16(encode_i16(v)), v);
        }
        // Excess representation: -32768 is all zeros, not 0x8000.
        assert_eq!(encode_i16(i16::MIN), [0, 0]);
        assert_eq!(encode_i16(0), [0x80, 0x00]);
    }

    #[test]
    fn texel_packing_two_per_texel() {
        let enc = encode_texels(&[0x0102, 0x0304, 0x0506], 2);
        assert_eq!(enc, vec![1, 2, 3, 4, 5, 6, 0, 0]);
        assert_eq!(decode_texels(&enc, 3), vec![0x0102, 0x0304, 0x0506]);
    }

    #[test]
    fn mirror_add_matches_wrapping_u16() {
        let cases = [
            (0u16, 0u16),
            (1, 1),
            (255, 1),
            (0x00FF, 0x0001),
            (0x0FFF, 0x0001),
            (0xFFFF, 0x0001), // wraps
            (0xABCD, 0x1234),
            (0x8000, 0x8000),
        ];
        for (x, y) in cases {
            let sum = x.wrapping_add(y);
            let halves = mirror_add(mirror_unpack(encode_u16(x)), mirror_unpack(encode_u16(y)));
            let stored = mirror_pack(halves, PackBias::default());
            assert_eq!(decode_u16(stored), sum, "{x} + {y}");
        }
    }

    #[test]
    fn mirror_sub_matches_wrapping_u16() {
        let cases = [(5u16, 3u16), (0, 1), (0x0100, 0x0001), (0xFFFF, 0xFFFF)];
        for (x, y) in cases {
            let diff = x.wrapping_sub(y);
            let halves = mirror_sub(mirror_unpack(encode_u16(x)), mirror_unpack(encode_u16(y)));
            assert_eq!(
                decode_u16(mirror_pack(halves, PackBias::default())),
                diff,
                "{x} - {y}"
            );
        }
    }

    #[test]
    fn mirror_scale_matches_wrapping_mul() {
        for (x, k) in [(100u16, 3u16), (0x0101, 255), (0x4000, 4), (0xFFFF, 2)] {
            let prod = x.wrapping_mul(k);
            let halves = mirror_scale(mirror_unpack(encode_u16(x)), k as f32);
            assert_eq!(
                decode_u16(mirror_pack(halves, PackBias::default())),
                prod,
                "{x} * {k}"
            );
        }
    }

    #[test]
    fn mirror_lt_orders_values() {
        assert!(mirror_lt([0.0, 1.0], [0.0, 2.0]));
        assert!(mirror_lt([1.0, 255.0], [2.0, 0.0]));
        assert!(!mirror_lt([3.0, 0.0], [2.0, 255.0]));
        assert!(!mirror_lt([1.0, 1.0], [1.0, 1.0]));
    }

    #[test]
    fn glsl_library_compiles() {
        let src = format!(
            "precision highp float;\n\
             float gpes_unpack_byte(float t) {{ return floor(t * 255.0 + 0.5); }}\n\
             float gpes_pack_byte(float b) {{ return (b + 0.25) / 255.0; }}\n\
             {GLSL}\
             void main() {{\n\
               vec2 a = gpes_v16_from_bytes(vec2(0.5, 0.25));\n\
               vec2 b = gpes_v16_make(1234.0);\n\
               vec2 s = gpes_v16_add(a, gpes_v16_sub(b, gpes_v16_scale(a, 2.0)));\n\
               float flag = gpes_v16_lt(a, b);\n\
               gl_FragColor = vec4(gpes_v16_pack(s), flag, gpes_v16_value(s) / 65535.0);\n\
             }}"
        );
        gpes_glsl::compile(gpes_glsl::ShaderKind::Fragment, &src)
            .unwrap_or_else(|e| panic!("strzodka16 GLSL failed to compile: {e}"));
    }

    #[test]
    fn interop_profiles_tell_the_section_vi_story() {
        let baseline = interop_profile();
        let paper = paper_uint_interop_profile();
        assert!(!baseline.memcpy_compatible && paper.memcpy_compatible);
        assert!(baseline.host_ops_per_element > paper.host_ops_per_element);
        assert!(baseline.exact_bits < paper.exact_bits);
        assert!(baseline.values_per_texel > paper.values_per_texel);
        assert!(!baseline.covers_float && paper.covers_float);
    }
}
