//! §IV of the paper: numeric transformations for kernel I/O.
//!
//! OpenGL ES 2 moves data through RGBA8 textures (bytes interpreted as
//! `f = c/255` on fetch, eq. (1)) and a byte framebuffer (stores
//! `i = ⌊clamp(f,0,1)·255⌋`, eq. (2)). Each codec module defines, for one C
//! scalar type:
//!
//! * **host encode/decode** — how the CPU lays the value out in texel
//!   bytes before upload / after readback (for `f32` this includes the
//!   paper's Figure 2 bit rotation);
//! * **GLSL pack/unpack source** — the shader-side transformation, built
//!   exclusively from floor/mod arithmetic because GLSL ES 1.00 has no
//!   bitwise operators;
//! * **a Rust mirror of the shader math** — the same arithmetic in `f32`,
//!   used for differential testing against the real interpreter and for
//!   fast CPU-side oracles.

pub mod float32;
pub mod sbyte;
pub mod sint;
pub mod sshort;
pub mod strzodka16;
pub mod ubyte;
pub mod uint;
pub mod ushort;

use std::fmt;

/// The C scalar types the transformations support (§IV: "unsigned and
/// signed variants of char and integer, as well as floating point").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// `unsigned char` (§IV-A) — one byte per element.
    U8,
    /// `signed char` (§IV-B) — one byte per element.
    I8,
    /// `unsigned short` — two bytes per element in a `LUMINANCE_ALPHA`
    /// texel, fully exact through the fp32 shader path.
    U16,
    /// `signed short` — §IV-D's two's-complement adjustment on two bytes.
    I16,
    /// `unsigned int` (§IV-C) — four bytes per element, 24-bit-exact
    /// through the fp32 shader path.
    U32,
    /// `signed int` (§IV-D).
    I32,
    /// IEEE-754 binary32 (§IV-E) — four bytes per element with the
    /// sign/exponent rotation of Figure 2.
    F32,
}

impl ScalarType {
    /// Bytes of texel storage per element.
    pub fn bytes_per_element(self) -> usize {
        match self {
            ScalarType::U8 | ScalarType::I8 => 1,
            ScalarType::U16 | ScalarType::I16 => 2,
            ScalarType::U32 | ScalarType::I32 | ScalarType::F32 => 4,
        }
    }

    /// Whether the element occupies a full RGBA texel (vs. one channel).
    pub fn uses_rgba(self) -> bool {
        self.bytes_per_element() >= 2
    }

    /// The swizzle selecting the texel channels the unpack function
    /// consumes: `""` = full `vec4`, `".r"` = single byte, `".ra"` = the
    /// two-byte short formats (GLES2 samples `LUMINANCE_ALPHA` as
    /// `(L, L, L, A)`, and the short pack functions mirror that placement
    /// in the RGBA8 framebuffer so chained kernels fetch identically).
    pub fn fetch_swizzle(self) -> &'static str {
        match self.bytes_per_element() {
            1 => ".r",
            2 => ".ra",
            _ => "",
        }
    }

    /// The GLSL unpack function name for this type.
    pub fn unpack_fn(self) -> &'static str {
        match self {
            ScalarType::U8 => "gpes_unpack_ubyte",
            ScalarType::I8 => "gpes_unpack_sbyte",
            ScalarType::U16 => "gpes_unpack_ushort",
            ScalarType::I16 => "gpes_unpack_sshort",
            ScalarType::U32 => "gpes_unpack_uint",
            ScalarType::I32 => "gpes_unpack_sint",
            ScalarType::F32 => "gpes_unpack_float",
        }
    }

    /// The GLSL pack function name for this type (returns `vec4` for the
    /// framebuffer).
    pub fn pack_fn(self) -> &'static str {
        match self {
            ScalarType::U8 => "gpes_pack_ubyte",
            ScalarType::I8 => "gpes_pack_sbyte",
            ScalarType::U16 => "gpes_pack_ushort",
            ScalarType::I16 => "gpes_pack_sshort",
            ScalarType::U32 => "gpes_pack_uint",
            ScalarType::I32 => "gpes_pack_sint",
            ScalarType::F32 => "gpes_pack_float",
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ScalarType::U8 => "u8",
            ScalarType::I8 => "i8",
            ScalarType::U16 => "u16",
            ScalarType::I16 => "i16",
            ScalarType::U32 => "u32",
            ScalarType::I32 => "i32",
            ScalarType::F32 => "f32",
        };
        f.write_str(name)
    }
}

/// Output bias applied when a shader packs a byte value `b` into a colour
/// component so that the framebuffer's eq. (2) recovers exactly `b`.
///
/// The ES 2 spec leaves the store rounding implementation-defined, and
/// the choice of bias interacts with it (ablation A1):
///
/// * [`PackBias::HalfTexel`] maximises the safety margin under *floor*
///   stores but sits exactly on the rounding boundary under *nearest*
///   stores, where it shifts every byte by one;
/// * [`PackBias::PaperDelta`] recovers correctly under both roundings but
///   with a sliver-thin floor margin (255/65280 of a grid step);
/// * [`PackBias::QuarterTexel`] is correct under both roundings with a
///   comfortable margin either way — the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackBias {
    /// `f = (b + 0.25) / 255` — robust under floor *and* nearest stores.
    #[default]
    QuarterTexel,
    /// `f = (b + 0.5) / 255` — maximal floor margin, breaks under nearest.
    HalfTexel,
    /// `f = b/255 + 1/65280` — the paper's `−δ` (eq. (5)).
    PaperDelta,
}

impl PackBias {
    /// The GLSL function body packing byte value `b`.
    pub fn glsl_pack_byte_body(self) -> &'static str {
        match self {
            PackBias::QuarterTexel => "return (b + 0.25) / 255.0;",
            PackBias::HalfTexel => "return (b + 0.5) / 255.0;",
            PackBias::PaperDelta => "return b / 255.0 + (1.0 / 65280.0);",
        }
    }

    /// Rust mirror of the GLSL: byte value → colour component.
    #[inline]
    pub fn pack_byte(self, b: f32) -> f32 {
        match self {
            PackBias::QuarterTexel => (b + 0.25) / 255.0,
            PackBias::HalfTexel => (b + 0.5) / 255.0,
            PackBias::PaperDelta => b / 255.0 + (1.0 / 65280.0),
        }
    }
}

/// Handling of IEEE special values (±∞, NaN) in the float codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FloatSpecials {
    /// Preserve infinities and NaNs through pack/unpack (§IV-E: "can
    /// optionally preserve special values … required in high performance
    /// and scientific computing").
    #[default]
    Preserve,
    /// Treat exponent-255 patterns as the largest finite magnitudes
    /// (what naïve shader code would produce).
    Flush,
}

/// Shared shader-mirror helper: eq. (1) + the shader's byte
/// reconstruction `floor(t·255 + 0.5)` (the robust form of eq. (4)).
#[inline]
pub(crate) fn mirror_unpack_byte(texel: u8) -> f32 {
    let t = texel as f32 / 255.0;
    (t * 255.0 + 0.5).floor()
}

/// Shared shader-mirror helper: byte value → framebuffer byte through the
/// pack bias and eq. (2).
#[inline]
pub(crate) fn mirror_store_byte(b: f32, bias: PackBias) -> u8 {
    gpes_gles2::float_to_texel(bias.pack_byte(b), gpes_gles2::StoreRounding::Floor)
}

/// The GLSL codec library: `gpes_pack_byte` + all pack/unpack functions.
///
/// Generated once per program; kernels call the per-type functions. The
/// `specials` flag controls whether the float codec emits the ∞/NaN
/// branches.
pub fn glsl_codec_library(bias: PackBias, specials: FloatSpecials) -> String {
    let mut src = String::with_capacity(4096);
    src.push_str("// ---- gpes codec library (paper §IV) ----\n");
    src.push_str("float gpes_unpack_byte(float t) { return floor(t * 255.0 + 0.5); }\n");
    src.push_str(&format!(
        "float gpes_pack_byte(float b) {{ {} }}\n",
        bias.glsl_pack_byte_body()
    ));
    src.push_str(ubyte::GLSL);
    src.push_str(sbyte::GLSL);
    src.push_str(ushort::GLSL);
    src.push_str(sshort::GLSL);
    src.push_str(uint::GLSL);
    src.push_str(sint::GLSL);
    src.push_str(&float32::glsl(specials));
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_type_properties() {
        assert_eq!(ScalarType::U8.bytes_per_element(), 1);
        assert_eq!(ScalarType::F32.bytes_per_element(), 4);
        assert!(!ScalarType::I8.uses_rgba());
        assert!(ScalarType::I32.uses_rgba());
        assert_eq!(ScalarType::F32.to_string(), "f32");
    }

    #[test]
    fn pack_bias_both_satisfy_floor_recovery() {
        for bias in [
            PackBias::QuarterTexel,
            PackBias::HalfTexel,
            PackBias::PaperDelta,
        ] {
            for b in 0..=255u32 {
                let stored = mirror_store_byte(b as f32, bias);
                assert_eq!(stored as u32, b, "{bias:?} byte {b}");
            }
        }
    }

    #[test]
    fn mirror_unpack_byte_is_identity() {
        for c in 0..=255u16 {
            assert_eq!(mirror_unpack_byte(c as u8), c as f32);
        }
    }

    #[test]
    fn codec_library_compiles_as_glsl() {
        // The library must parse and check when wrapped in a shader.
        let lib = glsl_codec_library(PackBias::HalfTexel, FloatSpecials::Preserve);
        let src = format!(
            "precision highp float;\n{lib}\n\
             void main() {{\n\
               vec4 t = vec4(0.5);\n\
               float a = gpes_unpack_ubyte(t.r) + gpes_unpack_sbyte(t.g)\n\
                       + gpes_unpack_ushort(t.ra) + gpes_unpack_sshort(t.ra)\n\
                       + gpes_unpack_uint(t) + gpes_unpack_sint(t) + gpes_unpack_float(t);\n\
               gl_FragColor = gpes_pack_float(a) + gpes_pack_uint(a) + gpes_pack_sint(a)\n\
                            + gpes_pack_ushort(a) + gpes_pack_sshort(a)\n\
                            + vec4(gpes_pack_ubyte(a)) + vec4(gpes_pack_sbyte(a));\n\
             }}"
        );
        gpes_glsl::compile(gpes_glsl::ShaderKind::Fragment, &src)
            .unwrap_or_else(|e| panic!("codec library failed to compile: {e}"));
        // Flush variant too.
        let lib = glsl_codec_library(PackBias::PaperDelta, FloatSpecials::Flush);
        let src = format!(
            "precision highp float;\n{lib}\n\
             void main() {{ gl_FragColor = gpes_pack_float(gpes_unpack_float(vec4(0.25))); }}"
        );
        gpes_glsl::compile(gpes_glsl::ShaderKind::Fragment, &src)
            .unwrap_or_else(|e| panic!("codec library (flush) failed to compile: {e}"));
    }
}
