//! §IV-B: `signed char`.
//!
//! Two's-complement bytes travel unchanged; the shader maps
//! `M₂ : [0,255] → [−128,127]` by subtracting 256 from values ≥ 128, and
//! the inverse adds 256 back to negative outputs before byte packing.

use super::{mirror_store_byte, mirror_unpack_byte, PackBias};

/// GLSL pack/unpack for `signed char` values carried in one channel.
pub const GLSL: &str = "\
float gpes_unpack_sbyte(float t) {\n\
    float u = gpes_unpack_byte(t);\n\
    return u < 128.0 ? u : u - 256.0;\n\
}\n\
float gpes_pack_sbyte(float v) {\n\
    return gpes_pack_byte(v < 0.0 ? v + 256.0 : v);\n\
}\n";

/// Host-side encode: two's-complement byte, unchanged.
#[inline]
pub fn encode(v: i8) -> u8 {
    v as u8
}

/// Host-side decode.
#[inline]
pub fn decode(b: u8) -> i8 {
    b as i8
}

/// Slice-level upload encode: two's-complement bytes unchanged (a cast
/// copy), zero-padded to `texel_count` single-byte texels.
pub fn encode_slice(values: &[i8], texel_count: usize) -> Vec<u8> {
    let mut out = vec![0u8; texel_count];
    for (dst, &v) in out.iter_mut().zip(values) {
        *dst = v as u8;
    }
    out
}

/// Slice-level readback decode: gathers `len` R-channel bytes out of
/// RGBA8 framebuffer pixels in one pass.
pub fn decode_slice(bytes: &[u8], len: usize) -> Vec<i8> {
    let mut out = vec![0i8; len.min(bytes.len() / 4)];
    for (v, px) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *v = px[0] as i8;
    }
    out
}

/// Rust mirror of the shader unpack: texel byte → signed value in
/// [−128, 127] as a float.
#[inline]
pub fn mirror_unpack(texel: u8) -> f32 {
    let u = mirror_unpack_byte(texel);
    if u < 128.0 {
        u
    } else {
        u - 256.0
    }
}

/// Rust mirror of the shader pack + store.
#[inline]
pub fn mirror_pack(v: f32, bias: PackBias) -> u8 {
    let b = if v < 0.0 { v + 256.0 } else { v };
    mirror_store_byte(b, bias)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_values() {
        for v in i8::MIN..=i8::MAX {
            let up = mirror_unpack(encode(v));
            assert_eq!(up, v as f32, "unpack {v}");
            let stored = mirror_pack(up, PackBias::HalfTexel);
            assert_eq!(decode(stored), v, "pack {v}");
        }
    }

    #[test]
    fn two_complement_mapping() {
        assert_eq!(encode(-1), 255);
        assert_eq!(encode(-128), 128);
        assert_eq!(mirror_unpack(255), -1.0);
        assert_eq!(mirror_unpack(128), -128.0);
        assert_eq!(mirror_unpack(127), 127.0);
    }

    #[test]
    fn arithmetic_in_shader_domain() {
        // (-100) + 55 = -45 survives the byte round trip.
        let a = mirror_unpack(encode(-100));
        let b = mirror_unpack(encode(55));
        let out = mirror_pack(a + b, PackBias::HalfTexel);
        assert_eq!(decode(out), -45);
    }

    #[test]
    fn paper_delta_round_trip() {
        for v in i8::MIN..=i8::MAX {
            let stored = mirror_pack(v as f32, PackBias::PaperDelta);
            assert_eq!(decode(stored), v);
        }
    }
}
