//! `signed short` — §IV-D's two's-complement adjustment on two bytes.
//!
//! Reconstruction follows §IV-D: read the value as unsigned, then
//! subtract 2¹⁶ when the top byte's sign bit is set. Because the whole
//! 16-bit domain is exact in fp32, the inverse transform can use the
//! direct `v + 65536` wrap for negatives — no need for the bit-complement
//! identity the 32-bit codec requires near 2³².

use super::{mirror_store_byte, mirror_unpack_byte, PackBias};

/// Largest magnitude exactly representable (the whole domain).
pub const EXACT_MAX: u32 = i16::MAX as u32;

/// GLSL pack/unpack for `signed short` values carried in `.ra`.
pub const GLSL: &str = "\
float gpes_unpack_sshort(vec2 t) {\n\
    float b0 = gpes_unpack_byte(t.x);\n\
    float b1 = gpes_unpack_byte(t.y);\n\
    float v = b0 + b1 * 256.0;\n\
    if (b1 >= 128.0) { v -= 65536.0; }\n\
    return v;\n\
}\n\
vec4 gpes_pack_sshort(float v) {\n\
    if (v < 0.0) { v += 65536.0; }\n\
    float b0 = mod(v, 256.0);\n\
    float b1 = mod(floor(v / 256.0), 256.0);\n\
    return vec4(gpes_pack_byte(b0), 0.0, 0.0, gpes_pack_byte(b1));\n\
}\n";

/// Host-side encode: the CPU's native two's-complement little-endian
/// bytes, unmodified.
#[inline]
pub fn encode(v: i16) -> [u8; 2] {
    v.to_le_bytes()
}

/// Host-side decode.
#[inline]
pub fn decode(bytes: [u8; 2]) -> i16 {
    i16::from_le_bytes(bytes)
}

/// Slice-level upload encode: native two's-complement little-endian byte
/// pairs into `(L, A)` texels, zero-padded to `texel_count`.
pub fn encode_slice(values: &[i16], texel_count: usize) -> Vec<u8> {
    let mut out = vec![0u8; texel_count * 2];
    for (dst, &v) in out.chunks_exact_mut(2).zip(values) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Slice-level readback decode: `len` values from RGBA8 framebuffer
/// pixels carrying the byte pair in `(R, A)`.
pub fn decode_slice(bytes: &[u8], len: usize) -> Vec<i16> {
    let mut out = vec![0i16; len.min(bytes.len() / 4)];
    for (v, px) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *v = i16::from_le_bytes([px[0], px[3]]);
    }
    out
}

/// Rust mirror of the shader unpack.
#[inline]
pub fn mirror_unpack(bytes: [u8; 2]) -> f32 {
    let b0 = mirror_unpack_byte(bytes[0]);
    let b1 = mirror_unpack_byte(bytes[1]);
    let v = b0 + b1 * 256.0;
    if b1 >= 128.0 {
        v - 65536.0
    } else {
        v
    }
}

/// Rust mirror of the shader pack + store.
#[inline]
pub fn mirror_pack(v: f32, bias: PackBias) -> [u8; 2] {
    let v = if v < 0.0 { v + 65536.0 } else { v };
    let b0 = v % 256.0;
    let b1 = (v / 256.0).floor() % 256.0;
    [mirror_store_byte(b0, bias), mirror_store_byte(b1, bias)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_native_twos_complement() {
        assert_eq!(encode(-1), [0xFF, 0xFF]);
        assert_eq!(encode(-2), [0xFE, 0xFF]);
        assert_eq!(encode(i16::MIN), [0x00, 0x80]);
        assert_eq!(encode(0x1234), [0x34, 0x12]);
    }

    #[test]
    fn round_trip_exhaustive() {
        for v in i16::MIN..=i16::MAX {
            let up = mirror_unpack(encode(v));
            assert_eq!(up, v as f32, "unpack {v}");
            let stored = mirror_pack(up, PackBias::default());
            assert_eq!(decode(stored), v, "pack {v}");
        }
    }

    #[test]
    fn signed_arithmetic_survives_packing() {
        let a = mirror_unpack(encode(-12_000));
        let b = mirror_unpack(encode(5_000));
        assert_eq!(decode(mirror_pack(a + b, PackBias::default())), -7_000);
        assert_eq!(decode(mirror_pack(a * -2.0, PackBias::default())), 24_000);
    }

    #[test]
    fn glsl_compiles() {
        let src = format!(
            "precision highp float;\n\
             float gpes_unpack_byte(float t) {{ return floor(t * 255.0 + 0.5); }}\n\
             float gpes_pack_byte(float b) {{ return (b + 0.25) / 255.0; }}\n\
             {GLSL}\
             void main() {{\n\
               gl_FragColor = gpes_pack_sshort(gpes_unpack_sshort(vec2(0.5, 0.75)));\n\
             }}"
        );
        gpes_glsl::compile(gpes_glsl::ShaderKind::Fragment, &src)
            .unwrap_or_else(|e| panic!("sshort GLSL failed to compile: {e}"));
    }
}
