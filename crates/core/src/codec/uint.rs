//! §IV-C: `unsigned int`.
//!
//! An integer is its four little-endian bytes spread across RGBA
//! (eq. (6): `iu = Σ bᵢ·256ⁱ`). Reconstruction runs in shader fp32, so
//! values are exact up to 2²⁴ — "equivalent to a 24-bit integer, enough
//! for most integer operations in an embedded system" (§IV-C). The inverse
//! decomposition uses `⌊·/256ⁱ⌋ mod 256` (the paper's eq. (7) with the
//! obvious typo fixed).

use super::{mirror_store_byte, mirror_unpack_byte, PackBias};

/// Largest magnitude exactly representable through the fp32 shader path.
pub const EXACT_MAX: u32 = 1 << 24;

/// GLSL pack/unpack for `unsigned int` values carried in a full texel.
pub const GLSL: &str = "\
float gpes_unpack_uint(vec4 t) {\n\
    float b0 = gpes_unpack_byte(t.x);\n\
    float b1 = gpes_unpack_byte(t.y);\n\
    float b2 = gpes_unpack_byte(t.z);\n\
    float b3 = gpes_unpack_byte(t.w);\n\
    return b0 + b1 * 256.0 + b2 * 65536.0 + b3 * 16777216.0;\n\
}\n\
vec4 gpes_pack_uint(float v) {\n\
    float b0 = mod(v, 256.0);\n\
    float r1 = floor(v / 256.0);\n\
    float b1 = mod(r1, 256.0);\n\
    float r2 = floor(r1 / 256.0);\n\
    float b2 = mod(r2, 256.0);\n\
    float b3 = mod(floor(r2 / 256.0), 256.0);\n\
    return vec4(gpes_pack_byte(b0), gpes_pack_byte(b1),\n\
                gpes_pack_byte(b2), gpes_pack_byte(b3));\n\
}\n";

/// Host-side encode: little-endian bytes into RGBA.
#[inline]
pub fn encode(v: u32) -> [u8; 4] {
    v.to_le_bytes()
}

/// Host-side decode.
#[inline]
pub fn decode(bytes: [u8; 4]) -> u32 {
    u32::from_le_bytes(bytes)
}

/// Slice-level upload encode: little-endian words straight into RGBA
/// texels (the §IV "plain memcpy" claim, done as one preallocated pass),
/// zero-padded to `texel_count`.
pub fn encode_slice(values: &[u32], texel_count: usize) -> Vec<u8> {
    let mut out = vec![0u8; texel_count * 4];
    for (px, &v) in out.chunks_exact_mut(4).zip(values) {
        px.copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Slice-level readback decode: `len` words from RGBA8 framebuffer bytes.
pub fn decode_slice(bytes: &[u8], len: usize) -> Vec<u32> {
    let mut out = vec![0u32; len.min(bytes.len() / 4)];
    for (v, px) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *v = u32::from_le_bytes([px[0], px[1], px[2], px[3]]);
    }
    out
}

/// Whether `v` survives the fp32 shader path exactly.
#[inline]
pub fn is_exact(v: u32) -> bool {
    v <= EXACT_MAX
}

/// Rust mirror of the shader unpack (fp32 arithmetic, like the GPU).
#[inline]
pub fn mirror_unpack(texel: [u8; 4]) -> f32 {
    let b0 = mirror_unpack_byte(texel[0]);
    let b1 = mirror_unpack_byte(texel[1]);
    let b2 = mirror_unpack_byte(texel[2]);
    let b3 = mirror_unpack_byte(texel[3]);
    b0 + b1 * 256.0 + b2 * 65536.0 + b3 * 16777216.0
}

/// Rust mirror of the shader pack + store.
#[inline]
pub fn mirror_pack(v: f32, bias: PackBias) -> [u8; 4] {
    let b0 = v % 256.0;
    let r1 = (v / 256.0).floor();
    let b1 = r1 % 256.0;
    let r2 = (r1 / 256.0).floor();
    let b2 = r2 % 256.0;
    let b3 = (r2 / 256.0).floor() % 256.0;
    [
        mirror_store_byte(b0, bias),
        mirror_store_byte(b1, bias),
        mirror_store_byte(b2, bias),
        mirror_store_byte(b3, bias),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_little_endian() {
        assert_eq!(encode(0x0403_0201), [1, 2, 3, 4]);
        assert_eq!(decode([1, 2, 3, 4]), 0x0403_0201);
    }

    #[test]
    fn round_trip_within_24_bits() {
        for v in [
            0u32,
            1,
            255,
            256,
            65535,
            65536,
            1 << 20,
            (1 << 24) - 1,
            1 << 24,
        ] {
            assert!(is_exact(v));
            let up = mirror_unpack(encode(v));
            assert_eq!(up, v as f32, "unpack {v}");
            let stored = mirror_pack(up, PackBias::HalfTexel);
            assert_eq!(decode(stored), v, "pack {v}");
        }
    }

    #[test]
    fn beyond_24_bits_loses_low_bits_as_documented() {
        // 2^24 + 1 is not representable in fp32: the paper's precision
        // analysis predicts exactly this failure.
        let v: u32 = (1 << 24) + 1;
        assert!(!is_exact(v));
        let up = mirror_unpack(encode(v));
        assert_eq!(up, (1 << 24) as f32); // rounded to even
    }

    #[test]
    fn shader_addition_survives_packing() {
        let a = mirror_unpack(encode(1_000_000));
        let b = mirror_unpack(encode(2_345_678));
        let out = mirror_pack(a + b, PackBias::HalfTexel);
        assert_eq!(decode(out), 3_345_678);
    }

    #[test]
    fn paper_delta_round_trip_samples() {
        for v in (0..(1u32 << 24)).step_by(65_537) {
            let stored = mirror_pack(mirror_unpack(encode(v)), PackBias::PaperDelta);
            assert_eq!(decode(stored), v, "value {v}");
        }
    }
}
