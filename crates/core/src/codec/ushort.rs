//! `unsigned short` — the §IV-C construction specialised to two bytes.
//!
//! The paper's §IV scope is "the formats supported in the C language:
//! unsigned and signed variants of char and integer, as well as floating
//! point"; shorts complete the integer family with the same recipe:
//! little-endian bytes, reconstructed as `b0 + b1·256` (eq. (6) truncated
//! to two terms). Two bytes fit a `LUMINANCE_ALPHA` texture (2 bytes per
//! texel instead of 4), and GLES2 samples that format as `(L, L, L, A)`,
//! so the value bytes surface in the `.ra` channels — which is also where
//! [`GLSL`]'s pack function puts them in the RGBA8 framebuffer, keeping
//! uploaded textures and render-to-texture outputs fetch-compatible.
//!
//! All 16 bits sit far inside the fp32-exact range, so unlike the 32-bit
//! codecs there is no precision carve-out: every `u16` survives exactly.

use super::{mirror_store_byte, mirror_unpack_byte, PackBias};

/// Largest value exactly representable (the whole domain).
pub const EXACT_MAX: u32 = u16::MAX as u32;

/// GLSL pack/unpack for `unsigned short` values carried in `.ra`.
pub const GLSL: &str = "\
float gpes_unpack_ushort(vec2 t) {\n\
    return gpes_unpack_byte(t.x) + gpes_unpack_byte(t.y) * 256.0;\n\
}\n\
vec4 gpes_pack_ushort(float v) {\n\
    float b0 = mod(v, 256.0);\n\
    float b1 = mod(floor(v / 256.0), 256.0);\n\
    return vec4(gpes_pack_byte(b0), 0.0, 0.0, gpes_pack_byte(b1));\n\
}\n";

/// Host-side encode: little-endian bytes into (L, A).
#[inline]
pub fn encode(v: u16) -> [u8; 2] {
    v.to_le_bytes()
}

/// Host-side decode.
#[inline]
pub fn decode(bytes: [u8; 2]) -> u16 {
    u16::from_le_bytes(bytes)
}

/// Slice-level upload encode: little-endian byte pairs into `(L, A)`
/// texels, zero-padded to `texel_count` — one preallocated pass.
pub fn encode_slice(values: &[u16], texel_count: usize) -> Vec<u8> {
    let mut out = vec![0u8; texel_count * 2];
    for (dst, &v) in out.chunks_exact_mut(2).zip(values) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Slice-level readback decode: `len` values from RGBA8 framebuffer
/// pixels carrying the byte pair in `(R, A)`.
pub fn decode_slice(bytes: &[u8], len: usize) -> Vec<u16> {
    let mut out = vec![0u16; len.min(bytes.len() / 4)];
    for (v, px) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *v = u16::from_le_bytes([px[0], px[3]]);
    }
    out
}

/// Rust mirror of the shader unpack (fp32 arithmetic, like the GPU).
#[inline]
pub fn mirror_unpack(bytes: [u8; 2]) -> f32 {
    mirror_unpack_byte(bytes[0]) + mirror_unpack_byte(bytes[1]) * 256.0
}

/// Rust mirror of the shader pack + store; returns the `(R, A)` bytes the
/// framebuffer keeps.
#[inline]
pub fn mirror_pack(v: f32, bias: PackBias) -> [u8; 2] {
    let b0 = v % 256.0;
    let b1 = (v / 256.0).floor() % 256.0;
    [mirror_store_byte(b0, bias), mirror_store_byte(b1, bias)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_little_endian() {
        assert_eq!(encode(0x1234), [0x34, 0x12]);
        assert_eq!(decode([0x34, 0x12]), 0x1234);
        // Memcpy-compatible with CPU memory, unlike the §VI baseline.
        assert_eq!(encode(0x1234), 0x1234u16.to_le_bytes());
    }

    #[test]
    fn round_trip_exhaustive() {
        for v in 0..=u16::MAX {
            let up = mirror_unpack(encode(v));
            assert_eq!(up, v as f32, "unpack {v}");
            let stored = mirror_pack(up, PackBias::default());
            assert_eq!(decode(stored), v, "pack {v}");
        }
    }

    #[test]
    fn shader_arithmetic_survives_packing() {
        let a = mirror_unpack(encode(12_345));
        let b = mirror_unpack(encode(40_000));
        let out = mirror_pack(a + b, PackBias::default());
        assert_eq!(decode(out), 52_345);
        // Wrapping is the kernel author's job (mod 65536), as in C.
        let wrapped = mirror_pack((a + b + 20_000.0) % 65536.0, PackBias::default());
        assert_eq!(decode(wrapped), 12_345u16.wrapping_add(60_000));
    }

    #[test]
    fn glsl_compiles() {
        let src = format!(
            "precision highp float;\n\
             float gpes_unpack_byte(float t) {{ return floor(t * 255.0 + 0.5); }}\n\
             float gpes_pack_byte(float b) {{ return (b + 0.25) / 255.0; }}\n\
             {GLSL}\
             void main() {{\n\
               gl_FragColor = gpes_pack_ushort(gpes_unpack_ushort(vec2(0.5, 0.25)));\n\
             }}"
        );
        gpes_glsl::compile(gpes_glsl::ShaderKind::Fragment, &src)
            .unwrap_or_else(|e| panic!("ushort GLSL failed to compile: {e}"));
    }
}
