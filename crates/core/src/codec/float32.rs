//! §IV-E: IEEE-754 single-precision floating point.
//!
//! Unlike the integer formats, float bytes are **not** uploaded verbatim:
//! the paper's Figure 2 rotates the top nine bits so the eight exponent
//! bits occupy one byte and the sign joins the mantissa's high byte:
//!
//! ```text
//! IEEE-754:  [ s | e7…e0 | m22…m0 ]
//! rotated:   [ e7…e0 | s | m22…m0 ]
//! bytes LE:  b0 = m7…m0   b1 = m15…m8   b2 = s·128 + m22…m16   b3 = e
//! ```
//!
//! The shader reconstructs `(-1)^s · (1 + m·2⁻²³) · 2^(e−127)` with
//! `exp2`, and decomposes with `log2`/`exp2` on output — precisely the SFU
//! operations whose reduced precision produces the paper's "accurate
//! within the 15 most significant mantissa bits" observation (experiment
//! E2). Denormals, ±0, and (optionally) ±∞/NaN are preserved.

use super::{mirror_store_byte, mirror_unpack_byte, FloatSpecials, PackBias};

/// Rotates IEEE-754 bits into the texture layout (Figure 2).
#[inline]
pub fn rotate_bits(bits: u32) -> u32 {
    let s = bits >> 31;
    let e = (bits >> 23) & 0xFF;
    let m = bits & 0x007F_FFFF;
    (e << 24) | (s << 23) | m
}

/// Inverse of [`rotate_bits`].
#[inline]
pub fn unrotate_bits(rotated: u32) -> u32 {
    let e = rotated >> 24;
    let s = (rotated >> 23) & 1;
    let m = rotated & 0x007F_FFFF;
    (s << 31) | (e << 23) | m
}

/// Host-side encode: rotate, then little-endian bytes into RGBA.
#[inline]
pub fn encode(v: f32) -> [u8; 4] {
    rotate_bits(v.to_bits()).to_le_bytes()
}

/// Host-side decode.
#[inline]
pub fn decode(bytes: [u8; 4]) -> f32 {
    f32::from_bits(unrotate_bits(u32::from_le_bytes(bytes)))
}

/// Slice-level upload encode: `values` into `4·texel_count` RGBA bytes,
/// zero-padded. This is the hot path touched by every float upload; the
/// single preallocated pass over branch-free bit rotations is what the
/// autovectoriser needs to emit SIMD (the per-element [`encode`] inside
/// a `Vec::extend` loop defeats it).
pub fn encode_slice(values: &[f32], texel_count: usize) -> Vec<u8> {
    let mut out = vec![0u8; texel_count * 4];
    for (px, &v) in out.chunks_exact_mut(4).zip(values) {
        px.copy_from_slice(&rotate_bits(v.to_bits()).to_le_bytes());
    }
    out
}

/// Slice-level readback decode: `len` floats from RGBA8 framebuffer
/// bytes. Counterpart of [`encode_slice`]; bit-identical to mapping
/// [`decode`] over texels.
pub fn decode_slice(bytes: &[u8], len: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; len.min(bytes.len() / 4)];
    for (v, px) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *v = f32::from_bits(unrotate_bits(u32::from_le_bytes([
            px[0], px[1], px[2], px[3],
        ])));
    }
    out
}

/// GLSL pack/unpack for `float` values carried in a full texel.
pub fn glsl(specials: FloatSpecials) -> String {
    let unpack_specials = match specials {
        FloatSpecials::Preserve => {
            "    if (b3 == 255.0) {\n\
             \x20       if (m == 0.0) { return sign_value / 0.0; }\n\
             \x20       return 0.0 / 0.0;\n\
             \x20   }\n"
        }
        FloatSpecials::Flush => "",
    };
    let pack_specials = match specials {
        FloatSpecials::Preserve => {
            "    if (a != a) {\n\
             \x20       return vec4(gpes_pack_byte(0.0), gpes_pack_byte(0.0),\n\
             \x20                   gpes_pack_byte(64.0), gpes_pack_byte(255.0));\n\
             \x20   }\n\
             \x20   if (a == 1.0 / 0.0) {\n\
             \x20       return vec4(gpes_pack_byte(0.0), gpes_pack_byte(0.0),\n\
             \x20                   gpes_pack_byte(s), gpes_pack_byte(255.0));\n\
             \x20   }\n"
        }
        FloatSpecials::Flush => "",
    };
    format!(
        "float gpes_unpack_float(vec4 t) {{\n\
         \x20   float b0 = gpes_unpack_byte(t.x);\n\
         \x20   float b1 = gpes_unpack_byte(t.y);\n\
         \x20   float b2 = gpes_unpack_byte(t.z);\n\
         \x20   float b3 = gpes_unpack_byte(t.w);\n\
         \x20   float sign_value = b2 < 128.0 ? 1.0 : -1.0;\n\
         \x20   float mant_hi = b2 < 128.0 ? b2 : b2 - 128.0;\n\
         \x20   float m = b0 + b1 * 256.0 + mant_hi * 65536.0;\n\
         \x20   if (b3 == 0.0) {{\n\
         \x20       return sign_value * m * exp2(-149.0);\n\
         \x20   }}\n\
         {unpack_specials}\
         \x20   return sign_value * (1.0 + m * exp2(-23.0)) * exp2(b3 - 127.0);\n\
         }}\n\
         vec4 gpes_pack_float(float v) {{\n\
         \x20   float s = 0.0;\n\
         \x20   if (v < 0.0 || (v == 0.0 && 1.0 / v < 0.0)) {{ s = 128.0; }}\n\
         \x20   float a = abs(v);\n\
         {pack_specials}\
         \x20   if (a == 0.0) {{\n\
         \x20       return vec4(gpes_pack_byte(0.0), gpes_pack_byte(0.0),\n\
         \x20                   gpes_pack_byte(s), gpes_pack_byte(0.0));\n\
         \x20   }}\n\
         \x20   float e = floor(log2(a));\n\
         \x20   if (e > 127.0) {{ e = 127.0; }}\n\
         \x20   float p = exp2(e);\n\
         \x20   // Guards against SFU rounding error in log2/exp2.\n\
         \x20   if (a < p) {{ e = e - 1.0; p = p * 0.5; }}\n\
         \x20   if (a >= p * 2.0) {{ e = e + 1.0; p = p * 2.0; }}\n\
         \x20   if (e < -126.0) {{\n\
         \x20       float md = floor(a * exp2(126.0) * 8388608.0 + 0.5);\n\
         \x20       float d0 = mod(md, 256.0);\n\
         \x20       float d1 = mod(floor(md / 256.0), 256.0);\n\
         \x20       float d2 = s + floor(md / 65536.0);\n\
         \x20       return vec4(gpes_pack_byte(d0), gpes_pack_byte(d1),\n\
         \x20                   gpes_pack_byte(d2), gpes_pack_byte(0.0));\n\
         \x20   }}\n\
         \x20   float m = floor((a / p - 1.0) * 8388608.0 + 0.5);\n\
         \x20   if (m >= 8388608.0) {{ m = 0.0; e = e + 1.0; }}\n\
         \x20   float b3 = e + 127.0;\n\
         \x20   float b0 = mod(m, 256.0);\n\
         \x20   float b1 = mod(floor(m / 256.0), 256.0);\n\
         \x20   float b2 = s + floor(m / 65536.0);\n\
         \x20   return vec4(gpes_pack_byte(b0), gpes_pack_byte(b1),\n\
         \x20               gpes_pack_byte(b2), gpes_pack_byte(b3));\n\
         }}\n"
    )
}

/// Rust mirror of the shader unpack (exact-model fp32 arithmetic).
pub fn mirror_unpack(texel: [u8; 4], specials: FloatSpecials) -> f32 {
    let b0 = mirror_unpack_byte(texel[0]);
    let b1 = mirror_unpack_byte(texel[1]);
    let b2 = mirror_unpack_byte(texel[2]);
    let b3 = mirror_unpack_byte(texel[3]);
    let sign_value = if b2 < 128.0 { 1.0f32 } else { -1.0 };
    let mant_hi = if b2 < 128.0 { b2 } else { b2 - 128.0 };
    let m = b0 + b1 * 256.0 + mant_hi * 65536.0;
    if b3 == 0.0 {
        return sign_value * m * exact_exp2(-149);
    }
    if specials == FloatSpecials::Preserve && b3 == 255.0 {
        return if m == 0.0 { sign_value / 0.0 } else { f32::NAN };
    }
    sign_value * (1.0 + m * exact_exp2(-23)) * exact_exp2(b3 as i32 - 127)
}

/// Rust mirror of the shader pack + eq. (2) store.
pub fn mirror_pack(v: f32, bias: PackBias, specials: FloatSpecials) -> [u8; 4] {
    let store = |b: f32| mirror_store_byte(b, bias);
    let s = if v < 0.0 || (v == 0.0 && v.is_sign_negative()) {
        128.0f32
    } else {
        0.0
    };
    let a = v.abs();
    if specials == FloatSpecials::Preserve {
        if a.is_nan() {
            return [store(0.0), store(0.0), store(64.0), store(255.0)];
        }
        if a.is_infinite() {
            return [store(0.0), store(0.0), store(s), store(255.0)];
        }
    }
    if a == 0.0 {
        return [store(0.0), store(0.0), store(s), store(0.0)];
    }
    let mut e = a.log2().floor();
    // log2 of values just below a power of two can round up; clamp so
    // exp2 stays finite (the guards below re-derive the true exponent).
    if e > 127.0 {
        e = 127.0;
    }
    let mut p = exact_exp2(e as i32);
    if a < p {
        e -= 1.0;
        p *= 0.5;
    }
    if a >= p * 2.0 {
        e += 1.0;
        p *= 2.0;
    }
    if e < -126.0 {
        let md = (a * exact_exp2(126) * 8_388_608.0 + 0.5).floor();
        let d0 = md % 256.0;
        let d1 = (md / 256.0).floor() % 256.0;
        let d2 = s + (md / 65536.0).floor();
        return [store(d0), store(d1), store(d2), store(0.0)];
    }
    let mut m = ((a / p - 1.0) * 8_388_608.0 + 0.5).floor();
    if m >= 8_388_608.0 {
        m = 0.0;
        e += 1.0;
    }
    let b3 = e + 127.0;
    let b0 = m % 256.0;
    let b1 = (m / 256.0).floor() % 256.0;
    let b2 = s + (m / 65536.0).floor();
    [store(b0), store(b1), store(b2), store(b3)]
}

/// `2^e` computed exactly for integer exponents (including subnormals).
fn exact_exp2(e: i32) -> f32 {
    if e >= -126 {
        f32::from_bits(((e + 127) as u32) << 23)
    } else {
        f32::from_bits(1u32 << (149 + e) as u32)
    }
}

/// How many of the 23 explicit mantissa bits of `expected` the value
/// `actual` reproduces: `23 − ⌈log₂(ulp distance + 1)⌉`, clamped to
/// [0, 23].
///
/// This is the metric behind the paper's §V accuracy claim ("accurate …
/// within the 15 most significant bits of the mantissa"): an error of at
/// most 2⁸ units in the last place leaves the 15 most significant
/// mantissa bits trustworthy. Measuring ulp distance (rather than a raw
/// XOR bit prefix) keeps a ±1-ulp error near a carry boundary from
/// counting as total disagreement.
pub fn mantissa_agreement_bits(expected: f32, actual: f32) -> u32 {
    if expected.to_bits() == actual.to_bits() || (expected.is_nan() && actual.is_nan()) {
        return 23;
    }
    if expected.is_nan() || actual.is_nan() {
        return 0;
    }
    let d = (ordered(expected) - ordered(actual)).unsigned_abs();
    let err_bits = 64 - d.leading_zeros();
    23u32.saturating_sub(err_bits)
}

/// Maps a float onto a monotone integer line (IEEE total-order trick) so
/// ulp distances can be computed across binades.
fn ordered(v: f32) -> i64 {
    let b = v.to_bits();
    if b & 0x8000_0000 != 0 {
        -((b & 0x7FFF_FFFF) as i64)
    } else {
        b as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: &[f32] = &[
        0.0,
        1.0,
        -1.0,
        0.5,
        2.0,
        -3.75,
        std::f32::consts::PI,
        1.0e-10,
        -1.0e10,
        6.02214e23,
        1.175494e-38, // near smallest normal
        3.402823e38,  // near f32::MAX
        1.0e-40,      // subnormal
        -7.0e-42,     // subnormal
        255.0,
        1.0 / 3.0,
    ];

    #[test]
    fn rotation_is_a_bijection() {
        for &v in SAMPLES {
            let bits = v.to_bits();
            assert_eq!(unrotate_bits(rotate_bits(bits)), bits, "{v}");
        }
        // Byte layout of Figure 2: 1.0 = 0x3F800000 → e=0x7F, s=0, m=0.
        assert_eq!(encode(1.0), [0, 0, 0, 127]);
        // -2.0 = s=1, e=128, m=0 → b2 carries the sign bit.
        assert_eq!(encode(-2.0), [0, 0, 128, 128]);
    }

    #[test]
    fn slice_paths_match_per_element() {
        let enc = encode_slice(SAMPLES, SAMPLES.len() + 2);
        assert_eq!(enc.len(), (SAMPLES.len() + 2) * 4);
        for (i, &v) in SAMPLES.iter().enumerate() {
            assert_eq!(&enc[i * 4..i * 4 + 4], &encode(v));
        }
        assert_eq!(&enc[SAMPLES.len() * 4..], &[0u8; 8]);
        let dec = decode_slice(&enc, SAMPLES.len());
        assert_eq!(dec.len(), SAMPLES.len());
        for (d, &v) in dec.iter().zip(SAMPLES) {
            assert_eq!(d.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn host_round_trip_is_exact() {
        for &v in SAMPLES {
            assert_eq!(decode(encode(v)).to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn shader_unpack_is_bit_exact_under_exact_model() {
        for &v in SAMPLES {
            let up = mirror_unpack(encode(v), FloatSpecials::Preserve);
            assert_eq!(up.to_bits(), v.to_bits(), "unpack {v}");
        }
    }

    #[test]
    fn shader_pack_round_trips_bit_exactly() {
        for &v in SAMPLES {
            let bytes = mirror_pack(v, PackBias::HalfTexel, FloatSpecials::Preserve);
            assert_eq!(decode(bytes).to_bits(), v.to_bits(), "pack {v}");
        }
    }

    #[test]
    fn full_gpu_cycle_encode_unpack_pack_decode() {
        for &v in SAMPLES {
            let up = mirror_unpack(encode(v), FloatSpecials::Preserve);
            let out = mirror_pack(up, PackBias::HalfTexel, FloatSpecials::Preserve);
            assert_eq!(decode(out).to_bits(), v.to_bits(), "cycle {v}");
        }
    }

    #[test]
    fn specials_are_preserved() {
        for v in [f32::INFINITY, f32::NEG_INFINITY] {
            let up = mirror_unpack(encode(v), FloatSpecials::Preserve);
            assert_eq!(up, v);
            let out = mirror_pack(up, PackBias::HalfTexel, FloatSpecials::Preserve);
            assert_eq!(decode(out), v);
        }
        let nan_up = mirror_unpack(encode(f32::NAN), FloatSpecials::Preserve);
        assert!(nan_up.is_nan());
        let out = mirror_pack(nan_up, PackBias::HalfTexel, FloatSpecials::Preserve);
        assert!(decode(out).is_nan());
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let v = -0.0f32;
        let out = mirror_pack(
            mirror_unpack(encode(v), FloatSpecials::Preserve),
            PackBias::HalfTexel,
            FloatSpecials::Preserve,
        );
        assert_eq!(decode(out).to_bits(), v.to_bits());
    }

    #[test]
    fn exact_exp2_matches_reference() {
        for e in [-149, -140, -127, -126, -24, 0, 1, 24, 127] {
            let expected = 2.0f64.powi(e) as f32;
            assert_eq!(exact_exp2(e), expected, "2^{e}");
        }
    }

    #[test]
    fn agreement_metric() {
        assert_eq!(mantissa_agreement_bits(1.0, 1.0), 23);
        assert_eq!(mantissa_agreement_bits(f32::NAN, f32::NAN), 23);
        // Flip the lowest mantissa bit → 22 bits agree.
        let v = 1.5f32;
        let w = f32::from_bits(v.to_bits() ^ 1);
        assert_eq!(mantissa_agreement_bits(v, w), 22);
        // Flip mantissa bit 22 (highest) → 0 agree.
        let w = f32::from_bits(v.to_bits() ^ (1 << 22));
        assert_eq!(mantissa_agreement_bits(v, w), 0);
        // A full binade apart → 0.
        assert_eq!(mantissa_agreement_bits(1.0, 2.0), 0);
        // One ulp across a carry boundary is still 22 bits of agreement
        // (the XOR-prefix metric would report 0 here).
        let boundary = f32::from_bits(0x3FFF_FFFF); // just below 2.0
        let next = f32::from_bits(0x4000_0000); // 2.0
        assert_eq!(mantissa_agreement_bits(boundary, next), 22);
        // Error of ~2^8 ulps → 14-15 bits agree (the paper's number).
        let w = f32::from_bits(v.to_bits() + 0xA5);
        assert!(mantissa_agreement_bits(v, w) >= 14);
        // Sign disagreement on non-tiny values → 0.
        assert_eq!(mantissa_agreement_bits(1.0, -1.0), 0);
    }

    #[test]
    fn glsl_source_compiles_both_variants() {
        for specials in [FloatSpecials::Preserve, FloatSpecials::Flush] {
            let lib = super::super::glsl_codec_library(PackBias::HalfTexel, specials);
            let src = format!(
                "precision highp float;\n{lib}\n\
                 void main() {{ gl_FragColor = gpes_pack_float(gpes_unpack_float(vec4(0.5))); }}"
            );
            gpes_glsl::compile(gpes_glsl::ShaderKind::Fragment, &src)
                .unwrap_or_else(|e| panic!("{specials:?}: {e}"));
        }
    }
}
