//! §IV-A: `unsigned char`.
//!
//! The byte *is* the texel, so the host side is the identity; the work is
//! the bijection `M : [0,1] → [0,255]` in the shader (eq. (4)) and its
//! inverse for output (eq. (5)).

use super::{mirror_store_byte, mirror_unpack_byte, PackBias};

/// GLSL pack/unpack for `unsigned char` values carried in one channel.
pub const GLSL: &str = "\
float gpes_unpack_ubyte(float t) { return gpes_unpack_byte(t); }\n\
float gpes_pack_ubyte(float v) { return gpes_pack_byte(v); }\n";

/// Host-side encode: a `u8` array element to its texel byte.
#[inline]
pub fn encode(v: u8) -> u8 {
    v
}

/// Host-side decode: framebuffer byte back to the `u8` element.
#[inline]
pub fn decode(b: u8) -> u8 {
    b
}

/// Slice-level upload encode: the identity `memcpy`, zero-padded to
/// `texel_count` single-byte texels.
pub fn encode_slice(values: &[u8], texel_count: usize) -> Vec<u8> {
    let mut out = vec![0u8; texel_count];
    let n = values.len().min(texel_count);
    out[..n].copy_from_slice(&values[..n]);
    out
}

/// Slice-level readback decode: gathers `len` R-channel bytes out of
/// RGBA8 framebuffer pixels in one pass.
pub fn decode_slice(bytes: &[u8], len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len.min(bytes.len() / 4)];
    for (v, px) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *v = px[0];
    }
    out
}

/// Rust mirror of the shader unpack: texel byte → the value the kernel
/// sees (a float holding 0..=255).
#[inline]
pub fn mirror_unpack(texel: u8) -> f32 {
    mirror_unpack_byte(texel)
}

/// Rust mirror of the shader pack + eq. (2) store: kernel value →
/// framebuffer byte.
#[inline]
pub fn mirror_pack(v: f32, bias: PackBias) -> u8 {
    mirror_store_byte(v, bias)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_values() {
        for v in 0..=255u8 {
            let up = mirror_unpack(encode(v));
            assert_eq!(up, v as f32);
            let stored = mirror_pack(up, PackBias::HalfTexel);
            assert_eq!(decode(stored), v);
        }
    }

    #[test]
    fn paper_delta_round_trip() {
        for v in 0..=255u8 {
            let stored = mirror_pack(v as f32, PackBias::PaperDelta);
            assert_eq!(stored, v);
        }
    }

    #[test]
    fn shader_arithmetic_then_pack() {
        // A kernel that adds two bytes and saturates within range.
        let a = mirror_unpack(100);
        let b = mirror_unpack(55);
        assert_eq!(mirror_pack(a + b, PackBias::HalfTexel), 155);
    }
}
