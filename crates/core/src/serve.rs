//! `gpes-serve` — a concurrent multi-kernel serving engine over the
//! retained compute API.
//!
//! The deployment shape this models is the one on-device inference stacks
//! (CNNdroid, the TFLite GPU delegate) settle on: many independent
//! compute requests arrive at one device, one-time program compilation is
//! amortised across all of them, and a small pool of worker contexts
//! drains a submission queue. Concretely:
//!
//! * an [`Engine`] owns N worker threads, each with its own
//!   [`ComputeContext`] (GL contexts are single-threaded by construction,
//!   exactly as on real hardware — sharing happens at the *program*
//!   level, not the context level);
//! * every worker context is wired to one process-wide
//!   [`SharedProgramCache`], so each distinct kernel links exactly once
//!   no matter which worker sees it first ([`CachePolicy::PerContext`]
//!   exists for the `a10` ablation that measures what N× relinking
//!   costs);
//! * requests are [`Job`]s (one kernel dispatch), [`Submission`]s (a
//!   multi-kernel DAG that runs on one worker without per-step queue
//!   round-trips, intermediates staying on the GPU), or [`PipelineJob`]s
//!   (a whole retained multi-pass [`crate::Pipeline`] described by a
//!   context-free [`PipelineSpec`] — iteration loops, ping-pong pairs,
//!   per-iteration uniforms and `until` predicates run entirely on one
//!   worker, with the built pipeline cached per worker by spec hash);
//! * constant inputs can be made **resident** ([`ResidentInput`]): each
//!   worker uploads them once and every later job — kernel, DAG or
//!   pipeline — reuses the on-GPU texture, with capacity evictions
//!   accounted in [`ResidentStats`];
//! * workers **self-heal**: transient driver failures (resource
//!   exhaustion, context loss — injectable deterministically via
//!   [`EngineBuilder::fault_plan`]) are retried under a [`RetryPolicy`];
//!   a lost context is torn down and rebuilt (shared programs re-adopted
//!   through the cache, resident textures and cached pipelines
//!   repopulated lazily) and the in-flight job replayed — callers see
//!   success or a typed permanent error, never a stale-handle panic;
//! * admission is **bounded**: the queue holds at most
//!   [`EngineBuilder::queue_capacity`] tasks. `try_submit*` rejects
//!   immediately with [`ComputeError::QueueFull`]; the blocking
//!   `submit*` family waits up to [`EngineBuilder::submit_timeout`] for
//!   a slot and then rejects the same way — no submission path ever
//!   blocks indefinitely;
//! * jobs may carry a **deadline** ([`Job::deadline`] /
//!   [`Submission::deadline`] / [`PipelineJob::deadline`]): a worker
//!   checks it at dequeue and sheds expired work with
//!   [`ComputeError::DeadlineExceeded`] *before* touching the GPU.
//!   [`JobHandle::cancel`] aborts queued-but-unstarted work the same
//!   way ([`ComputeError::Cancelled`]);
//! * results come back through typed [`JobHandle`]s — blocking
//!   [`JobHandle::wait`], non-blocking [`JobHandle::try_wait`] /
//!   [`JobHandle::wait_timeout`] / [`JobHandle::wait_deadline`], or a
//!   [`CompletionSet`] that multiplexes any number of in-flight handles
//!   over one condvar so a caller can drive thousands of jobs without a
//!   thread each;
//! * [`Engine::snapshot`] exports an [`EngineSnapshot`]: admission and
//!   outcome counters (`submitted = completed + rejected + shed +
//!   cancelled + aborted` at quiescence), queue depth and high-water
//!   mark, log-spaced queue/service latency histograms, and the merged
//!   [`ContextStats`] / [`crate::SharedCacheStats`] / [`ResidentStats`].
//!
//! Kernels are described by a context-free [`KernelSpec`] rather than a
//! built [`crate::Kernel`], because a kernel object is bound to the
//! context that compiled it. A spec carries exactly the information
//! [`crate::KernelBuilder`] needs, so a worker executing a job performs
//! the same upload → build → dispatch → read sequence a caller would
//! perform directly — the engine differential test asserts the outputs
//! are bit-identical.
//!
//! ```
//! use gpes_core::serve::{Engine, Job, KernelSpec};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), gpes_core::ComputeError> {
//! let engine = Engine::builder().workers(2).build()?;
//! let saxpy = Arc::new(
//!     KernelSpec::new("saxpy")
//!         .input("x")
//!         .input("y")
//!         .uniform_f32("alpha", 2.0)
//!         .output(4)
//!         .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
//! );
//! let job = Job::new(&saxpy)
//!     .data(vec![1.0, 2.0, 3.0, 4.0])
//!     .data(vec![10.0, 20.0, 30.0, 40.0]);
//! let handle = engine.submit(job)?;
//! assert_eq!(handle.wait()?, vec![12.0, 24.0, 36.0, 48.0]);
//! # Ok(())
//! # }
//! ```

pub mod metrics;

pub use metrics::{EngineSnapshot, LatencyHistogram};

use crate::buffer::GpuArray;
use crate::cache::{FifoCache, SharedProgramCache};
use crate::context::{ComputeContext, ContextStats};
use crate::error::ComputeError;
use crate::kernel::{Kernel, OutputShape};
use crate::pipeline::{Pass, Pipeline, Readback, SourceSeed};
use crate::Bindings;
use gpes_gles2::{Dispatch, FaultPlan, Limits};
use gpes_glsl::Value;
use metrics::{lock_recover, wait_recover, EngineMetrics};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---- kernel specification ------------------------------------------------

/// A context-free description of an `f32` compute kernel: everything
/// [`crate::KernelBuilder`] needs, minus the textures, so the same spec
/// can be built (cheaply, through the program caches) on any worker
/// context. Specs are immutable once built; wrap them in [`Arc`] and
/// reuse them across jobs.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    name: String,
    inputs: Vec<String>,
    uniforms: Vec<(String, Value)>,
    output: Option<OutputShape>,
    body: String,
    functions: String,
}

impl KernelSpec {
    /// Starts a spec for a kernel named `name`.
    pub fn new(name: impl Into<String>) -> KernelSpec {
        KernelSpec {
            name: name.into(),
            inputs: Vec::new(),
            uniforms: Vec::new(),
            output: None,
            body: String::new(),
            functions: String::new(),
        }
    }

    /// Declares an `f32` array input; jobs supply its data positionally,
    /// in declaration order.
    pub fn input(mut self, name: impl Into<String>) -> Self {
        self.inputs.push(name.into());
        self
    }

    /// Declares a uniform with a default value.
    pub fn uniform(mut self, name: impl Into<String>, value: Value) -> Self {
        self.uniforms.push((name.into(), value));
        self
    }

    /// Declares a `uniform float` with a default value.
    pub fn uniform_f32(self, name: impl Into<String>, value: f32) -> Self {
        self.uniform(name, Value::Float(value))
    }

    /// Declares the linear output length.
    pub fn output(mut self, len: usize) -> Self {
        self.output = Some(OutputShape::Linear(len));
        self
    }

    /// Declares a `rows × cols` output grid.
    pub fn output_grid(mut self, rows: u32, cols: u32) -> Self {
        self.output = Some(OutputShape::Grid { rows, cols });
        self
    }

    /// The kernel body (contents of `float kernel(idx, row, col)`).
    pub fn body(mut self, body: impl Into<String>) -> Self {
        self.body = body.into();
        self
    }

    /// Extra GLSL helper functions available to the body.
    pub fn functions(mut self, source: impl Into<String>) -> Self {
        self.functions = source.into();
        self
    }

    /// The declared input names, in positional order.
    pub fn input_names(&self) -> &[String] {
        &self.inputs
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the kernel against `arrays` (parallel to the declared
    /// inputs) on `cc` — a program-cache hit everywhere but the first
    /// build of this spec in the process (shared cache) or context.
    /// Public so direct (non-engine) dispatch of a spec generates the
    /// byte-identical program an engine worker runs — the differential
    /// tests and the `a10` ablation rely on it.
    ///
    /// # Errors
    ///
    /// Spec/kernel validation and compile errors, as
    /// [`crate::KernelBuilder::build`].
    pub fn build(
        &self,
        cc: &mut ComputeContext,
        arrays: &[GpuArray<f32>],
    ) -> Result<Kernel, ComputeError> {
        if arrays.len() != self.inputs.len() {
            return Err(bad_job(format!(
                "kernel spec `{}` declares {} inputs, got {} arrays",
                self.name,
                self.inputs.len(),
                arrays.len()
            )));
        }
        let shape = self
            .output
            .ok_or_else(|| bad_job(format!("kernel spec `{}` declares no output", self.name)))?;
        let mut b = Kernel::builder(self.name.clone());
        for (name, array) in self.inputs.iter().zip(arrays) {
            b = b.input(name, array);
        }
        for (name, value) in &self.uniforms {
            b = b.uniform(name, value.clone());
        }
        if !self.functions.is_empty() {
            b = b.functions(self.functions.clone());
        }
        b = match shape {
            OutputShape::Linear(len) => b.output(crate::ScalarType::F32, len),
            OutputShape::Grid { rows, cols } => b.output_grid(crate::ScalarType::F32, rows, cols),
        };
        b.body(self.body.clone()).build(cc)
    }
}

fn bad_job(message: String) -> ComputeError {
    ComputeError::BadKernel { message }
}

// ---- resident inputs -----------------------------------------------------

/// Process-unique ids for [`ResidentInput`]s (and spec-hash closure
/// tokens); never reused, so a stale worker cache entry can never alias a
/// new handle.
static NEXT_UNIQUE_ID: AtomicU64 = AtomicU64::new(1);

fn next_unique_id() -> u64 {
    NEXT_UNIQUE_ID.fetch_add(1, Ordering::Relaxed)
}

struct ResidentInner {
    id: u64,
    data: Vec<f32>,
    evicted: AtomicBool,
}

/// Host data promoted to **per-worker GPU residency**: the first job on
/// each worker that references the handle uploads it, every later job on
/// that worker — kernel, DAG step or pipeline source — binds the
/// already-uploaded texture. The serving analog of model weights: pay the
/// host→GPU transfer once per worker, not once per request.
///
/// Cloning the handle is cheap (it is `Arc`-backed) and refers to the
/// same residency. [`ResidentInput::evict`] retires the handle
/// everywhere: workers drop their textures and any job still referencing
/// it fails with a validation error instead of silently re-uploading.
/// Workers additionally bound how many residencies they hold; entries
/// past the cap are evicted oldest-first (transparently re-uploaded on
/// next use) with the eviction counted in [`ResidentStats`].
#[derive(Clone)]
pub struct ResidentInput {
    inner: Arc<ResidentInner>,
}

impl ResidentInput {
    /// Wraps host data for per-worker GPU residency.
    pub fn new(data: Vec<f32>) -> ResidentInput {
        ResidentInput {
            inner: Arc::new(ResidentInner {
                id: next_unique_id(),
                data,
                evicted: AtomicBool::new(false),
            }),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.data.len()
    }

    /// Whether the input is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.data.is_empty()
    }

    /// Retires the residency everywhere: each worker recycles its
    /// uploaded texture at its next task boundary, and any subsequent job
    /// referencing this handle fails validation. Irreversible — re-upload
    /// under a fresh handle instead.
    pub fn evict(&self) {
        self.inner.evicted.store(true, Ordering::Release);
    }

    /// Whether [`ResidentInput::evict`] has been called.
    pub fn is_evicted(&self) -> bool {
        self.inner.evicted.load(Ordering::Acquire)
    }

    fn check_live(&self, what: &str) -> Result<(), ComputeError> {
        if self.is_evicted() {
            return Err(bad_job(format!(
                "{what} references an evicted ResidentInput (id {})",
                self.inner.id
            )));
        }
        Ok(())
    }
}

impl std::fmt::Debug for ResidentInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentInput")
            .field("id", &self.inner.id)
            .field("len", &self.inner.data.len())
            .field("evicted", &self.is_evicted())
            .finish()
    }
}

/// Per-worker residency counters — the [`ContextStats`]-style accounting
/// for [`ResidentInput`] textures. In steady state (every referenced
/// residency within the per-worker cap) `uploads` freezes and every
/// access is a hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidentStats {
    /// Host→GPU uploads performed for resident inputs (first use per
    /// worker, or re-upload after a capacity eviction).
    pub uploads: u64,
    /// Accesses served from the worker's resident textures.
    pub hits: u64,
    /// Entries dropped — capacity evictions plus retired handles noticed.
    pub evictions: u64,
    /// Entries currently held by the worker.
    pub resident_textures: u64,
}

impl ResidentStats {
    fn merged(&self, other: &ResidentStats) -> ResidentStats {
        ResidentStats {
            uploads: self.uploads + other.uploads,
            hits: self.hits + other.hits,
            evictions: self.evictions + other.evictions,
            // Current occupancy, not a lifetime total: the live state wins.
            resident_textures: other.resident_textures,
        }
    }
}

/// One input of a [`Job`] or [`PipelineJob`]: fresh host data uploaded
/// when the job runs (and recycled after), or a reference to a
/// per-worker [`ResidentInput`].
#[derive(Debug, Clone)]
pub enum JobInput {
    /// Host data uploaded per request. `Arc`-held so fan-out jobs share
    /// one buffer without copying.
    Data(Arc<Vec<f32>>),
    /// An input resident on the worker across requests.
    Resident(ResidentInput),
}

impl JobInput {
    fn len(&self) -> usize {
        match self {
            JobInput::Data(d) => d.len(),
            JobInput::Resident(r) => r.len(),
        }
    }

    fn check_live(&self, what: &str) -> Result<(), ComputeError> {
        match self {
            JobInput::Data(_) => Ok(()),
            JobInput::Resident(r) => r.check_live(what),
        }
    }
}

// ---- jobs and submissions ------------------------------------------------

/// One input of a [`Submission`] step: fresh host data, the on-GPU
/// output of an earlier step in the same submission, or a per-worker
/// resident input.
#[derive(Debug, Clone)]
pub enum StepInput {
    /// Host data uploaded when the step runs. `Arc`-held so fan-out
    /// submissions can share one buffer without copying.
    Data(Arc<Vec<f32>>),
    /// The output array of step `i` (must precede this step); it stays on
    /// the GPU — no readback/re-upload between steps. Prefer wiring
    /// through a [`StepHandle`] (`handle.into()`) over raw indices.
    Step(usize),
    /// An input resident on the worker across requests.
    Resident(ResidentInput),
}

/// A typed reference to a step appended to a [`Submission`] — returned by
/// [`Submission::step`] so DAG wiring never hand-counts indices: pass it
/// to later steps via `handle.into()` ([`StepInput`]) and to
/// [`Submission::read`] / [`BatchResult::output`] directly. Handles are
/// only meaningful for the submission that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepHandle(usize);

impl StepHandle {
    /// The raw step index (escape hatch for manual wiring).
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<StepHandle> for StepInput {
    fn from(handle: StepHandle) -> StepInput {
        StepInput::Step(handle.0)
    }
}

/// A single kernel dispatch: spec + positional input data + optional
/// dispatch-time uniform overrides. Result type: `Vec<f32>`.
#[derive(Debug, Clone)]
pub struct Job {
    kernel: Arc<KernelSpec>,
    inputs: Vec<JobInput>,
    uniforms: Vec<(String, Value)>,
    deadline: Option<Instant>,
    retry: Option<RetryPolicy>,
}

impl Job {
    /// Starts a job running `kernel`.
    pub fn new(kernel: &Arc<KernelSpec>) -> Job {
        Job {
            kernel: Arc::clone(kernel),
            inputs: Vec::new(),
            uniforms: Vec::new(),
            deadline: None,
            retry: None,
        }
    }

    /// Overrides the engine's [`RetryPolicy`] for this job only (e.g.
    /// [`RetryPolicy::none`] for work that must not run twice).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Job {
        self.retry = Some(policy);
        self
    }

    /// Sets an absolute deadline: if no worker has dequeued the job by
    /// `at`, it is shed with [`ComputeError::DeadlineExceeded`] before
    /// any GPU work happens.
    pub fn deadline(mut self, at: Instant) -> Job {
        self.deadline = Some(at);
        self
    }

    /// [`Job::deadline`] relative to now.
    pub fn timeout(self, after: Duration) -> Job {
        let at = Instant::now() + after;
        self.deadline(at)
    }

    /// Appends host data for the next declared input.
    pub fn data(mut self, data: Vec<f32>) -> Job {
        self.inputs.push(JobInput::Data(Arc::new(data)));
        self
    }

    /// Appends shared host data for the next declared input.
    pub fn data_shared(mut self, data: &Arc<Vec<f32>>) -> Job {
        self.inputs.push(JobInput::Data(Arc::clone(data)));
        self
    }

    /// Binds a per-worker [`ResidentInput`] to the next declared input —
    /// no upload happens on workers that already hold it.
    pub fn resident(mut self, input: &ResidentInput) -> Job {
        self.inputs.push(JobInput::Resident(input.clone()));
        self
    }

    /// Overrides a uniform for this dispatch only.
    pub fn uniform(mut self, name: impl Into<String>, value: Value) -> Job {
        self.uniforms.push((name.into(), value));
        self
    }

    /// Overrides a `float` uniform for this dispatch only.
    pub fn uniform_f32(self, name: impl Into<String>, value: f32) -> Job {
        self.uniform(name, Value::Float(value))
    }

    fn validate(&self) -> Result<(), ComputeError> {
        if self.inputs.len() != self.kernel.inputs.len() {
            return Err(bad_job(format!(
                "job for `{}` supplies {} inputs, spec declares {}",
                self.kernel.name,
                self.inputs.len(),
                self.kernel.inputs.len()
            )));
        }
        for input in &self.inputs {
            input.check_live(&format!("job for `{}`", self.kernel.name))?;
        }
        Ok(())
    }
}

struct Step {
    kernel: Arc<KernelSpec>,
    inputs: Vec<StepInput>,
    uniforms: Vec<(String, Value)>,
}

/// A batched multi-kernel DAG: several dispatches submitted as one unit,
/// executed back-to-back on a single worker. Later steps read earlier
/// steps' outputs directly from GPU memory ([`StepInput::Step`]), so a
/// k-kernel chain costs one queue round-trip instead of k, and no
/// intermediate ever crosses the host boundary.
#[derive(Default)]
pub struct Submission {
    steps: Vec<Step>,
    read: Vec<usize>,
    deadline: Option<Instant>,
    retry: Option<RetryPolicy>,
}

impl Submission {
    /// An empty submission.
    pub fn new() -> Submission {
        Submission::default()
    }

    /// Sets an absolute deadline: if no worker has dequeued the
    /// submission by `at`, it is shed with
    /// [`ComputeError::DeadlineExceeded`] before any GPU work happens.
    pub fn deadline(&mut self, at: Instant) {
        self.deadline = Some(at);
    }

    /// [`Submission::deadline`] relative to now.
    pub fn timeout(&mut self, after: Duration) {
        self.deadline = Some(Instant::now() + after);
    }

    /// Overrides the engine's [`RetryPolicy`] for this submission only.
    pub fn retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Appends a step and returns its [`StepHandle`] — later steps wire
    /// to it with `handle.into()`, readbacks with
    /// [`Submission::read`]`(handle)`, so no index is ever hand-counted.
    pub fn step(
        &mut self,
        kernel: &Arc<KernelSpec>,
        inputs: Vec<StepInput>,
        uniforms: Vec<(String, Value)>,
    ) -> StepHandle {
        self.steps.push(Step {
            kernel: Arc::clone(kernel),
            inputs,
            uniforms,
        });
        StepHandle(self.steps.len() - 1)
    }

    /// Marks a step for readback; its result appears in the
    /// [`BatchResult`]. When no step is marked, the final step is read.
    pub fn read(&mut self, step: StepHandle) {
        if !self.read.contains(&step.0) {
            self.read.push(step.0);
        }
    }

    /// Number of steps queued so far.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the submission has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    fn validate(&self) -> Result<(), ComputeError> {
        if self.steps.is_empty() {
            return Err(bad_job("submission has no steps".into()));
        }
        for (i, step) in self.steps.iter().enumerate() {
            if step.inputs.len() != step.kernel.inputs.len() {
                return Err(bad_job(format!(
                    "step {i} (`{}`) supplies {} inputs, spec declares {}",
                    step.kernel.name,
                    step.inputs.len(),
                    step.kernel.inputs.len()
                )));
            }
            for input in &step.inputs {
                match input {
                    StepInput::Step(j) => {
                        if *j >= i {
                            return Err(bad_job(format!(
                                "step {i} reads step {j}: steps may only read earlier steps"
                            )));
                        }
                    }
                    StepInput::Resident(r) => {
                        r.check_live(&format!("step {i} (`{}`)", step.kernel.name))?
                    }
                    StepInput::Data(_) => {}
                }
            }
        }
        for &r in &self.read {
            if r >= self.steps.len() {
                return Err(bad_job(format!("readback of nonexistent step {r}")));
            }
        }
        Ok(())
    }
}

/// Results of a [`Submission`]: one `Vec<f32>` per step marked for
/// readback (`None` for unread steps).
#[derive(Debug, Clone)]
pub struct BatchResult {
    outputs: Vec<Option<Vec<f32>>>,
}

impl BatchResult {
    /// The readback of a step, if it was marked with
    /// [`Submission::read`].
    pub fn output(&self, step: StepHandle) -> Option<&[f32]> {
        self.outputs.get(step.0).and_then(|o| o.as_deref())
    }

    /// Consumes the result into per-step optional outputs.
    pub fn into_outputs(self) -> Vec<Option<Vec<f32>>> {
        self.outputs
    }
}

// ---- pipeline specs ------------------------------------------------------

type SharedShapeFn = Arc<dyn Fn(usize) -> OutputShape + Send + Sync>;
type SharedUniformFn = Arc<dyn Fn(usize) -> Value + Send + Sync>;
type SharedUntilFn = Arc<dyn Fn(usize) -> bool + Send + Sync>;

/// Default iteration cap applied to `until`-driven [`PipelineSpec`]s that
/// set no explicit cap: a serving engine must never run a convergence
/// loop open-ended on a worker, so cap exhaustion surfaces as
/// [`ComputeError::IterationCap`] on the job handle instead of a hang.
pub const DEFAULT_SERVE_ITERATION_CAP: usize = 65_536;

/// How a [`PipelineSpec`] source is shaped (and therefore uploaded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceShape {
    /// Linear array; `Some(len)` additionally pins the expected length.
    Linear(Option<usize>),
    /// Row-major `rows × cols` matrix.
    Grid { rows: u32, cols: u32 },
}

#[derive(Debug, Clone)]
struct SourceDecl {
    name: String,
    shape: SourceShape,
}

/// One declared pass of a [`PipelineSpec`]: a context-free kernel plus
/// buffer wiring and per-iteration overrides — the [`Pass`] builder with
/// every context-bound piece removed. Unlike [`Pass`], **every** kernel
/// input must be wired to a pipeline buffer with [`PassSpec::read`]: a
/// spec has no build-time textures to fall back on.
#[derive(Clone)]
pub struct PassSpec {
    kernel: Arc<KernelSpec>,
    reads: Vec<(String, String)>,
    write: Option<(String, OutputShape)>,
    output_fn: Option<SharedShapeFn>,
    uniforms: Vec<(String, Value)>,
    uniform_fns: Vec<(String, SharedUniformFn)>,
}

impl PassSpec {
    /// Starts a pass around a kernel spec.
    pub fn new(kernel: &Arc<KernelSpec>) -> PassSpec {
        PassSpec {
            kernel: Arc::clone(kernel),
            reads: Vec::new(),
            write: None,
            output_fn: None,
            uniforms: Vec::new(),
            uniform_fns: Vec::new(),
        }
    }

    /// Feeds kernel input `input` from pipeline buffer `buffer`.
    pub fn read(mut self, input: &str, buffer: &str) -> Self {
        self.reads.push((input.to_owned(), buffer.to_owned()));
        self
    }

    /// Writes the pass output into buffer `buffer` with a fixed shape.
    pub fn write(mut self, buffer: &str, shape: OutputShape) -> Self {
        self.write = Some((buffer.to_owned(), shape));
        self
    }

    /// [`PassSpec::write`] with a linear output of `len` elements.
    pub fn write_len(self, buffer: &str, len: usize) -> Self {
        self.write(buffer, OutputShape::Linear(len))
    }

    /// [`PassSpec::write`] with a `rows × cols` grid output.
    pub fn write_grid(self, buffer: &str, rows: u32, cols: u32) -> Self {
        self.write(buffer, OutputShape::Grid { rows, cols })
    }

    /// Makes the output shape a function of the iteration index (the
    /// reduction-tree case). `Send + Sync` because the spec crosses into
    /// worker threads.
    pub fn output_per_iter(
        mut self,
        f: impl Fn(usize) -> OutputShape + Send + Sync + 'static,
    ) -> Self {
        self.output_fn = Some(Arc::new(f));
        self
    }

    /// Overrides a declared uniform with a fixed value for this pass.
    pub fn uniform(mut self, name: &str, value: Value) -> Self {
        self.uniforms.push((name.to_owned(), value));
        self
    }

    /// Overrides a declared uniform per iteration (FFT stage widths,
    /// reduction `n_live`, …).
    pub fn uniform_per_iter(
        mut self,
        name: &str,
        f: impl Fn(usize) -> Value + Send + Sync + 'static,
    ) -> Self {
        self.uniform_fns.push((name.to_owned(), Arc::new(f)));
        self
    }
}

impl std::fmt::Debug for PassSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassSpec")
            .field("kernel", &self.kernel.name)
            .field("reads", &self.reads)
            .field("write", &self.write)
            .field("dynamic_output", &self.output_fn.is_some())
            .field("uniforms", &self.uniforms)
            .field(
                "per_iter_uniforms",
                &self
                    .uniform_fns
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Builder for [`PipelineSpec`]s; see [`PipelineSpec::builder`].
pub struct PipelineSpecBuilder {
    name: String,
    sources: Vec<SourceDecl>,
    passes: Vec<PassSpec>,
    iterations: Option<usize>,
    iteration_cap: Option<usize>,
    until: Option<SharedUntilFn>,
    ping_pongs: Vec<(String, String)>,
}

impl PipelineSpecBuilder {
    /// Declares a linear source buffer; jobs supply its data positionally,
    /// in declaration order.
    pub fn source(mut self, name: &str) -> Self {
        self.sources.push(SourceDecl {
            name: name.to_owned(),
            shape: SourceShape::Linear(None),
        });
        self
    }

    /// Declares a linear source buffer of exactly `len` elements
    /// (validated against each job's data).
    pub fn source_len(mut self, name: &str, len: usize) -> Self {
        self.sources.push(SourceDecl {
            name: name.to_owned(),
            shape: SourceShape::Linear(Some(len)),
        });
        self
    }

    /// Declares a row-major `rows × cols` matrix source buffer.
    pub fn source_grid(mut self, name: &str, rows: u32, cols: u32) -> Self {
        self.sources.push(SourceDecl {
            name: name.to_owned(),
            shape: SourceShape::Grid { rows, cols },
        });
        self
    }

    /// Appends a pass; passes execute in declaration order each iteration.
    pub fn pass(mut self, pass: PassSpec) -> Self {
        self.passes.push(pass);
        self
    }

    /// Runs the dag a fixed number of iterations (default 1).
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Caps an `until`-driven loop, turning cap exhaustion into
    /// [`ComputeError::IterationCap`] on the job handle. Defaults to
    /// [`DEFAULT_SERVE_ITERATION_CAP`] when an `until` predicate is set
    /// without a fixed iteration count.
    pub fn iteration_cap(mut self, cap: usize) -> Self {
        self.iteration_cap = Some(cap.max(1));
        self
    }

    /// Runs the dag until `stop(completed_iterations)` returns `true`
    /// (checked after each iteration).
    pub fn until(mut self, stop: impl Fn(usize) -> bool + Send + Sync + 'static) -> Self {
        self.until = Some(Arc::new(stop));
        self
    }

    /// Swaps buffers `front` and `back` after every iteration (the FFT's
    /// explicit double-buffer pair).
    pub fn ping_pong(mut self, front: &str, back: &str) -> Self {
        self.ping_pongs.push((front.to_owned(), back.to_owned()));
        self
    }

    /// Validates the wiring — context-free, so a malformed spec is
    /// rejected on the caller's thread, not on a worker — and seals the
    /// spec with its cache fingerprint.
    ///
    /// # Errors
    ///
    /// [`ComputeError::BadKernel`] for empty dags, duplicate sources,
    /// passes without a write, unwired kernel inputs, reads of buffers
    /// before their first write, unknown or type-mismatched uniform
    /// overrides, and unknown ping-pong names.
    pub fn build(self) -> Result<PipelineSpec, ComputeError> {
        if self.passes.is_empty() {
            return Err(bad_job(format!(
                "pipeline spec `{}` declares no passes",
                self.name
            )));
        }
        let mut buffers: HashSet<&str> = HashSet::new();
        for decl in &self.sources {
            if !buffers.insert(&decl.name) {
                return Err(bad_job(format!(
                    "pipeline spec `{}` declares source `{}` twice",
                    self.name, decl.name
                )));
            }
        }
        // A read must be satisfiable on the FIRST iteration, exactly as
        // in `PipelineBuilder::build`.
        let mut available: HashSet<&str> = self.sources.iter().map(|d| d.name.as_str()).collect();
        for pass in &self.passes {
            let kernel = &pass.kernel;
            let (write_name, _) = pass.write.as_ref().ok_or_else(|| {
                bad_job(format!(
                    "pass `{}` of pipeline spec `{}` writes no buffer",
                    kernel.name, self.name
                ))
            })?;
            if kernel.output.is_none() {
                return Err(bad_job(format!(
                    "kernel spec `{}` (pass of `{}`) declares no output",
                    kernel.name, self.name
                )));
            }
            for input in &kernel.inputs {
                let mapped = pass.reads.iter().filter(|(i, _)| i == input).count();
                if mapped != 1 {
                    return Err(bad_job(format!(
                        "input `{input}` of pass `{}` in pipeline spec `{}` has {mapped} \
                         read mappings; a spec pass must wire every input exactly once",
                        kernel.name, self.name
                    )));
                }
            }
            for (input, buffer) in &pass.reads {
                if !kernel.inputs.contains(input) {
                    return Err(bad_job(format!(
                        "kernel spec `{}` declares no input `{input}`",
                        kernel.name
                    )));
                }
                if !available.contains(buffer.as_str()) {
                    return Err(bad_job(format!(
                        "pass `{}` reads buffer `{buffer}` before its first write",
                        kernel.name
                    )));
                }
            }
            for (name, value) in &pass.uniforms {
                check_spec_uniform(kernel, name, Some(value))?;
            }
            for (name, _) in &pass.uniform_fns {
                check_spec_uniform(kernel, name, None)?;
            }
            buffers.insert(write_name);
            available.insert(write_name);
        }
        for (front, back) in &self.ping_pongs {
            for name in [front, back] {
                if !buffers.contains(name.as_str()) {
                    return Err(bad_job(format!(
                        "ping-pong names unknown buffer `{name}` in pipeline spec `{}`",
                        self.name
                    )));
                }
            }
        }
        let iteration_cap = match (self.iteration_cap, &self.until, self.iterations) {
            (Some(cap), _, _) => Some(cap),
            (None, Some(_), None) => Some(DEFAULT_SERVE_ITERATION_CAP),
            _ => None,
        };
        let fingerprint = spec_fingerprint(&self);
        Ok(PipelineSpec {
            name: self.name,
            sources: self.sources,
            passes: self.passes,
            iterations: self.iterations,
            iteration_cap,
            until: self.until,
            ping_pongs: self.ping_pongs,
            fingerprint,
        })
    }
}

fn check_spec_uniform(
    kernel: &KernelSpec,
    name: &str,
    value: Option<&Value>,
) -> Result<(), ComputeError> {
    let decl = kernel
        .uniforms
        .iter()
        .find(|(n, _)| n == name)
        .ok_or_else(|| {
            bad_job(format!(
                "kernel spec `{}` declares no uniform `{name}`",
                kernel.name
            ))
        })?;
    if let Some(v) = value {
        if std::mem::discriminant(&decl.1) != std::mem::discriminant(v) {
            return Err(bad_job(format!(
                "uniform `{name}` of kernel spec `{}` is {}, bound {}",
                kernel.name,
                decl.1.ty(),
                v.ty()
            )));
        }
    }
    Ok(())
}

/// Computes the per-worker cache key for a spec: a structural hash of
/// everything serialisable, with every closure (per-iteration uniform,
/// dynamic output shape, `until` predicate) contributing a process-unique
/// token instead — two structurally identical closure-free specs share a
/// cached pipeline, while closure-bearing specs never alias.
fn spec_fingerprint(b: &PipelineSpecBuilder) -> u64 {
    let mut h = DefaultHasher::new();
    b.name.hash(&mut h);
    for decl in &b.sources {
        decl.name.hash(&mut h);
        format!("{:?}", decl.shape).hash(&mut h);
    }
    for pass in &b.passes {
        let k = &pass.kernel;
        k.name.hash(&mut h);
        k.inputs.hash(&mut h);
        for (name, value) in &k.uniforms {
            name.hash(&mut h);
            format!("{value:?}").hash(&mut h);
        }
        format!("{:?}", k.output).hash(&mut h);
        k.body.hash(&mut h);
        k.functions.hash(&mut h);
        pass.reads.hash(&mut h);
        format!("{:?}", pass.write).hash(&mut h);
        for (name, value) in &pass.uniforms {
            name.hash(&mut h);
            format!("{value:?}").hash(&mut h);
        }
        if pass.output_fn.is_some() {
            next_unique_id().hash(&mut h);
        }
        for (name, _) in &pass.uniform_fns {
            name.hash(&mut h);
            next_unique_id().hash(&mut h);
        }
    }
    b.iterations.hash(&mut h);
    b.iteration_cap.hash(&mut h);
    if b.until.is_some() {
        next_unique_id().hash(&mut h);
    }
    b.ping_pongs.hash(&mut h);
    h.finish()
}

/// A context-free description of a whole retained multi-pass pipeline:
/// everything [`Pipeline::builder`] captures — passes, buffer wiring,
/// per-iteration uniforms and shapes, ping-pong pairs, iteration counts
/// and `until` predicates — minus the textures, so any engine worker can
/// build, cache and run it. The serving analog of recording an op-graph
/// once and replaying it per request (the TFLite-delegate / CNNdroid
/// amortisation, lifted to multi-pass kernels).
///
/// Specs are immutable once built; wrap them in [`Arc`] and submit them
/// through [`Engine::submit_pipeline`]. Each worker builds the pipeline
/// once (all programs through the shared cache) and caches it by
/// [`PipelineSpec::fingerprint`], so steady-state serving links zero
/// programs and creates zero GL objects.
///
/// ```
/// use gpes_core::serve::{Engine, PassSpec, PipelineJob, PipelineSpec, KernelSpec};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), gpes_core::ComputeError> {
/// let double = Arc::new(
///     KernelSpec::new("double")
///         .input("x")
///         .output(4)
///         .body("return fetch_x(idx) * 2.0;"),
/// );
/// // x ← double(x), five times (implicit ping-pong), declared once.
/// let spec = Arc::new(
///     PipelineSpec::builder("pow2")
///         .source_len("x", 4)
///         .pass(PassSpec::new(&double).read("x", "x").write_len("x", 4))
///         .iterations(5)
///         .build()?,
/// );
/// let engine = Engine::builder().workers(2).build()?;
/// let job = PipelineJob::new(&spec)
///     .source(vec![1.0, 2.0, 3.0, 4.0])
///     .read("x");
/// let result = engine.submit_pipeline(job)?.wait()?;
/// assert_eq!(result.output("x").unwrap(), &[32.0, 64.0, 96.0, 128.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct PipelineSpec {
    name: String,
    sources: Vec<SourceDecl>,
    passes: Vec<PassSpec>,
    iterations: Option<usize>,
    iteration_cap: Option<usize>,
    until: Option<SharedUntilFn>,
    ping_pongs: Vec<(String, String)>,
    fingerprint: u64,
}

impl std::fmt::Debug for PipelineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSpec")
            .field("name", &self.name)
            .field(
                "sources",
                &self
                    .sources
                    .iter()
                    .map(|d| d.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("passes", &self.passes)
            .field("iterations", &self.iterations)
            .field("iteration_cap", &self.iteration_cap)
            .field("has_until", &self.until.is_some())
            .field("ping_pongs", &self.ping_pongs)
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

impl PipelineSpec {
    /// Starts declaring a pipeline spec named `name`.
    pub fn builder(name: impl Into<String>) -> PipelineSpecBuilder {
        PipelineSpecBuilder {
            name: name.into(),
            sources: Vec::new(),
            passes: Vec::new(),
            iterations: None,
            iteration_cap: None,
            until: None,
            ping_pongs: Vec::new(),
        }
    }

    /// The spec's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-worker cache key: a structural hash of the spec, with
    /// closures contributing process-unique tokens (two structurally
    /// identical closure-free specs share a cached pipeline;
    /// closure-bearing specs never alias).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The declared source names, in positional order.
    pub fn source_names(&self) -> impl Iterator<Item = &str> {
        self.sources.iter().map(|d| d.name.as_str())
    }

    /// The buffer names a job may mark for readback.
    fn has_buffer(&self, name: &str) -> bool {
        self.sources.iter().any(|d| d.name == name)
            || self
                .passes
                .iter()
                .any(|p| p.write.as_ref().is_some_and(|(w, _)| w == name))
    }

    /// Builds the retained pipeline on `cc` — a program-cache hit for
    /// every pass everywhere but the first build in the process (shared
    /// cache) or context. Public so direct (non-engine) execution of a
    /// spec builds the byte-identical pipeline an engine worker runs —
    /// the differential tests and the `a11` ablation rely on it.
    ///
    /// # Errors
    ///
    /// Kernel build/compile errors and pipeline validation errors.
    pub fn build(&self, cc: &mut ComputeContext) -> Result<ServedPipeline, ComputeError> {
        // Every source and kernel default binding points at a 1-texel
        // placeholder: a run seeds every declared source with real data,
        // and spec validation guarantees every kernel input is wired to a
        // pipeline buffer, so the placeholder is never sampled.
        let placeholder = cc.upload(&[0.0f32])?;
        let mut builder = Pipeline::builder(self.name.clone());
        for decl in &self.sources {
            builder = builder.source(&decl.name, &placeholder);
        }
        for pass in &self.passes {
            let arrays = vec![placeholder; pass.kernel.inputs.len()];
            let kernel = pass.kernel.build(cc, &arrays)?;
            let mut p = Pass::new(&kernel);
            for (input, buffer) in &pass.reads {
                p = p.read(input, buffer);
            }
            let (write_name, shape) = pass.write.as_ref().expect("validated by spec build");
            p = p.write(write_name, *shape);
            if let Some(f) = &pass.output_fn {
                let f = Arc::clone(f);
                p = p.output_per_iter(move |i| f(i));
            }
            for (name, value) in &pass.uniforms {
                p = p.uniform(name, value.clone());
            }
            for (name, f) in &pass.uniform_fns {
                let f = Arc::clone(f);
                p = p.uniform_per_iter(name, move |i| f(i));
            }
            builder = builder.pass(p);
        }
        if let Some(n) = self.iterations {
            builder = builder.iterations(n);
        }
        if let Some(cap) = self.iteration_cap {
            builder = builder.iteration_cap(cap);
        }
        if let Some(until) = &self.until {
            let until = Arc::clone(until);
            builder = builder.until(move |i| until(i));
        }
        for (front, back) in &self.ping_pongs {
            builder = builder.ping_pong(front, back);
        }
        Ok(ServedPipeline {
            pipeline: builder.build()?,
            placeholder,
        })
    }
}

/// A [`PipelineSpec`] compiled against one context: the retained
/// [`Pipeline`] plus the source metadata needed to seed it per request.
/// Obtained from [`PipelineSpec::build`]; engine workers cache one per
/// spec fingerprint.
pub struct ServedPipeline {
    pipeline: Pipeline,
    /// The 1-texel array backing build-time bindings; recycled when the
    /// worker evicts the cached pipeline.
    placeholder: GpuArray<f32>,
}

impl ServedPipeline {
    /// The retained pipeline (run it with
    /// [`Pipeline::run_seeded`], seeding every declared source).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }
}

/// A whole retained pipeline submitted as one engine job: the spec plus
/// per-request source data (fresh or resident) and the buffers to read
/// back. Result type: [`PipelineResult`].
#[derive(Debug, Clone)]
pub struct PipelineJob {
    spec: Arc<PipelineSpec>,
    sources: Vec<JobInput>,
    reads: Vec<String>,
    deadline: Option<Instant>,
    retry: Option<RetryPolicy>,
}

impl PipelineJob {
    /// Starts a job running `spec`.
    pub fn new(spec: &Arc<PipelineSpec>) -> PipelineJob {
        PipelineJob {
            spec: Arc::clone(spec),
            sources: Vec::new(),
            reads: Vec::new(),
            deadline: None,
            retry: None,
        }
    }

    /// Overrides the engine's [`RetryPolicy`] for this job only.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> PipelineJob {
        self.retry = Some(policy);
        self
    }

    /// Sets an absolute deadline: if no worker has dequeued the job by
    /// `at`, it is shed with [`ComputeError::DeadlineExceeded`] before
    /// any GPU work happens.
    pub fn deadline(mut self, at: Instant) -> PipelineJob {
        self.deadline = Some(at);
        self
    }

    /// [`PipelineJob::deadline`] relative to now.
    pub fn timeout(self, after: Duration) -> PipelineJob {
        let at = Instant::now() + after;
        self.deadline(at)
    }

    /// Appends host data for the next declared source.
    pub fn source(mut self, data: Vec<f32>) -> PipelineJob {
        self.sources.push(JobInput::Data(Arc::new(data)));
        self
    }

    /// Appends shared host data for the next declared source.
    pub fn source_shared(mut self, data: &Arc<Vec<f32>>) -> PipelineJob {
        self.sources.push(JobInput::Data(Arc::clone(data)));
        self
    }

    /// Binds a per-worker [`ResidentInput`] to the next declared source.
    pub fn source_resident(mut self, input: &ResidentInput) -> PipelineJob {
        self.sources.push(JobInput::Resident(input.clone()));
        self
    }

    /// Marks buffer `buffer` for readback after the run (post ping-pong
    /// swaps, exactly like reading a [`crate::PipelineRun`]).
    pub fn read(mut self, buffer: &str) -> PipelineJob {
        if !self.reads.iter().any(|b| b == buffer) {
            self.reads.push(buffer.to_owned());
        }
        self
    }

    fn validate(&self) -> Result<(), ComputeError> {
        let spec = &self.spec;
        if self.sources.len() != spec.sources.len() {
            return Err(bad_job(format!(
                "pipeline job for `{}` supplies {} sources, spec declares {}",
                spec.name,
                self.sources.len(),
                spec.sources.len()
            )));
        }
        for (decl, input) in spec.sources.iter().zip(&self.sources) {
            input.check_live(&format!("pipeline job for `{}`", spec.name))?;
            let want = match decl.shape {
                SourceShape::Linear(None) => None,
                SourceShape::Linear(Some(len)) => Some(len),
                SourceShape::Grid { rows, cols } => Some(rows as usize * cols as usize),
            };
            if let Some(want) = want {
                if input.len() != want {
                    return Err(bad_job(format!(
                        "source `{}` of pipeline `{}` wants {want} elements, job \
                         supplies {}",
                        decl.name,
                        spec.name,
                        input.len()
                    )));
                }
            }
        }
        if self.reads.is_empty() {
            return Err(bad_job(format!(
                "pipeline job for `{}` reads no buffers; mark at least one with .read()",
                spec.name
            )));
        }
        for buffer in &self.reads {
            if !spec.has_buffer(buffer) {
                return Err(bad_job(format!(
                    "pipeline `{}` has no buffer `{buffer}` to read",
                    spec.name
                )));
            }
        }
        Ok(())
    }
}

/// Results of a [`PipelineJob`]: one `Vec<f32>` per buffer marked with
/// [`PipelineJob::read`].
#[derive(Debug, Clone)]
pub struct PipelineResult {
    outputs: Vec<(String, Vec<f32>)>,
}

impl PipelineResult {
    /// The readback of buffer `name`, if it was marked.
    pub fn output(&self, name: &str) -> Option<&[f32]> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, data)| data.as_slice())
    }

    /// Consumes the result into `(buffer, data)` pairs, in read order.
    pub fn into_outputs(self) -> Vec<(String, Vec<f32>)> {
        self.outputs
    }
}

// ---- handles -------------------------------------------------------------

/// The queued → running → finished lifecycle of a task, shared between
/// the handle (for [`JobHandle::cancel`]) and the worker (for claiming
/// the task at dequeue). Compare-and-swap transitions make cancellation
/// race-free: exactly one side wins the `Queued` state.
struct TaskControl {
    state: AtomicU8,
}

const TASK_QUEUED: u8 = 0;
const TASK_RUNNING: u8 = 1;
const TASK_CANCELLED: u8 = 2;
const TASK_FINISHED: u8 = 3;

impl TaskControl {
    fn new() -> TaskControl {
        TaskControl {
            state: AtomicU8::new(TASK_QUEUED),
        }
    }

    /// A worker (or the shedder/aborter) claims the task for fulfilment.
    /// Fails exactly when the task was already cancelled — the handle
    /// fulfilled it, the claimer must drop the payload untouched.
    fn claim(&self) -> bool {
        self.state
            .compare_exchange(
                TASK_QUEUED,
                TASK_RUNNING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// The handle cancels the task. Succeeds exactly when it was still
    /// queued — the winner fulfils the handle with
    /// [`ComputeError::Cancelled`].
    fn cancel(&self) -> bool {
        self.state
            .compare_exchange(
                TASK_QUEUED,
                TASK_CANCELLED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// The worker returns a claimed task to the queue for a retry: back
    /// to `Queued`, so the handle can still cancel it while it waits for
    /// its next attempt. Only the claiming worker may call this.
    fn requeue(&self) {
        self.state.store(TASK_QUEUED, Ordering::Release);
    }

    fn finish(&self) {
        self.state.store(TASK_FINISHED, Ordering::Release);
    }
}

/// The result slot's three-state lifecycle: distinguishing `Taken` from
/// `Pending` lets a second `wait()` return a typed error (instead of
/// hanging forever on a slot that will never refill) and lets `Drop`
/// count only genuinely unobserved errors.
enum Slot<T> {
    Pending,
    Ready(Result<T, ComputeError>),
    Taken,
}

struct HandleInner<T> {
    slot: Slot<T>,
    /// The handle was dropped with the slot still pending; when the
    /// worker later fulfils it with an error, that error is counted as
    /// unobserved instead of stored for nobody.
    abandoned: bool,
    /// Registered by a [`CompletionSet`]: on fulfilment the token is
    /// pushed to the set's ready list (outside the handle lock).
    watcher: Option<(Arc<SetCore>, u64)>,
}

struct HandleState<T> {
    inner: Mutex<HandleInner<T>>,
    cv: Condvar,
    control: TaskControl,
    metrics: Arc<EngineMetrics>,
}

fn taken_twice<T>() -> Result<T, ComputeError> {
    Err(ComputeError::EngineInternal {
        message: "job result already taken".into(),
    })
}

/// A typed future for a submitted job: the worker fulfils it, the caller
/// blocks on [`JobHandle::wait`], polls [`JobHandle::try_wait`], bounds
/// the wait with [`JobHandle::wait_timeout`]/[`JobHandle::wait_deadline`],
/// or multiplexes many handles through a [`CompletionSet`]. A handle for
/// still-queued work can be revoked with [`JobHandle::cancel`].
pub struct JobHandle<T> {
    state: Arc<HandleState<T>>,
}

impl<T> JobHandle<T> {
    fn new(metrics: &Arc<EngineMetrics>) -> (JobHandle<T>, Arc<HandleState<T>>) {
        let state = Arc::new(HandleState {
            inner: Mutex::new(HandleInner {
                slot: Slot::Pending,
                abandoned: false,
                watcher: None,
            }),
            cv: Condvar::new(),
            control: TaskControl::new(),
            metrics: Arc::clone(metrics),
        });
        (
            JobHandle {
                state: Arc::clone(&state),
            },
            state,
        )
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    ///
    /// Whatever the dispatch produced on the worker (bad bindings, GL or
    /// shader errors), or a typed serving error: queue-shed
    /// ([`ComputeError::DeadlineExceeded`]), cancellation
    /// ([`ComputeError::Cancelled`]), or engine shutdown/worker death
    /// ([`ComputeError::EngineShutdown`] /
    /// [`ComputeError::EngineInternal`]) — never a hang.
    pub fn wait(self) -> Result<T, ComputeError> {
        let mut inner = lock_recover(&self.state.inner);
        loop {
            match std::mem::replace(&mut inner.slot, Slot::Pending) {
                Slot::Ready(result) => {
                    inner.slot = Slot::Taken;
                    return result;
                }
                Slot::Taken => {
                    inner.slot = Slot::Taken;
                    return taken_twice();
                }
                Slot::Pending => {}
            }
            inner = wait_recover(&self.state.cv, inner);
        }
    }

    /// Returns the result if the job already finished, `None` if it is
    /// still pending. Never blocks. Taking the result consumes it: a
    /// later `try_wait`/`wait` yields [`ComputeError::EngineInternal`].
    pub fn try_wait(&self) -> Option<Result<T, ComputeError>> {
        let mut inner = lock_recover(&self.state.inner);
        match std::mem::replace(&mut inner.slot, Slot::Pending) {
            Slot::Ready(result) => {
                inner.slot = Slot::Taken;
                Some(result)
            }
            Slot::Taken => {
                inner.slot = Slot::Taken;
                Some(taken_twice())
            }
            Slot::Pending => None,
        }
    }

    /// Blocks at most `timeout` for the result; `None` on timeout (the
    /// job keeps running — the handle remains valid to wait again).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, ComputeError>> {
        self.wait_deadline(Instant::now() + timeout)
    }

    /// Blocks until `deadline` for the result; `None` if it passes first
    /// (the job keeps running — the handle remains valid to wait again).
    pub fn wait_deadline(&self, deadline: Instant) -> Option<Result<T, ComputeError>> {
        let mut inner = lock_recover(&self.state.inner);
        loop {
            match std::mem::replace(&mut inner.slot, Slot::Pending) {
                Slot::Ready(result) => {
                    inner.slot = Slot::Taken;
                    return Some(result);
                }
                Slot::Taken => {
                    inner.slot = Slot::Taken;
                    return Some(taken_twice());
                }
                Slot::Pending => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timed_out) = self
                .state
                .cv
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
            if timed_out.timed_out() && matches!(inner.slot, Slot::Pending) {
                return None;
            }
        }
    }

    /// Whether a result is ready (non-blocking).
    pub fn is_finished(&self) -> bool {
        !matches!(lock_recover(&self.state.inner).slot, Slot::Pending)
    }

    /// Cancels the job if it is still queued: the handle resolves to
    /// [`ComputeError::Cancelled`] and no worker will execute it (the
    /// queue entry is discarded at dequeue). Returns `true` if this call
    /// won the race; `false` if the job already started, finished, or
    /// was cancelled before.
    pub fn cancel(&self) -> bool {
        if self.state.control.cancel() {
            EngineMetrics::bump(&self.state.metrics.cancelled);
            fulfil(&self.state, Err(ComputeError::Cancelled));
            true
        } else {
            false
        }
    }
}

impl<T> Drop for JobHandle<T> {
    fn drop(&mut self) {
        let mut inner = lock_recover(&self.state.inner);
        match inner.slot {
            // Fulfilled but never observed: surface an error result in
            // the snapshot instead of discarding it silently.
            Slot::Ready(Err(_)) => {
                inner.slot = Slot::Taken;
                EngineMetrics::bump(&self.state.metrics.unobserved_errors);
            }
            Slot::Ready(Ok(_)) | Slot::Taken => {}
            // Still in flight: mark abandoned so `fulfil` counts a late
            // error instead of storing it for nobody.
            Slot::Pending => inner.abandoned = true,
        }
    }
}

/// Fulfils a handle. Marks the task finished, stores (or — for an
/// abandoned handle — accounts) the result, and wakes direct waiters and
/// any [`CompletionSet`] watcher. The watcher is notified *after* the
/// handle lock is released: the set's ready-list lock is never taken
/// while a handle lock is held, so the two lock orders cannot deadlock.
fn fulfil<T>(state: &HandleState<T>, result: Result<T, ComputeError>) {
    state.control.finish();
    let watcher = {
        let mut inner = lock_recover(&state.inner);
        if inner.abandoned {
            if result.is_err() {
                EngineMetrics::bump(&state.metrics.unobserved_errors);
            }
            inner.slot = Slot::Taken;
        } else {
            inner.slot = Slot::Ready(result);
        }
        inner.watcher.take()
    };
    state.cv.notify_all();
    if let Some((core, token)) = watcher {
        lock_recover(&core.ready).push(token);
        core.cv.notify_all();
    }
}

// ---- completion set ------------------------------------------------------

/// Shared notification core of a [`CompletionSet`]: fulfilled members
/// push their token here and signal the one condvar every
/// [`CompletionSet::wait_any`] caller sleeps on.
struct SetCore {
    ready: Mutex<Vec<u64>>,
    cv: Condvar,
}

/// Multiplexes many [`JobHandle`]s onto one condvar, so a caller can
/// drive thousands of in-flight jobs without a blocked thread per job:
/// [`CompletionSet::insert`] registers a handle, [`CompletionSet::wait_any`]
/// blocks until *any* member finishes and returns its result.
///
/// ```no_run
/// # use gpes_core::serve::{CompletionSet, Engine, Job, KernelSpec};
/// # fn demo(engine: &Engine, jobs: Vec<Job>) -> Result<(), gpes_core::ComputeError> {
/// let mut set = CompletionSet::new();
/// for job in jobs {
///     set.insert(engine.submit(job)?);
/// }
/// while let Some((_token, result)) = set.wait_any() {
///     let data = result?;
///     // ... consume `data` as each job lands, in completion order ...
/// #   let _ = data;
/// }
/// # Ok(())
/// # }
/// ```
pub struct CompletionSet<T> {
    core: Arc<SetCore>,
    pending: HashMap<u64, JobHandle<T>>,
    next_token: u64,
}

impl<T> Default for CompletionSet<T> {
    fn default() -> CompletionSet<T> {
        CompletionSet::new()
    }
}

impl<T> CompletionSet<T> {
    /// An empty set.
    pub fn new() -> CompletionSet<T> {
        CompletionSet {
            core: Arc::new(SetCore {
                ready: Mutex::new(Vec::new()),
                cv: Condvar::new(),
            }),
            pending: HashMap::new(),
            next_token: 0,
        }
    }

    /// Adds a handle to the set and returns its token (echoed back by
    /// [`CompletionSet::wait_any`] when this job finishes). A handle that
    /// already finished is immediately ready.
    pub fn insert(&mut self, handle: JobHandle<T>) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        {
            let mut inner = lock_recover(&handle.state.inner);
            if matches!(inner.slot, Slot::Pending) {
                inner.watcher = Some((Arc::clone(&self.core), token));
            } else {
                lock_recover(&self.core.ready).push(token);
            }
        }
        self.pending.insert(token, handle);
        token
    }

    /// Handles still tracked (finished-but-uncollected members count
    /// until `wait_any` returns them).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no handles remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Returns a finished member's `(token, result)` without blocking,
    /// or `None` if nothing has finished (or the set is empty).
    pub fn try_next(&mut self) -> Option<(u64, Result<T, ComputeError>)> {
        let token = lock_recover(&self.core.ready).pop()?;
        Some((token, self.collect(token)))
    }

    /// Blocks until any member finishes and returns its `(token,
    /// result)`; `None` when the set is empty. Engine shutdown, shed
    /// deadlines and cancellations all fulfil their handles, so this
    /// never hangs on an abandoned job.
    pub fn wait_any(&mut self) -> Option<(u64, Result<T, ComputeError>)> {
        if self.pending.is_empty() {
            return None;
        }
        let core = Arc::clone(&self.core);
        let token = {
            let mut ready = lock_recover(&core.ready);
            loop {
                if let Some(token) = ready.pop() {
                    break token;
                }
                ready = wait_recover(&core.cv, ready);
            }
        };
        Some((token, self.collect(token)))
    }

    /// [`CompletionSet::wait_any`] bounded by `timeout`: `None` if the
    /// set is empty or nothing finished in time.
    pub fn wait_any_timeout(
        &mut self,
        timeout: Duration,
    ) -> Option<(u64, Result<T, ComputeError>)> {
        if self.pending.is_empty() {
            return None;
        }
        let deadline = Instant::now() + timeout;
        let core = Arc::clone(&self.core);
        let token = {
            let mut ready = lock_recover(&core.ready);
            loop {
                if let Some(token) = ready.pop() {
                    break token;
                }
                let now = Instant::now();
                if now >= deadline {
                    return None;
                }
                ready = core
                    .cv
                    .wait_timeout(ready, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        };
        Some((token, self.collect(token)))
    }

    /// Takes the result out of a ready member. The ready-list lock is
    /// already released here — taking the handle's inner lock cannot
    /// deadlock against a concurrent `fulfil`.
    fn collect(&mut self, token: u64) -> Result<T, ComputeError> {
        match self.pending.remove(&token) {
            Some(handle) => match handle.try_wait() {
                Some(result) => result,
                // A token is only pushed after fulfilment, so the slot
                // must be ready; defensive rather than reachable.
                None => taken_twice(),
            },
            None => taken_twice(),
        }
    }
}

// ---- engine --------------------------------------------------------------

/// How worker contexts cache programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// One process-wide [`SharedProgramCache`] behind every worker: each
    /// distinct kernel links exactly once per process.
    #[default]
    Shared,
    /// Workers keep only their per-context caches — every worker relinks
    /// every kernel it sees. Exists for the `a10` ablation; N workers
    /// pay N× the link cost.
    PerContext,
}

enum Task {
    Single(Job, Arc<HandleState<Vec<f32>>>),
    Batch(Submission, Arc<HandleState<BatchResult>>),
    Pipeline(PipelineJob, Arc<HandleState<PipelineResult>>),
}

impl Task {
    fn control(&self) -> &TaskControl {
        match self {
            Task::Single(_, handle) => &handle.control,
            Task::Batch(_, handle) => &handle.control,
            Task::Pipeline(_, handle) => &handle.control,
        }
    }

    /// The per-job [`RetryPolicy`] override, if the submission carried
    /// one.
    fn retry_override(&self) -> Option<RetryPolicy> {
        match self {
            Task::Single(job, _) => job.retry,
            Task::Batch(submission, _) => submission.retry,
            Task::Pipeline(job, _) => job.retry,
        }
    }

    /// Fulfils the task's handle with `error` — used when no worker will
    /// ever execute it (shutdown, dead pool), so `wait()` cannot hang.
    /// No-op for a task its handle already cancelled.
    fn abort(self, error: ComputeError, metrics: &EngineMetrics) {
        if !self.control().claim() {
            return;
        }
        EngineMetrics::bump(&metrics.aborted);
        match self {
            Task::Single(_, handle) => fulfil(&handle, Err(error)),
            Task::Batch(_, handle) => fulfil(&handle, Err(error)),
            Task::Pipeline(_, handle) => fulfil(&handle, Err(error)),
        }
    }

    /// Fulfils an already-claimed task with
    /// [`ComputeError::DeadlineExceeded`] — the worker shed it at dequeue
    /// without touching the GPU.
    fn shed(self, queued_ms: u64) {
        let error = ComputeError::DeadlineExceeded { queued_ms };
        match self {
            Task::Single(_, handle) => fulfil(&handle, Err(error)),
            Task::Batch(_, handle) => fulfil(&handle, Err(error)),
            Task::Pipeline(_, handle) => fulfil(&handle, Err(error)),
        }
    }
}

/// A task plus its admission metadata: the deadline workers check at
/// dequeue, and the enqueue timestamp feeding the queue-latency
/// histogram.
struct QueuedTask {
    payload: Task,
    deadline: Option<Instant>,
    enqueued_at: Instant,
    /// Executions already attempted (0 on first admission); carried by
    /// transient-failure requeues so [`RetryPolicy::max_attempts`]
    /// bounds the total across the job's whole life.
    attempt: u32,
}

struct QueueState {
    tasks: VecDeque<QueuedTask>,
    shutdown: bool,
    /// Workers still in their serve loop. If this reaches zero while
    /// tasks remain (every worker retired after a panic), the retiring
    /// worker aborts the leftovers instead of leaving waiters hanging.
    live_workers: usize,
}

struct EngineShared {
    queue: Mutex<QueueState>,
    /// Workers sleep here waiting for tasks.
    cv: Condvar,
    /// Blocking `submit*` callers sleep here waiting for a queue slot.
    space: Condvar,
    /// The admission bound on `queue.tasks`.
    capacity: usize,
    metrics: Arc<EngineMetrics>,
}

/// Default admission bound: generous enough that a caller not thinking
/// about backpressure never sees [`ComputeError::QueueFull`], small
/// enough that a runaway producer cannot exhaust memory.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Default time a blocking `submit*` waits for a queue slot before
/// giving up with [`ComputeError::QueueFull`].
pub const DEFAULT_SUBMIT_TIMEOUT: Duration = Duration::from_secs(30);

/// How workers retry *transient* failures
/// ([`ComputeError::is_transient`]): driver resource exhaustion and
/// context loss, real or injected by an [`EngineBuilder::fault_plan`].
/// Permanent errors (bad kernels, domain violations, shed/cancelled
/// outcomes) are never retried. A retried job counts toward the
/// snapshot's `retried` diagnostic but is still fulfilled exactly once,
/// so the balance identity is unchanged; its deadline keeps applying, so
/// a retry storm cannot outlive the job's latency budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum executions of one job, the first attempt included
    /// (minimum 1, so `1` disables retries).
    pub max_attempts: u32,
    /// Sleep between attempts, applied on the worker off the queue
    /// lock. Keep it zero for deterministic tests.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, no backoff. Invisible without fault injection:
    /// the simulated driver only produces transient errors from an
    /// installed [`gpes_gles2::FaultPlan`].
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure, transient or not, surfaces on the
    /// job handle immediately.
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

/// Configuration for an [`Engine`]; obtained from [`Engine::builder`].
pub struct EngineBuilder {
    workers: usize,
    width: u32,
    height: u32,
    limits: Option<Limits>,
    dispatch: Option<Dispatch>,
    cache_policy: CachePolicy,
    cache: Option<Arc<SharedProgramCache>>,
    queue_capacity: usize,
    submit_timeout: Duration,
    fault_plan: Option<FaultPlan>,
    retry: RetryPolicy,
}

impl EngineBuilder {
    /// Number of worker contexts/threads (default 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Screen size of each worker context (default 256×256); bounds the
    /// largest job output.
    pub fn screen(mut self, width: u32, height: u32) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Driver limits for each worker context.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Per-draw rasteriser dispatch inside each worker. Defaults to the
    /// `GPES_TEST_DISPATCH` environment override when set, otherwise
    /// [`Dispatch::Serial`]: engine parallelism comes from the worker
    /// pool, and oversubscribing cores with band threads × workers slows
    /// serving down.
    pub fn dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = Some(dispatch);
        self
    }

    /// Selects the [`CachePolicy`] (default [`CachePolicy::Shared`]).
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Supplies an existing shared cache (implies
    /// [`CachePolicy::Shared`]) — lets several engines, or an engine and
    /// direct-dispatch contexts, share one set of linked programs.
    pub fn shared_cache(mut self, cache: Arc<SharedProgramCache>) -> Self {
        self.cache = Some(cache);
        self.cache_policy = CachePolicy::Shared;
        self
    }

    /// Bounds the admission queue (default
    /// [`DEFAULT_QUEUE_CAPACITY`], minimum 1). Once `capacity` tasks are
    /// queued, `try_submit*` rejects with [`ComputeError::QueueFull`]
    /// immediately and blocking `submit*` waits up to the
    /// [`EngineBuilder::submit_timeout`] for a slot.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// How long a blocking `submit*` waits for a queue slot before
    /// giving up with [`ComputeError::QueueFull`] (default
    /// [`DEFAULT_SUBMIT_TIMEOUT`]).
    pub fn submit_timeout(mut self, timeout: Duration) -> Self {
        self.submit_timeout = timeout;
        self
    }

    /// Installs deterministic driver-fault injection: worker `i`'s
    /// context gets `plan.derive(i)` — an independent but reproducible
    /// schedule from one seed. Injected faults surface as transient
    /// errors the [`RetryPolicy`] absorbs; context losses additionally
    /// force a worker context rebuild (counted in
    /// [`EngineSnapshot::recovered_contexts`]). The plan follows a
    /// worker across rebuilds, so one-shot losses fire exactly once.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the engine-wide [`RetryPolicy`] for transient failures
    /// (default: 3 attempts, no backoff). Jobs override it per
    /// submission with [`Job::retry_policy`] /
    /// [`Submission::retry_policy`] / [`PipelineJob::retry_policy`].
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Builds the engine: creates the worker contexts (so configuration
    /// errors surface here, on the caller's thread) and starts the pool.
    ///
    /// # Errors
    ///
    /// Context-creation failures (e.g. a screen size beyond the limits).
    pub fn build(self) -> Result<Engine, ComputeError> {
        let cache = match self.cache_policy {
            CachePolicy::Shared => Some(
                self.cache
                    .unwrap_or_else(|| Arc::new(SharedProgramCache::new())),
            ),
            CachePolicy::PerContext => None,
        };
        let dispatch = self
            .dispatch
            .or_else(Dispatch::from_env)
            .unwrap_or(Dispatch::Serial);
        let config = WorkerConfig {
            width: self.width,
            height: self.height,
            limits: self.limits,
            dispatch,
            cache: cache.clone(),
            fault_plan: self.fault_plan,
            retry: self.retry,
        };
        let mut contexts = Vec::with_capacity(self.workers);
        for index in 0..self.workers {
            contexts.push(config.make_context(index)?);
        }
        let shared = Arc::new(EngineShared {
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
                live_workers: self.workers,
            }),
            cv: Condvar::new(),
            space: Condvar::new(),
            capacity: self.queue_capacity,
            metrics: Arc::new(EngineMetrics::default()),
        });
        let worker_stats: Arc<Vec<Mutex<ContextStats>>> = Arc::new(
            (0..self.workers)
                .map(|_| Mutex::new(ContextStats::default()))
                .collect(),
        );
        let resident_stats: Arc<Vec<Mutex<ResidentStats>>> = Arc::new(
            (0..self.workers)
                .map(|_| Mutex::new(ResidentStats::default()))
                .collect(),
        );
        let mut handles = Vec::with_capacity(self.workers);
        for (index, cc) in contexts.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&worker_stats);
            let residents = Arc::clone(&resident_stats);
            let config = config.clone();
            handles.push(std::thread::spawn(move || {
                worker_main(cc, config, shared, stats, residents, index)
            }));
        }
        Ok(Engine {
            shared,
            workers: handles,
            cache,
            worker_stats,
            resident_stats,
            submit_timeout: self.submit_timeout,
        })
    }
}

/// The serving engine: a queue of [`Job`]s/[`Submission`]s drained by a
/// pool of worker compute contexts behind one shared program cache. See
/// the [module docs](crate::serve) for the architecture.
pub struct Engine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
    cache: Option<Arc<SharedProgramCache>>,
    worker_stats: Arc<Vec<Mutex<ContextStats>>>,
    resident_stats: Arc<Vec<Mutex<ResidentStats>>>,
    submit_timeout: Duration,
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            workers: 1,
            width: 256,
            height: 256,
            limits: None,
            dispatch: None,
            cache_policy: CachePolicy::default(),
            cache: None,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            submit_timeout: DEFAULT_SUBMIT_TIMEOUT,
            fault_plan: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The process-wide program cache, when the policy is
    /// [`CachePolicy::Shared`].
    pub fn cache(&self) -> Option<&Arc<SharedProgramCache>> {
        self.cache.as_ref()
    }

    /// Snapshot of each worker's [`ContextStats`] (updated after every
    /// completed task).
    pub fn worker_stats(&self) -> Vec<ContextStats> {
        self.worker_stats.iter().map(|s| *lock_recover(s)).collect()
    }

    /// Snapshot of each worker's [`ResidentStats`] (updated after every
    /// completed task).
    pub fn resident_stats(&self) -> Vec<ResidentStats> {
        self.resident_stats
            .iter()
            .map(|s| *lock_recover(s))
            .collect()
    }

    /// Tasks sitting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.shared.queue).tasks.len()
    }

    /// The admission bound configured at build time.
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// A point-in-time [`EngineSnapshot`]: admission/outcome counters,
    /// queue depth and high-water mark, queue- and service-latency
    /// histograms, and the merged GL-side statistics across every
    /// worker. Cheap enough to call on every reporting tick.
    pub fn snapshot(&self) -> EngineSnapshot {
        let m = &self.shared.metrics;
        let (queue_depth, live_workers) = {
            let queue = lock_recover(&self.shared.queue);
            (queue.tasks.len() as u64, queue.live_workers)
        };
        let mut context = ContextStats::default();
        for s in self.worker_stats() {
            context = context.merged(&s);
        }
        // Field-wise sum (unlike `ResidentStats::merged`, which models a
        // context swap and keeps only the live occupancy).
        let mut residents = ResidentStats::default();
        for s in self.resident_stats() {
            residents.uploads += s.uploads;
            residents.hits += s.hits;
            residents.evictions += s.evictions;
            residents.resident_textures += s.resident_textures;
        }
        EngineSnapshot {
            submitted: EngineMetrics::read(&m.submitted),
            completed: EngineMetrics::read(&m.completed),
            failed: EngineMetrics::read(&m.failed),
            rejected: EngineMetrics::read(&m.rejected),
            shed: EngineMetrics::read(&m.shed),
            cancelled: EngineMetrics::read(&m.cancelled),
            aborted: EngineMetrics::read(&m.aborted),
            unobserved_errors: EngineMetrics::read(&m.unobserved_errors),
            retried: EngineMetrics::read(&m.retried),
            recovered_contexts: EngineMetrics::read(&m.recovered_contexts),
            faults_injected: EngineMetrics::read(&m.faults_injected),
            queue_depth,
            queue_depth_high_water: EngineMetrics::read(&m.queue_depth_high_water),
            queue_capacity: self.shared.capacity,
            live_workers,
            queue_latency: *lock_recover(&m.queue_latency),
            service_latency: *lock_recover(&m.service_latency),
            context,
            residents,
            shared_cache: self.cache.as_ref().map(|c| c.stats()),
        }
    }

    /// Programs linked process-wide on behalf of this engine: the shared
    /// cache's link count, or (per-context policy) the sum of worker
    /// links. The number the `a10` gate holds constant as workers scale.
    pub fn programs_linked(&self) -> u64 {
        match &self.cache {
            Some(cache) => cache.stats().links,
            None => self.worker_stats().iter().map(|s| s.programs_linked).sum(),
        }
    }

    /// Enqueues a single-kernel job. Blocks up to the configured
    /// [`EngineBuilder::submit_timeout`] when the queue is full, then
    /// gives up with [`ComputeError::QueueFull`]; use
    /// [`Engine::try_submit`] to never block.
    ///
    /// # Errors
    ///
    /// Validation errors (input arity) and admission errors
    /// ([`ComputeError::QueueFull`], [`ComputeError::EngineShutdown`])
    /// surface here; execution errors surface on the handle.
    pub fn submit(&self, job: Job) -> Result<JobHandle<Vec<f32>>, ComputeError> {
        job.validate()?;
        let deadline = job.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Single(job, state), deadline, true)?;
        Ok(handle)
    }

    /// Non-blocking [`Engine::submit`]: a full queue rejects with
    /// [`ComputeError::QueueFull`] immediately.
    pub fn try_submit(&self, job: Job) -> Result<JobHandle<Vec<f32>>, ComputeError> {
        job.validate()?;
        let deadline = job.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Single(job, state), deadline, false)?;
        Ok(handle)
    }

    /// Enqueues a multi-kernel DAG as one unit of work. Blocks up to the
    /// configured [`EngineBuilder::submit_timeout`] when the queue is
    /// full; use [`Engine::try_submit_batch`] to never block.
    ///
    /// # Errors
    ///
    /// Validation errors (arity, forward references, bad readback marks)
    /// and admission errors surface here; execution errors surface on
    /// the handle.
    pub fn submit_batch(
        &self,
        submission: Submission,
    ) -> Result<JobHandle<BatchResult>, ComputeError> {
        submission.validate()?;
        let deadline = submission.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Batch(submission, state), deadline, true)?;
        Ok(handle)
    }

    /// Non-blocking [`Engine::submit_batch`]: a full queue rejects with
    /// [`ComputeError::QueueFull`] immediately.
    pub fn try_submit_batch(
        &self,
        submission: Submission,
    ) -> Result<JobHandle<BatchResult>, ComputeError> {
        submission.validate()?;
        let deadline = submission.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Batch(submission, state), deadline, false)?;
        Ok(handle)
    }

    /// Enqueues a whole retained pipeline as one job: the worker builds
    /// (or cache-hits) the pipeline for the job's [`PipelineSpec`], seeds
    /// it with the job's sources, runs every iteration on-GPU and reads
    /// back the marked buffers. Steady state links no programs and
    /// creates no GL objects — the `a11` CI gate's contract.
    ///
    /// # Errors
    ///
    /// Validation errors (source arity/lengths, evicted residents,
    /// unknown read buffers) surface here; execution errors — including
    /// [`ComputeError::IterationCap`] for an `until` predicate that never
    /// fires — surface on the handle.
    pub fn submit_pipeline(
        &self,
        job: PipelineJob,
    ) -> Result<JobHandle<PipelineResult>, ComputeError> {
        job.validate()?;
        let deadline = job.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Pipeline(job, state), deadline, true)?;
        Ok(handle)
    }

    /// Non-blocking [`Engine::submit_pipeline`]: a full queue rejects
    /// with [`ComputeError::QueueFull`] immediately.
    pub fn try_submit_pipeline(
        &self,
        job: PipelineJob,
    ) -> Result<JobHandle<PipelineResult>, ComputeError> {
        job.validate()?;
        let deadline = job.deadline;
        let (handle, state) = JobHandle::new(&self.shared.metrics);
        self.enqueue(Task::Pipeline(job, state), deadline, false)?;
        Ok(handle)
    }

    /// Admission: every path counts toward `submitted`, and every
    /// refusal (full queue, shutdown, dead pool) counts toward
    /// `rejected` — so the snapshot's balance identity covers admission
    /// failures too. A blocking submit parks on the `space` condvar
    /// until a worker frees a slot or the submit timeout expires.
    fn enqueue(
        &self,
        task: Task,
        deadline: Option<Instant>,
        blocking: bool,
    ) -> Result<(), ComputeError> {
        let shared = &self.shared;
        let metrics = &shared.metrics;
        EngineMetrics::bump(&metrics.submitted);
        let reject = |error: ComputeError| {
            EngineMetrics::bump(&metrics.rejected);
            Err(error)
        };
        let mut queue = lock_recover(&shared.queue);
        let mut give_up_at: Option<Instant> = None;
        loop {
            if queue.shutdown {
                return reject(ComputeError::EngineShutdown);
            }
            if queue.live_workers == 0 {
                return reject(ComputeError::EngineInternal {
                    message: "engine has no live workers".into(),
                });
            }
            if queue.tasks.len() < shared.capacity {
                queue.tasks.push_back(QueuedTask {
                    payload: task,
                    deadline,
                    enqueued_at: Instant::now(),
                    attempt: 0,
                });
                metrics.raise_high_water(queue.tasks.len() as u64);
                drop(queue);
                shared.cv.notify_one();
                return Ok(());
            }
            if !blocking {
                return reject(ComputeError::QueueFull {
                    capacity: shared.capacity,
                });
            }
            let at = *give_up_at.get_or_insert_with(|| Instant::now() + self.submit_timeout);
            let now = Instant::now();
            if now >= at {
                return reject(ComputeError::QueueFull {
                    capacity: shared.capacity,
                });
            }
            queue = shared
                .space
                .wait_timeout(queue, at - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Stops accepting work, aborts every still-queued task with
    /// [`ComputeError::EngineShutdown`] (their handles resolve — no
    /// `wait()` hangs) and joins every worker. In-progress tasks finish
    /// normally first. (Dropping the engine does the same.)
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let leftovers: Vec<QueuedTask> = {
            let mut queue = lock_recover(&self.shared.queue);
            queue.shutdown = true;
            queue.tasks.drain(..).collect()
        };
        self.shared.cv.notify_all();
        self.shared.space.notify_all();
        for task in leftovers {
            task.payload
                .abort(ComputeError::EngineShutdown, &self.shared.metrics);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---- worker --------------------------------------------------------------

/// Everything needed to (re)create one worker's context — kept so a
/// worker can replace its context after a panicking job rather than keep
/// serving from state a panic may have left half-updated.
#[derive(Clone)]
struct WorkerConfig {
    width: u32,
    height: u32,
    limits: Option<Limits>,
    dispatch: Dispatch,
    cache: Option<Arc<SharedProgramCache>>,
    fault_plan: Option<FaultPlan>,
    retry: RetryPolicy,
}

impl WorkerConfig {
    /// Creates (or re-creates) worker `worker`'s context. An engine-level
    /// fault plan is derived per worker index, so each context gets an
    /// independent-but-reproducible schedule; a context rebuilt after a
    /// loss has this fresh derivation overwritten with the old context's
    /// carried plan, so consumed one-shots stay consumed.
    fn make_context(&self, worker: usize) -> Result<ComputeContext, ComputeError> {
        let mut cc = match &self.limits {
            Some(limits) => ComputeContext::with_limits(self.width, self.height, limits.clone())?,
            None => ComputeContext::new(self.width, self.height)?,
        };
        cc.set_dispatch(self.dispatch);
        if let Some(cache) = &self.cache {
            cc.set_shared_program_cache(Arc::clone(cache));
        }
        if let Some(plan) = &self.fault_plan {
            cc.install_fault_plan(plan.derive(worker as u64));
        }
        Ok(cc)
    }
}

/// Runs `f` with the worker context, converting a panic into an error so
/// the caller's [`JobHandle::wait`] never deadlocks. Returns whether the
/// task panicked (⇒ the context must be replaced: a panic can unwind out
/// of the middle of a draw, leaving context state half-updated).
fn run_shielded<T>(
    cc: &mut ComputeContext,
    f: impl FnOnce(&mut ComputeContext) -> Result<T, ComputeError>,
) -> (Result<T, ComputeError>, bool) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(cc))) {
        Ok(result) => (result, false),
        Err(_) => (
            Err(ComputeError::EngineInternal {
                message: "engine worker panicked while serving this job".into(),
            }),
            true,
        ),
    }
}

/// Marks this worker as out of the serve loop. If it was the last one
/// and tasks remain (every worker retired after a panic), the leftovers
/// are aborted so their `wait()` calls return instead of hanging; any
/// producer blocked on admission is woken to observe the dead pool.
fn retire_worker(shared: &EngineShared) {
    let leftovers: Vec<QueuedTask> = {
        let mut queue = lock_recover(&shared.queue);
        queue.live_workers = queue.live_workers.saturating_sub(1);
        if queue.live_workers == 0 {
            queue.tasks.drain(..).collect()
        } else {
            Vec::new()
        }
    };
    shared.space.notify_all();
    for task in leftovers {
        task.payload.abort(
            ComputeError::EngineInternal {
                message: "engine has no live workers".into(),
            },
            &shared.metrics,
        );
    }
}

/// A pending fulfilment: the task's result, held until after the worker
/// has published its stats so a caller returning from `wait()` observes
/// stats that already include its job.
enum Completed {
    Single(Arc<HandleState<Vec<f32>>>, Result<Vec<f32>, ComputeError>),
    Batch(
        Arc<HandleState<BatchResult>>,
        Result<BatchResult, ComputeError>,
    ),
    Pipeline(
        Arc<HandleState<PipelineResult>>,
        Result<PipelineResult, ComputeError>,
    ),
}

impl Completed {
    fn is_err(&self) -> bool {
        self.error().is_some()
    }

    fn error(&self) -> Option<&ComputeError> {
        match self {
            Completed::Single(_, result) => result.as_ref().err(),
            Completed::Batch(_, result) => result.as_ref().err(),
            Completed::Pipeline(_, result) => result.as_ref().err(),
        }
    }

    fn fulfil(self) {
        match self {
            Completed::Single(handle, result) => fulfil(&handle, result),
            Completed::Batch(handle, result) => fulfil(&handle, result),
            Completed::Pipeline(handle, result) => fulfil(&handle, result),
        }
    }
}

/// Built pipelines a worker caches across requests, keyed by
/// [`PipelineSpec::fingerprint`]; beyond the cap the oldest entry is
/// dropped (its placeholder texture recycled — the programs stay in the
/// context/shared caches, so rebuilding links nothing).
const PIPELINES_PER_WORKER_CAP: usize = 32;

/// Resident-input textures a worker holds; beyond the cap the oldest is
/// recycled and counted as an eviction (the next use re-uploads).
const RESIDENTS_PER_WORKER_CAP: usize = 64;

/// Everything a worker retains across requests *on top of* its context:
/// built pipelines and resident-input textures. Tied to the context's
/// lifetime — a panic-replaced context gets a fresh (empty) state, since
/// cached kernels and textures belong to the dead context.
struct WorkerState {
    pipelines: FifoCache<u64, ServedPipeline>,
    /// `(resident id, texture width, texture height)` → handle + uploaded
    /// array; the dims keep one residency usable under several declared
    /// shapes, and the handle lets the post-task sweep notice evictions.
    residents: FifoCache<(u64, u32, u32), (ResidentInput, GpuArray<f32>)>,
    resident_stats: ResidentStats,
}

impl Default for WorkerState {
    fn default() -> WorkerState {
        WorkerState {
            pipelines: FifoCache::new(PIPELINES_PER_WORKER_CAP),
            residents: FifoCache::new(RESIDENTS_PER_WORKER_CAP),
            resident_stats: ResidentStats::default(),
        }
    }
}

impl WorkerState {
    /// Returns the cached pipeline for `spec`, building (and caching) it
    /// on first sight.
    fn pipeline_for(
        &mut self,
        cc: &mut ComputeContext,
        spec: &PipelineSpec,
    ) -> Result<&ServedPipeline, ComputeError> {
        let key = spec.fingerprint();
        if !self.pipelines.contains(&key) {
            let served = spec.build(cc)?;
            for (_, evicted) in self.pipelines.insert(key, served) {
                cc.recycle_array(evicted.placeholder);
            }
        }
        Ok(self.pipelines.get(&key).expect("just ensured present"))
    }

    /// Resolves a resident input to its per-worker texture under the
    /// requested shape, uploading on first use and evicting oldest-first
    /// past the cap. An evicted handle drops its entries and fails.
    fn resident_array(
        &mut self,
        cc: &mut ComputeContext,
        input: &ResidentInput,
        shape: SourceShape,
    ) -> Result<GpuArray<f32>, ComputeError> {
        let id = input.inner.id;
        if input.is_evicted() {
            self.sweep_evicted(cc);
            return Err(bad_job(format!(
                "job references an evicted ResidentInput (id {id})"
            )));
        }
        let layout = match shape {
            SourceShape::Linear(_) => {
                crate::addressing::ArrayLayout::for_len(input.len(), cc.max_texture_side())?
            }
            SourceShape::Grid { rows, cols } => {
                crate::addressing::ArrayLayout::grid(rows, cols, cc.max_texture_side())?
            }
        };
        let key = (id, layout.width, layout.height);
        if let Some((_, array)) = self.residents.get(&key) {
            self.resident_stats.hits += 1;
            return Ok(*array);
        }
        let array = match shape {
            SourceShape::Linear(_) => cc.upload(input.inner.data.as_slice())?,
            SourceShape::Grid { rows, cols } => cc
                .upload_matrix(rows, cols, input.inner.data.as_slice())?
                .as_array(),
        };
        self.resident_stats.uploads += 1;
        for (_, (_, evicted)) in self.residents.insert(key, (input.clone(), array)) {
            cc.recycle_array(evicted);
            self.resident_stats.evictions += 1;
        }
        self.resident_stats.resident_textures = self.residents.len() as u64;
        Ok(array)
    }

    /// Recycles every residency whose handle has been evicted. Runs after
    /// each task, so `ResidentInput::evict` reclaims a worker's texture at
    /// its next task boundary — not only if the dead handle is referenced
    /// again.
    fn sweep_evicted(&mut self, cc: &mut ComputeContext) {
        let dead = self
            .residents
            .extract_if(|_, (handle, _)| handle.is_evicted());
        for (_, (_, array)) in dead {
            cc.recycle_array(array);
            self.resident_stats.evictions += 1;
        }
        self.resident_stats.resident_textures = self.residents.len() as u64;
    }
}

/// Publishes the worker's injected-fault watermark delta to the shared
/// metrics; returns the new watermark. Never subtracts, so a stale
/// reading (after a failed rebuild dropped the plan) is a no-op.
fn publish_faults(metrics: &EngineMetrics, published: u64, now: u64) -> u64 {
    if now > published {
        EngineMetrics::add(&metrics.faults_injected, now - published);
        now
    } else {
        published
    }
}

/// Returns a claimed task to the queue for another attempt. The control
/// goes back to `Queued` (so the handle can still cancel the retry) and
/// the admission timestamp restarts — but `submitted` is NOT re-bumped:
/// a retry is the same admitted job, so the snapshot balance identity
/// counts it exactly once. Hands the task back (`Some`, still claimed)
/// when the queue cannot take it: shutdown, dead pool, or full.
fn requeue_transient(shared: &EngineShared, queued: QueuedTask) -> Option<QueuedTask> {
    let mut queue = lock_recover(&shared.queue);
    if queue.shutdown || queue.live_workers == 0 || queue.tasks.len() >= shared.capacity {
        return Some(queued);
    }
    queued.payload.control().requeue();
    queue.tasks.push_back(QueuedTask {
        enqueued_at: Instant::now(),
        ..queued
    });
    shared.metrics.raise_high_water(queue.tasks.len() as u64);
    drop(queue);
    shared.cv.notify_one();
    None
}

/// Runs one task by reference (so a transient failure can re-run or
/// requeue the same payload), pairing the shielded result with its
/// handle.
fn run_task(cc: &mut ComputeContext, state: &mut WorkerState, payload: &Task) -> (Completed, bool) {
    match payload {
        Task::Single(job, handle) => {
            let (result, panicked) = run_shielded(cc, |cc| run_job(cc, state, job));
            (Completed::Single(Arc::clone(handle), result), panicked)
        }
        Task::Batch(submission, handle) => {
            let (result, panicked) = run_shielded(cc, |cc| run_submission(cc, state, submission));
            (Completed::Batch(Arc::clone(handle), result), panicked)
        }
        Task::Pipeline(job, handle) => {
            let (result, panicked) = run_shielded(cc, |cc| run_pipeline(cc, state, job));
            (Completed::Pipeline(Arc::clone(handle), result), panicked)
        }
    }
}

fn worker_main(
    mut cc: ComputeContext,
    config: WorkerConfig,
    shared: Arc<EngineShared>,
    stats: Arc<Vec<Mutex<ContextStats>>>,
    resident_stats: Arc<Vec<Mutex<ResidentStats>>>,
    index: usize,
) {
    // Counters accumulated by contexts this worker already retired (after
    // a panicking job or a context loss); published stats are always
    // `base + current`, so a context swap never zeroes the worker's
    // visible accounting.
    let mut base = ContextStats::default();
    let mut resident_base = ResidentStats::default();
    let mut state = WorkerState::default();
    // Injected-fault watermark already published to the engine metrics;
    // the fault plan travels across context rebuilds, so the per-context
    // counter is monotonic for this worker's lifetime.
    let mut faults_published = 0u64;
    'serve: loop {
        let mut queued = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    drop(queue);
                    retire_worker(&shared);
                    return;
                }
                queue = wait_recover(&shared.cv, queue);
            }
        };
        // A slot just freed up: wake one producer blocked on admission.
        shared.space.notify_one();
        let queue_latency = queued.enqueued_at.elapsed();
        lock_recover(&shared.metrics.queue_latency).record(queue_latency);
        // Claim the task: losing means the handle cancelled it (and
        // fulfilled itself) — discard the payload untouched.
        if !queued.payload.control().claim() {
            continue;
        }
        // Deadline shed: expired work never touches the GPU. Requeued
        // retries pass through here again, so the deadline keeps ruling
        // however many attempts the job takes.
        if let Some(deadline) = queued.deadline {
            if Instant::now() >= deadline {
                EngineMetrics::bump(&shared.metrics.shed);
                let queued_ms = u64::try_from(queue_latency.as_millis()).unwrap_or(u64::MAX);
                queued.payload.shed(queued_ms);
                continue;
            }
        }
        let policy = queued.payload.retry_override().unwrap_or(config.retry);
        let started = Instant::now();
        // Execute, self-healing around transient failures: a lost context
        // is rebuilt and the job replayed in place; other transient
        // failures go back to the queue (or, if the queue is unavailable,
        // retry in place); permanent outcomes break out for fulfilment.
        let completed = loop {
            let (completed, panicked) = run_task(&mut cc, &mut state, &queued.payload);
            if panicked || cc.context_lost() {
                // Fresh context, same wiring; the worker state dies with
                // the context — its cached pipelines and resident
                // textures belonged to the context that panicked or was
                // lost, and repopulate lazily on the replacement. The
                // fault plan (PRNG position, consumed one-shots, counts)
                // moves onto the fresh context so a one-shot loss fires
                // exactly once. If even the rebuild fails the worker
                // retires (remaining queue entries drain to other
                // workers, or are aborted if this was the last one).
                base = base.merged(&cc.stats());
                resident_base = resident_base.merged(&state.resident_stats);
                resident_base.resident_textures = 0;
                state = WorkerState::default();
                let plan = cc.take_fault_plan();
                match config.make_context(index) {
                    Ok(mut fresh) => {
                        if let Some(plan) = plan {
                            faults_published =
                                publish_faults(&shared.metrics, faults_published, plan.injected());
                            fresh.install_fault_plan(plan);
                        }
                        cc = fresh;
                        EngineMetrics::bump(&shared.metrics.recovered_contexts);
                    }
                    Err(_) => {
                        lock_recover(&shared.metrics.service_latency).record(started.elapsed());
                        EngineMetrics::bump(&shared.metrics.completed);
                        EngineMetrics::bump(&shared.metrics.failed);
                        completed.fulfil();
                        retire_worker(&shared);
                        return;
                    }
                }
            }
            if panicked {
                // Panics are never retried: the typed internal error
                // surfaces (from the already-rebuilt context).
                break completed;
            }
            match completed.error() {
                Some(e) if e.is_transient() && queued.attempt + 1 < policy.attempts() => {
                    queued.attempt += 1;
                    EngineMetrics::bump(&shared.metrics.retried);
                    if !policy.backoff.is_zero() {
                        std::thread::sleep(policy.backoff);
                    }
                    if e.is_context_loss() {
                        // Replay in place on the just-rebuilt context.
                        continue;
                    }
                    match requeue_transient(&shared, queued) {
                        // Back in the queue; this worker moves on.
                        None => continue 'serve,
                        // Queue unavailable (shutdown / full / dead
                        // pool): retry in place rather than dropping
                        // the attempt.
                        Some(returned) => {
                            queued = returned;
                            continue;
                        }
                    }
                }
                _ => break completed,
            }
        };
        // Reclaim residencies whose handles were evicted since the last
        // task, then publish stats (and drain the per-request pass log)
        // BEFORE fulfilling the handle: a caller returning from `wait()`
        // must observe worker stats that include its job.
        state.sweep_evicted(&mut cc);
        cc.take_pass_log();
        *lock_recover(&stats[index]) = base.merged(&cc.stats());
        *lock_recover(&resident_stats[index]) = resident_base.merged(&state.resident_stats);
        faults_published = publish_faults(&shared.metrics, faults_published, cc.faults_injected());
        lock_recover(&shared.metrics.service_latency).record(started.elapsed());
        EngineMetrics::bump(&shared.metrics.completed);
        if completed.is_err() {
            EngineMetrics::bump(&shared.metrics.failed);
        }
        completed.fulfil();
    }
}

/// Executes one job exactly as a direct caller would: upload (or resolve
/// resident) inputs, build (cache-hit) the kernel, dispatch with
/// overrides, read back through the FBO path, recycle every *per-job*
/// texture — resident textures stay on the worker.
fn run_job(
    cc: &mut ComputeContext,
    state: &mut WorkerState,
    job: &Job,
) -> Result<Vec<f32>, ComputeError> {
    let mut arrays = Vec::with_capacity(job.inputs.len());
    let mut uploads = Vec::new();
    let mut failure = None;
    for input in &job.inputs {
        match input {
            JobInput::Data(data) => match cc.upload(data.as_slice()) {
                Ok(array) => {
                    uploads.push(array);
                    arrays.push(array);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            },
            JobInput::Resident(resident) => {
                match state.resident_array(cc, resident, SourceShape::Linear(None)) {
                    Ok(array) => arrays.push(array),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
        }
    }
    let result = match failure {
        Some(e) => Err(e),
        None => dispatch_spec(cc, &job.kernel, &arrays, &job.uniforms),
    };
    for array in uploads {
        cc.recycle_array(array);
    }
    let out = result?;
    let host = cc.read_array(&out, Readback::DirectFbo);
    cc.recycle_array(out);
    host
}

/// Executes a whole retained pipeline as one job: cache-hit (or build)
/// the pipeline for the spec, seed every declared source from the job,
/// run all iterations on-GPU, read back the marked buffers, retire every
/// per-job texture into the pool.
fn run_pipeline(
    cc: &mut ComputeContext,
    state: &mut WorkerState,
    job: &PipelineJob,
) -> Result<PipelineResult, ComputeError> {
    state.pipeline_for(cc, &job.spec)?;
    let mut seeds = Vec::with_capacity(job.sources.len());
    let mut uploads: Vec<GpuArray<f32>> = Vec::new();
    let mut failure = None;
    for (decl, input) in job.spec.sources.iter().zip(&job.sources) {
        let resolved = match input {
            JobInput::Data(data) => {
                let uploaded = match decl.shape {
                    SourceShape::Linear(_) => cc.upload(data.as_slice()),
                    SourceShape::Grid { rows, cols } => cc
                        .upload_matrix(rows, cols, data.as_slice())
                        .map(|m| m.as_array()),
                };
                match uploaded {
                    Ok(array) => {
                        uploads.push(array);
                        array
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            JobInput::Resident(resident) => match state.resident_array(cc, resident, decl.shape) {
                Ok(array) => array,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            },
        };
        seeds.push(SourceSeed::array(decl.name.clone(), &resolved));
    }
    let result = match failure {
        Some(e) => Err(e),
        None => {
            let served = state
                .pipelines
                .get(&job.spec.fingerprint())
                .expect("built by pipeline_for above");
            served.pipeline.run_seeded(cc, &seeds).and_then(|run| {
                let mut outputs = Vec::with_capacity(job.reads.len());
                let mut read_failure = None;
                for buffer in &job.reads {
                    match run.read::<f32>(cc, buffer) {
                        Ok(data) => outputs.push((buffer.clone(), data)),
                        Err(e) => {
                            read_failure = Some(e);
                            break;
                        }
                    }
                }
                run.finish(cc);
                match read_failure {
                    Some(e) => Err(e),
                    None => Ok(PipelineResult { outputs }),
                }
            })
        }
    };
    for array in uploads {
        cc.recycle_array(array);
    }
    result
}

/// Executes a submission's steps in order on one worker, keeping step
/// outputs on the GPU for later steps, reading back only marked steps.
fn run_submission(
    cc: &mut ComputeContext,
    state: &mut WorkerState,
    submission: &Submission,
) -> Result<BatchResult, ComputeError> {
    let n = submission.steps.len();
    let mut step_outputs: Vec<Option<GpuArray<f32>>> = (0..n).map(|_| None).collect();
    let mut uploads: Vec<GpuArray<f32>> = Vec::new();
    let mut failure: Option<ComputeError> = None;
    for (i, step) in submission.steps.iter().enumerate() {
        let mut arrays: Vec<GpuArray<f32>> = Vec::with_capacity(step.inputs.len());
        let mut ok = true;
        for input in &step.inputs {
            let array = match input {
                StepInput::Data(data) => match cc.upload(data.as_slice()) {
                    Ok(array) => {
                        // Track the upload for recycling; the borrow the
                        // kernel needs is the (Copy) texture + layout pair.
                        uploads.push(array);
                        array
                    }
                    Err(e) => {
                        failure = Some(e);
                        ok = false;
                        break;
                    }
                },
                StepInput::Step(j) => match &step_outputs[*j] {
                    Some(array) => *array,
                    None => {
                        failure = Some(bad_job(format!("step {i} reads failed step {j}")));
                        ok = false;
                        break;
                    }
                },
                StepInput::Resident(resident) => {
                    match state.resident_array(cc, resident, SourceShape::Linear(None)) {
                        Ok(array) => array,
                        Err(e) => {
                            failure = Some(e);
                            ok = false;
                            break;
                        }
                    }
                }
            };
            arrays.push(array);
        }
        if !ok {
            break;
        }
        match dispatch_spec(cc, &step.kernel, &arrays, &step.uniforms) {
            Ok(out) => step_outputs[i] = Some(out),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }

    let mut outputs: Vec<Option<Vec<f32>>> = (0..n).map(|_| None).collect();
    if failure.is_none() {
        let read: Vec<usize> = if submission.read.is_empty() {
            vec![n - 1]
        } else {
            submission.read.clone()
        };
        for &r in &read {
            match step_outputs[r].as_ref() {
                Some(array) => match cc.read_array(array, Readback::DirectFbo) {
                    Ok(host) => outputs[r] = Some(host),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                },
                None => {
                    failure = Some(bad_job(format!("readback of unexecuted step {r}")));
                    break;
                }
            }
        }
    }

    for array in uploads {
        cc.recycle_array(array);
    }
    for array in step_outputs.into_iter().flatten() {
        cc.recycle_array(array);
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(BatchResult { outputs }),
    }
}

/// Builds the spec's kernel over `arrays` and dispatches it once with the
/// given uniform overrides.
fn dispatch_spec(
    cc: &mut ComputeContext,
    spec: &KernelSpec,
    arrays: &[GpuArray<f32>],
    uniforms: &[(String, Value)],
) -> Result<GpuArray<f32>, ComputeError> {
    // Arity is validated inside `KernelSpec::build`.
    let kernel = spec.build(cc, arrays)?;
    let mut bindings = Bindings::new();
    for (name, value) in uniforms {
        bindings.set_uniform(name, value.clone());
    }
    cc.run_to_array_with(&kernel, &bindings)
}
