//! `gpes-serve` — a concurrent multi-kernel serving engine over the
//! retained compute API.
//!
//! The deployment shape this models is the one on-device inference stacks
//! (CNNdroid, the TFLite GPU delegate) settle on: many independent
//! compute requests arrive at one device, one-time program compilation is
//! amortised across all of them, and a small pool of worker contexts
//! drains a submission queue. Concretely:
//!
//! * an [`Engine`] owns N worker threads, each with its own
//!   [`ComputeContext`] (GL contexts are single-threaded by construction,
//!   exactly as on real hardware — sharing happens at the *program*
//!   level, not the context level);
//! * every worker context is wired to one process-wide
//!   [`SharedProgramCache`], so each distinct kernel links exactly once
//!   no matter which worker sees it first ([`CachePolicy::PerContext`]
//!   exists for the `a10` ablation that measures what N× relinking
//!   costs);
//! * requests are [`Job`]s (one kernel dispatch) or [`Submission`]s (a
//!   multi-kernel DAG that runs on one worker without per-step queue
//!   round-trips, intermediates staying on the GPU);
//! * results come back through typed [`JobHandle`]s that block on
//!   [`JobHandle::wait`].
//!
//! Kernels are described by a context-free [`KernelSpec`] rather than a
//! built [`crate::Kernel`], because a kernel object is bound to the
//! context that compiled it. A spec carries exactly the information
//! [`crate::KernelBuilder`] needs, so a worker executing a job performs
//! the same upload → build → dispatch → read sequence a caller would
//! perform directly — the engine differential test asserts the outputs
//! are bit-identical.
//!
//! ```
//! use gpes_core::serve::{Engine, Job, KernelSpec};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), gpes_core::ComputeError> {
//! let engine = Engine::builder().workers(2).build()?;
//! let saxpy = Arc::new(
//!     KernelSpec::new("saxpy")
//!         .input("x")
//!         .input("y")
//!         .uniform_f32("alpha", 2.0)
//!         .output(4)
//!         .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
//! );
//! let job = Job::new(&saxpy)
//!     .data(vec![1.0, 2.0, 3.0, 4.0])
//!     .data(vec![10.0, 20.0, 30.0, 40.0]);
//! let handle = engine.submit(job)?;
//! assert_eq!(handle.wait()?, vec![12.0, 24.0, 36.0, 48.0]);
//! # Ok(())
//! # }
//! ```

use crate::buffer::GpuArray;
use crate::cache::SharedProgramCache;
use crate::context::{ComputeContext, ContextStats};
use crate::error::ComputeError;
use crate::kernel::{Kernel, OutputShape};
use crate::pipeline::Readback;
use crate::Bindings;
use gpes_gles2::{Dispatch, Limits};
use gpes_glsl::Value;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

// ---- kernel specification ------------------------------------------------

/// A context-free description of an `f32` compute kernel: everything
/// [`crate::KernelBuilder`] needs, minus the textures, so the same spec
/// can be built (cheaply, through the program caches) on any worker
/// context. Specs are immutable once built; wrap them in [`Arc`] and
/// reuse them across jobs.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    name: String,
    inputs: Vec<String>,
    uniforms: Vec<(String, Value)>,
    output: Option<OutputShape>,
    body: String,
    functions: String,
}

impl KernelSpec {
    /// Starts a spec for a kernel named `name`.
    pub fn new(name: impl Into<String>) -> KernelSpec {
        KernelSpec {
            name: name.into(),
            inputs: Vec::new(),
            uniforms: Vec::new(),
            output: None,
            body: String::new(),
            functions: String::new(),
        }
    }

    /// Declares an `f32` array input; jobs supply its data positionally,
    /// in declaration order.
    pub fn input(mut self, name: impl Into<String>) -> Self {
        self.inputs.push(name.into());
        self
    }

    /// Declares a uniform with a default value.
    pub fn uniform(mut self, name: impl Into<String>, value: Value) -> Self {
        self.uniforms.push((name.into(), value));
        self
    }

    /// Declares a `uniform float` with a default value.
    pub fn uniform_f32(self, name: impl Into<String>, value: f32) -> Self {
        self.uniform(name, Value::Float(value))
    }

    /// Declares the linear output length.
    pub fn output(mut self, len: usize) -> Self {
        self.output = Some(OutputShape::Linear(len));
        self
    }

    /// Declares a `rows × cols` output grid.
    pub fn output_grid(mut self, rows: u32, cols: u32) -> Self {
        self.output = Some(OutputShape::Grid { rows, cols });
        self
    }

    /// The kernel body (contents of `float kernel(idx, row, col)`).
    pub fn body(mut self, body: impl Into<String>) -> Self {
        self.body = body.into();
        self
    }

    /// Extra GLSL helper functions available to the body.
    pub fn functions(mut self, source: impl Into<String>) -> Self {
        self.functions = source.into();
        self
    }

    /// The declared input names, in positional order.
    pub fn input_names(&self) -> &[String] {
        &self.inputs
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the kernel against `arrays` (parallel to the declared
    /// inputs) on `cc` — a program-cache hit everywhere but the first
    /// build of this spec in the process (shared cache) or context.
    /// Public so direct (non-engine) dispatch of a spec generates the
    /// byte-identical program an engine worker runs — the differential
    /// tests and the `a10` ablation rely on it.
    ///
    /// # Errors
    ///
    /// Spec/kernel validation and compile errors, as
    /// [`crate::KernelBuilder::build`].
    pub fn build(
        &self,
        cc: &mut ComputeContext,
        arrays: &[GpuArray<f32>],
    ) -> Result<Kernel, ComputeError> {
        if arrays.len() != self.inputs.len() {
            return Err(bad_job(format!(
                "kernel spec `{}` declares {} inputs, got {} arrays",
                self.name,
                self.inputs.len(),
                arrays.len()
            )));
        }
        let shape = self
            .output
            .ok_or_else(|| bad_job(format!("kernel spec `{}` declares no output", self.name)))?;
        let mut b = Kernel::builder(self.name.clone());
        for (name, array) in self.inputs.iter().zip(arrays) {
            b = b.input(name, array);
        }
        for (name, value) in &self.uniforms {
            b = b.uniform(name, value.clone());
        }
        if !self.functions.is_empty() {
            b = b.functions(self.functions.clone());
        }
        b = match shape {
            OutputShape::Linear(len) => b.output(crate::ScalarType::F32, len),
            OutputShape::Grid { rows, cols } => b.output_grid(crate::ScalarType::F32, rows, cols),
        };
        b.body(self.body.clone()).build(cc)
    }
}

fn bad_job(message: String) -> ComputeError {
    ComputeError::BadKernel { message }
}

// ---- jobs and submissions ------------------------------------------------

/// One input of a [`Submission`] step: fresh host data, or the on-GPU
/// output of an earlier step in the same submission.
#[derive(Debug, Clone)]
pub enum StepInput {
    /// Host data uploaded when the step runs. `Arc`-held so fan-out
    /// submissions can share one buffer without copying.
    Data(Arc<Vec<f32>>),
    /// The output array of step `i` (must precede this step); it stays on
    /// the GPU — no readback/re-upload between steps.
    Step(usize),
}

/// A single kernel dispatch: spec + positional input data + optional
/// dispatch-time uniform overrides. Result type: `Vec<f32>`.
#[derive(Debug, Clone)]
pub struct Job {
    kernel: Arc<KernelSpec>,
    inputs: Vec<Arc<Vec<f32>>>,
    uniforms: Vec<(String, Value)>,
}

impl Job {
    /// Starts a job running `kernel`.
    pub fn new(kernel: &Arc<KernelSpec>) -> Job {
        Job {
            kernel: Arc::clone(kernel),
            inputs: Vec::new(),
            uniforms: Vec::new(),
        }
    }

    /// Appends host data for the next declared input.
    pub fn data(mut self, data: Vec<f32>) -> Job {
        self.inputs.push(Arc::new(data));
        self
    }

    /// Appends shared host data for the next declared input.
    pub fn data_shared(mut self, data: &Arc<Vec<f32>>) -> Job {
        self.inputs.push(Arc::clone(data));
        self
    }

    /// Overrides a uniform for this dispatch only.
    pub fn uniform(mut self, name: impl Into<String>, value: Value) -> Job {
        self.uniforms.push((name.into(), value));
        self
    }

    /// Overrides a `float` uniform for this dispatch only.
    pub fn uniform_f32(self, name: impl Into<String>, value: f32) -> Job {
        self.uniform(name, Value::Float(value))
    }

    fn validate(&self) -> Result<(), ComputeError> {
        if self.inputs.len() != self.kernel.inputs.len() {
            return Err(bad_job(format!(
                "job for `{}` supplies {} inputs, spec declares {}",
                self.kernel.name,
                self.inputs.len(),
                self.kernel.inputs.len()
            )));
        }
        Ok(())
    }
}

struct Step {
    kernel: Arc<KernelSpec>,
    inputs: Vec<StepInput>,
    uniforms: Vec<(String, Value)>,
}

/// A batched multi-kernel DAG: several dispatches submitted as one unit,
/// executed back-to-back on a single worker. Later steps read earlier
/// steps' outputs directly from GPU memory ([`StepInput::Step`]), so a
/// k-kernel chain costs one queue round-trip instead of k, and no
/// intermediate ever crosses the host boundary.
#[derive(Default)]
pub struct Submission {
    steps: Vec<Step>,
    read: Vec<usize>,
}

impl Submission {
    /// An empty submission.
    pub fn new() -> Submission {
        Submission::default()
    }

    /// Appends a step and returns its index (the handle later steps use
    /// in [`StepInput::Step`]).
    pub fn step(
        &mut self,
        kernel: &Arc<KernelSpec>,
        inputs: Vec<StepInput>,
        uniforms: Vec<(String, Value)>,
    ) -> usize {
        self.steps.push(Step {
            kernel: Arc::clone(kernel),
            inputs,
            uniforms,
        });
        self.steps.len() - 1
    }

    /// Marks step `index` for readback; its result appears in the
    /// [`BatchResult`]. When no step is marked, the final step is read.
    pub fn read(&mut self, index: usize) {
        if !self.read.contains(&index) {
            self.read.push(index);
        }
    }

    /// Number of steps queued so far.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the submission has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    fn validate(&self) -> Result<(), ComputeError> {
        if self.steps.is_empty() {
            return Err(bad_job("submission has no steps".into()));
        }
        for (i, step) in self.steps.iter().enumerate() {
            if step.inputs.len() != step.kernel.inputs.len() {
                return Err(bad_job(format!(
                    "step {i} (`{}`) supplies {} inputs, spec declares {}",
                    step.kernel.name,
                    step.inputs.len(),
                    step.kernel.inputs.len()
                )));
            }
            for input in &step.inputs {
                if let StepInput::Step(j) = input {
                    if *j >= i {
                        return Err(bad_job(format!(
                            "step {i} reads step {j}: steps may only read earlier steps"
                        )));
                    }
                }
            }
        }
        for &r in &self.read {
            if r >= self.steps.len() {
                return Err(bad_job(format!("readback of nonexistent step {r}")));
            }
        }
        Ok(())
    }
}

/// Results of a [`Submission`]: one `Vec<f32>` per step marked for
/// readback (`None` for unread steps).
#[derive(Debug, Clone)]
pub struct BatchResult {
    outputs: Vec<Option<Vec<f32>>>,
}

impl BatchResult {
    /// The readback of step `index`, if that step was marked.
    pub fn output(&self, index: usize) -> Option<&[f32]> {
        self.outputs.get(index).and_then(|o| o.as_deref())
    }

    /// Consumes the result into per-step optional outputs.
    pub fn into_outputs(self) -> Vec<Option<Vec<f32>>> {
        self.outputs
    }
}

// ---- handles -------------------------------------------------------------

struct HandleState<T> {
    slot: Mutex<Option<Result<T, ComputeError>>>,
    cv: Condvar,
}

/// A typed future for a submitted job: the worker fulfils it, the caller
/// blocks on [`JobHandle::wait`] (or polls [`JobHandle::is_finished`]).
pub struct JobHandle<T> {
    state: Arc<HandleState<T>>,
}

impl<T> JobHandle<T> {
    fn new() -> (JobHandle<T>, Arc<HandleState<T>>) {
        let state = Arc::new(HandleState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        (
            JobHandle {
                state: Arc::clone(&state),
            },
            state,
        )
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    ///
    /// Whatever the dispatch produced on the worker (bad bindings, GL or
    /// shader errors), or an engine-shutdown error if the pool stopped
    /// before running the job.
    pub fn wait(self) -> Result<T, ComputeError> {
        let mut slot = self.state.slot.lock().expect("job handle poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.cv.wait(slot).expect("job handle poisoned");
        }
    }

    /// Whether a result is ready (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.state
            .slot
            .lock()
            .expect("job handle poisoned")
            .is_some()
    }
}

fn fulfil<T>(state: &HandleState<T>, result: Result<T, ComputeError>) {
    *state.slot.lock().expect("job handle poisoned") = Some(result);
    state.cv.notify_all();
}

// ---- engine --------------------------------------------------------------

/// How worker contexts cache programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// One process-wide [`SharedProgramCache`] behind every worker: each
    /// distinct kernel links exactly once per process.
    #[default]
    Shared,
    /// Workers keep only their per-context caches — every worker relinks
    /// every kernel it sees. Exists for the `a10` ablation; N workers
    /// pay N× the link cost.
    PerContext,
}

enum Task {
    Single(Job, Arc<HandleState<Vec<f32>>>),
    Batch(Submission, Arc<HandleState<BatchResult>>),
}

impl Task {
    /// Fulfils the task's handle with an error — used when no worker
    /// will ever execute it, so `wait()` cannot hang.
    fn abort(self, message: &str) {
        match self {
            Task::Single(_, handle) => fulfil(&handle, Err(bad_job(message.into()))),
            Task::Batch(_, handle) => fulfil(&handle, Err(bad_job(message.into()))),
        }
    }
}

struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
    /// Workers still in their serve loop. If this reaches zero while
    /// tasks remain (every worker retired after a panic), the retiring
    /// worker aborts the leftovers instead of leaving waiters hanging.
    live_workers: usize,
}

struct EngineShared {
    queue: Mutex<QueueState>,
    cv: Condvar,
}

/// Configuration for an [`Engine`]; obtained from [`Engine::builder`].
pub struct EngineBuilder {
    workers: usize,
    width: u32,
    height: u32,
    limits: Option<Limits>,
    dispatch: Option<Dispatch>,
    cache_policy: CachePolicy,
    cache: Option<Arc<SharedProgramCache>>,
}

impl EngineBuilder {
    /// Number of worker contexts/threads (default 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Screen size of each worker context (default 256×256); bounds the
    /// largest job output.
    pub fn screen(mut self, width: u32, height: u32) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Driver limits for each worker context.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Per-draw rasteriser dispatch inside each worker. Defaults to the
    /// `GPES_TEST_DISPATCH` environment override when set, otherwise
    /// [`Dispatch::Serial`]: engine parallelism comes from the worker
    /// pool, and oversubscribing cores with band threads × workers slows
    /// serving down.
    pub fn dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = Some(dispatch);
        self
    }

    /// Selects the [`CachePolicy`] (default [`CachePolicy::Shared`]).
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Supplies an existing shared cache (implies
    /// [`CachePolicy::Shared`]) — lets several engines, or an engine and
    /// direct-dispatch contexts, share one set of linked programs.
    pub fn shared_cache(mut self, cache: Arc<SharedProgramCache>) -> Self {
        self.cache = Some(cache);
        self.cache_policy = CachePolicy::Shared;
        self
    }

    /// Builds the engine: creates the worker contexts (so configuration
    /// errors surface here, on the caller's thread) and starts the pool.
    ///
    /// # Errors
    ///
    /// Context-creation failures (e.g. a screen size beyond the limits).
    pub fn build(self) -> Result<Engine, ComputeError> {
        let cache = match self.cache_policy {
            CachePolicy::Shared => Some(
                self.cache
                    .unwrap_or_else(|| Arc::new(SharedProgramCache::new())),
            ),
            CachePolicy::PerContext => None,
        };
        let dispatch = self
            .dispatch
            .or_else(Dispatch::from_env)
            .unwrap_or(Dispatch::Serial);
        let config = WorkerConfig {
            width: self.width,
            height: self.height,
            limits: self.limits,
            dispatch,
            cache: cache.clone(),
        };
        let mut contexts = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            contexts.push(config.make_context()?);
        }
        let shared = Arc::new(EngineShared {
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
                live_workers: self.workers,
            }),
            cv: Condvar::new(),
        });
        let worker_stats: Arc<Vec<Mutex<ContextStats>>> = Arc::new(
            (0..self.workers)
                .map(|_| Mutex::new(ContextStats::default()))
                .collect(),
        );
        let mut handles = Vec::with_capacity(self.workers);
        for (index, cc) in contexts.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&worker_stats);
            let config = config.clone();
            handles.push(std::thread::spawn(move || {
                worker_main(cc, config, shared, stats, index)
            }));
        }
        Ok(Engine {
            shared,
            workers: handles,
            cache,
            worker_stats,
        })
    }
}

/// The serving engine: a queue of [`Job`]s/[`Submission`]s drained by a
/// pool of worker compute contexts behind one shared program cache. See
/// the [module docs](crate::serve) for the architecture.
pub struct Engine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
    cache: Option<Arc<SharedProgramCache>>,
    worker_stats: Arc<Vec<Mutex<ContextStats>>>,
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            workers: 1,
            width: 256,
            height: 256,
            limits: None,
            dispatch: None,
            cache_policy: CachePolicy::default(),
            cache: None,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The process-wide program cache, when the policy is
    /// [`CachePolicy::Shared`].
    pub fn cache(&self) -> Option<&Arc<SharedProgramCache>> {
        self.cache.as_ref()
    }

    /// Snapshot of each worker's [`ContextStats`] (updated after every
    /// completed task).
    pub fn worker_stats(&self) -> Vec<ContextStats> {
        self.worker_stats
            .iter()
            .map(|s| *s.lock().expect("worker stats poisoned"))
            .collect()
    }

    /// Programs linked process-wide on behalf of this engine: the shared
    /// cache's link count, or (per-context policy) the sum of worker
    /// links. The number the `a10` gate holds constant as workers scale.
    pub fn programs_linked(&self) -> u64 {
        match &self.cache {
            Some(cache) => cache.stats().links,
            None => self.worker_stats().iter().map(|s| s.programs_linked).sum(),
        }
    }

    /// Enqueues a single-kernel job.
    ///
    /// # Errors
    ///
    /// Validation errors (input arity) surface here; execution errors
    /// surface on the handle.
    pub fn submit(&self, job: Job) -> Result<JobHandle<Vec<f32>>, ComputeError> {
        job.validate()?;
        let (handle, state) = JobHandle::new();
        self.enqueue(Task::Single(job, state))?;
        Ok(handle)
    }

    /// Enqueues a multi-kernel DAG as one unit of work.
    ///
    /// # Errors
    ///
    /// Validation errors (arity, forward references, bad readback marks)
    /// surface here; execution errors surface on the handle.
    pub fn submit_batch(
        &self,
        submission: Submission,
    ) -> Result<JobHandle<BatchResult>, ComputeError> {
        submission.validate()?;
        let (handle, state) = JobHandle::new();
        self.enqueue(Task::Batch(submission, state))?;
        Ok(handle)
    }

    fn enqueue(&self, task: Task) -> Result<(), ComputeError> {
        let mut queue = self.shared.queue.lock().expect("engine queue poisoned");
        if queue.shutdown {
            return Err(bad_job("engine is shut down".into()));
        }
        if queue.live_workers == 0 {
            return Err(bad_job("engine has no live workers".into()));
        }
        queue.tasks.push_back(task);
        drop(queue);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Stops accepting work, drains the queue and joins every worker.
    /// (Dropping the engine does the same.)
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("engine queue poisoned");
            queue.shutdown = true;
        }
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---- worker --------------------------------------------------------------

/// Everything needed to (re)create one worker's context — kept so a
/// worker can replace its context after a panicking job rather than keep
/// serving from state a panic may have left half-updated.
#[derive(Clone)]
struct WorkerConfig {
    width: u32,
    height: u32,
    limits: Option<Limits>,
    dispatch: Dispatch,
    cache: Option<Arc<SharedProgramCache>>,
}

impl WorkerConfig {
    fn make_context(&self) -> Result<ComputeContext, ComputeError> {
        let mut cc = match &self.limits {
            Some(limits) => ComputeContext::with_limits(self.width, self.height, limits.clone())?,
            None => ComputeContext::new(self.width, self.height)?,
        };
        cc.set_dispatch(self.dispatch);
        if let Some(cache) = &self.cache {
            cc.set_shared_program_cache(Arc::clone(cache));
        }
        Ok(cc)
    }
}

/// Runs `f` with the worker context, converting a panic into an error so
/// the caller's [`JobHandle::wait`] never deadlocks. Returns whether the
/// task panicked (⇒ the context must be replaced: a panic can unwind out
/// of the middle of a draw, leaving context state half-updated).
fn run_shielded<T>(
    cc: &mut ComputeContext,
    f: impl FnOnce(&mut ComputeContext) -> Result<T, ComputeError>,
) -> (Result<T, ComputeError>, bool) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(cc))) {
        Ok(result) => (result, false),
        Err(_) => (
            Err(bad_job(
                "engine worker panicked while serving this job".into(),
            )),
            true,
        ),
    }
}

/// Marks this worker as out of the serve loop. If it was the last one
/// and tasks remain (every worker retired after a panic), the leftovers
/// are aborted so their `wait()` calls return instead of hanging.
fn retire_worker(shared: &EngineShared) {
    let leftovers: Vec<Task> = {
        let mut queue = shared.queue.lock().expect("engine queue poisoned");
        queue.live_workers = queue.live_workers.saturating_sub(1);
        if queue.live_workers == 0 {
            queue.tasks.drain(..).collect()
        } else {
            Vec::new()
        }
    };
    for task in leftovers {
        task.abort("engine has no live workers");
    }
}

/// A pending fulfilment: the task's result, held until after the worker
/// has published its stats so a caller returning from `wait()` observes
/// stats that already include its job.
enum Completed {
    Single(Arc<HandleState<Vec<f32>>>, Result<Vec<f32>, ComputeError>),
    Batch(
        Arc<HandleState<BatchResult>>,
        Result<BatchResult, ComputeError>,
    ),
}

impl Completed {
    fn fulfil(self) {
        match self {
            Completed::Single(handle, result) => fulfil(&handle, result),
            Completed::Batch(handle, result) => fulfil(&handle, result),
        }
    }
}

fn worker_main(
    mut cc: ComputeContext,
    config: WorkerConfig,
    shared: Arc<EngineShared>,
    stats: Arc<Vec<Mutex<ContextStats>>>,
    index: usize,
) {
    // Counters accumulated by contexts this worker already retired (after
    // a panicking job); published stats are always `base + current`, so a
    // context swap never zeroes the worker's visible accounting.
    let mut base = ContextStats::default();
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("engine queue poisoned");
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    drop(queue);
                    retire_worker(&shared);
                    return;
                }
                queue = shared.cv.wait(queue).expect("engine queue poisoned");
            }
        };
        let (completed, panicked) = match task {
            Task::Single(job, handle) => {
                let (result, panicked) = run_shielded(&mut cc, |cc| run_job(cc, &job));
                (Completed::Single(handle, result), panicked)
            }
            Task::Batch(submission, handle) => {
                let (result, panicked) =
                    run_shielded(&mut cc, |cc| run_submission(cc, &submission));
                (Completed::Batch(handle, result), panicked)
            }
        };
        if panicked {
            // Fresh context, same wiring; if even that fails the worker
            // retires (remaining queue entries drain to other workers,
            // or are aborted if this was the last one).
            base = base.merged(&cc.stats());
            match config.make_context() {
                Ok(fresh) => cc = fresh,
                Err(_) => {
                    completed.fulfil();
                    retire_worker(&shared);
                    return;
                }
            }
        }
        // Publish stats (and drain the per-request pass log) BEFORE
        // fulfilling the handle: a caller returning from `wait()` must
        // observe worker stats that include its job.
        cc.take_pass_log();
        *stats[index].lock().expect("worker stats poisoned") = base.merged(&cc.stats());
        completed.fulfil();
    }
}

/// Executes one job exactly as a direct caller would: upload inputs,
/// build (cache-hit) the kernel, dispatch with overrides, read back
/// through the FBO path, recycle every texture.
fn run_job(cc: &mut ComputeContext, job: &Job) -> Result<Vec<f32>, ComputeError> {
    let mut arrays = Vec::with_capacity(job.inputs.len());
    for data in &job.inputs {
        arrays.push(cc.upload(data.as_slice())?);
    }
    let result = dispatch_spec(cc, &job.kernel, &arrays, &job.uniforms);
    for array in arrays {
        cc.recycle_array(array);
    }
    let out = result?;
    let host = cc.read_array(&out, Readback::DirectFbo);
    cc.recycle_array(out);
    host
}

/// Executes a submission's steps in order on one worker, keeping step
/// outputs on the GPU for later steps, reading back only marked steps.
fn run_submission(
    cc: &mut ComputeContext,
    submission: &Submission,
) -> Result<BatchResult, ComputeError> {
    let n = submission.steps.len();
    let mut step_outputs: Vec<Option<GpuArray<f32>>> = (0..n).map(|_| None).collect();
    let mut uploads: Vec<GpuArray<f32>> = Vec::new();
    let mut failure: Option<ComputeError> = None;
    for (i, step) in submission.steps.iter().enumerate() {
        let mut arrays: Vec<GpuArray<f32>> = Vec::with_capacity(step.inputs.len());
        let mut ok = true;
        for input in &step.inputs {
            let array = match input {
                StepInput::Data(data) => match cc.upload(data.as_slice()) {
                    Ok(array) => {
                        // Track the upload for recycling; the borrow the
                        // kernel needs is the (Copy) texture + layout pair.
                        uploads.push(array);
                        array
                    }
                    Err(e) => {
                        failure = Some(e);
                        ok = false;
                        break;
                    }
                },
                StepInput::Step(j) => match &step_outputs[*j] {
                    Some(array) => *array,
                    None => {
                        failure = Some(bad_job(format!("step {i} reads failed step {j}")));
                        ok = false;
                        break;
                    }
                },
            };
            arrays.push(array);
        }
        if !ok {
            break;
        }
        match dispatch_spec(cc, &step.kernel, &arrays, &step.uniforms) {
            Ok(out) => step_outputs[i] = Some(out),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }

    let mut outputs: Vec<Option<Vec<f32>>> = (0..n).map(|_| None).collect();
    if failure.is_none() {
        let read: Vec<usize> = if submission.read.is_empty() {
            vec![n - 1]
        } else {
            submission.read.clone()
        };
        for &r in &read {
            match step_outputs[r].as_ref() {
                Some(array) => match cc.read_array(array, Readback::DirectFbo) {
                    Ok(host) => outputs[r] = Some(host),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                },
                None => {
                    failure = Some(bad_job(format!("readback of unexecuted step {r}")));
                    break;
                }
            }
        }
    }

    for array in uploads {
        cc.recycle_array(array);
    }
    for array in step_outputs.into_iter().flatten() {
        cc.recycle_array(array);
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(BatchResult { outputs }),
    }
}

/// Builds the spec's kernel over `arrays` and dispatches it once with the
/// given uniform overrides.
fn dispatch_spec(
    cc: &mut ComputeContext,
    spec: &KernelSpec,
    arrays: &[GpuArray<f32>],
    uniforms: &[(String, Value)],
) -> Result<GpuArray<f32>, ComputeError> {
    // Arity is validated inside `KernelSpec::build`.
    let kernel = spec.build(cc, arrays)?;
    let mut bindings = Bindings::new();
    for (name, value) in uniforms {
        bindings.set_uniform(name, value.clone());
    }
    cc.run_to_array_with(&kernel, &bindings)
}
