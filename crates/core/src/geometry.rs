//! §III workarounds 1 & 2: the screen-covering geometry and the
//! pass-through vertex shader.
//!
//! ES 2 forces both pipeline stages to be programmed (workaround #1), so
//! every GPGPU pass uses the same trivial vertex shader; and ES 2 has no
//! quad primitive (workaround #2), so the screen-covering "quad" is two
//! triangles sharing a diagonal. The rasteriser's top-left fill rule
//! guarantees the diagonal is shaded exactly once.

/// Vertex positions of a clip-space-covering quad as two `GL_TRIANGLES`
/// (12 floats = 6 vertices × vec2).
pub const FULLSCREEN_QUAD: [f32; 12] = [
    -1.0, -1.0, //
    1.0, -1.0, //
    1.0, 1.0, //
    -1.0, -1.0, //
    1.0, 1.0, //
    -1.0, 1.0, //
];

/// Number of vertices in [`FULLSCREEN_QUAD`].
pub const FULLSCREEN_QUAD_VERTICES: usize = 6;

/// The attribute name the pass-through vertex shader consumes.
pub const POSITION_ATTRIBUTE: &str = "a_position";

/// The pass-through vertex shader (workaround #1).
///
/// "The only use of this pass-through vertex shader is to pass all the
/// required parameters (varyings) to the fragment shader" — here just the
/// clip position; kernels address data through `gl_FragCoord`, so no
/// varying is strictly required, but a `v_uv` convenience varying is
/// still emitted for copy shaders.
pub fn passthrough_vertex_shader() -> String {
    format!(
        "attribute vec2 {POSITION_ATTRIBUTE};\n\
         varying vec2 v_uv;\n\
         void main() {{\n\
         \x20   v_uv = {POSITION_ATTRIBUTE} * 0.5 + 0.5;\n\
         \x20   gl_Position = vec4({POSITION_ATTRIBUTE}, 0.0, 1.0);\n\
         }}\n"
    )
}

/// A pass-through *fragment* shader that copies a texture to the target —
/// the paper's first readback strategy for workaround #7.
pub fn copy_fragment_shader() -> String {
    "precision highp float;\n\
     varying vec2 v_uv;\n\
     uniform sampler2D u_src;\n\
     void main() { gl_FragColor = texture2D(u_src, v_uv); }\n"
        .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpes_glsl::{compile, ShaderKind};

    #[test]
    fn quad_covers_clip_space() {
        // Both triangles together span x,y ∈ [-1, 1].
        let xs: Vec<f32> = FULLSCREEN_QUAD.iter().step_by(2).copied().collect();
        let ys: Vec<f32> = FULLSCREEN_QUAD.iter().skip(1).step_by(2).copied().collect();
        assert_eq!(xs.iter().cloned().fold(f32::MAX, f32::min), -1.0);
        assert_eq!(xs.iter().cloned().fold(f32::MIN, f32::max), 1.0);
        assert_eq!(ys.iter().cloned().fold(f32::MAX, f32::min), -1.0);
        assert_eq!(ys.iter().cloned().fold(f32::MIN, f32::max), 1.0);
        assert_eq!(FULLSCREEN_QUAD.len(), FULLSCREEN_QUAD_VERTICES * 2);
    }

    #[test]
    fn passthrough_vertex_shader_compiles() {
        let shader = compile(ShaderKind::Vertex, &passthrough_vertex_shader())
            .expect("pass-through VS compiles");
        assert_eq!(shader.interface.attributes.len(), 1);
        assert_eq!(shader.interface.varyings.len(), 1);
    }

    #[test]
    fn copy_fragment_shader_compiles() {
        let shader =
            compile(ShaderKind::Fragment, &copy_fragment_shader()).expect("copy FS compiles");
        assert_eq!(shader.interface.uniforms.len(), 1);
    }
}
