//! GPU-resident arrays and matrices: typed handles over RGBA8/LUMINANCE8
//! textures carrying packed numeric data.

use crate::addressing::ArrayLayout;
use crate::codec::{self, ScalarType};
use gpes_gles2::{TexFormat, TextureId};
use std::marker::PhantomData;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for i8 {}
    impl Sealed for u16 {}
    impl Sealed for i16 {}
    impl Sealed for u32 {}
    impl Sealed for i32 {}
    impl Sealed for f32 {}
}

/// Scalar element types that can travel through the ES 2 texture path.
///
/// This trait is sealed: the §IV formats (char, short and int variants
/// plus `f32`) are exactly the supported set.
pub trait GpuScalar: sealed::Sealed + Copy + PartialEq + std::fmt::Debug + Send + Sync {
    /// The runtime tag for this element type.
    const SCALAR: ScalarType;

    /// Encodes a slice into upload texel bytes (1 or 4 bytes per element,
    /// padded with zeros to `texel_count` texels).
    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8>;

    /// Decodes elements from RGBA8 framebuffer bytes (always 4 bytes per
    /// pixel; byte-sized elements live in the R channel).
    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self>;

    /// The upload texture format for this element type.
    fn tex_format() -> TexFormat {
        if Self::SCALAR.uses_rgba() {
            TexFormat::Rgba8
        } else {
            TexFormat::Luminance8
        }
    }
}

impl GpuScalar for u8 {
    const SCALAR: ScalarType = ScalarType::U8;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::ubyte::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::ubyte::decode_slice(bytes, len)
    }
}

impl GpuScalar for i8 {
    const SCALAR: ScalarType = ScalarType::I8;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::sbyte::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::sbyte::decode_slice(bytes, len)
    }
}

impl GpuScalar for u16 {
    const SCALAR: ScalarType = ScalarType::U16;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::ushort::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::ushort::decode_slice(bytes, len)
    }

    fn tex_format() -> TexFormat {
        TexFormat::LuminanceAlpha8
    }
}

impl GpuScalar for i16 {
    const SCALAR: ScalarType = ScalarType::I16;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::sshort::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::sshort::decode_slice(bytes, len)
    }

    fn tex_format() -> TexFormat {
        TexFormat::LuminanceAlpha8
    }
}

impl GpuScalar for u32 {
    const SCALAR: ScalarType = ScalarType::U32;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::uint::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::uint::decode_slice(bytes, len)
    }
}

impl GpuScalar for i32 {
    const SCALAR: ScalarType = ScalarType::I32;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::sint::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::sint::decode_slice(bytes, len)
    }
}

impl GpuScalar for f32 {
    const SCALAR: ScalarType = ScalarType::F32;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::float32::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::float32::decode_slice(bytes, len)
    }
}

/// A 1-D array resident in GPU texture memory.
///
/// Created by [`crate::ComputeContext::upload`] or as a kernel output;
/// the element type is tracked statically so a `GpuArray<f32>` cannot be
/// read back as integers by accident (C-NEWTYPE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuArray<T: GpuScalar> {
    pub(crate) texture: TextureId,
    pub(crate) layout: ArrayLayout,
    pub(crate) _elem: PhantomData<T>,
}

impl<T: GpuScalar> GpuArray<T> {
    pub(crate) fn new(texture: TextureId, layout: ArrayLayout) -> Self {
        GpuArray {
            texture,
            layout,
            _elem: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.layout.len
    }

    /// Whether the array is empty (never true for live arrays).
    pub fn is_empty(&self) -> bool {
        self.layout.len == 0
    }

    /// The texture layout backing this array.
    pub fn layout(&self) -> ArrayLayout {
        self.layout
    }

    /// The backing texture handle (for interop with raw GL calls).
    pub fn texture(&self) -> TextureId {
        self.texture
    }

    /// The runtime scalar tag.
    pub fn scalar(&self) -> ScalarType {
        T::SCALAR
    }
}

/// An untyped RGBA8 texel buffer resident in GPU texture memory.
///
/// Used with [`crate::KernelBuilder::input_texels`] /
/// [`crate::KernelBuilder::output_texels`] by kernels that define their
/// own texel interpretation — packed multi-value layouts, complex-number
/// pairs, or related-work formats such as
/// [`crate::codec::strzodka16`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuTexels {
    pub(crate) texture: TextureId,
    pub(crate) layout: ArrayLayout,
}

impl GpuTexels {
    pub(crate) fn new(texture: TextureId, layout: ArrayLayout) -> Self {
        GpuTexels { texture, layout }
    }

    /// Number of texels.
    pub fn len(&self) -> usize {
        self.layout.texel_count()
    }

    /// Whether the buffer is empty (never true for live buffers).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The texture layout backing this buffer.
    pub fn layout(&self) -> ArrayLayout {
        self.layout
    }

    /// The backing texture handle.
    pub fn texture(&self) -> TextureId {
        self.texture
    }
}

impl<T: GpuScalar> GpuArray<T> {
    /// Reinterprets the array's backing texture as raw texels (no copy).
    pub fn as_texels(&self) -> GpuTexels {
        GpuTexels {
            texture: self.texture,
            layout: self.layout,
        }
    }

    /// Views this array as a `rows × cols` matrix (no copy). The backing
    /// texture must already have exactly that shape — true for any array
    /// produced by a grid-output kernel.
    ///
    /// # Errors
    ///
    /// `BadKernel` when the texture layout is not `rows × cols`.
    pub fn as_matrix(&self, rows: u32, cols: u32) -> Result<GpuMatrix<T>, crate::ComputeError> {
        if self.layout.width != cols || self.layout.height != rows {
            return Err(crate::ComputeError::bad_kernel(format!(
                "array laid out {}x{} cannot be viewed as a {rows}x{cols} matrix",
                self.layout.height, self.layout.width
            )));
        }
        Ok(GpuMatrix {
            texture: self.texture,
            layout: self.layout,
            _elem: PhantomData,
        })
    }
}

impl<T: GpuScalar> GpuMatrix<T> {
    /// Views this matrix as a linear array in row-major order (no copy).
    pub fn as_array(&self) -> GpuArray<T> {
        GpuArray {
            texture: self.texture,
            layout: self.layout,
            _elem: PhantomData,
        }
    }
}

/// A row-major 2-D matrix resident in GPU texture memory
/// (texel `(col, row)` holds element `(row, col)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuMatrix<T: GpuScalar> {
    pub(crate) texture: TextureId,
    pub(crate) layout: ArrayLayout,
    pub(crate) _elem: PhantomData<T>,
}

impl<T: GpuScalar> GpuMatrix<T> {
    pub(crate) fn new(texture: TextureId, layout: ArrayLayout) -> Self {
        GpuMatrix {
            texture,
            layout,
            _elem: PhantomData,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.layout.height
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.layout.width
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.layout.len
    }

    /// Whether the matrix is empty (never true for live matrices).
    pub fn is_empty(&self) -> bool {
        self.layout.len == 0
    }

    /// The texture layout backing this matrix.
    pub fn layout(&self) -> ArrayLayout {
        self.layout
    }

    /// The backing texture handle.
    pub fn texture(&self) -> TextureId {
        self.texture
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_encode_pads_and_decodes_r_channel() {
        let enc = u8::encode_texels(&[1, 2, 3], 5);
        assert_eq!(enc, vec![1, 2, 3, 0, 0]);
        let fb = vec![9, 0, 0, 255, 8, 0, 0, 255, 7, 0, 0, 255];
        assert_eq!(u8::decode_framebuffer(&fb, 2), vec![9, 8]);
    }

    #[test]
    fn i8_two_complement_texels() {
        let enc = i8::encode_texels(&[-1, 2], 2);
        assert_eq!(enc, vec![255, 2]);
        let fb = vec![255, 0, 0, 0, 128, 0, 0, 0];
        assert_eq!(i8::decode_framebuffer(&fb, 2), vec![-1, -128]);
    }

    #[test]
    fn u32_round_trip_through_texels() {
        let values = [0u32, 1, 0xDEAD, 0x00C0FFEE];
        let enc = u32::encode_texels(&values, 4);
        assert_eq!(enc.len(), 16);
        let dec = u32::decode_framebuffer(&enc, 4);
        assert_eq!(dec, values);
    }

    #[test]
    fn f32_round_trip_through_texels() {
        let values = [0.0f32, 1.5, -2.25e7, f32::MIN_POSITIVE];
        let enc = f32::encode_texels(&values, 4);
        let dec = f32::decode_framebuffer(&enc, 4);
        assert_eq!(dec, values);
    }

    #[test]
    fn formats_per_scalar() {
        assert_eq!(u8::tex_format(), TexFormat::Luminance8);
        assert_eq!(i8::tex_format(), TexFormat::Luminance8);
        assert_eq!(u16::tex_format(), TexFormat::LuminanceAlpha8);
        assert_eq!(i16::tex_format(), TexFormat::LuminanceAlpha8);
        assert_eq!(f32::tex_format(), TexFormat::Rgba8);
        assert_eq!(i32::tex_format(), TexFormat::Rgba8);
    }

    #[test]
    fn u16_round_trip_through_texels() {
        let values = [0u16, 1, 255, 256, 0x1234, u16::MAX];
        let enc = u16::encode_texels(&values, 6);
        assert_eq!(enc.len(), 12); // 2 bytes per LUMINANCE_ALPHA texel
        assert_eq!(&enc[..2], &[0, 0]);
        assert_eq!(&enc[8..10], &[0x34, 0x12]);
        // Framebuffer bytes place the pair in R and A.
        let fb: Vec<u8> = values
            .iter()
            .flat_map(|v| {
                let b = v.to_le_bytes();
                [b[0], 0, 0, b[1]]
            })
            .collect();
        assert_eq!(u16::decode_framebuffer(&fb, 6), values);
    }

    #[test]
    fn i16_round_trip_through_texels() {
        let values = [0i16, -1, i16::MIN, i16::MAX, -12345];
        let enc = i16::encode_texels(&values, 5);
        assert_eq!(&enc[2..4], &[0xFF, 0xFF]);
        let fb: Vec<u8> = values
            .iter()
            .flat_map(|v| {
                let b = v.to_le_bytes();
                [b[0], 0, 0, b[1]]
            })
            .collect();
        assert_eq!(i16::decode_framebuffer(&fb, 5), values);
    }

    #[test]
    fn array_accessors() {
        let layout = ArrayLayout {
            len: 10,
            width: 4,
            height: 3,
        };
        let arr: GpuArray<f32> = GpuArray::new(TextureId(7), layout);
        assert_eq!(arr.len(), 10);
        assert!(!arr.is_empty());
        assert_eq!(arr.scalar(), ScalarType::F32);
        assert_eq!(arr.texture(), TextureId(7));
    }

    #[test]
    fn matrix_accessors() {
        let layout = ArrayLayout {
            len: 12,
            width: 4,
            height: 3,
        };
        let m: GpuMatrix<i32> = GpuMatrix::new(TextureId(2), layout);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
    }
}
