//! GPU-resident arrays and matrices: typed handles over RGBA8/LUMINANCE8
//! textures carrying packed numeric data.

use crate::addressing::ArrayLayout;
use crate::codec::{self, ScalarType};
use gpes_gles2::{TexFormat, TextureId};
use std::marker::PhantomData;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for i8 {}
    impl Sealed for u16 {}
    impl Sealed for i16 {}
    impl Sealed for u32 {}
    impl Sealed for i32 {}
    impl Sealed for f32 {}
}

/// Scalar element types that can travel through the ES 2 texture path.
///
/// This trait is sealed: the §IV formats (char, short and int variants
/// plus `f32`) are exactly the supported set.
pub trait GpuScalar: sealed::Sealed + Copy + PartialEq + std::fmt::Debug + Send + Sync {
    /// The runtime tag for this element type.
    const SCALAR: ScalarType;

    /// Encodes a slice into upload texel bytes (1 or 4 bytes per element,
    /// padded with zeros to `texel_count` texels).
    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8>;

    /// Decodes elements from RGBA8 framebuffer bytes (always 4 bytes per
    /// pixel; byte-sized elements live in the R channel).
    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self>;

    /// The upload texture format for this element type.
    fn tex_format() -> TexFormat {
        if Self::SCALAR.uses_rgba() {
            TexFormat::Rgba8
        } else {
            TexFormat::Luminance8
        }
    }
}

impl GpuScalar for u8 {
    const SCALAR: ScalarType = ScalarType::U8;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::ubyte::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::ubyte::decode_slice(bytes, len)
    }
}

impl GpuScalar for i8 {
    const SCALAR: ScalarType = ScalarType::I8;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::sbyte::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::sbyte::decode_slice(bytes, len)
    }
}

impl GpuScalar for u16 {
    const SCALAR: ScalarType = ScalarType::U16;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::ushort::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::ushort::decode_slice(bytes, len)
    }

    fn tex_format() -> TexFormat {
        TexFormat::LuminanceAlpha8
    }
}

impl GpuScalar for i16 {
    const SCALAR: ScalarType = ScalarType::I16;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::sshort::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::sshort::decode_slice(bytes, len)
    }

    fn tex_format() -> TexFormat {
        TexFormat::LuminanceAlpha8
    }
}

impl GpuScalar for u32 {
    const SCALAR: ScalarType = ScalarType::U32;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::uint::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::uint::decode_slice(bytes, len)
    }
}

impl GpuScalar for i32 {
    const SCALAR: ScalarType = ScalarType::I32;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::sint::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::sint::decode_slice(bytes, len)
    }
}

impl GpuScalar for f32 {
    const SCALAR: ScalarType = ScalarType::F32;

    fn encode_texels(data: &[Self], texel_count: usize) -> Vec<u8> {
        codec::float32::encode_slice(data, texel_count)
    }

    fn decode_framebuffer(bytes: &[u8], len: usize) -> Vec<Self> {
        codec::float32::decode_slice(bytes, len)
    }
}

/// A 1-D array resident in GPU texture memory.
///
/// Created by [`crate::ComputeContext::upload`] or as a kernel output;
/// the element type is tracked statically so a `GpuArray<f32>` cannot be
/// read back as integers by accident (C-NEWTYPE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuArray<T: GpuScalar> {
    pub(crate) texture: TextureId,
    pub(crate) layout: ArrayLayout,
    pub(crate) _elem: PhantomData<T>,
}

impl<T: GpuScalar> GpuArray<T> {
    pub(crate) fn new(texture: TextureId, layout: ArrayLayout) -> Self {
        GpuArray {
            texture,
            layout,
            _elem: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.layout.len
    }

    /// Whether the array is empty (never true for live arrays).
    pub fn is_empty(&self) -> bool {
        self.layout.len == 0
    }

    /// The texture layout backing this array.
    pub fn layout(&self) -> ArrayLayout {
        self.layout
    }

    /// The backing texture handle (for interop with raw GL calls).
    pub fn texture(&self) -> TextureId {
        self.texture
    }

    /// The runtime scalar tag.
    pub fn scalar(&self) -> ScalarType {
        T::SCALAR
    }
}

/// An untyped RGBA8 texel buffer resident in GPU texture memory.
///
/// Used with [`crate::KernelBuilder::input_texels`] /
/// [`crate::KernelBuilder::output_texels`] by kernels that define their
/// own texel interpretation — packed multi-value layouts, complex-number
/// pairs, or related-work formats such as
/// [`crate::codec::strzodka16`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuTexels {
    pub(crate) texture: TextureId,
    pub(crate) layout: ArrayLayout,
}

impl GpuTexels {
    pub(crate) fn new(texture: TextureId, layout: ArrayLayout) -> Self {
        GpuTexels { texture, layout }
    }

    /// Number of texels.
    pub fn len(&self) -> usize {
        self.layout.texel_count()
    }

    /// Whether the buffer is empty (never true for live buffers).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The texture layout backing this buffer.
    pub fn layout(&self) -> ArrayLayout {
        self.layout
    }

    /// The backing texture handle.
    pub fn texture(&self) -> TextureId {
        self.texture
    }
}

impl<T: GpuScalar> GpuArray<T> {
    /// Reinterprets the array's backing texture as raw texels (no copy).
    pub fn as_texels(&self) -> GpuTexels {
        GpuTexels {
            texture: self.texture,
            layout: self.layout,
        }
    }

    /// Views this array as a `rows × cols` matrix (no copy). The backing
    /// texture must already have exactly that shape — true for any array
    /// produced by a grid-output kernel.
    ///
    /// # Errors
    ///
    /// `BadKernel` when the texture layout is not `rows × cols`.
    pub fn as_matrix(&self, rows: u32, cols: u32) -> Result<GpuMatrix<T>, crate::ComputeError> {
        if self.layout.width != cols || self.layout.height != rows {
            return Err(crate::ComputeError::bad_kernel(format!(
                "array laid out {}x{} cannot be viewed as a {rows}x{cols} matrix",
                self.layout.height, self.layout.width
            )));
        }
        Ok(GpuMatrix {
            texture: self.texture,
            layout: self.layout,
            _elem: PhantomData,
        })
    }
}

impl<T: GpuScalar> GpuMatrix<T> {
    /// Views this matrix as a linear array in row-major order (no copy).
    pub fn as_array(&self) -> GpuArray<T> {
        GpuArray {
            texture: self.texture,
            layout: self.layout,
            _elem: PhantomData,
        }
    }
}

/// A row-major 2-D matrix resident in GPU texture memory
/// (texel `(col, row)` holds element `(row, col)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuMatrix<T: GpuScalar> {
    pub(crate) texture: TextureId,
    pub(crate) layout: ArrayLayout,
    pub(crate) _elem: PhantomData<T>,
}

impl<T: GpuScalar> GpuMatrix<T> {
    pub(crate) fn new(texture: TextureId, layout: ArrayLayout) -> Self {
        GpuMatrix {
            texture,
            layout,
            _elem: PhantomData,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.layout.height
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.layout.width
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.layout.len
    }

    /// Whether the matrix is empty (never true for live matrices).
    pub fn is_empty(&self) -> bool {
        self.layout.len == 0
    }

    /// The texture layout backing this matrix.
    pub fn layout(&self) -> ArrayLayout {
        self.layout
    }

    /// The backing texture handle.
    pub fn texture(&self) -> TextureId {
        self.texture
    }
}

/// Host tensor data with a runtime scalar tag — the type-erased twin of
/// `Vec<T: GpuScalar>`, so serving-layer jobs and results can carry any
/// §IV codec format through one channel without a generic parameter on
/// every queue type. Quantized u8/i16 tensors (the CNNdroid/TFLite
/// mobile-inference formats) travel as themselves: no widening to f32 at
/// the host boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// Unsigned byte elements (LUMINANCE8 upload path).
    U8(Vec<u8>),
    /// Signed byte elements.
    I8(Vec<i8>),
    /// Unsigned short elements (LUMINANCE_ALPHA8 upload path).
    U16(Vec<u16>),
    /// Signed short elements.
    I16(Vec<i16>),
    /// Unsigned int elements (RGBA8, 4 bytes per texel).
    U32(Vec<u32>),
    /// Signed int elements.
    I32(Vec<i32>),
    /// IEEE-754 single floats (the default serving format).
    F32(Vec<f32>),
}

impl TensorData {
    /// The runtime scalar tag.
    pub fn scalar(&self) -> ScalarType {
        match self {
            TensorData::U8(_) => ScalarType::U8,
            TensorData::I8(_) => ScalarType::I8,
            TensorData::U16(_) => ScalarType::U16,
            TensorData::I16(_) => ScalarType::I16,
            TensorData::U32(_) => ScalarType::U32,
            TensorData::I32(_) => ScalarType::I32,
            TensorData::F32(_) => ScalarType::F32,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            TensorData::U8(v) => v.len(),
            TensorData::I8(v) => v.len(),
            TensorData::U16(v) => v.len(),
            TensorData::I16(v) => v.len(),
            TensorData::U32(v) => v.len(),
            TensorData::I32(v) => v.len(),
            TensorData::F32(v) => v.len(),
        }
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Host bytes held (element size × len) — the quantity resident-input
    /// quotas meter, so a u8 tensor costs a quarter of an f32 one.
    pub fn byte_len(&self) -> usize {
        let elem = match self {
            TensorData::U8(_) | TensorData::I8(_) => 1,
            TensorData::U16(_) | TensorData::I16(_) => 2,
            TensorData::U32(_) | TensorData::I32(_) | TensorData::F32(_) => 4,
        };
        elem * self.len()
    }

    /// An all-zero tensor of `len` elements tagged `scalar` — the
    /// serving layer's placeholder seed for typed pipeline buffers.
    pub fn zeros(scalar: ScalarType, len: usize) -> TensorData {
        match scalar {
            ScalarType::U8 => TensorData::U8(vec![0; len]),
            ScalarType::I8 => TensorData::I8(vec![0; len]),
            ScalarType::U16 => TensorData::U16(vec![0; len]),
            ScalarType::I16 => TensorData::I16(vec![0; len]),
            ScalarType::U32 => TensorData::U32(vec![0; len]),
            ScalarType::I32 => TensorData::I32(vec![0; len]),
            ScalarType::F32 => TensorData::F32(vec![0.0; len]),
        }
    }

    /// The f32 payload, when this is an f32 tensor.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            TensorData::F32(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// The u8 payload, when this is a u8 tensor.
    pub fn as_u8(&self) -> Option<&[u8]> {
        match self {
            TensorData::U8(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// The i16 payload, when this is an i16 tensor.
    pub fn as_i16(&self) -> Option<&[i16]> {
        match self {
            TensorData::I16(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// The u16 payload, when this is a u16 tensor.
    pub fn as_u16(&self) -> Option<&[u16]> {
        match self {
            TensorData::U16(v) => Some(v.as_slice()),
            _ => None,
        }
    }
}

impl From<Vec<u8>> for TensorData {
    fn from(v: Vec<u8>) -> TensorData {
        TensorData::U8(v)
    }
}

impl From<Vec<i8>> for TensorData {
    fn from(v: Vec<i8>) -> TensorData {
        TensorData::I8(v)
    }
}

impl From<Vec<u16>> for TensorData {
    fn from(v: Vec<u16>) -> TensorData {
        TensorData::U16(v)
    }
}

impl From<Vec<i16>> for TensorData {
    fn from(v: Vec<i16>) -> TensorData {
        TensorData::I16(v)
    }
}

impl From<Vec<u32>> for TensorData {
    fn from(v: Vec<u32>) -> TensorData {
        TensorData::U32(v)
    }
}

impl From<Vec<i32>> for TensorData {
    fn from(v: Vec<i32>) -> TensorData {
        TensorData::I32(v)
    }
}

impl From<Vec<f32>> for TensorData {
    fn from(v: Vec<f32>) -> TensorData {
        TensorData::F32(v)
    }
}

/// A GPU array whose element type is carried at runtime instead of in the
/// type system — the on-GPU twin of [`TensorData`]. Everything the typed
/// [`GpuArray<T>`] knows (texture, layout) plus the scalar tag, so the
/// serving worker can bind, chain and read back mixed-format buffers
/// through one code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnyGpuArray {
    pub(crate) texture: TextureId,
    pub(crate) layout: ArrayLayout,
    pub(crate) scalar: ScalarType,
}

impl AnyGpuArray {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.layout.len
    }

    /// Whether the array is empty (never true for live arrays).
    pub fn is_empty(&self) -> bool {
        self.layout.len == 0
    }

    /// The texture layout backing this array.
    pub fn layout(&self) -> ArrayLayout {
        self.layout
    }

    /// The backing texture handle.
    pub fn texture(&self) -> TextureId {
        self.texture
    }

    /// The runtime scalar tag.
    pub fn scalar(&self) -> ScalarType {
        self.scalar
    }

    /// Recovers the typed view; `None` when `T` is not the stored scalar.
    pub fn downcast<T: GpuScalar>(&self) -> Option<GpuArray<T>> {
        (self.scalar == T::SCALAR).then(|| GpuArray::new(self.texture, self.layout))
    }
}

impl<T: GpuScalar> From<GpuArray<T>> for AnyGpuArray {
    fn from(array: GpuArray<T>) -> AnyGpuArray {
        AnyGpuArray {
            texture: array.texture,
            layout: array.layout,
            scalar: T::SCALAR,
        }
    }
}

impl<T: GpuScalar> GpuArray<T> {
    /// Erases the static element type into a runtime-tagged handle.
    pub fn erase(&self) -> AnyGpuArray {
        AnyGpuArray::from(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_encode_pads_and_decodes_r_channel() {
        let enc = u8::encode_texels(&[1, 2, 3], 5);
        assert_eq!(enc, vec![1, 2, 3, 0, 0]);
        let fb = vec![9, 0, 0, 255, 8, 0, 0, 255, 7, 0, 0, 255];
        assert_eq!(u8::decode_framebuffer(&fb, 2), vec![9, 8]);
    }

    #[test]
    fn i8_two_complement_texels() {
        let enc = i8::encode_texels(&[-1, 2], 2);
        assert_eq!(enc, vec![255, 2]);
        let fb = vec![255, 0, 0, 0, 128, 0, 0, 0];
        assert_eq!(i8::decode_framebuffer(&fb, 2), vec![-1, -128]);
    }

    #[test]
    fn u32_round_trip_through_texels() {
        let values = [0u32, 1, 0xDEAD, 0x00C0FFEE];
        let enc = u32::encode_texels(&values, 4);
        assert_eq!(enc.len(), 16);
        let dec = u32::decode_framebuffer(&enc, 4);
        assert_eq!(dec, values);
    }

    #[test]
    fn f32_round_trip_through_texels() {
        let values = [0.0f32, 1.5, -2.25e7, f32::MIN_POSITIVE];
        let enc = f32::encode_texels(&values, 4);
        let dec = f32::decode_framebuffer(&enc, 4);
        assert_eq!(dec, values);
    }

    #[test]
    fn formats_per_scalar() {
        assert_eq!(u8::tex_format(), TexFormat::Luminance8);
        assert_eq!(i8::tex_format(), TexFormat::Luminance8);
        assert_eq!(u16::tex_format(), TexFormat::LuminanceAlpha8);
        assert_eq!(i16::tex_format(), TexFormat::LuminanceAlpha8);
        assert_eq!(f32::tex_format(), TexFormat::Rgba8);
        assert_eq!(i32::tex_format(), TexFormat::Rgba8);
    }

    #[test]
    fn u16_round_trip_through_texels() {
        let values = [0u16, 1, 255, 256, 0x1234, u16::MAX];
        let enc = u16::encode_texels(&values, 6);
        assert_eq!(enc.len(), 12); // 2 bytes per LUMINANCE_ALPHA texel
        assert_eq!(&enc[..2], &[0, 0]);
        assert_eq!(&enc[8..10], &[0x34, 0x12]);
        // Framebuffer bytes place the pair in R and A.
        let fb: Vec<u8> = values
            .iter()
            .flat_map(|v| {
                let b = v.to_le_bytes();
                [b[0], 0, 0, b[1]]
            })
            .collect();
        assert_eq!(u16::decode_framebuffer(&fb, 6), values);
    }

    #[test]
    fn i16_round_trip_through_texels() {
        let values = [0i16, -1, i16::MIN, i16::MAX, -12345];
        let enc = i16::encode_texels(&values, 5);
        assert_eq!(&enc[2..4], &[0xFF, 0xFF]);
        let fb: Vec<u8> = values
            .iter()
            .flat_map(|v| {
                let b = v.to_le_bytes();
                [b[0], 0, 0, b[1]]
            })
            .collect();
        assert_eq!(i16::decode_framebuffer(&fb, 5), values);
    }

    #[test]
    fn array_accessors() {
        let layout = ArrayLayout {
            len: 10,
            width: 4,
            height: 3,
        };
        let arr: GpuArray<f32> = GpuArray::new(TextureId(7), layout);
        assert_eq!(arr.len(), 10);
        assert!(!arr.is_empty());
        assert_eq!(arr.scalar(), ScalarType::F32);
        assert_eq!(arr.texture(), TextureId(7));
    }

    #[test]
    fn matrix_accessors() {
        let layout = ArrayLayout {
            len: 12,
            width: 4,
            height: 3,
        };
        let m: GpuMatrix<i32> = GpuMatrix::new(TextureId(2), layout);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
    }

    #[test]
    fn tensor_data_tags_and_byte_lengths() {
        let t: TensorData = vec![1u8, 2, 3].into();
        assert_eq!(t.scalar(), ScalarType::U8);
        assert_eq!(t.len(), 3);
        assert_eq!(t.byte_len(), 3);
        assert_eq!(t.as_u8(), Some(&[1u8, 2, 3][..]));
        assert!(t.as_f32().is_none());
        let t: TensorData = vec![-7i16, 12].into();
        assert_eq!(t.scalar(), ScalarType::I16);
        assert_eq!(t.byte_len(), 4);
        assert_eq!(t.as_i16(), Some(&[-7i16, 12][..]));
        let t: TensorData = vec![1.5f32].into();
        assert_eq!(t.scalar(), ScalarType::F32);
        assert_eq!(t.byte_len(), 4);
        assert!(!t.is_empty());
        let t: TensorData = vec![9u16].into();
        assert_eq!(t.byte_len(), 2);
        assert_eq!(t.as_u16(), Some(&[9u16][..]));
    }

    #[test]
    fn any_array_erase_and_downcast() {
        let layout = ArrayLayout {
            len: 10,
            width: 4,
            height: 3,
        };
        let arr: GpuArray<i16> = GpuArray::new(TextureId(5), layout);
        let any = arr.erase();
        assert_eq!(any.scalar(), ScalarType::I16);
        assert_eq!(any.len(), 10);
        assert_eq!(any.texture(), TextureId(5));
        assert_eq!(any.downcast::<i16>(), Some(arr));
        assert!(any.downcast::<f32>().is_none());
    }
}
