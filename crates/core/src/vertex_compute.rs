//! Vertex-stage compute (§III-1): "The GPGPU computations can be either
//! implemented in the vertex or the fragment processing stage (or both)."
//!
//! The fragment path ([`crate::Kernel`]) gathers inputs from textures; the
//! vertex path here *scatters*: each work item is one `POINTS` vertex
//! whose attributes carry the inputs, the vertex shader computes the
//! result, and a pass-through **fragment** shader packs it into the
//! item's output pixel — the mirror image of workaround #1's pass-through
//! vertex shader.
//!
//! This arrangement is how ES 2 hardware without vertex texture fetch
//! (Mali-400 famously has none) still runs vertex-stage GPGPU: inputs
//! travel as vertex attributes instead of textures.

use crate::addressing::ArrayLayout;
use crate::buffer::GpuScalar;
use crate::codec::ScalarType;
use crate::error::ComputeError;
use crate::ComputeContext;
use gpes_gles2::{PrimitiveMode, ProgramId};
use gpes_glsl::Value;

/// Builder for [`VertexKernel`]s.
///
/// ```no_run
/// # use gpes_core::{ComputeContext, ScalarType};
/// # use gpes_core::vertex_compute::VertexKernel;
/// # fn main() -> Result<(), gpes_core::ComputeError> {
/// # let mut cc = ComputeContext::new(64, 64)?;
/// let kernel = VertexKernel::builder("saxpy_v")
///     .input("x", &[1.0, 2.0])
///     .input("y", &[10.0, 20.0])
///     .uniform_f32("alpha", 2.0)
///     .output(ScalarType::F32, 2)
///     .body("return alpha * x + y;")
///     .build(&mut cc)?;
/// assert_eq!(kernel.run_and_read::<f32>(&mut cc)?, vec![12.0, 24.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VertexKernelBuilder {
    name: String,
    inputs: Vec<(String, Vec<f32>)>,
    uniforms: Vec<(String, Value)>,
    output: Option<(ScalarType, usize)>,
    functions: String,
    body: Option<String>,
}

impl VertexKernelBuilder {
    /// Starts a vertex kernel named `name`.
    pub fn new(name: impl Into<String>) -> VertexKernelBuilder {
        VertexKernelBuilder {
            name: name.into(),
            inputs: Vec::new(),
            uniforms: Vec::new(),
            output: None,
            functions: String::new(),
            body: None,
        }
    }

    /// Adds a per-item input; the body reads it by `name` as a `float`
    /// attribute. Integer data survives exactly within ±2²⁴ (§IV-C).
    pub fn input(mut self, name: &str, data: &[f32]) -> Self {
        self.inputs.push((name.to_owned(), data.to_vec()));
        self
    }

    /// Declares a `uniform float`.
    pub fn uniform_f32(mut self, name: &str, value: f32) -> Self {
        self.uniforms.push((name.to_owned(), Value::Float(value)));
        self
    }

    /// Declares the output element type and length (= work-item count).
    pub fn output(mut self, scalar: ScalarType, len: usize) -> Self {
        self.output = Some((scalar, len));
        self
    }

    /// Appends extra GLSL helper functions available to the body.
    pub fn functions(mut self, source: impl Into<String>) -> Self {
        self.functions.push_str(&source.into());
        self.functions.push('\n');
        self
    }

    /// Supplies the body of `float kernel(float idx)`; inputs are in
    /// scope by name.
    pub fn body(mut self, body: impl Into<String>) -> Self {
        self.body = Some(body.into());
        self
    }

    /// Validates, generates both shaders and links the program.
    ///
    /// # Errors
    ///
    /// [`ComputeError::BadKernel`] for inconsistent specs; GL compile or
    /// link errors.
    pub fn build(self, cc: &mut ComputeContext) -> Result<VertexKernel, ComputeError> {
        let (scalar, len) = self
            .output
            .ok_or_else(|| ComputeError::bad_kernel("vertex kernel has no declared output"))?;
        let body = self
            .body
            .ok_or_else(|| ComputeError::bad_kernel("vertex kernel has no body"))?;
        if len == 0 {
            return Err(ComputeError::bad_kernel("vertex kernel needs work items"));
        }
        for (i, (name, data)) in self.inputs.iter().enumerate() {
            if !is_valid_attr_name(name) {
                return Err(ComputeError::bad_kernel(format!(
                    "input name `{name}` is not a valid GLSL identifier"
                )));
            }
            if self.inputs[..i].iter().any(|(n, _)| n == name) {
                return Err(ComputeError::bad_kernel(format!(
                    "duplicate input `{name}`"
                )));
            }
            if data.len() != len {
                return Err(ComputeError::bad_kernel(format!(
                    "input `{name}` has {} elements, output declares {len}",
                    data.len()
                )));
            }
        }
        let layout = ArrayLayout::for_len(len, cc.max_texture_side())?;

        // ---- vertex shader: the computation ----
        let mut vs = String::with_capacity(2048);
        vs.push_str("attribute vec2 a_gpes_pos;\nattribute float a_gpes_idx;\n");
        for (name, _) in &self.inputs {
            vs.push_str(&format!("attribute float {name};\n"));
        }
        for (name, _) in &self.uniforms {
            vs.push_str(&format!("uniform float {name};\n"));
        }
        vs.push_str("varying float v_gpes_result;\n");
        vs.push_str(&self.functions);
        vs.push_str(&format!("float kernel(float idx) {{\n{body}\n}}\n"));
        vs.push_str(
            "void main() {\n\
             \x20   v_gpes_result = kernel(a_gpes_idx);\n\
             \x20   gl_PointSize = 1.0;\n\
             \x20   gl_Position = vec4(a_gpes_pos, 0.0, 1.0);\n\
             }\n",
        );

        // ---- fragment shader: pass-through + §IV packing ----
        let mut fs = String::with_capacity(2048);
        fs.push_str("precision highp float;\n");
        fs.push_str(&crate::codec::glsl_codec_library(
            cc.pack_bias(),
            cc.float_specials(),
        ));
        fs.push_str("varying float v_gpes_result;\n");
        let pack = scalar.pack_fn();
        let pack_expr = if scalar.uses_rgba() {
            format!("{pack}(v_gpes_result)")
        } else {
            format!("vec4({pack}(v_gpes_result))")
        };
        fs.push_str(&format!("void main() {{ gl_FragColor = {pack_expr}; }}\n"));

        // Shared through the context's program cache: building the same
        // vertex kernel twice links one program. Uniform values are
        // applied at dispatch (they cannot live in a shared program).
        let program = cc.compile_program_cached(&vs, &fs)?;

        // Point positions: the NDC centre of each output texel.
        let mut positions = Vec::with_capacity(len * 2);
        let mut indices = Vec::with_capacity(len);
        for i in 0..len {
            let (u, v) = layout.normalized_center(i);
            positions.push(u * 2.0 - 1.0);
            positions.push(v * 2.0 - 1.0);
            indices.push(i as f32);
        }

        Ok(VertexKernel {
            name: self.name,
            program,
            inputs: self.inputs,
            uniforms: self.uniforms,
            positions,
            indices,
            scalar,
            layout,
            vertex_source: vs,
            fragment_source: fs,
        })
    }
}

fn is_valid_attr_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.starts_with("gl_")
        && !name.starts_with("gpes_")
        && !name.starts_with("a_gpes")
        && !name.starts_with("v_gpes")
        && !name.starts_with("u_")
}

/// A compiled vertex-stage compute kernel: one point per work item.
#[derive(Debug, Clone)]
pub struct VertexKernel {
    name: String,
    program: ProgramId,
    inputs: Vec<(String, Vec<f32>)>,
    uniforms: Vec<(String, Value)>,
    positions: Vec<f32>,
    indices: Vec<f32>,
    scalar: ScalarType,
    layout: ArrayLayout,
    vertex_source: String,
    fragment_source: String,
}

impl VertexKernel {
    /// Starts building a vertex kernel named `name`.
    pub fn builder(name: impl Into<String>) -> VertexKernelBuilder {
        VertexKernelBuilder::new(name)
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output element type.
    pub fn output_scalar(&self) -> ScalarType {
        self.scalar
    }

    /// The generated vertex shader (the computation lives here).
    pub fn vertex_source(&self) -> &str {
        &self.vertex_source
    }

    /// The generated pass-through fragment shader.
    pub fn fragment_source(&self) -> &str {
        &self.fragment_source
    }

    /// Updates a uniform declared at build time. The value is stored on
    /// the kernel and applied at dispatch — the GL program may be shared
    /// with other kernels through the context cache.
    ///
    /// # Errors
    ///
    /// `BadKernel` for names not declared at build time.
    pub fn set_uniform(&mut self, name: &str, value: f32) -> Result<(), ComputeError> {
        let slot = self
            .uniforms
            .iter_mut()
            .find(|(n, _)| n == name)
            .ok_or_else(|| {
                ComputeError::bad_kernel(format!("vertex kernel declares no uniform `{name}`"))
            })?;
        slot.1 = Value::Float(value);
        Ok(())
    }

    fn dispatch(&self, cc: &mut ComputeContext) -> Result<(), ComputeError> {
        let gl = cc.gl();
        gl.use_program(self.program)?;
        for (name, value) in &self.uniforms {
            gl.set_uniform(name, value.clone())?;
        }
        gl.set_attribute("a_gpes_pos", 2, &self.positions)?;
        gl.set_attribute("a_gpes_idx", 1, &self.indices)?;
        for (name, data) in &self.inputs {
            gl.set_attribute(name, 1, data)?;
        }
        gl.viewport(0, 0, self.layout.width as i32, self.layout.height as i32);
        let stats = gl.draw_arrays(PrimitiveMode::Points, 0, self.layout.len)?;
        cc.record_pass(&self.name, stats, self.layout.texel_count() as u64);
        Ok(())
    }

    /// Scatters all work items into the default framebuffer and decodes
    /// the result.
    ///
    /// # Errors
    ///
    /// `BadKernel` for an output-type mismatch,
    /// [`ComputeError::TooLarge`] when the output exceeds the screen, and
    /// GL errors during the draw.
    pub fn run_and_read<T: GpuScalar>(
        &self,
        cc: &mut ComputeContext,
    ) -> Result<Vec<T>, ComputeError> {
        if T::SCALAR != self.scalar {
            return Err(ComputeError::bad_kernel(format!(
                "vertex kernel `{}` outputs {}, requested {}",
                self.name,
                self.scalar,
                T::SCALAR
            )));
        }
        let (sw, sh) = cc.screen_size();
        if self.layout.width > sw || self.layout.height > sh {
            return Err(ComputeError::TooLarge {
                what: format!(
                    "vertex kernel output {}x{} vs {}x{} screen",
                    self.layout.width, self.layout.height, sw, sh
                ),
            });
        }
        cc.gl().bind_framebuffer(None)?;
        self.dispatch(cc)?;
        let bytes = cc
            .gl()
            .read_pixels(0, 0, self.layout.width, self.layout.height)?;
        Ok(T::decode_framebuffer(&bytes, self.layout.len))
    }

    /// Scatters all work items into a fresh texture (render-to-texture)
    /// and returns it as a [`crate::GpuArray`], so vertex-stage results
    /// can feed fragment-stage kernels — §III-1's "or both".
    ///
    /// # Errors
    ///
    /// `BadKernel` for an output-type mismatch; GL errors during the
    /// draw.
    pub fn run_to_array<T: GpuScalar>(
        &self,
        cc: &mut ComputeContext,
    ) -> Result<crate::GpuArray<T>, ComputeError> {
        if T::SCALAR != self.scalar {
            return Err(ComputeError::bad_kernel(format!(
                "vertex kernel `{}` outputs {}, requested {}",
                self.name,
                self.scalar,
                T::SCALAR
            )));
        }
        let (target, pooled) = cc.acquire_render_target(self.layout)?;
        // The POINTS draw writes only `len` texels, not the full target:
        // a recycled texture must be cleared so padding texels read as
        // deterministic zeros, exactly like a fresh tex_storage target.
        if pooled {
            cc.gl().set_clear_color([0.0, 0.0, 0.0, 0.0]);
            cc.gl().clear()?;
        }
        let result = self.dispatch(cc);
        cc.gl().bind_framebuffer(None)?;
        result?;
        Ok(crate::GpuArray::new(target, self.layout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;

    #[test]
    fn vertex_saxpy_matches_fragment_saxpy() {
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let x: Vec<f32> = (0..37).map(|i| i as f32 * 0.75 - 8.0).collect();
        let y: Vec<f32> = (0..37).map(|i| 100.0 - i as f32).collect();
        let alpha = 2.5f32;

        // Vertex-stage version (inputs as attributes, compute in VS).
        let vk = VertexKernel::builder("saxpy_v")
            .input("x", &x)
            .input("y", &y)
            .uniform_f32("alpha", alpha)
            .output(ScalarType::F32, x.len())
            .body("return alpha * x + y;")
            .build(&mut cc)
            .expect("vertex kernel");
        let via_vertex: Vec<f32> = vk.run_and_read(&mut cc).expect("run");

        // Fragment-stage version (inputs as textures, compute in FS).
        let gx = cc.upload(&x).expect("x");
        let gy = cc.upload(&y).expect("y");
        let fk = Kernel::builder("saxpy_f")
            .input("x", &gx)
            .input("y", &gy)
            .uniform_f32("alpha", alpha)
            .output(ScalarType::F32, x.len())
            .body("return alpha * fetch_x(idx) + fetch_y(idx);")
            .build(&mut cc)
            .expect("fragment kernel");
        let via_fragment = cc.run_f32(&fk).expect("run");

        assert_eq!(via_vertex, via_fragment, "§III-1: both stages compute");
    }

    #[test]
    fn vertex_kernel_integer_output() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let x: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let vk = VertexKernel::builder("square_i")
            .input("x", &x)
            .output(ScalarType::I32, 9)
            .body("return x * x - 4.0;")
            .build(&mut cc)
            .expect("build");
        let out: Vec<i32> = vk.run_and_read(&mut cc).expect("run");
        assert_eq!(out, vec![-4, -3, 0, 5, 12, 21, 32, 45, 60]);
    }

    #[test]
    fn idx_and_uniform_updates_work() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let zeros = vec![0.0f32; 5];
        let mut vk = VertexKernel::builder("gain_idx")
            .input("z", &zeros)
            .uniform_f32("gain", 3.0)
            .output(ScalarType::F32, 5)
            .body("return z + idx * gain;")
            .build(&mut cc)
            .expect("build");
        assert_eq!(
            vk.run_and_read::<f32>(&mut cc).expect("run"),
            vec![0.0, 3.0, 6.0, 9.0, 12.0]
        );
        vk.set_uniform("gain", -1.0).expect("set");
        assert_eq!(
            vk.run_and_read::<f32>(&mut cc).expect("run"),
            vec![0.0, -1.0, -2.0, -3.0, -4.0]
        );
    }

    #[test]
    fn validation_errors() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        // Length mismatch.
        let err = VertexKernel::builder("k")
            .input("x", &[1.0, 2.0])
            .output(ScalarType::F32, 3)
            .body("return x;")
            .build(&mut cc)
            .unwrap_err();
        assert!(err.to_string().contains("3"));
        // Reserved names.
        assert!(VertexKernel::builder("k")
            .input("a_gpes_pos", &[1.0])
            .output(ScalarType::F32, 1)
            .body("return 0.0;")
            .build(&mut cc)
            .is_err());
        // Type mismatch at readback.
        let vk = VertexKernel::builder("k")
            .input("x", &[1.0])
            .output(ScalarType::F32, 1)
            .body("return x;")
            .build(&mut cc)
            .expect("build");
        assert!(vk.run_and_read::<u32>(&mut cc).is_err());
        // Output larger than the screen.
        let big = vec![0.0f32; 40 * 40];
        let vk = VertexKernel::builder("big")
            .input("x", &big)
            .output(ScalarType::F32, big.len())
            .body("return x;")
            .build(&mut cc)
            .expect("build");
        assert!(matches!(
            vk.run_and_read::<f32>(&mut cc),
            Err(ComputeError::TooLarge { .. })
        ));
    }

    #[test]
    fn both_stages_chain_vertex_into_fragment() {
        // §III-1 "(or both)": a vertex-stage kernel produces a texture
        // that a fragment-stage kernel consumes.
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let x: Vec<f32> = (0..30).map(|i| i as f32 - 15.0).collect();
        let vk = VertexKernel::builder("scale_v")
            .input("x", &x)
            .output(ScalarType::F32, x.len())
            .body("return x * 2.0;")
            .build(&mut cc)
            .expect("vertex build");
        let mid: crate::GpuArray<f32> = vk.run_to_array(&mut cc).expect("vertex rtt");
        let fk = Kernel::builder("abs_f")
            .input("m", &mid)
            .output(ScalarType::F32, x.len())
            .body("return abs(fetch_m(idx));")
            .build(&mut cc)
            .expect("fragment build");
        let out = cc.run_f32(&fk).expect("fragment run");
        let expect: Vec<f32> = x.iter().map(|&v| (v * 2.0).abs()).collect();
        assert_eq!(out, expect);
        assert_eq!(cc.pass_log().len(), 2);
    }

    #[test]
    fn pass_log_records_vertex_kernels() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let vk = VertexKernel::builder("logged")
            .input("x", &[1.0, 2.0])
            .output(ScalarType::F32, 2)
            .body("return x;")
            .build(&mut cc)
            .expect("build");
        let _: Vec<f32> = vk.run_and_read(&mut cc).expect("run");
        let log = cc.take_pass_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kernel, "logged");
        assert_eq!(log[0].stats.vertices_shaded, 2);
        // The computation ran in the vertex stage: the VS profile carries
        // the arithmetic, the FS profile only the packing.
        assert!(log[0].stats.vs_profile.alu_ops > 0);
    }
}
