//! # gpes-core — general-purpose computation over OpenGL ES 2
//!
//! The primary contribution of *“Towards General Purpose Computations on
//! Low-End Mobile GPUs”* (Trompouki & Kosmidis, DATE 2016), as a library:
//! run numeric kernels on a GPU that only speaks OpenGL ES 2.0 — no
//! OpenCL, no float textures, no integer arithmetic in shaders.
//!
//! ## The eight workarounds (paper §III)
//!
//! | # | ES 2 limitation | Module |
//! |---|------------------|--------|
//! | 1 | both stages must be programmed | [`geometry::passthrough_vertex_shader`] |
//! | 2 | no quad primitive | [`geometry::FULLSCREEN_QUAD`] |
//! | 3 | no 1-D textures | [`addressing`] |
//! | 4 | only normalised texture coordinates | [`addressing`] |
//! | 5 | no float/int texture formats | [`codec`] (input side) |
//! | 6 | framebuffer clamps to bytes | [`codec`] (output side) |
//! | 7 | no texture readback | [`pipeline::Readback`], [`ComputeContext::run_and_read`] |
//! | 8 | single fragment output | [`multi_output`] |
//!
//! ## Example
//!
//! ```
//! use gpes_core::{ComputeContext, Kernel, ScalarType};
//!
//! # fn main() -> Result<(), gpes_core::ComputeError> {
//! let mut cc = ComputeContext::new(64, 64)?;
//! let x = cc.upload(&[1.0f32, 2.0, 3.0, 4.0])?;
//! let kernel = Kernel::builder("square")
//!     .input("x", &x)
//!     .output(ScalarType::F32, 4)
//!     .body("float v = fetch_x(idx); return v * v;")
//!     .build(&mut cc)?;
//! assert_eq!(cc.run_f32(&kernel)?, vec![1.0, 4.0, 9.0, 16.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod addressing;
pub mod bind;
pub mod buffer;
pub mod cache;
pub mod chunked;
pub mod codec;
pub mod context;
pub mod error;
pub mod geometry;
pub mod kernel;
pub mod multi_output;
pub mod pipeline;
pub mod serve;
pub mod vertex_compute;

pub use bind::Bindings;
pub use buffer::{AnyGpuArray, GpuArray, GpuMatrix, GpuScalar, GpuTexels, TensorData};
pub use cache::{SharedCacheStats, SharedProgramCache};
pub use codec::{FloatSpecials, PackBias, ScalarType};
pub use context::{ComputeContext, ContextStats};
pub use error::{AdmissionStage, ComputeError, QuotaResource};
pub use gpes_gles2::ExecMode;
pub use kernel::{InputEncoding, Kernel, KernelBuilder, OutputKind, OutputShape};
pub use multi_output::{MultiOutputBuilder, MultiOutputKernel};
pub use pipeline::{
    Pass, PassRecord, Pipeline, PipelineBuilder, PipelineRun, Readback, SourceSeed,
};
pub use serve::{
    BatchResult, CachePolicy, CompletionSet, Engine, EngineSnapshot, Job, JobHandle, JobInput,
    KernelRegistry, KernelSpec, LatencyHistogram, PassSpec, PipelineJob, PipelineResult,
    PipelineSpec, RegisteredKernel, ResidentInput, ResidentStats, RetryPolicy, ServedPipeline,
    StepHandle, Submission, TenantCounters, TenantId, TenantQuotas,
};
pub use vertex_compute::{VertexKernel, VertexKernelBuilder};
