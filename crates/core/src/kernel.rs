//! Kernel construction: from a GLSL body to a complete, linked fragment
//! program with codec library, fetch helpers and output packing.

use crate::addressing::{self, ArrayLayout};
use crate::buffer::{GpuArray, GpuMatrix, GpuScalar, GpuTexels};
use crate::codec::ScalarType;
use crate::error::ComputeError;
use crate::geometry;
use gpes_gles2::{ProgramId, TextureId};
use gpes_glsl::Value;

/// How the kernel's output domain is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputShape {
    /// `len` elements laid out in a near-square texture; the kernel body
    /// addresses them through `idx`.
    Linear(usize),
    /// A `rows × cols` grid; the body addresses it through `row`/`col`.
    Grid {
        /// Number of rows.
        rows: u32,
        /// Number of columns.
        cols: u32,
    },
}

impl OutputShape {
    /// Resolves the shape to a concrete texture layout under a driver's
    /// texture-size limit — the one conversion every dispatch path
    /// (kernel build, bindings, pipeline passes, engine jobs) shares.
    ///
    /// # Errors
    ///
    /// Layout errors when the shape exceeds `max_side`.
    pub fn resolve(self, max_side: u32) -> Result<ArrayLayout, ComputeError> {
        match self {
            OutputShape::Linear(len) => ArrayLayout::for_len(len, max_side),
            OutputShape::Grid { rows, cols } => ArrayLayout::grid(rows, cols, max_side),
        }
    }
}

/// How an input's texels are presented to the kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputEncoding {
    /// Texels carry one §IV-encoded scalar each; `fetch_<name>(idx)`
    /// decodes it to a `float`.
    Scalar(ScalarType),
    /// Texels are handed to the body as raw `vec4` colours through
    /// `fetch_<name>_texel(idx)` — the escape hatch for kernels that
    /// define their own texel interpretation (packed pairs, complex
    /// numbers, related-work formats).
    RawTexel,
}

/// What the kernel writes per fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// One §IV-encoded scalar per texel; the body returns `float`.
    Scalar(ScalarType),
    /// The body returns the whole `vec4` colour (already bias-packed);
    /// read back with the `*_texels` methods.
    RawTexel,
}

/// One input binding of a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputBinding {
    /// The GLSL-visible name (`fetch_<name>` is generated).
    pub name: String,
    /// Bound texture.
    pub texture: TextureId,
    /// Its layout.
    pub layout: ArrayLayout,
    /// How the texels are decoded.
    pub encoding: InputEncoding,
}

/// Builder for [`Kernel`]s (C-BUILDER).
///
/// ```no_run
/// # use gpes_core::{ComputeContext, Kernel, ScalarType};
/// # fn main() -> Result<(), gpes_core::ComputeError> {
/// # let mut cc = ComputeContext::new(64, 64)?;
/// # let a = cc.upload(&[1.0f32, 2.0])?;
/// # let b = cc.upload(&[3.0f32, 4.0])?;
/// let kernel = Kernel::builder("saxpy")
///     .input("x", &a)
///     .input("y", &b)
///     .uniform_f32("alpha", 2.0)
///     .output(ScalarType::F32, 2)
///     .body("return alpha * fetch_x(idx) + fetch_y(idx);")
///     .build(&mut cc)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    inputs: Vec<InputBinding>,
    uniforms: Vec<(String, Value)>,
    output: Option<(OutputKind, OutputShape)>,
    body: Option<String>,
    functions: String,
}

impl KernelBuilder {
    /// Starts a kernel named `name` (names appear in the pass log).
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            inputs: Vec::new(),
            uniforms: Vec::new(),
            output: None,
            body: None,
            functions: String::new(),
        }
    }

    /// Binds an array input; the body reads it with `fetch_<name>(j)`
    /// (and `fetch_<name>_rc(row, col)`).
    pub fn input<T: GpuScalar>(mut self, name: &str, array: &GpuArray<T>) -> Self {
        self.inputs.push(InputBinding {
            name: name.to_owned(),
            texture: array.texture,
            layout: array.layout,
            encoding: InputEncoding::Scalar(T::SCALAR),
        });
        self
    }

    /// Binds a matrix input; the body reads it with
    /// `fetch_<name>_rc(row, col)`.
    pub fn input_matrix<T: GpuScalar>(mut self, name: &str, matrix: &GpuMatrix<T>) -> Self {
        self.inputs.push(InputBinding {
            name: name.to_owned(),
            texture: matrix.texture,
            layout: matrix.layout,
            encoding: InputEncoding::Scalar(T::SCALAR),
        });
        self
    }

    /// Binds a runtime-tagged array input; the generated fetch decodes
    /// through the codec named by the array's scalar tag, exactly as
    /// [`KernelBuilder::input`] does for the static type.
    pub fn input_any(mut self, name: &str, array: &crate::buffer::AnyGpuArray) -> Self {
        self.inputs.push(InputBinding {
            name: name.to_owned(),
            texture: array.texture(),
            layout: array.layout(),
            encoding: InputEncoding::Scalar(array.scalar()),
        });
        self
    }

    /// Binds an untyped texel buffer; the body reads raw colours with
    /// `fetch_<name>_texel(j)` (and `fetch_<name>_texel_rc(row, col)`).
    pub fn input_texels(mut self, name: &str, texels: &GpuTexels) -> Self {
        self.inputs.push(InputBinding {
            name: name.to_owned(),
            texture: texels.texture,
            layout: texels.layout,
            encoding: InputEncoding::RawTexel,
        });
        self
    }

    /// Binds a typed array *as raw texels*, exposing
    /// `fetch_<name>_texel(j)` instead of the decoding fetch — useful for
    /// kernels that reinterpret the §IV byte layout themselves.
    pub fn input_raw<T: GpuScalar>(mut self, name: &str, array: &GpuArray<T>) -> Self {
        self.inputs.push(InputBinding {
            name: name.to_owned(),
            texture: array.texture,
            layout: array.layout,
            encoding: InputEncoding::RawTexel,
        });
        self
    }

    /// Declares a uniform of any supported GLSL type with an initial
    /// value (the typed `uniform_*` conveniences route here).
    pub fn uniform(mut self, name: &str, value: Value) -> Self {
        self.uniforms.push((name.to_owned(), value));
        self
    }

    /// Declares a `uniform float` with an initial value.
    pub fn uniform_f32(mut self, name: &str, value: f32) -> Self {
        self.uniforms.push((name.to_owned(), Value::Float(value)));
        self
    }

    /// Declares a `uniform vec2` with an initial value.
    pub fn uniform_vec2(mut self, name: &str, value: [f32; 2]) -> Self {
        self.uniforms.push((name.to_owned(), Value::Vec2(value)));
        self
    }

    /// Declares a `uniform int` with an initial value.
    pub fn uniform_i32(mut self, name: &str, value: i32) -> Self {
        self.uniforms.push((name.to_owned(), Value::Int(value)));
        self
    }

    /// Declares a `uniform vec3` with an initial value.
    pub fn uniform_vec3(mut self, name: &str, value: [f32; 3]) -> Self {
        self.uniforms.push((name.to_owned(), Value::Vec3(value)));
        self
    }

    /// Declares a `uniform vec4` with an initial value.
    pub fn uniform_vec4(mut self, name: &str, value: [f32; 4]) -> Self {
        self.uniforms.push((name.to_owned(), Value::Vec4(value)));
        self
    }

    /// Declares the output element type and linear length.
    pub fn output(mut self, scalar: ScalarType, len: usize) -> Self {
        self.output = Some((OutputKind::Scalar(scalar), OutputShape::Linear(len)));
        self
    }

    /// Declares a 2-D output grid (e.g. a matrix product result).
    pub fn output_grid(mut self, scalar: ScalarType, rows: u32, cols: u32) -> Self {
        self.output = Some((OutputKind::Scalar(scalar), OutputShape::Grid { rows, cols }));
        self
    }

    /// Declares a raw-texel output of `texel_count` texels: the body is
    /// the contents of `vec4 kernel(float idx, float row, float col)` and
    /// must return the final (bias-packed) colour itself.
    pub fn output_texels(mut self, texel_count: usize) -> Self {
        self.output = Some((OutputKind::RawTexel, OutputShape::Linear(texel_count)));
        self
    }

    /// Declares a raw-texel output shaped as a `rows × cols` grid.
    pub fn output_texels_grid(mut self, rows: u32, cols: u32) -> Self {
        self.output = Some((OutputKind::RawTexel, OutputShape::Grid { rows, cols }));
        self
    }

    /// Supplies the kernel body: the contents of
    /// `float kernel(float idx, float row, float col) { … }` for scalar
    /// outputs, or `vec4 kernel(…)` for raw-texel outputs. It must
    /// `return` the output element value.
    pub fn body(mut self, body: impl Into<String>) -> Self {
        self.body = Some(body.into());
        self
    }

    /// Appends extra GLSL helper functions available to the body.
    pub fn functions(mut self, source: impl Into<String>) -> Self {
        self.functions.push_str(&source.into());
        self.functions.push('\n');
        self
    }

    /// Validates the specification and compiles the program.
    ///
    /// # Errors
    ///
    /// [`ComputeError::BadKernel`] for inconsistent specs (duplicate or
    /// missing pieces) and compile/link errors from the GL layer.
    pub fn build(self, cc: &mut crate::ComputeContext) -> Result<Kernel, ComputeError> {
        let (out_kind, shape) = self
            .output
            .ok_or_else(|| ComputeError::bad_kernel("kernel has no declared output"))?;
        let body = self
            .body
            .clone()
            .ok_or_else(|| ComputeError::bad_kernel("kernel has no body"))?;
        for (i, a) in self.inputs.iter().enumerate() {
            if !is_valid_name(&a.name) {
                return Err(ComputeError::bad_kernel(format!(
                    "input name `{}` is not a valid GLSL identifier",
                    a.name
                )));
            }
            if self.inputs[..i].iter().any(|b| b.name == a.name) {
                return Err(ComputeError::bad_kernel(format!(
                    "duplicate input name `{}`",
                    a.name
                )));
            }
        }
        for (i, (name, _)) in self.uniforms.iter().enumerate() {
            if !is_valid_name(name) {
                return Err(ComputeError::bad_kernel(format!(
                    "uniform name `{name}` is not a valid GLSL identifier"
                )));
            }
            if self.uniforms[..i].iter().any(|(n, _)| n == name) {
                return Err(ComputeError::bad_kernel(format!(
                    "duplicate uniform name `{name}`"
                )));
            }
        }

        let output_layout = shape.resolve(cc.max_texture_side())?;

        let fragment_source = self.generate_fragment_source(cc, out_kind, &body);
        // The program cache makes this free when an identical shader was
        // already linked (same signature + body ⇒ same generated source).
        let program = cc.compile_kernel_program(&fragment_source)?;
        // Sampler/dims uniform names are dispatch-loop constants; build
        // them once here instead of `format!`-ing per dispatch.
        let input_uniform_names = self
            .inputs
            .iter()
            .map(|b| (format!("u_{}", b.name), format!("u_{}_dims", b.name)))
            .collect();
        Ok(Kernel {
            name: self.name,
            program,
            inputs: self.inputs,
            input_uniform_names,
            uniforms: self.uniforms,
            output_kind: out_kind,
            output_layout,
            fragment_source,
        })
    }

    fn generate_fragment_source(
        &self,
        cc: &crate::ComputeContext,
        out_kind: OutputKind,
        body: &str,
    ) -> String {
        let inputs: Vec<(&str, InputEncoding)> = self
            .inputs
            .iter()
            .map(|b| (b.name.as_str(), b.encoding))
            .collect();
        generate_fragment_source(
            cc.pack_bias(),
            cc.float_specials(),
            &inputs,
            &self.uniforms,
            &self.functions,
            out_kind,
            body,
        )
    }
}

/// Generates a kernel's fragment shader from its signature alone — no
/// live context needed. [`KernelBuilder::build`] routes through here, and
/// so does the serving registry's admission path, so the source admission
/// validates is byte-identical to the source a worker later compiles.
pub(crate) fn generate_fragment_source(
    pack_bias: crate::PackBias,
    specials: crate::FloatSpecials,
    inputs: &[(&str, InputEncoding)],
    uniforms: &[(String, Value)],
    functions: &str,
    out_kind: OutputKind,
    body: &str,
) -> String {
    let mut src = String::with_capacity(8192);
    src.push_str("precision highp float;\n");
    src.push_str(&crate::codec::glsl_codec_library(pack_bias, specials));
    src.push_str(addressing::glsl_out_index());
    for (name, encoding) in inputs {
        match encoding {
            InputEncoding::Scalar(scalar) => {
                src.push_str(&addressing::glsl_fetch_1d(
                    name,
                    scalar.unpack_fn(),
                    scalar.fetch_swizzle(),
                ));
                src.push_str(&addressing::glsl_fetch_2d(
                    name,
                    scalar.unpack_fn(),
                    scalar.fetch_swizzle(),
                ));
            }
            InputEncoding::RawTexel => {
                src.push_str(&addressing::glsl_fetch_texel_1d(name));
                src.push_str(&addressing::glsl_fetch_texel_2d(name));
            }
        }
    }
    for (name, value) in uniforms {
        let ty = match value {
            Value::Float(_) => "float",
            Value::Vec2(_) => "vec2",
            Value::Vec3(_) => "vec3",
            Value::Vec4(_) => "vec4",
            Value::Int(_) => "int",
            _ => "float",
        };
        src.push_str(&format!("uniform {ty} {name};\n"));
    }
    src.push_str(functions);
    let pack_expr = match out_kind {
        OutputKind::Scalar(out_scalar) => {
            src.push_str(&format!(
                "float kernel(float idx, float row, float col) {{\n{body}\n}}\n"
            ));
            let pack = out_scalar.pack_fn();
            if out_scalar.uses_rgba() {
                format!("{pack}(kernel(idx, row, col))")
            } else {
                format!("vec4({pack}(kernel(idx, row, col)))")
            }
        }
        OutputKind::RawTexel => {
            src.push_str(&format!(
                "vec4 kernel(float idx, float row, float col) {{\n{body}\n}}\n"
            ));
            "kernel(idx, row, col)".to_owned()
        }
    };
    src.push_str(&format!(
        "void main() {{\n\
         \x20   float idx = gpes_out_index();\n\
         \x20   float row = floor(gl_FragCoord.y);\n\
         \x20   float col = floor(gl_FragCoord.x);\n\
         \x20   gl_FragColor = {pack_expr};\n\
         }}\n"
    ));
    src
}

pub(crate) fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.starts_with("gl_")
        && !name.starts_with("gpes_")
        && !name.starts_with("u_")
}

/// A compiled GPGPU kernel: a linked fragment program plus its
/// *signature* (input names/encodings, declared uniforms, output kind).
///
/// Since the compile/bind split, a `Kernel` is immutable compiled state:
/// the textures captured at build time are only *default bindings*.
/// Dispatch-time state — which textures feed the inputs, the output
/// shape, uniform values — can be replaced per dispatch with a
/// [`crate::Bindings`] value (see
/// [`crate::ComputeContext::run_to_array_with`]), so rebinding a
/// ping-pong texture never recompiles anything.
#[derive(Debug, Clone)]
pub struct Kernel {
    pub(crate) name: String,
    pub(crate) program: ProgramId,
    pub(crate) inputs: Vec<InputBinding>,
    /// `("u_<name>", "u_<name>_dims")` per input, precomputed for the
    /// dispatch loop.
    pub(crate) input_uniform_names: Vec<(String, String)>,
    pub(crate) uniforms: Vec<(String, Value)>,
    pub(crate) output_kind: OutputKind,
    pub(crate) output_layout: ArrayLayout,
    pub(crate) fragment_source: String,
}

impl Kernel {
    /// Starts building a kernel named `name`.
    pub fn builder(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder::new(name)
    }

    /// The kernel's name (used in pass logs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output kind (scalar codec or raw texels).
    pub fn output_kind(&self) -> OutputKind {
        self.output_kind
    }

    /// Output element type, or `None` for raw-texel kernels.
    pub fn output_scalar(&self) -> Option<ScalarType> {
        match self.output_kind {
            OutputKind::Scalar(s) => Some(s),
            OutputKind::RawTexel => None,
        }
    }

    /// Output layout (texture dimensions + live length).
    pub fn output_layout(&self) -> ArrayLayout {
        self.output_layout
    }

    /// The generated fragment shader source — the artefact a developer
    /// would paste into a GLES2 app on real hardware.
    pub fn fragment_source(&self) -> &str {
        &self.fragment_source
    }

    /// The pass-through vertex shader paired with this kernel.
    pub fn vertex_source(&self) -> String {
        geometry::passthrough_vertex_shader()
    }

    /// Updates a *default* uniform value declared at build time; later
    /// dispatches without a [`crate::Bindings`] override use it. (Since
    /// programs are shared through the context cache, uniform values are
    /// applied at dispatch, not stored in the GL program.)
    ///
    /// # Errors
    ///
    /// [`ComputeError::BadKernel`] for unknown names or a value whose GLSL
    /// type differs from the declaration.
    pub fn set_uniform(&mut self, name: &str, value: Value) -> Result<(), ComputeError> {
        let slot = self
            .uniforms
            .iter_mut()
            .find(|(n, _)| n == name)
            .ok_or_else(|| {
                ComputeError::bad_kernel(format!("kernel declares no uniform `{name}`"))
            })?;
        if std::mem::discriminant(&slot.1) != std::mem::discriminant(&value) {
            return Err(ComputeError::bad_kernel(format!(
                "uniform `{name}` is {}, got {}",
                slot.1.ty(),
                value.ty()
            )));
        }
        slot.1 = value;
        Ok(())
    }

    /// The declared input names in texture-unit order.
    pub fn input_names(&self) -> impl Iterator<Item = &str> {
        self.inputs.iter().map(|b| b.name.as_str())
    }

    /// The declared uniforms (name, current default value).
    pub fn uniforms(&self) -> &[(String, Value)] {
        &self.uniforms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(is_valid_name("a"));
        assert!(is_valid_name("matrix_b2"));
        assert!(is_valid_name("_x"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("2x"));
        assert!(!is_valid_name("a-b"));
        assert!(!is_valid_name("gl_thing"));
        assert!(!is_valid_name("gpes_secret"));
        assert!(!is_valid_name("u_reserved"));
    }

    #[test]
    fn builder_requires_output_and_body() {
        let mut cc = crate::ComputeContext::new(16, 16).expect("context");
        let err = KernelBuilder::new("k").body("return 0.0;").build(&mut cc);
        assert!(matches!(err, Err(ComputeError::BadKernel { .. })));
        let err = KernelBuilder::new("k")
            .output(ScalarType::F32, 4)
            .build(&mut cc);
        assert!(matches!(err, Err(ComputeError::BadKernel { .. })));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut cc = crate::ComputeContext::new(16, 16).expect("context");
        let a = cc.upload(&[1.0f32]).expect("upload");
        let err = KernelBuilder::new("k")
            .input("a", &a)
            .input("a", &a)
            .output(ScalarType::F32, 1)
            .body("return fetch_a(idx);")
            .build(&mut cc);
        assert!(matches!(err, Err(ComputeError::BadKernel { .. })));
    }

    #[test]
    fn generated_source_is_inspectable() {
        let mut cc = crate::ComputeContext::new(16, 16).expect("context");
        let a = cc.upload(&[1.0f32, 2.0]).expect("upload");
        let k = Kernel::builder("double")
            .input("a", &a)
            .output(ScalarType::F32, 2)
            .body("return fetch_a(idx) * 2.0;")
            .build(&mut cc)
            .expect("build");
        let src = k.fragment_source();
        assert!(src.contains("gpes_unpack_float"));
        assert!(src.contains("fetch_a"));
        assert!(src.contains("gpes_pack_float"));
        assert!(k.vertex_source().contains("gl_Position"));
        assert_eq!(k.name(), "double");
        assert_eq!(k.output_scalar(), Some(ScalarType::F32));
        assert_eq!(k.output_kind(), OutputKind::Scalar(ScalarType::F32));
    }

    #[test]
    fn raw_texel_kernel_source_shape() {
        let mut cc = crate::ComputeContext::new(16, 16).expect("context");
        let t = cc
            .upload_texels(2, 1, &[1, 2, 3, 4, 5, 6, 7, 8])
            .expect("texels");
        let k = Kernel::builder("swap_halves")
            .input_texels("t", &t)
            .output_texels(2)
            .body("vec4 v = fetch_t_texel(idx); return v.zwxy;")
            .build(&mut cc)
            .expect("build");
        assert!(k.fragment_source().contains("vec4 kernel(float idx"));
        assert!(k.fragment_source().contains("fetch_t_texel"));
        assert_eq!(k.output_scalar(), None);
        assert_eq!(k.output_kind(), OutputKind::RawTexel);
    }

    #[test]
    fn body_compile_errors_are_reported() {
        let mut cc = crate::ComputeContext::new(16, 16).expect("context");
        let err = KernelBuilder::new("broken")
            .output(ScalarType::F32, 1)
            .body("return nonsense_fn(idx);")
            .build(&mut cc);
        assert!(matches!(err, Err(ComputeError::Gl(_))));
    }
}
