//! §III workaround 8: multi-output kernels.
//!
//! ES 2 fragment shaders write a single output (`gl_FragColor` /
//! `gl_FragData[0]`), so "if a GPGPU kernel does so [produce several
//! outputs], it needs to be split in more than one shaders, one per
//! output". [`MultiOutputBuilder`] performs exactly that split: a shared
//! set of inputs/uniforms plus one body per output, compiled into one
//! [`Kernel`] each.

use crate::codec::ScalarType;
use crate::error::ComputeError;
use crate::kernel::{Kernel, KernelBuilder};

/// One declared output of a multi-output kernel.
#[derive(Debug, Clone)]
struct OutputSpec {
    name: String,
    scalar: ScalarType,
    len: usize,
    body: String,
}

/// Builder that splits a multi-output computation into one program per
/// output.
#[derive(Debug, Clone)]
pub struct MultiOutputBuilder {
    base: KernelBuilder,
    outputs: Vec<OutputSpec>,
}

impl MultiOutputBuilder {
    /// Starts from a base kernel (inputs, uniforms and helper functions
    /// are shared by every output; output/body of the base are ignored).
    pub fn new(base: KernelBuilder) -> MultiOutputBuilder {
        MultiOutputBuilder {
            base,
            outputs: Vec::new(),
        }
    }

    /// Adds an output with its own element type, length and body.
    pub fn output(
        mut self,
        name: impl Into<String>,
        scalar: ScalarType,
        len: usize,
        body: impl Into<String>,
    ) -> Self {
        self.outputs.push(OutputSpec {
            name: name.into(),
            scalar,
            len,
            body: body.into(),
        });
        self
    }

    /// Compiles one kernel per output.
    ///
    /// # Errors
    ///
    /// `BadKernel` when no outputs were declared or names repeat; compile
    /// errors from the individual kernels.
    pub fn build(self, cc: &mut crate::ComputeContext) -> Result<MultiOutputKernel, ComputeError> {
        if self.outputs.is_empty() {
            return Err(ComputeError::bad_kernel(
                "multi-output kernel declares no outputs",
            ));
        }
        for (i, o) in self.outputs.iter().enumerate() {
            if self.outputs[..i].iter().any(|p| p.name == o.name) {
                return Err(ComputeError::bad_kernel(format!(
                    "duplicate output name `{}`",
                    o.name
                )));
            }
        }
        let mut kernels = Vec::with_capacity(self.outputs.len());
        for o in &self.outputs {
            let kernel = self
                .base
                .clone()
                .output(o.scalar, o.len)
                .body(o.body.clone())
                .build(cc)?;
            kernels.push((o.name.clone(), kernel));
        }
        Ok(MultiOutputKernel { kernels })
    }
}

/// The result of splitting: one compiled kernel per declared output.
#[derive(Debug, Clone)]
pub struct MultiOutputKernel {
    kernels: Vec<(String, Kernel)>,
}

impl MultiOutputKernel {
    /// Number of split programs (= number of outputs).
    pub fn pass_count(&self) -> usize {
        self.kernels.len()
    }

    /// Looks up the kernel computing a named output.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|(n, _)| n == name).map(|(_, k)| k)
    }

    /// Iterates over `(output name, kernel)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Kernel)> {
        self.kernels.iter().map(|(n, k)| (n.as_str(), k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputeContext;

    #[test]
    fn splits_into_one_kernel_per_output() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let a = cc.upload(&[3.0f32, -4.0, 5.5]).expect("upload");
        let base = Kernel::builder("minmax").input("a", &a);
        let split = MultiOutputBuilder::new(base)
            .output("doubled", ScalarType::F32, 3, "return fetch_a(idx) * 2.0;")
            .output("negated", ScalarType::F32, 3, "return -fetch_a(idx);")
            .build(&mut cc)
            .expect("build");
        assert_eq!(split.pass_count(), 2);

        let doubled = cc
            .run_f32(split.kernel("doubled").expect("kernel"))
            .expect("run");
        assert_eq!(doubled, vec![6.0, -8.0, 11.0]);
        let negated = cc
            .run_f32(split.kernel("negated").expect("kernel"))
            .expect("run");
        assert_eq!(negated, vec![-3.0, 4.0, -5.5]);
        // The split executed as two separate passes — limitation #8.
        assert_eq!(cc.pass_log().len(), 2);
    }

    #[test]
    fn outputs_may_differ_in_type() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let a = cc.upload(&[100i32, -200]).expect("upload");
        let split = MultiOutputBuilder::new(Kernel::builder("mixed").input("a", &a))
            .output("idpass", ScalarType::I32, 2, "return fetch_a(idx);")
            .output(
                "as_float_halves",
                ScalarType::F32,
                2,
                "return fetch_a(idx) * 0.5;",
            )
            .build(&mut cc)
            .expect("build");
        let ints: Vec<i32> = cc
            .run_and_read(split.kernel("idpass").expect("k"))
            .expect("run");
        assert_eq!(ints, vec![100, -200]);
        let floats: Vec<f32> = cc
            .run_and_read(split.kernel("as_float_halves").expect("k"))
            .expect("run");
        assert_eq!(floats, vec![50.0, -100.0]);
    }

    #[test]
    fn empty_and_duplicate_outputs_rejected() {
        let mut cc = ComputeContext::new(8, 8).expect("context");
        let err = MultiOutputBuilder::new(Kernel::builder("none")).build(&mut cc);
        assert!(matches!(err, Err(ComputeError::BadKernel { .. })));
        let err = MultiOutputBuilder::new(Kernel::builder("dup"))
            .output("x", ScalarType::F32, 1, "return 0.0;")
            .output("x", ScalarType::F32, 1, "return 1.0;")
            .build(&mut cc);
        assert!(matches!(err, Err(ComputeError::BadKernel { .. })));
    }

    #[test]
    fn iter_preserves_declaration_order() {
        let mut cc = ComputeContext::new(8, 8).expect("context");
        let split = MultiOutputBuilder::new(Kernel::builder("o"))
            .output("first", ScalarType::F32, 1, "return 1.0;")
            .output("second", ScalarType::F32, 1, "return 2.0;")
            .build(&mut cc)
            .expect("build");
        let names: Vec<&str> = split.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["first", "second"]);
        assert!(split.kernel("third").is_none());
    }
}
