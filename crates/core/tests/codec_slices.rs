//! Differential tests for the slice-level codec hot paths.
//!
//! The SPMD-friendly `encode_slice`/`decode_slice` (and the Strzodka
//! `encode_texels`/`decode_texels`) batch many elements per call; the
//! per-element `encode`/`decode` pairs are the semantic reference. The
//! two must agree byte-for-byte at **every** length — in particular the
//! non-multiple-of-8 tails a vectorised implementation handles in a
//! scalar epilogue — and the shader-mirror pack must pin down the
//! saturation and NaN/∞ behaviour the serving path relies on.

use gpes_core::codec::{float32, sshort, strzodka16, ubyte, ushort, FloatSpecials, PackBias};

/// Every length from empty through a few vector widths: covers the
/// 1..=7 tails, exact multiples of 4/8, and one odd length past 32.
const LENS: [usize; 12] = [0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 31, 33];

const BIASES: [PackBias; 3] = [
    PackBias::QuarterTexel,
    PackBias::HalfTexel,
    PackBias::PaperDelta,
];

/// Deterministic value pattern hitting both byte extremes in every tail.
fn pattern(i: usize) -> u16 {
    [
        0, 1, 0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000, 0xFFFE, 0xFFFF,
    ][i % 10] as u16
        ^ (i as u16).wrapping_mul(0x9E37)
}

/// Synthesises the RGBA8 framebuffer bytes a kernel would store for one
/// already-encoded value, through the shader-mirror pack at `bias`.
fn fb_pixel_u8(v: u8, bias: PackBias) -> [u8; 4] {
    let b = ubyte::mirror_pack(ubyte::mirror_unpack(ubyte::encode(v)), bias);
    [b, 0, 0, 0]
}

fn fb_pixel_i16(v: i16, bias: PackBias) -> [u8; 4] {
    let b = sshort::mirror_pack(sshort::mirror_unpack(sshort::encode(v)), bias);
    // The short formats carry the byte pair in (R, A), mirroring the
    // LUMINANCE_ALPHA sampling layout.
    [b[0], 0, 0, b[1]]
}

fn fb_pixel_u16(v: u16, bias: PackBias) -> [u8; 4] {
    let b = ushort::mirror_pack(ushort::mirror_unpack(ushort::encode(v)), bias);
    [b[0], 0, 0, b[1]]
}

#[test]
fn ubyte_slices_match_per_element_at_every_tail() {
    for &len in &LENS {
        let values: Vec<u8> = (0..len).map(|i| pattern(i) as u8).collect();
        // Upload side: texel_count may exceed len (padded texture rows).
        for pad in [0, 1, 3] {
            let texels = len + pad;
            let batched = ubyte::encode_slice(&values, texels);
            let mut expected = vec![0u8; texels];
            for (dst, &v) in expected.iter_mut().zip(&values) {
                *dst = ubyte::encode(v);
            }
            assert_eq!(batched, expected, "ubyte encode len {len} pad {pad}");
        }
        // Readback side: decode from RGBA8 pixels, including a request
        // longer than the framebuffer (must truncate, not read junk).
        for bias in BIASES {
            let fb: Vec<u8> = values.iter().flat_map(|&v| fb_pixel_u8(v, bias)).collect();
            let batched = ubyte::decode_slice(&fb, len);
            let expected: Vec<u8> = fb.chunks_exact(4).map(|px| ubyte::decode(px[0])).collect();
            assert_eq!(batched, expected, "ubyte decode len {len} {bias:?}");
            assert_eq!(batched, values, "ubyte round-trip len {len} {bias:?}");
            assert_eq!(
                ubyte::decode_slice(&fb, len + 5),
                values,
                "ubyte over-length decode must truncate to the framebuffer"
            );
        }
    }
}

#[test]
fn sshort_slices_match_per_element_at_every_tail() {
    for &len in &LENS {
        let values: Vec<i16> = (0..len).map(|i| pattern(i) as i16).collect();
        let batched = sshort::encode_slice(&values, len);
        let expected: Vec<u8> = values.iter().flat_map(|&v| sshort::encode(v)).collect();
        assert_eq!(batched, expected, "sshort encode len {len}");
        // Zero-padding past the value count.
        let padded = sshort::encode_slice(&values, len + 2);
        assert_eq!(&padded[..len * 2], &expected[..]);
        assert_eq!(&padded[len * 2..], &[0u8; 4][..]);

        for bias in BIASES {
            let fb: Vec<u8> = values.iter().flat_map(|&v| fb_pixel_i16(v, bias)).collect();
            let batched = sshort::decode_slice(&fb, len);
            let expected: Vec<i16> = fb
                .chunks_exact(4)
                .map(|px| sshort::decode([px[0], px[3]]))
                .collect();
            assert_eq!(batched, expected, "sshort decode len {len} {bias:?}");
            assert_eq!(batched, values, "sshort round-trip len {len} {bias:?}");
        }
    }
}

#[test]
fn ushort_slices_match_per_element_at_every_tail() {
    for &len in &LENS {
        let values: Vec<u16> = (0..len).map(pattern).collect();
        let batched = ushort::encode_slice(&values, len);
        let expected: Vec<u8> = values.iter().flat_map(|&v| ushort::encode(v)).collect();
        assert_eq!(batched, expected, "ushort encode len {len}");

        for bias in BIASES {
            let fb: Vec<u8> = values.iter().flat_map(|&v| fb_pixel_u16(v, bias)).collect();
            let batched = ushort::decode_slice(&fb, len);
            assert_eq!(batched, values, "ushort round-trip len {len} {bias:?}");
        }
    }
}

#[test]
fn strzodka16_texel_slices_match_per_element_at_every_tail() {
    for &len in &LENS {
        let values: Vec<u16> = (0..len).map(pattern).collect();
        // Two values per RGBA texel; odd lengths leave the BA half padded.
        let texels = len.div_ceil(2).max(1);
        let batched = strzodka16::encode_texels(&values, texels);
        let mut expected = vec![0u8; texels * 4];
        for (dst, &v) in expected.chunks_exact_mut(2).zip(&values) {
            dst.copy_from_slice(&strzodka16::encode_u16(v));
        }
        assert_eq!(batched, expected, "strzodka16 encode len {len}");
        let decoded = strzodka16::decode_texels(&batched, len);
        assert_eq!(decoded, values, "strzodka16 round-trip len {len}");
    }
}

#[test]
fn float32_slices_preserve_nan_and_inf_bit_patterns() {
    // The §IV-E rotation is a pure bit permutation, so specials must
    // survive the slice paths exactly — including NaN payload bits.
    let specials = [
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::from_bits(0x7FC0_1234), // quiet NaN with payload
        f32::from_bits(0xFF80_0001), // signalling-NaN pattern
        f32::MAX,
        f32::MIN_POSITIVE,
        -0.0,
        1.5,
    ];
    for &len in &LENS {
        let values: Vec<f32> = (0..len).map(|i| specials[i % specials.len()]).collect();
        let batched = float32::encode_slice(&values, len);
        let expected: Vec<u8> = values.iter().flat_map(|&v| float32::encode(v)).collect();
        assert_eq!(batched, expected, "float32 encode len {len}");
        let back = float32::decode_slice(&batched, len);
        let got: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "float32 decode len {len} must be bit-exact");
    }
    // And through the shader-mirror pack with specials preserved. The
    // shader path canonicalises NaN payloads (fp32 arithmetic does not
    // carry them), so NaN-ness must survive but not the payload bits;
    // everything else must round-trip bit-exactly.
    for &v in &specials {
        let texel = float32::mirror_pack(v, PackBias::default(), FloatSpecials::Preserve);
        let back = float32::mirror_unpack(texel, FloatSpecials::Preserve);
        if v.is_nan() {
            assert!(back.is_nan(), "mirror round-trip lost NaN-ness");
        } else {
            assert_eq!(
                back.to_bits(),
                v.to_bits(),
                "mirror round-trip diverged for {v:?}"
            );
        }
    }
}

#[test]
fn ubyte_pack_saturates_and_flushes_specials() {
    for bias in BIASES {
        // In-range integers are identity.
        for v in [0.0f32, 1.0, 127.0, 254.0, 255.0] {
            assert_eq!(ubyte::decode(ubyte::mirror_pack(v, bias)), v as u8);
        }
        // Out-of-range saturates at the store clamp (eq. (2)).
        assert_eq!(ubyte::mirror_pack(-1.0, bias), 0, "{bias:?}");
        assert_eq!(ubyte::mirror_pack(-1e30, bias), 0, "{bias:?}");
        assert_eq!(ubyte::mirror_pack(256.0, bias), 255, "{bias:?}");
        assert_eq!(ubyte::mirror_pack(1e30, bias), 255, "{bias:?}");
        assert_eq!(ubyte::mirror_pack(f32::INFINITY, bias), 255, "{bias:?}");
        assert_eq!(ubyte::mirror_pack(f32::NEG_INFINITY, bias), 0, "{bias:?}");
        // GL clamps NaN to 0: comparisons are all false.
        assert_eq!(ubyte::mirror_pack(f32::NAN, bias), 0, "{bias:?}");
    }
}

#[test]
fn sshort_pack_is_exact_at_the_bounds_and_wraps_beyond() {
    for bias in BIASES {
        // The whole i16 domain is exact; the bounds are the risky spots.
        for v in [i16::MIN, -32767, -1, 0, 1, 32766, i16::MAX] {
            let bytes = sshort::mirror_pack(v as f32, bias);
            assert_eq!(sshort::decode(bytes), v, "{bias:?} value {v}");
        }
        // One past either bound wraps mod 2^16 (two's complement), the
        // same behaviour integer hardware would give — kernels that need
        // saturation clamp in-shader (the CNN dense layer does).
        assert_eq!(sshort::decode(sshort::mirror_pack(32768.0, bias)), i16::MIN);
        assert_eq!(
            sshort::decode(sshort::mirror_pack(-32769.0, bias)),
            i16::MAX
        );
        // NaN/∞ degenerate to byte arithmetic on NaN, which the store
        // clamp flushes to zero — deterministic, never UB.
        assert_eq!(sshort::decode(sshort::mirror_pack(f32::NAN, bias)), 0);
        assert_eq!(sshort::decode(sshort::mirror_pack(f32::INFINITY, bias)), 0);
        assert_eq!(
            sshort::decode(sshort::mirror_pack(f32::NEG_INFINITY, bias)),
            0
        );
    }
}
