//! Property-based tests for the GLSL ES front end and interpreter.

use gpes_glsl::admission::{admit, AdmissionStage};
use gpes_glsl::exec::{FloatModel, NoTextures};
use gpes_glsl::interp::Interpreter;
use gpes_glsl::{compile, compile_strict, ShaderKind, Value};
use proptest::prelude::*;

/// A strict-compatible fragment shader built from generated pieces:
/// declared uniforms only, constant loop bound — by construction it must
/// survive every admission stage.
fn generated_valid(n: u8, scale: i16, use_loop: bool) -> String {
    let body = if use_loop {
        format!(
            "float acc = 0.0;\n  \
             for (int i = 0; i < {n}; i++) {{ acc += u_k; }}\n  \
             gl_FragColor = vec4(acc * {scale}.0);"
        )
    } else {
        format!("gl_FragColor = vec4(u_k * {scale}.0);")
    };
    format!("precision highp float;\nuniform float u_k;\nvoid main() {{\n  {body}\n}}")
}

/// Compiles and runs a fragment shader that computes `expr` into the red
/// channel scaled into [0,1]; returns the raw float the kernel computed
/// via a 255-scaled encoding trick (we read the value back through a
/// uniform-free expression instead: store expr/K).
fn eval_scalar(expr: &str, uniforms: &[(&str, Value)]) -> f32 {
    let decls: String = uniforms
        .iter()
        .map(|(n, v)| {
            let ty = match v {
                Value::Float(_) => "float",
                Value::Int(_) => "int",
                Value::Bool(_) => "bool",
                Value::Vec2(_) => "vec2",
                _ => panic!("unsupported uniform in test"),
            };
            format!("uniform {ty} {n};\n")
        })
        .collect();
    let src = format!(
        "precision highp float;\n{decls}\
         void main() {{ gl_FragColor = vec4({expr}); }}"
    );
    let shader = compile(ShaderKind::Fragment, &src)
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let tex = NoTextures;
    let mut interp = Interpreter::with_model(&shader, &tex, FloatModel::Exact).expect("interp");
    for (n, v) in uniforms {
        interp.set_global(n, v.clone()).expect("uniform");
    }
    interp.run_main().expect("run");
    interp.frag_color().expect("color")[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interpreter float arithmetic matches Rust f32 semantics exactly
    /// under the exact model.
    #[test]
    fn float_arithmetic_matches_rust(a in -1.0e6f32..1.0e6, b in -1.0e6f32..1.0e6) {
        let got = eval_scalar(
            "(u_a + u_b) * 0.5 - u_a / 4.0",
            &[("u_a", Value::Float(a)), ("u_b", Value::Float(b))],
        );
        let expect = (a + b) * 0.5 - a / 4.0;
        prop_assert_eq!(got.to_bits(), expect.to_bits());
    }

    /// GLSL `mod` follows the spec identity x − y·⌊x/y⌋ for positive y.
    #[test]
    fn mod_matches_spec(x in -1.0e4f32..1.0e4, y in 0.5f32..100.0) {
        let got = eval_scalar(
            "mod(u_x, u_y)",
            &[("u_x", Value::Float(x)), ("u_y", Value::Float(y))],
        );
        let expect = x - y * (x / y).floor();
        prop_assert_eq!(got.to_bits(), expect.to_bits());
        prop_assert!(got >= 0.0 || expect < 0.0);
    }

    /// floor/ceil/fract identities hold everywhere.
    #[test]
    fn floor_ceil_fract_identities(x in -1.0e6f32..1.0e6) {
        let f = eval_scalar("floor(u_x)", &[("u_x", Value::Float(x))]);
        let c = eval_scalar("ceil(u_x)", &[("u_x", Value::Float(x))]);
        let r = eval_scalar("fract(u_x)", &[("u_x", Value::Float(x))]);
        prop_assert_eq!(f, x.floor());
        prop_assert_eq!(c, x.ceil());
        prop_assert_eq!(r, x - x.floor());
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// clamp/min/max agree with Rust and are order-consistent.
    #[test]
    fn clamp_min_max(x in -100.0f32..100.0, lo in -50.0f32..0.0, hi in 0.0f32..50.0) {
        let got = eval_scalar(
            "clamp(u_x, u_lo, u_hi)",
            &[
                ("u_x", Value::Float(x)),
                ("u_lo", Value::Float(lo)),
                ("u_hi", Value::Float(hi)),
            ],
        );
        prop_assert_eq!(got, x.max(lo).min(hi));
        let mn = eval_scalar(
            "min(u_a, u_b)",
            &[("u_a", Value::Float(x)), ("u_b", Value::Float(lo))],
        );
        prop_assert_eq!(mn, x.min(lo));
    }

    /// Integer loops accumulate exactly like Rust i32 arithmetic.
    #[test]
    fn int_loop_accumulation(n in 0i32..64, step in -100i32..100) {
        let src = format!(
            "precision highp float;\n\
             void main() {{\n\
               int acc = 0;\n\
               for (int i = 0; i < {n}; i++) {{ acc = acc + {step}; }}\n\
               gl_FragColor = vec4(float(acc));\n\
             }}"
        );
        let shader = compile(ShaderKind::Fragment, &src).expect("compile");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        interp.run_main().expect("run");
        // gl_FragColor is clamped on store, so read the raw global.
        let raw = interp.global("gl_FragColor").expect("color").clone();
        if let Value::Vec4(c) = raw {
            prop_assert_eq!(c[0], (n * step) as f32);
        } else {
            prop_assert!(false, "unexpected value kind");
        }
    }

    /// Swizzle read/write round-trips arbitrary lane selections.
    #[test]
    fn swizzle_roundtrip(a: [bool; 4]) {
        // Build a permutation-ish swizzle from the bools.
        let sel: String = a
            .iter()
            .enumerate()
            .map(|(i, &flip)| {
                let lanes = ['x', 'y', 'z', 'w'];
                lanes[if flip { 3 - i } else { i }]
            })
            .collect();
        let src = format!(
            "precision highp float;\n\
             void main() {{\n\
               vec4 v = vec4(0.1, 0.2, 0.3, 0.4);\n\
               vec4 w = v.{sel};\n\
               gl_FragColor = w.{sel2};\n\
             }}",
            sel2 = "xyzw",
        );
        let shader = compile(ShaderKind::Fragment, &src).expect("compile");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        interp.run_main().expect("run");
        let got = interp.frag_color().expect("color");
        let v = [0.1f32, 0.2, 0.3, 0.4];
        for (i, &flip) in a.iter().enumerate() {
            let lane = if flip { 3 - i } else { i };
            prop_assert_eq!(got[i], v[lane]);
        }
    }

    /// Lexer + parser never panic on arbitrary byte soup (errors only).
    #[test]
    fn frontend_total_on_garbage(src in "[ -~]{0,200}") {
        let _ = compile(ShaderKind::Fragment, &src);
    }

    /// The preprocessor in isolation is total on arbitrary text,
    /// including directive-shaped garbage and unbalanced conditionals.
    #[test]
    fn preprocessor_total_on_garbage(src in "[ -~\\n#]{0,300}") {
        let _ = gpes_glsl::preprocess(&src);
    }

    /// Directive-heavy soup: hash-prefixed lines with plausible keywords
    /// never panic either.
    #[test]
    fn preprocessor_total_on_directive_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("#define A 1".to_owned()),
                Just("#define F(x) (x*x)".to_owned()),
                Just("#ifdef A".to_owned()),
                Just("#ifndef B".to_owned()),
                Just("#if A + 2 > 1".to_owned()),
                Just("#elif defined(A)".to_owned()),
                Just("#else".to_owned()),
                Just("#endif".to_owned()),
                Just("#undef A".to_owned()),
                Just("float F = F(A);".to_owned()),
                "[ -~]{0,32}",
            ],
            0..24,
        ),
    ) {
        let src = parts.join("\n");
        // Whatever survives must keep its line count (span fidelity).
        if let Ok(out) = gpes_glsl::preprocess(&src) {
            prop_assert_eq!(out.source.lines().count(), src.lines().count());
        }
    }

    /// Macro expansion preserves compile-equivalence: a shader using a
    /// macro for a literal behaves identically to the substituted form.
    #[test]
    fn macro_literal_equivalence(v in -1000i32..1000) {
        let with_macro = format!(
            "precision highp float;\n#define V {v}\n\
             void main() {{ gl_FragColor = vec4(float(V)); }}"
        );
        let direct = format!(
            "precision highp float;\n\
             void main() {{ gl_FragColor = vec4(float({v})); }}"
        );
        let run = |src: &str| {
            let shader = compile(ShaderKind::Fragment, src).expect("compile");
            let tex = NoTextures;
            let mut interp = Interpreter::new(&shader, &tex).expect("interp");
            interp.run_main().expect("run");
            interp.global("gl_FragColor").expect("color").clone()
        };
        prop_assert_eq!(run(&with_macro), run(&direct));
    }

    /// Vector arithmetic distributes component-wise like Rust arrays.
    #[test]
    fn vec_componentwise(a: [i16; 3], b: [i16; 3]) {
        let av = [a[0] as f32, a[1] as f32, a[2] as f32];
        let bv = [b[0] as f32, b[1] as f32, b[2] as f32];
        let src = "precision highp float;\nuniform vec3 u_a;\nuniform vec3 u_b;\n\
                   varying vec2 v_unused;\n\
                   void main() { vec3 r = u_a * u_b + u_a; gl_FragColor = vec4(r, 1.0); }";
        let shader = compile(ShaderKind::Fragment, src).expect("compile");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        interp.set_global("u_a", Value::Vec3(av)).expect("a");
        interp.set_global("u_b", Value::Vec3(bv)).expect("b");
        interp.run_main().expect("run");
        let raw = interp.global("gl_FragColor").expect("color").clone();
        if let Value::Vec4(c) = raw {
            for i in 0..3 {
                prop_assert_eq!(c[i], av[i] * bv[i] + av[i]);
            }
        }
    }

    /// Generated-valid programs pass the full admission pipeline *and*
    /// run: the admitted shader computes the accumulation the generator
    /// encoded, in the same f32 op order.
    #[test]
    fn generated_valid_sources_admit_and_run(
        n in 0u8..16,
        scale in -100i16..100,
        use_loop: bool,
    ) {
        let src = generated_valid(n, scale, use_loop);
        let shader = admit(ShaderKind::Fragment, &src)
            .unwrap_or_else(|d| panic!("valid source rejected: {d}\n{src}"));
        let tex = NoTextures;
        let mut interp =
            Interpreter::with_model(&shader, &tex, FloatModel::Exact).expect("interp");
        interp.set_global("u_k", Value::Float(1.5)).expect("uniform");
        interp.run_main().expect("run");
        let expect = if use_loop {
            let mut acc = 0.0f32;
            for _ in 0..n {
                acc += 1.5;
            }
            acc * scale as f32
        } else {
            1.5 * scale as f32
        };
        let raw = interp.global("gl_FragColor").expect("color").clone();
        if let Value::Vec4(c) = raw {
            prop_assert_eq!(c[0], expect);
        } else {
            prop_assert!(false, "unexpected value kind");
        }
    }

    /// Truncating a valid program at any byte never panics admission:
    /// the prefix either still admits or rejects with a typed,
    /// non-empty, stage-tagged diagnostic.
    #[test]
    fn truncated_sources_reject_typed_never_panic(
        n in 0u8..16,
        scale in -100i16..100,
        cut in 0usize..256,
    ) {
        let src = generated_valid(n, scale, true);
        let cut = cut.min(src.len());
        match admit(ShaderKind::Fragment, &src[..cut]) {
            Ok(_) => {}
            Err(d) => {
                prop_assert!(!d.message.is_empty());
                prop_assert!(matches!(
                    d.stage,
                    AdmissionStage::Parse | AdmissionStage::Strict | AdmissionStage::Sema
                ));
            }
        }
    }

    /// Splicing arbitrary bytes into a valid program never panics, and
    /// admission's verdict always matches `compile_strict`'s — the
    /// registry gate admits exactly what the strict compiler accepts.
    #[test]
    fn mutated_sources_match_compile_strict(
        pos in 0usize..200,
        splice in "[ -~]{0,12}",
    ) {
        let src = generated_valid(7, 3, true);
        let pos = pos.min(src.len());
        let mutated = format!("{}{}{}", &src[..pos], splice, &src[pos..]);
        let admitted = admit(ShaderKind::Fragment, &mutated).is_ok();
        let strict = compile_strict(ShaderKind::Fragment, &mutated).is_ok();
        prop_assert_eq!(admitted, strict, "admit/compile_strict diverge on {:?}", mutated);
    }

    /// Admission is total on arbitrary byte soup — errors only, never a
    /// panic, exactly like the raw front end.
    #[test]
    fn admission_total_on_garbage(src in "[ -~]{0,200}") {
        let _ = admit(ShaderKind::Fragment, &src);
    }
}
