//! Property-based differential testing: randomly generated shader
//! programs must behave **bit-identically** on the bytecode VM and the
//! tree-walking interpreter under every float model — same fragment
//! colour bits, same `OpProfile` counters, same discard/output flags,
//! and, when a program traps, the same runtime error.
//!
//! The generator builds programs that are valid by construction (they
//! pass `sema::check`) but deliberately exercise the lowerer's whole
//! surface: nested scopes with shadowing, for/while loops with
//! break/continue, swizzle lvalues, arrays, matrices, user functions
//! with `out`/`inout` parameters, ternaries, short-circuit logic,
//! compound assignment and increment/decrement.

use gpes_glsl::exec::{FloatModel, NoTextures};
use gpes_glsl::interp::Interpreter;
use gpes_glsl::spmd::SpmdVm;
use gpes_glsl::vm::Vm;
use gpes_glsl::{compile, lower, ShaderKind, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Tiny deterministic generator
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flt(&mut self) -> f32 {
        // Small-magnitude literals keep intermediate values finite often
        // enough to exercise both finite and non-finite paths.
        let v = (self.next() % 2000) as f32 / 100.0 - 10.0;
        (v * 100.0).round() / 100.0
    }
}

struct Gen {
    rng: Rng,
    /// Float-typed locals currently in scope.
    floats: Vec<String>,
    /// vec4-typed locals currently in scope.
    vec4s: Vec<String>,
    /// Int-typed locals currently in scope.
    ints: Vec<String>,
    next_id: u32,
    depth: u32,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: Rng::new(seed),
            floats: vec!["u_a".into(), "u_b".into()],
            vec4s: vec!["u_v".into()],
            ints: vec!["u_i".into()],
            next_id: 0,
            depth: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.next_id += 1;
        format!("{prefix}{}", self.next_id)
    }

    fn float_expr(&mut self) -> String {
        self.depth += 1;
        let max = if self.depth > 4 { 3 } else { 10 };
        let e = match self.rng.below(max) {
            0 => format!("{:?}", self.rng.flt()),
            1 => self.floats[self.rng.below(self.floats.len() as u64) as usize].clone(),
            2 => {
                let v = self.vec4s[self.rng.below(self.vec4s.len() as u64) as usize].clone();
                let sw = ["x", "y", "z", "w"][self.rng.below(4) as usize];
                format!("{v}.{sw}")
            }
            3 => {
                let a = self.float_expr();
                let b = self.float_expr();
                let op = ["+", "-", "*", "/"][self.rng.below(4) as usize];
                format!("({a} {op} {b})")
            }
            4 => {
                let a = self.float_expr();
                let f = ["fract", "floor", "abs", "sign", "exp2", "sqrt", "sin"]
                    [self.rng.below(7) as usize];
                format!("{f}({a})")
            }
            5 => {
                let a = self.float_expr();
                let b = self.float_expr();
                let f = ["min", "max", "mod", "pow"][self.rng.below(4) as usize];
                format!("{f}({a}, {b})")
            }
            6 => {
                let a = self.float_expr();
                let b = self.float_expr();
                let c = self.float_expr();
                format!("clamp({a}, min({b}, {c}), max({b}, {c}))")
            }
            7 => {
                let c = self.bool_expr();
                let a = self.float_expr();
                let b = self.float_expr();
                format!("(({c}) ? {a} : {b})")
            }
            8 => {
                let i = self.int_expr();
                format!("float({i})")
            }
            _ => {
                let a = self.vec4_expr();
                let b = self.vec4_expr();
                format!("dot({a}, {b})")
            }
        };
        self.depth -= 1;
        e
    }

    fn vec4_expr(&mut self) -> String {
        self.depth += 1;
        let max = if self.depth > 3 { 2 } else { 5 };
        let e = match self.rng.below(max) {
            0 => {
                let a = self.float_expr();
                format!("vec4({a})")
            }
            1 => self.vec4s[self.rng.below(self.vec4s.len() as u64) as usize].clone(),
            2 => {
                let a = self.vec4_expr();
                let b = self.float_expr();
                format!("({a} * {b})")
            }
            3 => {
                let a = self.vec4_expr();
                let b = self.vec4_expr();
                format!("({a} + {b})")
            }
            _ => {
                let a = self.vec4_expr();
                format!("{a}.wzyx")
            }
        };
        self.depth -= 1;
        e
    }

    fn int_expr(&mut self) -> String {
        self.depth += 1;
        let max = if self.depth > 4 { 2 } else { 4 };
        let e = match self.rng.below(max) {
            0 => format!("{}", self.rng.below(17) as i64 - 8),
            1 => self.ints[self.rng.below(self.ints.len() as u64) as usize].clone(),
            2 => {
                let a = self.int_expr();
                let b = self.int_expr();
                let op = ["+", "-", "*"][self.rng.below(3) as usize];
                format!("({a} {op} {b})")
            }
            _ => {
                let a = self.float_expr();
                format!("int({a})")
            }
        };
        self.depth -= 1;
        e
    }

    fn bool_expr(&mut self) -> String {
        let a = self.float_expr();
        let b = self.float_expr();
        let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.below(6) as usize];
        match self.rng.below(3) {
            0 => format!("{a} {op} {b}"),
            1 => {
                let c = self.int_expr();
                let d = self.int_expr();
                format!("({a} {op} {b}) && ({c} < {d})")
            }
            _ => {
                let c = self.int_expr();
                let d = self.int_expr();
                format!("({a} {op} {b}) || ({c} >= {d})")
            }
        }
    }

    fn stmt(&mut self, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        match self.rng.below(10) {
            0 | 1 => {
                let name = self.fresh("f");
                let init = self.float_expr();
                out.push_str(&format!("{pad}float {name} = {init};\n"));
                self.floats.push(name);
            }
            2 => {
                let name = self.fresh("v");
                let init = self.vec4_expr();
                out.push_str(&format!("{pad}vec4 {name} = {init};\n"));
                self.vec4s.push(name);
            }
            3 => {
                let target = self.floats[self.rng.below(self.floats.len() as u64) as usize].clone();
                if target.starts_with("u_") {
                    return; // uniforms are read-only
                }
                let rhs = self.float_expr();
                let op = ["=", "+=", "-=", "*="][self.rng.below(4) as usize];
                out.push_str(&format!("{pad}{target} {op} {rhs};\n"));
            }
            4 => {
                let target = self.vec4s[self.rng.below(self.vec4s.len() as u64) as usize].clone();
                if target.starts_with("u_") {
                    return;
                }
                let sw = ["x", "yz", "xw", "zyx"][self.rng.below(4) as usize];
                if sw.len() == 1 {
                    let rhs = self.float_expr();
                    out.push_str(&format!("{pad}{target}.{sw} += {rhs};\n"));
                } else {
                    let comps: Vec<String> = (0..sw.len()).map(|_| self.float_expr()).collect();
                    out.push_str(&format!(
                        "{pad}{target}.{sw} = vec{}({});\n",
                        sw.len(),
                        comps.join(", ")
                    ));
                }
            }
            5 => {
                let cond = self.bool_expr();
                out.push_str(&format!("{pad}if ({cond}) {{\n"));
                let scope = self.save_scope();
                self.stmt(out, indent + 1);
                self.stmt(out, indent + 1);
                self.restore_scope(scope);
                out.push_str(&format!("{pad}}} else {{\n"));
                let scope = self.save_scope();
                self.stmt(out, indent + 1);
                self.restore_scope(scope);
                out.push_str(&format!("{pad}}}\n"));
            }
            6 if indent < 3 => {
                let i = self.fresh("i");
                let n = 2 + self.rng.below(6);
                let acc = self.floats[self.rng.below(self.floats.len() as u64) as usize].clone();
                out.push_str(&format!("{pad}for (int {i} = 0; {i} < {n}; {i}++) {{\n"));
                let scope = self.save_scope();
                self.ints.push(i.clone());
                if !acc.starts_with("u_") {
                    out.push_str(&format!("{pad}    {acc} += float({i}) * 0.125;\n"));
                }
                self.stmt(out, indent + 1);
                if self.rng.below(4) == 0 {
                    out.push_str(&format!("{pad}    if ({i} == 1) continue;\n"));
                }
                if self.rng.below(4) == 0 {
                    out.push_str(&format!("{pad}    if ({i} > 3) break;\n"));
                }
                self.restore_scope(scope);
                out.push_str(&format!("{pad}}}\n"));
            }
            7 => {
                let name = self.fresh("a");
                let idx = self.rng.below(3);
                let e = self.float_expr();
                out.push_str(&format!(
                    "{pad}float {name}[3];\n{pad}{name}[{idx}] = {e};\n"
                ));
                out.push_str(&format!("{pad}{name}[2] = {name}[{idx}] * 0.5;\n"));
                self.floats.push(format!("{name}[2]"));
            }
            8 => {
                let target = self.floats[self.rng.below(self.floats.len() as u64) as usize].clone();
                if target.starts_with("u_") || target.contains('[') {
                    return;
                }
                let inc = ["++", "--"][self.rng.below(2) as usize];
                out.push_str(&format!("{pad}{target}{inc};\n"));
            }
            _ => {
                let m = self.fresh("m");
                let a = self.float_expr();
                let b = self.float_expr();
                out.push_str(&format!("{pad}mat2 {m} = mat2({a}, {b}, 1.0, 2.0);\n"));
                let v = self.fresh("f");
                out.push_str(&format!("{pad}float {v} = ({m} * vec2(1.0, 0.5)).x;\n"));
                self.floats.push(v);
            }
        }
    }

    fn save_scope(&self) -> (usize, usize, usize) {
        (self.floats.len(), self.vec4s.len(), self.ints.len())
    }

    fn restore_scope(&mut self, s: (usize, usize, usize)) {
        self.floats.truncate(s.0);
        self.vec4s.truncate(s.1);
        self.ints.truncate(s.2);
    }

    fn program(&mut self) -> String {
        let mut src = String::from(
            "precision highp float;\n\
             uniform float u_a;\nuniform float u_b;\nuniform vec4 u_v;\nuniform int u_i;\n",
        );
        // Occasionally a plain mutable global (exercises per-invocation
        // reset) and a helper function with an out parameter.
        let with_global = self.rng.below(2) == 0;
        if with_global {
            src.push_str("float g_acc = 0.25;\n");
            self.floats.push("g_acc".into());
        }
        let with_fn = self.rng.below(2) == 0;
        if with_fn {
            src.push_str(
                "float helper(float x, out float doubled, inout float acc) {\n\
                 \x20   doubled = x * 2.0;\n\
                 \x20   acc += x;\n\
                 \x20   return fract(x) + 0.125;\n\
                 }\n",
            );
        }
        src.push_str("void main() {\n");
        src.push_str("    float s0 = u_a * 0.5;\n");
        self.floats.push("s0".into());
        let n_stmts = 3 + self.rng.below(6);
        for _ in 0..n_stmts {
            self.stmt(&mut src, 1);
        }
        if with_fn {
            src.push_str("    float h1; float h2 = 0.5;\n");
            src.push_str("    float hr = helper(s0, h1, h2);\n");
            src.push_str("    s0 += hr + h1 + h2;\n");
        }
        let r = self.float_expr();
        let g = self.float_expr();
        src.push_str(&format!("    gl_FragColor = vec4({r}, {g}, s0, 1.0);\n"));
        src.push_str("}\n");
        src
    }
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

fn uniforms(seed: u64) -> Vec<(&'static str, Value)> {
    let mut rng = Rng::new(seed.wrapping_mul(31).wrapping_add(7));
    vec![
        ("u_a", Value::Float(rng.flt())),
        ("u_b", Value::Float(rng.flt())),
        (
            "u_v",
            Value::Vec4([rng.flt(), rng.flt(), rng.flt(), rng.flt()]),
        ),
        ("u_i", Value::Int(rng.below(11) as i32 - 5)),
    ]
}

fn check_program(seed: u64) {
    let src = Gen::new(seed).program();
    let shader = match compile(ShaderKind::Fragment, &src) {
        Ok(s) => s,
        Err(e) => panic!("generated program failed to compile: {e}\n{src}"),
    };
    let exe = match lower(&shader) {
        Ok(e) => e,
        Err(e) => panic!("generated program failed to lower: {e}\n{src}"),
    };
    let tex = NoTextures;
    for model in [FloatModel::Exact, FloatModel::Vc4Sfu, FloatModel::Mediump16] {
        let mut vm = Vm::with_model(&exe, &tex, model).expect("vm init");
        let mut interp = Interpreter::with_model(&shader, &tex, model).expect("interp init");
        for (name, value) in uniforms(seed) {
            vm.set_global(name, value.clone()).expect("vm uniform");
            interp.set_global(name, value).expect("interp uniform");
        }
        // Two invocations back to back: the second catches state leaking
        // across invocations (globals reset, stale stack, arena reuse).
        for invocation in 0..2 {
            let vr = vm.run_main();
            let ir = interp.run_main();
            match (vr, ir) {
                (Ok(()), Ok(())) => {
                    let vc = vm.frag_color().map(|c| c.map(f32::to_bits));
                    let ic = interp.frag_color().map(|c| c.map(f32::to_bits));
                    assert_eq!(
                        vc, ic,
                        "colour diverged (seed {seed}, {model:?}, invocation {invocation})\n{src}"
                    );
                    assert_eq!(
                        vm.discarded(),
                        interp.discarded(),
                        "discard flag diverged (seed {seed})\n{src}"
                    );
                    assert_eq!(
                        vm.wrote_outputs(),
                        interp.wrote_outputs(),
                        "output flags diverged (seed {seed})\n{src}"
                    );
                }
                (Err(ve), Err(ie)) => {
                    assert_eq!(
                        ve.to_string(),
                        ie.to_string(),
                        "errors diverged (seed {seed}, {model:?})\n{src}"
                    );
                    break; // state after an error is unspecified
                }
                (vr, ir) => panic!(
                    "one executor trapped and the other did not (seed {seed}, \
                     {model:?}): vm={vr:?} interp={ir:?}\n{src}"
                ),
            }
            assert_eq!(
                vm.profile(),
                interp.profile(),
                "op profiles diverged (seed {seed}, {model:?}, invocation {invocation})\n{src}"
            );
        }
    }

    // Third executor: the SPMD lane VM, each lane fed *different*
    // uniforms so generated branches genuinely diverge across the batch.
    // The oracle is one scalar VM run invocation-by-invocation in lane
    // order — exactly the contract the rasteriser relies on.
    for model in [FloatModel::Exact, FloatModel::Vc4Sfu, FloatModel::Mediump16] {
        for lanes in [4usize, 8] {
            let mut spmd = SpmdVm::with_model(&exe, &tex, model, lanes).expect("spmd init");
            let mut scalar = Vm::with_model(&exe, &tex, model).expect("vm init");
            let lane_seed = |lane: usize| seed ^ (lane as u64).wrapping_mul(0x9E37_79B9);
            for lane in 0..lanes {
                for (name, value) in uniforms(lane_seed(lane)) {
                    let slot = spmd.global_slot(name).expect("spmd uniform slot");
                    spmd.set_lane_slot(lane, slot, value);
                }
            }
            let batch = spmd.run_batch(lanes);
            let stop = match &batch {
                Ok(()) => lanes,
                Err(e) => e.lane,
            };
            for lane in 0..stop {
                for (name, value) in uniforms(lane_seed(lane)) {
                    scalar.set_global(name, value).expect("scalar uniform");
                }
                scalar.run_main().unwrap_or_else(|e| {
                    panic!(
                        "scalar oracle trapped before the SPMD batch did \
                         (seed {seed}, {model:?}, lane {lane}): {e}\n{src}"
                    )
                });
                assert!(
                    spmd.completed(lane),
                    "lane {lane} not retired (seed {seed}, {model:?})\n{src}"
                );
                assert_eq!(
                    spmd.discarded(lane),
                    scalar.discarded(),
                    "SPMD lane {lane} discard flag diverged (seed {seed}, {model:?})\n{src}"
                );
                // Discarded lanes never write a colour; the reused scalar
                // oracle keeps the previous invocation's value there.
                if !scalar.discarded() {
                    assert_eq!(
                        spmd.frag_color(lane).map(|c| c.map(f32::to_bits)),
                        scalar.frag_color().map(|c| c.map(f32::to_bits)),
                        "SPMD lane {lane} colour diverged (seed {seed}, {model:?}, {lanes} lanes)\n{src}"
                    );
                }
            }
            match batch {
                Ok(()) => assert_eq!(
                    spmd.profile(),
                    scalar.profile(),
                    "SPMD aggregate profile diverged (seed {seed}, {model:?}, {lanes} lanes)\n{src}"
                ),
                Err(e) => {
                    for (name, value) in uniforms(lane_seed(e.lane)) {
                        scalar.set_global(name, value).expect("scalar uniform");
                    }
                    let se = scalar
                        .run_main()
                        .expect_err("SPMD trapped where the scalar oracle succeeded");
                    assert_eq!(
                        e.error.to_string(),
                        se.to_string(),
                        "SPMD trap diverged (seed {seed}, {model:?}, lane {})\n{src}",
                        e.lane
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Generated programs behave identically on both executors under
    /// every float model.
    #[test]
    fn vm_matches_interpreter_on_generated_programs(seed in 0u64..1_000_000) {
        check_program(seed);
    }
}

/// A handful of fixed seeds always run, independent of `PROPTEST_CASES`,
/// so the suite cannot silently lose coverage.
#[test]
fn vm_matches_interpreter_on_fixed_seeds() {
    for seed in [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 12345, 999_999] {
        check_program(seed);
    }
}
