//! Divergence-focused differential testing for the SPMD lane VM.
//!
//! Where `vm_differential.rs` sweeps the whole language surface, this
//! suite generates programs that are *pathologically branchy* — nested
//! `if`/`else` keyed on per-lane uniforms, `discard` inside branches,
//! short-circuit `&&`/`||`, and loops whose `break`/`continue` depth
//! depends on lane data — then runs them under `Spmd{4}` and `Spmd{8}`
//! at every batch width from one lane up to full occupancy (the
//! partial-band tails the rasteriser produces at band edges).
//!
//! Oracles are the scalar bytecode VM *and* the tree-walking
//! interpreter, each run invocation-by-invocation in lane order.
//! Everything must be bit-identical: colour bits, discard and output
//! flags, aggregate `OpProfile` counters, and trap messages.

use gpes_glsl::exec::{FloatModel, NoTextures};
use gpes_glsl::interp::Interpreter;
use gpes_glsl::spmd::SpmdVm;
use gpes_glsl::vm::Vm;
use gpes_glsl::{compile, lower, ShaderKind, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Branch-heavy generator
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flt(&mut self) -> f32 {
        let v = (self.next() % 2000) as f32 / 100.0 - 10.0;
        (v * 100.0).round() / 100.0
    }
}

struct Gen {
    rng: Rng,
    next_id: u32,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: Rng::new(seed),
            next_id: 0,
        }
    }

    /// A scalar expression over the uniforms — cheap on purpose; the
    /// interesting structure lives in the control flow around it.
    fn scalar(&mut self) -> String {
        match self.rng.below(6) {
            0 => format!("{:?}", self.rng.flt()),
            1 => "u_a".into(),
            2 => "u_b".into(),
            3 => {
                let sw = ["x", "y", "z", "w"][self.rng.below(4) as usize];
                format!("u_v.{sw}")
            }
            4 => format!("(u_a * {:?})", self.rng.flt()),
            _ => format!("fract(u_b + {:?})", self.rng.flt()),
        }
    }

    /// A comparison that genuinely splits lanes fed different uniforms.
    fn cmp(&mut self) -> String {
        let a = self.scalar();
        let b = self.scalar();
        let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.below(6) as usize];
        format!("{a} {op} {b}")
    }

    /// Conditions lean hard on short-circuit `&&`/`||`: under SPMD the
    /// right-hand side must only run for the lanes still undecided.
    fn cond(&mut self) -> String {
        match self.rng.below(4) {
            0 => self.cmp(),
            1 => {
                let a = self.cmp();
                let b = self.cmp();
                format!("({a}) && ({b})")
            }
            2 => {
                let a = self.cmp();
                let b = self.cmp();
                format!("({a}) || ({b})")
            }
            _ => {
                let a = self.cmp();
                let b = self.cmp();
                let c = self.cmp();
                format!("(({a}) && ({b})) || ({c})")
            }
        }
    }

    fn stmt(&mut self, out: &mut String, indent: usize, depth: u32) {
        let pad = "    ".repeat(indent);
        match self.rng.below(if depth < 3 { 7 } else { 3 }) {
            0 => {
                let e = self.scalar();
                out.push_str(&format!("{pad}acc += {e};\n"));
            }
            1 => {
                let c = self.cond();
                let a = self.scalar();
                let b = self.scalar();
                out.push_str(&format!("{pad}acc = ({c}) ? {a} : {b};\n"));
            }
            2 => {
                let c = self.cond();
                out.push_str(&format!("{pad}if ({c}) {{ discard; }}\n"));
            }
            3 => {
                // Nested divergence: lanes that took this branch may
                // split again inside it.
                let c = self.cond();
                out.push_str(&format!("{pad}if ({c}) {{\n"));
                self.stmt(out, indent + 1, depth + 1);
                self.stmt(out, indent + 1, depth + 1);
                out.push_str(&format!("{pad}}} else {{\n"));
                self.stmt(out, indent + 1, depth + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            4 => {
                let c = self.cond();
                out.push_str(&format!("{pad}if ({c}) {{\n"));
                self.stmt(out, indent + 1, depth + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            5 => {
                // Loop with a data-dependent early exit: trip count
                // differs per lane, so reconvergence happens at the
                // loop's merge point, not per iteration.
                self.next_id += 1;
                let i = format!("i{}", self.next_id);
                let n = 2 + self.rng.below(6);
                let t = self.rng.flt();
                let exit = ["break", "continue"][self.rng.below(2) as usize];
                out.push_str(&format!(
                    "{pad}for (int {i} = 0; {i} < {n}; {i}++) {{\n\
                     {pad}    if (acc * float({i}) > {t:?}) {{ {exit}; }}\n\
                     {pad}    acc += float({i}) * 0.125;\n"
                ));
                if depth < 2 {
                    self.stmt(out, indent + 1, depth + 2);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                // Divergent discard nested under another branch.
                let c1 = self.cond();
                let c2 = self.cond();
                out.push_str(&format!(
                    "{pad}if ({c1}) {{\n\
                     {pad}    if ({c2}) {{ discard; }}\n\
                     {pad}    acc *= 0.5;\n\
                     {pad}}}\n"
                ));
            }
        }
    }

    fn program(&mut self) -> String {
        let mut src = String::from(
            "precision highp float;\n\
             uniform float u_a;\nuniform float u_b;\nuniform vec4 u_v;\nuniform int u_i;\n\
             void main() {\n\
             \x20   float acc = u_a;\n",
        );
        let n = 4 + self.rng.below(5);
        for _ in 0..n {
            self.stmt(&mut src, 1, 0);
        }
        src.push_str("    gl_FragColor = vec4(acc, u_b - acc, fract(acc), 1.0);\n}\n");
        src
    }
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn uniforms(seed: u64) -> Vec<(&'static str, Value)> {
    let mut rng = Rng::new(seed.wrapping_mul(31).wrapping_add(7));
    vec![
        ("u_a", Value::Float(rng.flt())),
        ("u_b", Value::Float(rng.flt())),
        (
            "u_v",
            Value::Vec4([rng.flt(), rng.flt(), rng.flt(), rng.flt()]),
        ),
        ("u_i", Value::Int(rng.below(11) as i32 - 5)),
    ]
}

fn check_divergent(seed: u64) {
    let src = Gen::new(seed).program();
    let shader = match compile(ShaderKind::Fragment, &src) {
        Ok(s) => s,
        Err(e) => panic!("generated program failed to compile: {e}\n{src}"),
    };
    let exe = match lower(&shader) {
        Ok(e) => e,
        Err(e) => panic!("generated program failed to lower: {e}\n{src}"),
    };
    let tex = NoTextures;
    let lane_seed = |lane: usize| seed ^ (lane as u64).wrapping_mul(0x9E37_79B9);
    for model in [FloatModel::Exact, FloatModel::Vc4Sfu, FloatModel::Mediump16] {
        for lanes in [4usize, 8] {
            // Every batch width, including the partial tails a band edge
            // produces: active < lanes leaves the trailing lanes idle.
            for active in 1..=lanes {
                let mut spmd = SpmdVm::with_model(&exe, &tex, model, lanes).expect("spmd init");
                let mut scalar = Vm::with_model(&exe, &tex, model).expect("vm init");
                let mut interp =
                    Interpreter::with_model(&shader, &tex, model).expect("interp init");
                for lane in 0..active {
                    for (name, value) in uniforms(lane_seed(lane)) {
                        let slot = spmd.global_slot(name).expect("spmd uniform slot");
                        spmd.set_lane_slot(lane, slot, value);
                    }
                }
                let batch = spmd.run_batch(active);
                let stop = match &batch {
                    Ok(()) => active,
                    Err(e) => e.lane,
                };
                for lane in 0..stop {
                    for (name, value) in uniforms(lane_seed(lane)) {
                        scalar.set_global(name, value.clone()).expect("vm uniform");
                        interp.set_global(name, value).expect("interp uniform");
                    }
                    scalar.run_main().unwrap_or_else(|e| {
                        panic!(
                            "scalar oracle trapped before the SPMD batch did \
                             (seed {seed}, {model:?}, lane {lane}): {e}\n{src}"
                        )
                    });
                    interp.run_main().expect("interp oracle trapped");
                    assert!(
                        spmd.completed(lane),
                        "lane {lane} not retired (seed {seed}, {model:?})\n{src}"
                    );
                    assert_eq!(
                        spmd.discarded(lane),
                        scalar.discarded(),
                        "lane {lane} discard flag diverged (seed {seed}, {model:?})\n{src}"
                    );
                    assert_eq!(
                        scalar.discarded(),
                        interp.discarded(),
                        "oracles disagree on discard (seed {seed}, {model:?})\n{src}"
                    );
                    // A discarded lane never writes its colour: the
                    // sequentially-reused scalar oracle keeps the previous
                    // invocation's value there, so only compare colours
                    // for surviving lanes (what the rasteriser consumes).
                    if !scalar.discarded() {
                        let sc = spmd.frag_color(lane).map(|c| c.map(f32::to_bits));
                        assert_eq!(
                            sc,
                            scalar.frag_color().map(|c| c.map(f32::to_bits)),
                            "lane {lane} diverged from scalar VM (seed {seed}, {model:?}, \
                             {lanes} lanes, {active} active)\n{src}"
                        );
                        assert_eq!(
                            sc,
                            interp.frag_color().map(|c| c.map(f32::to_bits)),
                            "lane {lane} diverged from tree-walker (seed {seed}, {model:?}, \
                             {lanes} lanes, {active} active)\n{src}"
                        );
                    }
                    assert_eq!(
                        spmd.wrote_outputs(lane),
                        scalar.wrote_outputs(),
                        "lane {lane} output flags diverged (seed {seed}, {model:?})\n{src}"
                    );
                }
                match batch {
                    Ok(()) => {
                        assert_eq!(
                            spmd.profile(),
                            scalar.profile(),
                            "aggregate profile diverged from scalar VM (seed {seed}, \
                             {model:?}, {lanes} lanes, {active} active)\n{src}"
                        );
                        assert_eq!(
                            spmd.profile(),
                            interp.profile(),
                            "aggregate profile diverged from tree-walker (seed {seed}, \
                             {model:?}, {lanes} lanes, {active} active)\n{src}"
                        );
                    }
                    Err(e) => {
                        for (name, value) in uniforms(lane_seed(e.lane)) {
                            scalar.set_global(name, value).expect("vm uniform");
                        }
                        let se = scalar
                            .run_main()
                            .expect_err("SPMD trapped where the scalar oracle succeeded");
                        assert_eq!(
                            e.error.to_string(),
                            se.to_string(),
                            "trap diverged (seed {seed}, {model:?}, lane {})\n{src}",
                            e.lane
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Branch-heavy generated programs stay bit-identical across the
    /// SPMD VM, scalar VM, and tree-walker at every batch width.
    #[test]
    fn spmd_matches_oracles_on_divergent_programs(seed in 0u64..1_000_000) {
        check_divergent(seed);
    }
}

/// Fixed seeds always run, independent of `PROPTEST_CASES`.
#[test]
fn spmd_matches_oracles_on_fixed_seeds() {
    for seed in [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 4242, 777_777] {
        check_divergent(seed);
    }
}
