//! Token definitions for the GLSL ES 1.00 lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// Kinds of tokens in the GLSL ES 1.00 subset.
///
/// Operators that exist in desktop GLSL but are *reserved* in ES 1.00
/// (`%`, `&`, `|`, `^`, `<<`, `>>`, `~` and their assignment forms) are
/// rejected by the lexer; they never appear here. This mirrors the paper's
/// premise that shader-side integer packing must be expressed with
/// floor/mod arithmetic rather than bitwise operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (not a keyword).
    Ident(String),
    /// Floating point literal, e.g. `1.0`, `.5`, `2e-3`.
    FloatLit(f32),
    /// Integer literal, e.g. `42`, `0x1F`, `017`.
    IntLit(i32),
    /// Boolean literal `true` / `false`.
    BoolLit(bool),
    /// A language keyword, e.g. `uniform`, `if`, `vec4`.
    Keyword(Keyword),

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `^^`
    XorXor,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::FloatLit(v) => write!(f, "float literal `{v}`"),
            TokenKind::IntLit(v) => write!(f, "int literal `{v}`"),
            TokenKind::BoolLit(v) => write!(f, "bool literal `{v}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Semicolon => f.write_str("`;`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Question => f.write_str("`?`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::PlusEq => f.write_str("`+=`"),
            TokenKind::MinusEq => f.write_str("`-=`"),
            TokenKind::StarEq => f.write_str("`*=`"),
            TokenKind::SlashEq => f.write_str("`/=`"),
            TokenKind::EqEq => f.write_str("`==`"),
            TokenKind::NotEq => f.write_str("`!=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Bang => f.write_str("`!`"),
            TokenKind::AndAnd => f.write_str("`&&`"),
            TokenKind::OrOr => f.write_str("`||`"),
            TokenKind::XorXor => f.write_str("`^^`"),
            TokenKind::PlusPlus => f.write_str("`++`"),
            TokenKind::MinusMinus => f.write_str("`--`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// GLSL ES 1.00 keywords recognised by this implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // Names are self-describing GLSL keywords.
pub enum Keyword {
    // Storage / parameter qualifiers.
    Attribute,
    Const,
    Uniform,
    Varying,
    In,
    Out,
    Inout,
    // Precision.
    Precision,
    Highp,
    Mediump,
    Lowp,
    Invariant,
    // Control flow.
    If,
    Else,
    For,
    While,
    Do,
    Return,
    Break,
    Continue,
    Discard,
    // Types.
    Void,
    Float,
    Int,
    Bool,
    Vec2,
    Vec3,
    Vec4,
    Ivec2,
    Ivec3,
    Ivec4,
    Bvec2,
    Bvec3,
    Bvec4,
    Mat2,
    Mat3,
    Mat4,
    Sampler2D,
    SamplerCube,
    Struct,
}

impl Keyword {
    /// Looks a word up in the keyword table.
    pub fn from_word(word: &str) -> Option<Keyword> {
        Some(match word {
            "attribute" => Keyword::Attribute,
            "const" => Keyword::Const,
            "uniform" => Keyword::Uniform,
            "varying" => Keyword::Varying,
            "in" => Keyword::In,
            "out" => Keyword::Out,
            "inout" => Keyword::Inout,
            "precision" => Keyword::Precision,
            "highp" => Keyword::Highp,
            "mediump" => Keyword::Mediump,
            "lowp" => Keyword::Lowp,
            "invariant" => Keyword::Invariant,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "discard" => Keyword::Discard,
            "void" => Keyword::Void,
            "float" => Keyword::Float,
            "int" => Keyword::Int,
            "bool" => Keyword::Bool,
            "vec2" => Keyword::Vec2,
            "vec3" => Keyword::Vec3,
            "vec4" => Keyword::Vec4,
            "ivec2" => Keyword::Ivec2,
            "ivec3" => Keyword::Ivec3,
            "ivec4" => Keyword::Ivec4,
            "bvec2" => Keyword::Bvec2,
            "bvec3" => Keyword::Bvec3,
            "bvec4" => Keyword::Bvec4,
            "mat2" => Keyword::Mat2,
            "mat3" => Keyword::Mat3,
            "mat4" => Keyword::Mat4,
            "sampler2D" => Keyword::Sampler2D,
            "samplerCube" => Keyword::SamplerCube,
            "struct" => Keyword::Struct,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Attribute => "attribute",
            Keyword::Const => "const",
            Keyword::Uniform => "uniform",
            Keyword::Varying => "varying",
            Keyword::In => "in",
            Keyword::Out => "out",
            Keyword::Inout => "inout",
            Keyword::Precision => "precision",
            Keyword::Highp => "highp",
            Keyword::Mediump => "mediump",
            Keyword::Lowp => "lowp",
            Keyword::Invariant => "invariant",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::For => "for",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Discard => "discard",
            Keyword::Void => "void",
            Keyword::Float => "float",
            Keyword::Int => "int",
            Keyword::Bool => "bool",
            Keyword::Vec2 => "vec2",
            Keyword::Vec3 => "vec3",
            Keyword::Vec4 => "vec4",
            Keyword::Ivec2 => "ivec2",
            Keyword::Ivec3 => "ivec3",
            Keyword::Ivec4 => "ivec4",
            Keyword::Bvec2 => "bvec2",
            Keyword::Bvec3 => "bvec3",
            Keyword::Bvec4 => "bvec4",
            Keyword::Mat2 => "mat2",
            Keyword::Mat3 => "mat3",
            Keyword::Mat4 => "mat4",
            Keyword::Sampler2D => "sampler2D",
            Keyword::SamplerCube => "samplerCube",
            Keyword::Struct => "struct",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Words reserved by GLSL ES 1.00 that this implementation (like a
/// conformant driver) must reject if used as identifiers.
pub const RESERVED_WORDS: &[&str] = &[
    "asm",
    "class",
    "union",
    "enum",
    "typedef",
    "template",
    "this",
    "packed",
    "goto",
    "switch",
    "default",
    "inline",
    "noinline",
    "volatile",
    "public",
    "static",
    "extern",
    "external",
    "interface",
    "flat",
    "long",
    "short",
    "double",
    "half",
    "fixed",
    "unsigned",
    "superp",
    "input",
    "output",
    "hvec2",
    "hvec3",
    "hvec4",
    "dvec2",
    "dvec3",
    "dvec4",
    "fvec2",
    "fvec3",
    "fvec4",
    "sampler1D",
    "sampler3D",
    "sampler1DShadow",
    "sampler2DShadow",
    "sampler2DRect",
    "sampler3DRect",
    "sampler2DRectShadow",
    "sizeof",
    "cast",
    "namespace",
    "using",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for word in ["uniform", "vec4", "sampler2D", "discard", "mat3"] {
            let kw = Keyword::from_word(word).expect("keyword should be recognised");
            assert_eq!(kw.as_str(), word);
        }
    }

    #[test]
    fn non_keyword_is_none() {
        assert_eq!(Keyword::from_word("banana"), None);
        assert_eq!(Keyword::from_word("Vec4"), None); // case-sensitive
    }

    #[test]
    fn reserved_words_are_not_keywords() {
        for word in RESERVED_WORDS {
            assert_eq!(
                Keyword::from_word(word),
                None,
                "reserved word `{word}` must not lex as a keyword"
            );
        }
    }

    #[test]
    fn token_kind_display_is_nonempty() {
        let kinds = [
            TokenKind::Ident("x".into()),
            TokenKind::FloatLit(1.5),
            TokenKind::IntLit(3),
            TokenKind::PlusPlus,
            TokenKind::Eof,
        ];
        for k in kinds {
            assert!(!k.to_string().is_empty());
        }
    }
}
