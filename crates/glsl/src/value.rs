//! Runtime values for the interpreter.

use crate::types::{Scalar, Type};
use std::fmt;

/// A dynamically-typed GLSL value.
///
/// Matrices are stored column-major, as in GLSL: `Mat3([c0, c1, c2])` where
/// each column is `[x, y, z]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `float`
    Float(f32),
    /// `int`
    Int(i32),
    /// `bool`
    Bool(bool),
    /// `vec2`
    Vec2([f32; 2]),
    /// `vec3`
    Vec3([f32; 3]),
    /// `vec4`
    Vec4([f32; 4]),
    /// `ivec2`
    IVec2([i32; 2]),
    /// `ivec3`
    IVec3([i32; 3]),
    /// `ivec4`
    IVec4([i32; 4]),
    /// `bvec2`
    BVec2([bool; 2]),
    /// `bvec3`
    BVec3([bool; 3]),
    /// `bvec4`
    BVec4([bool; 4]),
    /// `mat2`, column-major
    Mat2([[f32; 2]; 2]),
    /// `mat3`, column-major
    Mat3([[f32; 3]; 3]),
    /// `mat4`, column-major
    Mat4([[f32; 4]; 4]),
    /// `sampler2D` — bound texture unit index.
    Sampler(u32),
    /// Fixed-size array.
    Array(Vec<Value>),
}

impl Value {
    /// The GLSL type of this value.
    pub fn ty(&self) -> Type {
        match self {
            Value::Float(_) => Type::Float,
            Value::Int(_) => Type::Int,
            Value::Bool(_) => Type::Bool,
            Value::Vec2(_) => Type::Vec2,
            Value::Vec3(_) => Type::Vec3,
            Value::Vec4(_) => Type::Vec4,
            Value::IVec2(_) => Type::IVec2,
            Value::IVec3(_) => Type::IVec3,
            Value::IVec4(_) => Type::IVec4,
            Value::BVec2(_) => Type::BVec2,
            Value::BVec3(_) => Type::BVec3,
            Value::BVec4(_) => Type::BVec4,
            Value::Mat2(_) => Type::Mat2,
            Value::Mat3(_) => Type::Mat3,
            Value::Mat4(_) => Type::Mat4,
            Value::Sampler(_) => Type::Sampler2D,
            Value::Array(elems) => {
                let elem_ty = elems.first().map(Value::ty).unwrap_or(Type::Float);
                Type::Array(Box::new(elem_ty), elems.len())
            }
        }
    }

    /// The zero/default value of a type (samplers default to unit 0).
    pub fn zero_of(ty: &Type) -> Value {
        match ty {
            Type::Void => Value::Float(0.0), // never read
            Type::Float => Value::Float(0.0),
            Type::Int => Value::Int(0),
            Type::Bool => Value::Bool(false),
            Type::Vec2 => Value::Vec2([0.0; 2]),
            Type::Vec3 => Value::Vec3([0.0; 3]),
            Type::Vec4 => Value::Vec4([0.0; 4]),
            Type::IVec2 => Value::IVec2([0; 2]),
            Type::IVec3 => Value::IVec3([0; 3]),
            Type::IVec4 => Value::IVec4([0; 4]),
            Type::BVec2 => Value::BVec2([false; 2]),
            Type::BVec3 => Value::BVec3([false; 3]),
            Type::BVec4 => Value::BVec4([false; 4]),
            Type::Mat2 => Value::Mat2([[0.0; 2]; 2]),
            Type::Mat3 => Value::Mat3([[0.0; 3]; 3]),
            Type::Mat4 => Value::Mat4([[0.0; 4]; 4]),
            Type::Sampler2D => Value::Sampler(0),
            Type::Array(elem, n) => Value::Array(vec![Value::zero_of(elem); *n]),
        }
    }

    /// Flattens float-based values to a component list
    /// (matrices column-major). `None` for samplers/arrays/non-float.
    pub fn float_components(&self) -> Option<Vec<f32>> {
        Some(match self {
            Value::Float(v) => vec![*v],
            Value::Vec2(v) => v.to_vec(),
            Value::Vec3(v) => v.to_vec(),
            Value::Vec4(v) => v.to_vec(),
            Value::Mat2(m) => m.iter().flatten().copied().collect(),
            Value::Mat3(m) => m.iter().flatten().copied().collect(),
            Value::Mat4(m) => m.iter().flatten().copied().collect(),
            _ => return None,
        })
    }

    /// All scalar components converted to `f32` (ints and bools included).
    /// Used by constructors, which accept mixed component sources.
    pub fn numeric_components(&self) -> Option<Vec<f32>> {
        Some(match self {
            Value::Float(v) => vec![*v],
            Value::Int(v) => vec![*v as f32],
            Value::Bool(v) => vec![*v as i32 as f32],
            Value::Vec2(v) => v.to_vec(),
            Value::Vec3(v) => v.to_vec(),
            Value::Vec4(v) => v.to_vec(),
            Value::IVec2(v) => v.iter().map(|&x| x as f32).collect(),
            Value::IVec3(v) => v.iter().map(|&x| x as f32).collect(),
            Value::IVec4(v) => v.iter().map(|&x| x as f32).collect(),
            Value::BVec2(v) => v.iter().map(|&x| x as i32 as f32).collect(),
            Value::BVec3(v) => v.iter().map(|&x| x as i32 as f32).collect(),
            Value::BVec4(v) => v.iter().map(|&x| x as i32 as f32).collect(),
            Value::Mat2(m) => m.iter().flatten().copied().collect(),
            Value::Mat3(m) => m.iter().flatten().copied().collect(),
            Value::Mat4(m) => m.iter().flatten().copied().collect(),
            Value::Sampler(_) | Value::Array(_) => return None,
        })
    }

    /// Builds a float-scalar-category value from components.
    ///
    /// # Panics
    ///
    /// Panics if `scalar`/`dim` do not name a constructible type or the
    /// component count does not match (callers validate first).
    pub fn from_components(scalar: Scalar, comps: &[f32]) -> Value {
        match (scalar, comps.len()) {
            (Scalar::Float, 1) => Value::Float(comps[0]),
            (Scalar::Float, 2) => Value::Vec2([comps[0], comps[1]]),
            (Scalar::Float, 3) => Value::Vec3([comps[0], comps[1], comps[2]]),
            (Scalar::Float, 4) => Value::Vec4([comps[0], comps[1], comps[2], comps[3]]),
            (Scalar::Int, 1) => Value::Int(comps[0] as i32),
            (Scalar::Int, 2) => Value::IVec2([comps[0] as i32, comps[1] as i32]),
            (Scalar::Int, 3) => Value::IVec3([comps[0] as i32, comps[1] as i32, comps[2] as i32]),
            (Scalar::Int, 4) => Value::IVec4([
                comps[0] as i32,
                comps[1] as i32,
                comps[2] as i32,
                comps[3] as i32,
            ]),
            (Scalar::Bool, 1) => Value::Bool(comps[0] != 0.0),
            (Scalar::Bool, 2) => Value::BVec2([comps[0] != 0.0, comps[1] != 0.0]),
            (Scalar::Bool, 3) => Value::BVec3([comps[0] != 0.0, comps[1] != 0.0, comps[2] != 0.0]),
            (Scalar::Bool, 4) => Value::BVec4([
                comps[0] != 0.0,
                comps[1] != 0.0,
                comps[2] != 0.0,
                comps[3] != 0.0,
            ]),
            (s, n) => panic!("cannot build value of scalar {s:?} with {n} components"),
        }
    }

    /// Reads component `i` of a vector as an `f32`-convertible scalar value.
    pub fn component(&self, i: usize) -> Option<Value> {
        match self {
            Value::Vec2(v) => v.get(i).map(|&x| Value::Float(x)),
            Value::Vec3(v) => v.get(i).map(|&x| Value::Float(x)),
            Value::Vec4(v) => v.get(i).map(|&x| Value::Float(x)),
            Value::IVec2(v) => v.get(i).map(|&x| Value::Int(x)),
            Value::IVec3(v) => v.get(i).map(|&x| Value::Int(x)),
            Value::IVec4(v) => v.get(i).map(|&x| Value::Int(x)),
            Value::BVec2(v) => v.get(i).map(|&x| Value::Bool(x)),
            Value::BVec3(v) => v.get(i).map(|&x| Value::Bool(x)),
            Value::BVec4(v) => v.get(i).map(|&x| Value::Bool(x)),
            _ => None,
        }
    }

    /// Writes component `i` of a vector. Returns `false` on kind/index
    /// mismatch.
    pub fn set_component(&mut self, i: usize, v: &Value) -> bool {
        match (self, v) {
            (Value::Vec2(a), Value::Float(x)) if i < 2 => a[i] = *x,
            (Value::Vec3(a), Value::Float(x)) if i < 3 => a[i] = *x,
            (Value::Vec4(a), Value::Float(x)) if i < 4 => a[i] = *x,
            (Value::IVec2(a), Value::Int(x)) if i < 2 => a[i] = *x,
            (Value::IVec3(a), Value::Int(x)) if i < 3 => a[i] = *x,
            (Value::IVec4(a), Value::Int(x)) if i < 4 => a[i] = *x,
            (Value::BVec2(a), Value::Bool(x)) if i < 2 => a[i] = *x,
            (Value::BVec3(a), Value::Bool(x)) if i < 3 => a[i] = *x,
            (Value::BVec4(a), Value::Bool(x)) if i < 4 => a[i] = *x,
            _ => return false,
        }
        true
    }

    /// Extracts an `f32` if this is a `float`.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `i32` if this is an `int`.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `bool` if this is a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `vec4` as an array.
    pub fn as_vec4(&self) -> Option<[f32; 4]> {
        match self {
            Value::Vec4(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `vec2` as an array.
    pub fn as_vec2(&self) -> Option<[f32; 2]> {
        match self {
            Value::Vec2(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Float(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Sampler(u) => write!(f, "sampler2D(unit={u})"),
            other => {
                let ty = other.ty();
                match other.numeric_components() {
                    Some(comps) => {
                        write!(f, "{ty}(")?;
                        for (i, c) in comps.iter().enumerate() {
                            if i > 0 {
                                f.write_str(", ")?;
                            }
                            write!(f, "{c}")?;
                        }
                        f.write_str(")")
                    }
                    None => write!(f, "{ty}(…)"),
                }
            }
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<[f32; 2]> for Value {
    fn from(v: [f32; 2]) -> Self {
        Value::Vec2(v)
    }
}

impl From<[f32; 3]> for Value {
    fn from(v: [f32; 3]) -> Self {
        Value::Vec3(v)
    }
}

impl From<[f32; 4]> for Value {
    fn from(v: [f32; 4]) -> Self {
        Value::Vec4(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_of_matches_type() {
        for ty in [
            Type::Float,
            Type::Int,
            Type::Bool,
            Type::Vec3,
            Type::IVec4,
            Type::BVec2,
            Type::Mat3,
            Type::Array(Box::new(Type::Vec2), 5),
        ] {
            assert_eq!(Value::zero_of(&ty).ty(), ty);
        }
    }

    #[test]
    fn component_read_write() {
        let mut v = Value::Vec3([1.0, 2.0, 3.0]);
        assert_eq!(v.component(1), Some(Value::Float(2.0)));
        assert!(v.set_component(1, &Value::Float(9.0)));
        assert_eq!(v, Value::Vec3([1.0, 9.0, 3.0]));
        assert!(!v.set_component(3, &Value::Float(0.0)));
        assert!(!v.set_component(0, &Value::Int(1)));
    }

    #[test]
    fn matrix_components_are_column_major() {
        let m = Value::Mat2([[1.0, 2.0], [3.0, 4.0]]);
        assert_eq!(m.float_components(), Some(vec![1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn from_components_builds_ivec() {
        let v = Value::from_components(Scalar::Int, &[1.9, -2.1, 3.0]);
        // GLSL int() truncates toward zero.
        assert_eq!(v, Value::IVec3([1, -2, 3]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::Vec2([1.0, 2.0]).to_string(), "vec2(1, 2)");
        assert_eq!(Value::Sampler(3).to_string(), "sampler2D(unit=3)");
    }

    #[test]
    fn numeric_components_of_bools() {
        let v = Value::BVec2([true, false]);
        assert_eq!(v.numeric_components(), Some(vec![1.0, 0.0]));
    }
}
