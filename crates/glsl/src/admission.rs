//! Staged admission of untrusted shader source.
//!
//! A serving boundary that accepts GLSL kernel *source* from tenants
//! needs more than [`crate::compile_strict`]'s single [`CompileError`]:
//! the registry on the other side wants to know *which* stage of the
//! pipeline refused the source, so rejections can be classified, counted
//! and surfaced as typed errors without string-matching diagnostics.
//!
//! [`admit`] runs the exact same front end as [`crate::compile_strict`]
//! — preprocess → parse → Appendix-A strict check → semantic analysis —
//! but tags every failure with the [`AdmissionStage`] that produced it.
//! The stages run in rejection-cheapest order: a source that does not
//! parse never reaches the (more expensive) semantic checker, and a
//! shader a strict mobile driver would refuse is rejected before sema,
//! exactly as the VideoCore-class drivers the paper targets behave.

use crate::error::{CompileError, Phase};
use crate::sema::{self, CompiledShader, ShaderKind};
use crate::{parser, preprocessor, strict};

/// The admission-pipeline stage that rejected a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionStage {
    /// Preprocessing, lexing or parsing failed — the source is not
    /// syntactically a GLSL ES 1.00 shader.
    Parse,
    /// The source parses but violates a GLSL ES Appendix-A
    /// minimum-guarantee restriction ([`strict::check_appendix_a`]).
    Strict,
    /// Semantic analysis rejected the source ([`sema::check`]).
    Sema,
}

impl std::fmt::Display for AdmissionStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AdmissionStage::Parse => "parse",
            AdmissionStage::Strict => "strict",
            AdmissionStage::Sema => "sema",
        })
    }
}

/// A stage-tagged admission rejection.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionDiagnostic {
    /// The pipeline stage that refused the source.
    pub stage: AdmissionStage,
    /// The stage's human-readable diagnostic.
    pub message: String,
    /// 1-based source line the diagnostic points at (0 when unknown).
    pub line: u32,
}

impl std::fmt::Display for AdmissionDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (line {}): {}", self.stage, self.line, self.message)
    }
}

impl std::error::Error for AdmissionDiagnostic {}

fn reject(stage: AdmissionStage, err: CompileError) -> AdmissionDiagnostic {
    AdmissionDiagnostic {
        stage,
        message: err.message,
        line: err.span.line,
    }
}

/// Runs the full strict-mode admission pipeline over `source`.
///
/// Admission success returns the checked [`CompiledShader`] — callers
/// that go on to link the program can reuse it; callers that only gate
/// can drop it.
///
/// # Errors
///
/// An [`AdmissionDiagnostic`] naming the first stage that refused the
/// source. The mapping from [`CompileError`] phases is:
/// `Preprocess`/`Lex`/`Parse` → [`AdmissionStage::Parse`];
/// [`strict::check_appendix_a`] failures → [`AdmissionStage::Strict`];
/// [`sema::check`] failures → [`AdmissionStage::Sema`].
pub fn admit(kind: ShaderKind, source: &str) -> Result<CompiledShader, AdmissionDiagnostic> {
    let preprocessed =
        preprocessor::preprocess(source).map_err(|e| reject(AdmissionStage::Parse, e))?;
    let unit = parser::parse(&preprocessed.source).map_err(|e| {
        let stage = match e.phase {
            Phase::Preprocess | Phase::Lex | Phase::Parse => AdmissionStage::Parse,
            Phase::Check => AdmissionStage::Sema,
        };
        reject(stage, e)
    })?;
    strict::check_appendix_a(&unit).map_err(|e| reject(AdmissionStage::Strict, e))?;
    sema::check(kind, unit).map_err(|e| reject(AdmissionStage::Sema, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_fragment_admits() {
        let shader = admit(
            ShaderKind::Fragment,
            "precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }",
        )
        .expect("admits");
        assert_eq!(shader.kind, ShaderKind::Fragment);
    }

    #[test]
    fn garbage_rejects_at_parse() {
        let err = admit(ShaderKind::Fragment, "void main( {{{").unwrap_err();
        assert_eq!(err.stage, AdmissionStage::Parse);
        assert!(!err.message.is_empty());
    }

    #[test]
    fn non_constant_loop_rejects_at_strict() {
        let err = admit(
            ShaderKind::Fragment,
            "precision highp float;\nuniform float n;\nvoid main() {\n\
             float s = 0.0;\nfor (int i = 0; float(i) < n; i++) { s += 1.0; }\n\
             gl_FragColor = vec4(s);\n}",
        )
        .unwrap_err();
        assert_eq!(err.stage, AdmissionStage::Strict);
    }

    #[test]
    fn type_error_rejects_at_sema() {
        let err = admit(
            ShaderKind::Fragment,
            "precision highp float;\nvoid main() { gl_FragColor = vec4(undeclared); }",
        )
        .unwrap_err();
        assert_eq!(err.stage, AdmissionStage::Sema);
    }

    #[test]
    fn admission_matches_compile_strict() {
        for src in [
            "precision highp float;\nvoid main() { gl_FragColor = vec4(0.5); }",
            "void main( {{{",
            "precision highp float;\nvoid main() { while (true) {} }",
            "precision highp float;\nvoid main() { gl_FragColor = vec4(nope); }",
        ] {
            let strictly = crate::compile_strict(ShaderKind::Fragment, src).is_ok();
            let admitted = admit(ShaderKind::Fragment, src).is_ok();
            assert_eq!(
                strictly, admitted,
                "admit/compile_strict diverge on {src:?}"
            );
        }
    }
}
