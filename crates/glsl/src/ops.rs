//! Shared evaluation semantics for the two shader executors.
//!
//! The tree-walking [`crate::interp::Interpreter`] and the bytecode
//! [`crate::vm::Vm`] must agree **bit for bit** — on results, on rounding
//! under every [`FloatModel`], and on [`OpProfile`] counters (the timing
//! model consumes them). The only way to guarantee that is to make both
//! executors call the exact same arithmetic code, which lives here.
//!
//! Everything in this module is allocation-free on the hot path: component
//! expansion uses fixed stack buffers (16 floats covers `mat4`, the
//! largest float shape; 4 ints covers `ivec4`).

use crate::ast::BinOp;
use crate::error::RuntimeError;
use crate::exec::{FloatModel, OpProfile};
use crate::types::{Scalar, Type};
use crate::value::Value;

/// Largest number of float components any non-array value can have
/// (`mat4`).
pub(crate) const MAX_COMPONENTS: usize = 16;

/// Negates a value (`-x`). Matches GLSL: floats negate, ints wrap,
/// matrices negate per component. Does not touch the profile (the
/// interpreter never counted unary negation).
pub(crate) fn negate(v: Value) -> Result<Value, RuntimeError> {
    match v {
        Value::Float(x) => Ok(Value::Float(-x)),
        Value::Int(x) => Ok(Value::Int(x.wrapping_neg())),
        Value::Vec2(x) => Ok(Value::Vec2([-x[0], -x[1]])),
        Value::Vec3(x) => Ok(Value::Vec3([-x[0], -x[1], -x[2]])),
        Value::Vec4(x) => Ok(Value::Vec4([-x[0], -x[1], -x[2], -x[3]])),
        Value::IVec2(x) => Ok(Value::IVec2([x[0].wrapping_neg(), x[1].wrapping_neg()])),
        Value::IVec3(x) => Ok(Value::IVec3([
            x[0].wrapping_neg(),
            x[1].wrapping_neg(),
            x[2].wrapping_neg(),
        ])),
        Value::IVec4(x) => Ok(Value::IVec4([
            x[0].wrapping_neg(),
            x[1].wrapping_neg(),
            x[2].wrapping_neg(),
            x[3].wrapping_neg(),
        ])),
        Value::Mat2(m) => Ok(Value::Mat2(m.map(|c| c.map(|x| -x)))),
        Value::Mat3(m) => Ok(Value::Mat3(m.map(|c| c.map(|x| -x)))),
        Value::Mat4(m) => Ok(Value::Mat4(m.map(|c| c.map(|x| -x)))),
        other => Err(RuntimeError::Type {
            message: format!("cannot negate {}", other.ty()),
        }),
    }
}

/// Applies a (non-short-circuit) binary operator exactly as the
/// interpreter always has, updating profile counters identically.
pub(crate) fn apply_binary(
    model: FloatModel,
    profile: &mut OpProfile,
    op: BinOp,
    a: Value,
    b: Value,
) -> Result<Value, RuntimeError> {
    use BinOp::*;
    match op {
        And => Ok(Value::Bool(
            a.as_bool().unwrap_or(false) && b.as_bool().unwrap_or(false),
        )),
        Or => Ok(Value::Bool(
            a.as_bool().unwrap_or(false) || b.as_bool().unwrap_or(false),
        )),
        Xor => match (a.as_bool(), b.as_bool()) {
            (Some(x), Some(y)) => Ok(Value::Bool(x != y)),
            _ => Err(RuntimeError::Type {
                message: "`^^` requires bool operands".into(),
            }),
        },
        Eq => {
            profile.alu_ops += 1;
            Ok(Value::Bool(a == b))
        }
        Ne => {
            profile.alu_ops += 1;
            Ok(Value::Bool(a != b))
        }
        Lt | Le | Gt | Ge => {
            profile.alu_ops += 1;
            let result = match (&a, &b) {
                (Value::Float(x), Value::Float(y)) => match op {
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    _ => x >= y,
                },
                (Value::Int(x), Value::Int(y)) => match op {
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    _ => x >= y,
                },
                _ => {
                    return Err(RuntimeError::Type {
                        message: format!("relational operator on {} and {}", a.ty(), b.ty()),
                    })
                }
            };
            Ok(Value::Bool(result))
        }
        Add | Sub | Div | Mul => arith(model, profile, op, a, b),
    }
}

fn arith(
    model: FloatModel,
    profile: &mut OpProfile,
    op: BinOp,
    a: Value,
    b: Value,
) -> Result<Value, RuntimeError> {
    // Scalar fast paths: the overwhelmingly common case in GPGPU
    // kernels, kept allocation-free.
    match (&a, &b) {
        (Value::Float(x), Value::Float(y)) => {
            profile.alu_ops += 1;
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                _ => x / y,
            };
            return Ok(Value::Float(model.round_alu(r)));
        }
        (Value::Int(x), Value::Int(y)) => {
            profile.alu_ops += 1;
            let r = match op {
                BinOp::Add => x.wrapping_add(*y),
                BinOp::Sub => x.wrapping_sub(*y),
                BinOp::Mul => x.wrapping_mul(*y),
                _ => {
                    if *y == 0 {
                        0
                    } else {
                        x.wrapping_div(*y)
                    }
                }
            };
            return Ok(Value::Int(r));
        }
        _ => {}
    }
    // Linear algebra products.
    if op == BinOp::Mul {
        match (&a, &b) {
            (Value::Mat2(m), Value::Vec2(v)) => return Ok(Value::Vec2(m2v(model, profile, m, v))),
            (Value::Mat3(m), Value::Vec3(v)) => return Ok(Value::Vec3(m3v(model, profile, m, v))),
            (Value::Mat4(m), Value::Vec4(v)) => return Ok(Value::Vec4(m4v(model, profile, m, v))),
            (Value::Vec2(v), Value::Mat2(m)) => return Ok(Value::Vec2(v2m(model, profile, v, m))),
            (Value::Vec3(v), Value::Mat3(m)) => return Ok(Value::Vec3(v3m(model, profile, v, m))),
            (Value::Vec4(v), Value::Mat4(m)) => return Ok(Value::Vec4(v4m(model, profile, v, m))),
            (Value::Mat2(x), Value::Mat2(y)) => {
                let mut m = [[0.0f32; 2]; 2];
                for (c, col) in m.iter_mut().enumerate() {
                    let yc = y[c];
                    *col = m2v(model, profile, x, &yc);
                }
                return Ok(Value::Mat2(m));
            }
            (Value::Mat3(x), Value::Mat3(y)) => {
                let mut m = [[0.0f32; 3]; 3];
                for (c, col) in m.iter_mut().enumerate() {
                    let yc = y[c];
                    *col = m3v(model, profile, x, &yc);
                }
                return Ok(Value::Mat3(m));
            }
            (Value::Mat4(x), Value::Mat4(y)) => {
                let mut m = [[0.0f32; 4]; 4];
                for (c, col) in m.iter_mut().enumerate() {
                    let yc = y[c];
                    *col = m4v(model, profile, x, &yc);
                }
                return Ok(Value::Mat4(m));
            }
            _ => {}
        }
    }

    let scalar_cat = |v: &Value| v.ty().scalar();
    match (scalar_cat(&a), scalar_cat(&b)) {
        (Some(Scalar::Int), Some(Scalar::Int)) => int_arith(profile, op, &a, &b),
        (Some(Scalar::Float), Some(Scalar::Float)) => float_arith(model, profile, op, &a, &b),
        _ => Err(RuntimeError::Type {
            message: format!(
                "operator `{}` cannot combine {} and {}",
                op.symbol(),
                a.ty(),
                b.ty()
            ),
        }),
    }
}

/// Copies float components into a fixed buffer, returning the count.
/// `None` for non-float shapes.
pub(crate) fn write_float_components(v: &Value, buf: &mut [f32; MAX_COMPONENTS]) -> Option<usize> {
    match v {
        Value::Float(x) => {
            buf[0] = *x;
            Some(1)
        }
        Value::Vec2(x) => {
            buf[..2].copy_from_slice(x);
            Some(2)
        }
        Value::Vec3(x) => {
            buf[..3].copy_from_slice(x);
            Some(3)
        }
        Value::Vec4(x) => {
            buf[..4].copy_from_slice(x);
            Some(4)
        }
        Value::Mat2(m) => {
            for (c, col) in m.iter().enumerate() {
                buf[2 * c..2 * c + 2].copy_from_slice(col);
            }
            Some(4)
        }
        Value::Mat3(m) => {
            for (c, col) in m.iter().enumerate() {
                buf[3 * c..3 * c + 3].copy_from_slice(col);
            }
            Some(9)
        }
        Value::Mat4(m) => {
            for (c, col) in m.iter().enumerate() {
                buf[4 * c..4 * c + 4].copy_from_slice(col);
            }
            Some(16)
        }
        _ => None,
    }
}

fn write_int_components(v: &Value, buf: &mut [i32; 4]) -> Option<usize> {
    match v {
        Value::Int(x) => {
            buf[0] = *x;
            Some(1)
        }
        Value::IVec2(x) => {
            buf[..2].copy_from_slice(x);
            Some(2)
        }
        Value::IVec3(x) => {
            buf[..3].copy_from_slice(x);
            Some(3)
        }
        Value::IVec4(x) => {
            buf[..4].copy_from_slice(x);
            Some(4)
        }
        _ => None,
    }
}

fn float_arith(
    model: FloatModel,
    profile: &mut OpProfile,
    op: BinOp,
    a: &Value,
    b: &Value,
) -> Result<Value, RuntimeError> {
    let mut ba = [0.0f32; MAX_COMPONENTS];
    let mut bb = [0.0f32; MAX_COMPONENTS];
    let la = write_float_components(a, &mut ba).ok_or_else(|| RuntimeError::Type {
        message: format!("expected float operand, found {}", a.ty()),
    })?;
    let lb = write_float_components(b, &mut bb).ok_or_else(|| RuntimeError::Type {
        message: format!("expected float operand, found {}", b.ty()),
    })?;
    let (shape_ty, n) = if la >= lb { (a.ty(), la) } else { (b.ty(), lb) };
    if la != lb && la != 1 && lb != 1 {
        return Err(RuntimeError::Type {
            message: format!("shape mismatch: {} vs {}", a.ty(), b.ty()),
        });
    }
    profile.alu_ops += n as u64;
    let pick = |c: &[f32], len: usize, i: usize| if len == 1 { c[0] } else { c[i] };
    let f = |x: f32, y: f32| match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        _ => x / y,
    };
    let mut out = [0.0f32; MAX_COMPONENTS];
    for (i, slot) in out[..n].iter_mut().enumerate() {
        *slot = model.round_alu(f(pick(&ba, la, i), pick(&bb, lb, i)));
    }
    Ok(rebuild_float(&shape_ty, &out[..n]))
}

fn int_arith(
    profile: &mut OpProfile,
    op: BinOp,
    a: &Value,
    b: &Value,
) -> Result<Value, RuntimeError> {
    let mut ba = [0i32; 4];
    let mut bb = [0i32; 4];
    let la = write_int_components(a, &mut ba).ok_or_else(|| RuntimeError::Type {
        message: format!("expected int operand, found {}", a.ty()),
    })?;
    let lb = write_int_components(b, &mut bb).ok_or_else(|| RuntimeError::Type {
        message: format!("expected int operand, found {}", b.ty()),
    })?;
    let (shape_ty, n) = if la >= lb { (a.ty(), la) } else { (b.ty(), lb) };
    if la != lb && la != 1 && lb != 1 {
        return Err(RuntimeError::Type {
            message: format!("shape mismatch: {} vs {}", a.ty(), b.ty()),
        });
    }
    profile.alu_ops += n as u64;
    let pick = |c: &[i32], len: usize, i: usize| if len == 1 { c[0] } else { c[i] };
    let f = |x: i32, y: i32| match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        // GLSL leaves division by zero undefined; return 0 like most
        // GPU hardware saturates rather than trapping.
        _ => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
    };
    let mut out = [0i32; 4];
    for (i, slot) in out[..n].iter_mut().enumerate() {
        *slot = f(pick(&ba, la, i), pick(&bb, lb, i));
    }
    Ok(rebuild_int(&shape_ty, &out[..n]))
}

fn fdot(model: FloatModel, profile: &mut OpProfile, a: &[f32], b: &[f32]) -> f32 {
    profile.alu_ops += (2 * a.len()) as u64;
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc = model.round_alu(acc + model.round_alu(x * y));
    }
    acc
}

fn m2v(model: FloatModel, profile: &mut OpProfile, m: &[[f32; 2]; 2], v: &[f32; 2]) -> [f32; 2] {
    let r0 = [m[0][0], m[1][0]];
    let r1 = [m[0][1], m[1][1]];
    [fdot(model, profile, &r0, v), fdot(model, profile, &r1, v)]
}

fn m3v(model: FloatModel, profile: &mut OpProfile, m: &[[f32; 3]; 3], v: &[f32; 3]) -> [f32; 3] {
    let r0 = [m[0][0], m[1][0], m[2][0]];
    let r1 = [m[0][1], m[1][1], m[2][1]];
    let r2 = [m[0][2], m[1][2], m[2][2]];
    [
        fdot(model, profile, &r0, v),
        fdot(model, profile, &r1, v),
        fdot(model, profile, &r2, v),
    ]
}

fn m4v(model: FloatModel, profile: &mut OpProfile, m: &[[f32; 4]; 4], v: &[f32; 4]) -> [f32; 4] {
    let r0 = [m[0][0], m[1][0], m[2][0], m[3][0]];
    let r1 = [m[0][1], m[1][1], m[2][1], m[3][1]];
    let r2 = [m[0][2], m[1][2], m[2][2], m[3][2]];
    let r3 = [m[0][3], m[1][3], m[2][3], m[3][3]];
    [
        fdot(model, profile, &r0, v),
        fdot(model, profile, &r1, v),
        fdot(model, profile, &r2, v),
        fdot(model, profile, &r3, v),
    ]
}

fn v2m(model: FloatModel, profile: &mut OpProfile, v: &[f32; 2], m: &[[f32; 2]; 2]) -> [f32; 2] {
    [
        fdot(model, profile, v, &m[0]),
        fdot(model, profile, v, &m[1]),
    ]
}

fn v3m(model: FloatModel, profile: &mut OpProfile, v: &[f32; 3], m: &[[f32; 3]; 3]) -> [f32; 3] {
    [
        fdot(model, profile, v, &m[0]),
        fdot(model, profile, v, &m[1]),
        fdot(model, profile, v, &m[2]),
    ]
}

fn v4m(model: FloatModel, profile: &mut OpProfile, v: &[f32; 4], m: &[[f32; 4]; 4]) -> [f32; 4] {
    [
        fdot(model, profile, v, &m[0]),
        fdot(model, profile, v, &m[1]),
        fdot(model, profile, v, &m[2]),
        fdot(model, profile, v, &m[3]),
    ]
}

/// Rebuilds a float-shaped value of type `ty` from flat components
/// (matrices column-major).
pub(crate) fn rebuild_float(ty: &Type, comps: &[f32]) -> Value {
    match ty {
        Type::Float => Value::Float(comps[0]),
        Type::Vec2 => Value::Vec2([comps[0], comps[1]]),
        Type::Vec3 => Value::Vec3([comps[0], comps[1], comps[2]]),
        Type::Vec4 => Value::Vec4([comps[0], comps[1], comps[2], comps[3]]),
        Type::Mat2 => Value::Mat2([[comps[0], comps[1]], [comps[2], comps[3]]]),
        Type::Mat3 => Value::Mat3([
            [comps[0], comps[1], comps[2]],
            [comps[3], comps[4], comps[5]],
            [comps[6], comps[7], comps[8]],
        ]),
        Type::Mat4 => Value::Mat4([
            [comps[0], comps[1], comps[2], comps[3]],
            [comps[4], comps[5], comps[6], comps[7]],
            [comps[8], comps[9], comps[10], comps[11]],
            [comps[12], comps[13], comps[14], comps[15]],
        ]),
        _ => unreachable!("rebuild_float on non-float shape"),
    }
}

/// Rebuilds an int-shaped value of type `ty` from flat components.
pub(crate) fn rebuild_int(ty: &Type, comps: &[i32]) -> Value {
    match ty {
        Type::Int => Value::Int(comps[0]),
        Type::IVec2 => Value::IVec2([comps[0], comps[1]]),
        Type::IVec3 => Value::IVec3([comps[0], comps[1], comps[2]]),
        Type::IVec4 => Value::IVec4([comps[0], comps[1], comps[2], comps[3]]),
        _ => unreachable!("rebuild_int on non-int shape"),
    }
}

/// Reads a swizzle of `base` (selector already parsed to indices).
pub(crate) fn swizzle_read(base: &Value, idx: &[usize]) -> Result<Value, RuntimeError> {
    let scalar = base.ty().scalar().ok_or_else(|| RuntimeError::Type {
        message: format!("cannot swizzle {}", base.ty()),
    })?;
    let mut comps = [0.0f32; 4];
    for (slot, &i) in comps.iter_mut().zip(idx) {
        let c = base.component(i).ok_or(RuntimeError::IndexOutOfBounds {
            index: i as i64,
            len: base.ty().dim().unwrap_or(0),
        })?;
        *slot = match c {
            Value::Float(f) => f,
            Value::Int(x) => x as f32,
            Value::Bool(b) => b as i32 as f32,
            _ => unreachable!("component is scalar"),
        };
    }
    let comps = &comps[..idx.len()];
    if comps.len() == 1 {
        Ok(match scalar {
            Scalar::Float => Value::Float(comps[0]),
            Scalar::Int => Value::Int(comps[0] as i32),
            Scalar::Bool => Value::Bool(comps[0] != 0.0),
        })
    } else {
        Ok(Value::from_components(scalar, comps))
    }
}

/// Writes `value` through a swizzle selector into `base`.
pub(crate) fn swizzle_write(
    base: &mut Value,
    idx: &[usize],
    value: &Value,
) -> Result<(), RuntimeError> {
    let scalar = base.ty().scalar().ok_or_else(|| RuntimeError::Type {
        message: format!("cannot swizzle {}", base.ty()),
    })?;
    let mut buf = [0.0f32; MAX_COMPONENTS];
    let len = if idx.len() == 1 {
        match numeric_components_into(value, &mut buf) {
            Some(n) if n >= 1 => {
                // Keep only the first component (scalar write).
                1
            }
            _ => {
                return Err(RuntimeError::Type {
                    message: "swizzle write needs a scalar".into(),
                })
            }
        }
    } else {
        numeric_components_into(value, &mut buf).ok_or_else(|| RuntimeError::Type {
            message: "swizzle write needs numeric components".into(),
        })?
    };
    if len != idx.len() {
        return Err(RuntimeError::Type {
            message: format!(
                "swizzle write of {} components into {}-component selector",
                len,
                idx.len()
            ),
        });
    }
    for (&i, &c) in idx.iter().zip(&buf[..len]) {
        let cv = match scalar {
            Scalar::Float => Value::Float(c),
            Scalar::Int => Value::Int(c as i32),
            Scalar::Bool => Value::Bool(c != 0.0),
        };
        if !base.set_component(i, &cv) {
            return Err(RuntimeError::IndexOutOfBounds {
                index: i as i64,
                len: base.ty().dim().unwrap_or(0),
            });
        }
    }
    Ok(())
}

/// `Value::numeric_components` without the `Vec`: writes into `buf`,
/// returns the component count, or `None` for samplers/arrays.
fn numeric_components_into(v: &Value, buf: &mut [f32; MAX_COMPONENTS]) -> Option<usize> {
    match v {
        Value::Int(x) => {
            buf[0] = *x as f32;
            Some(1)
        }
        Value::Bool(x) => {
            buf[0] = *x as i32 as f32;
            Some(1)
        }
        Value::IVec2(x) => {
            for (s, &c) in buf.iter_mut().zip(x) {
                *s = c as f32;
            }
            Some(2)
        }
        Value::IVec3(x) => {
            for (s, &c) in buf.iter_mut().zip(x) {
                *s = c as f32;
            }
            Some(3)
        }
        Value::IVec4(x) => {
            for (s, &c) in buf.iter_mut().zip(x) {
                *s = c as f32;
            }
            Some(4)
        }
        Value::BVec2(x) => {
            for (s, &c) in buf.iter_mut().zip(x) {
                *s = c as i32 as f32;
            }
            Some(2)
        }
        Value::BVec3(x) => {
            for (s, &c) in buf.iter_mut().zip(x) {
                *s = c as i32 as f32;
            }
            Some(3)
        }
        Value::BVec4(x) => {
            for (s, &c) in buf.iter_mut().zip(x) {
                *s = c as i32 as f32;
            }
            Some(4)
        }
        other => write_float_components(other, buf),
    }
}

/// Reads element `i` of an array, matrix (column) or vector.
pub(crate) fn index_read(base: &Value, i: i64) -> Result<Value, RuntimeError> {
    let oob = |len: usize| RuntimeError::IndexOutOfBounds { index: i, len };
    match base {
        Value::Array(elems) => {
            if i < 0 || i as usize >= elems.len() {
                Err(oob(elems.len()))
            } else {
                Ok(elems[i as usize].clone())
            }
        }
        Value::Mat2(m) => {
            if (0..2).contains(&i) {
                Ok(Value::Vec2(m[i as usize]))
            } else {
                Err(oob(2))
            }
        }
        Value::Mat3(m) => {
            if (0..3).contains(&i) {
                Ok(Value::Vec3(m[i as usize]))
            } else {
                Err(oob(3))
            }
        }
        Value::Mat4(m) => {
            if (0..4).contains(&i) {
                Ok(Value::Vec4(m[i as usize]))
            } else {
                Err(oob(4))
            }
        }
        vector => {
            let dim = vector.ty().dim().ok_or_else(|| RuntimeError::Type {
                message: format!("cannot index {}", vector.ty()),
            })?;
            if i < 0 || i as usize >= dim {
                Err(oob(dim))
            } else {
                vector.component(i as usize).ok_or(oob(dim))
            }
        }
    }
}

/// Writes element `i` of an array/matrix/vector.
pub(crate) fn index_write(base: &mut Value, i: i64, value: &Value) -> Result<(), RuntimeError> {
    index_modify(base, i, &mut |slot| {
        *slot = value.clone();
        Ok(())
    })
}

/// Applies `f` to element `i` of an array/matrix/vector in place.
pub(crate) fn index_modify(
    base: &mut Value,
    i: i64,
    f: &mut dyn FnMut(&mut Value) -> Result<(), RuntimeError>,
) -> Result<(), RuntimeError> {
    match base {
        Value::Array(elems) => {
            let len = elems.len();
            let slot = elems
                .get_mut(i.max(0) as usize)
                .filter(|_| i >= 0)
                .ok_or(RuntimeError::IndexOutOfBounds { index: i, len })?;
            f(slot)
        }
        Value::Mat2(m) => {
            if !(0..2).contains(&i) {
                return Err(RuntimeError::IndexOutOfBounds { index: i, len: 2 });
            }
            let mut col = Value::Vec2(m[i as usize]);
            f(&mut col)?;
            m[i as usize] = col.as_vec2().ok_or_else(|| RuntimeError::Type {
                message: "matrix column must stay vec2".into(),
            })?;
            Ok(())
        }
        Value::Mat3(m) => {
            if !(0..3).contains(&i) {
                return Err(RuntimeError::IndexOutOfBounds { index: i, len: 3 });
            }
            let mut col = Value::Vec3(m[i as usize]);
            f(&mut col)?;
            match col {
                Value::Vec3(c) => {
                    m[i as usize] = c;
                    Ok(())
                }
                _ => Err(RuntimeError::Type {
                    message: "matrix column must stay vec3".into(),
                }),
            }
        }
        Value::Mat4(m) => {
            if !(0..4).contains(&i) {
                return Err(RuntimeError::IndexOutOfBounds { index: i, len: 4 });
            }
            let mut col = Value::Vec4(m[i as usize]);
            f(&mut col)?;
            match col {
                Value::Vec4(c) => {
                    m[i as usize] = c;
                    Ok(())
                }
                _ => Err(RuntimeError::Type {
                    message: "matrix column must stay vec4".into(),
                }),
            }
        }
        vector => {
            let dim = vector.ty().dim().ok_or_else(|| RuntimeError::Type {
                message: format!("cannot index {}", vector.ty()),
            })?;
            if i < 0 || i as usize >= dim {
                return Err(RuntimeError::IndexOutOfBounds { index: i, len: dim });
            }
            let mut tmp = vector
                .component(i as usize)
                .expect("component within bounds");
            f(&mut tmp)?;
            if vector.set_component(i as usize, &tmp) {
                Ok(())
            } else {
                Err(RuntimeError::Type {
                    message: "component write changed scalar category".into(),
                })
            }
        }
    }
}

/// Whether `v`'s runtime type equals `ty` — equivalent to
/// `v.ty() == *ty` without allocating for array types (used by
/// function-overload dispatch on both executors).
pub(crate) fn value_matches_type(v: &Value, ty: &Type) -> bool {
    match (v, ty) {
        (Value::Float(_), Type::Float)
        | (Value::Int(_), Type::Int)
        | (Value::Bool(_), Type::Bool)
        | (Value::Vec2(_), Type::Vec2)
        | (Value::Vec3(_), Type::Vec3)
        | (Value::Vec4(_), Type::Vec4)
        | (Value::IVec2(_), Type::IVec2)
        | (Value::IVec3(_), Type::IVec3)
        | (Value::IVec4(_), Type::IVec4)
        | (Value::BVec2(_), Type::BVec2)
        | (Value::BVec3(_), Type::BVec3)
        | (Value::BVec4(_), Type::BVec4)
        | (Value::Mat2(_), Type::Mat2)
        | (Value::Mat3(_), Type::Mat3)
        | (Value::Mat4(_), Type::Mat4)
        | (Value::Sampler(_), Type::Sampler2D) => true,
        (Value::Array(elems), Type::Array(elem, n)) => {
            elems.len() == *n
                && match elems.first() {
                    Some(first) => value_matches_type(first, elem),
                    None => **elem == Type::Float,
                }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_arith_matches_vec_semantics() {
        let mut p = OpProfile::new();
        let r = apply_binary(
            FloatModel::Exact,
            &mut p,
            BinOp::Add,
            Value::Vec3([1.0, 2.0, 3.0]),
            Value::Float(0.5),
        )
        .expect("add");
        assert_eq!(r, Value::Vec3([1.5, 2.5, 3.5]));
        assert_eq!(p.alu_ops, 3);
    }

    #[test]
    fn value_matches_type_agrees_with_ty() {
        let vals = [
            Value::Float(1.0),
            Value::IVec3([1, 2, 3]),
            Value::Mat2([[0.0; 2]; 2]),
            Value::Sampler(0),
            Value::Array(vec![Value::Float(0.0); 3]),
        ];
        let tys = [
            Type::Float,
            Type::IVec3,
            Type::Mat2,
            Type::Sampler2D,
            Type::Array(Box::new(Type::Float), 3),
            Type::Array(Box::new(Type::Float), 4),
            Type::Vec3,
        ];
        for v in &vals {
            for t in &tys {
                assert_eq!(value_matches_type(v, t), v.ty() == *t, "{v} vs {t}");
            }
        }
    }

    #[test]
    fn swizzle_helpers_round_trip() {
        let mut v = Value::Vec4([1.0, 2.0, 3.0, 4.0]);
        let r = swizzle_read(&v, &[2, 0]).expect("read");
        assert_eq!(r, Value::Vec2([3.0, 1.0]));
        swizzle_write(&mut v, &[0, 3], &Value::Vec2([9.0, 8.0])).expect("write");
        assert_eq!(v, Value::Vec4([9.0, 2.0, 3.0, 8.0]));
    }
}
