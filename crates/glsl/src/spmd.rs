//! SPMD lane-parallel virtual machine for lowered fragment shaders.
//!
//! One [`SpmdVm`] shades up to [`MAX_LANES`] fragments per dispatch. All
//! *semantic* state is per-lane, but it is stored **struct-of-arrays**:
//! each operand-stack slot, locals slot and global slot is one `Slot`
//! holding the value of every lane side by side (`[f32; 8]`,
//! `[[f32; 4]; 8]`, …). The bytecode walk (program counter plus an
//! explicit call-frame stack) is shared by every lane in the current
//! execution *context*, so instruction decode is paid once per batch and
//! the per-lane work for the common instructions is a tight loop over a
//! small typed array instead of eight tagged-enum manipulations.
//!
//! Slots whose lanes cannot be represented uniformly (samplers, arrays,
//! matrices, bvecs, or divergent writes that change a slot's type for a
//! subset of lanes) degrade to `Slot::Boxed`, a boxed `[Value; 8]`
//! that preserves exact per-lane values; every instruction has a generic
//! per-lane fallback that applies the same `ops` / `builtins` routines as
//! the scalar VM.
//!
//! # Divergence model
//!
//! A context is `(lane mask, call frames, pc)`. When a data-dependent
//! branch (`JumpIfFalse` / `JumpIfTrue`, which is what `if`, `?:`,
//! short-circuit `&&`/`||` and loop conditions lower to) splits the
//! active lanes, the jumping subgroup is deferred onto a pending stack
//! and the fall-through subgroup keeps executing. Two contexts merge
//! whenever they meet at the same `(call frames, pc)` — this is always
//! semantically safe because every lane only ever executes instructions
//! its own data dictates; the shared pc is pure scheduling. Reconvergence
//! at the join point of structured `if`/`else` falls out of two rules:
//! the scheduler merges any pending context whose position equals the
//! current one, and after every jump landing it *swaps* to the
//! furthest-behind compatible pending context so laggards catch up.
//! `discard` simply retires the lanes of the executing context.
//!
//! While any deferred context exists, writes to shared slots are
//! *masked*: only the current context's lanes are touched and the other
//! lanes' values are preserved (falling back to `Slot::Boxed` when a
//! masked write changes the slot's type). When no context is pending —
//! the overwhelmingly common uniform-flow case — stack and locals slots
//! are written wholesale, which keeps the hot loops branch-free and
//! vectorisable. Globals are always written masked, because retired
//! lanes' outputs (`gl_FragColor`) are read after the batch.
//!
//! # Bit-identity with the scalar VM
//!
//! Every fast path reproduces the scalar VM's arithmetic exactly — same
//! operation order, same [`FloatModel`] rounding calls, same
//! [`OpProfile`] counter increments — and anything outside the fast
//! paths runs the very same `ops` / `builtins` code
//! one lane at a time. There is no re-association, no fused math, and no
//! shared mutable value state, so results, profiles and runtime errors
//! are bit-identical per lane. When *any* lane traps, the whole batch is
//! replayed lane-by-lane in lane order (a single-lane run through this
//! machinery is exactly a scalar run): earlier lanes finish with exact
//! outputs and the first erroring lane in scalar order defines the
//! reported error, so error semantics match running the scalar VM over
//! the same fragments sequentially.

use crate::ast::{BinOp, ParamQual};
use crate::builtins::{self, BuiltinCx};
use crate::compile::{Executable, Insn, SlotRef};
use crate::error::RuntimeError;
use crate::exec::{ExecLimits, FloatModel, OpProfile, TextureAccess};
use crate::ops;
use crate::types::Scalar;
use crate::value::Value;
use crate::vm::store_path;

/// Maximum number of fragments one [`SpmdVm`] shades per batch.
pub const MAX_LANES: usize = 8;

/// A runtime error raised by one lane of a batch.
///
/// Produced by [`SpmdVm::run_batch`] after the lane-by-lane replay:
/// `lane` is the lowest-index erroring lane, every lane below it
/// completed with exact scalar outputs (see [`SpmdVm::completed`]).
#[derive(Debug)]
pub struct BatchError {
    /// The lowest lane index whose invocation trapped.
    pub lane: usize,
    /// The error that lane's scalar execution raises.
    pub error: RuntimeError,
}

/// Saved caller state for one active call, kept on the context's
/// explicit frame stack (the SPMD engine never recurses natively, so a
/// divergent subgroup can be suspended mid-call and resumed later).
#[derive(Clone, PartialEq)]
struct Frame {
    /// Chunk to resume in the caller.
    ret_chunk: u32,
    /// Instruction to resume at in the caller.
    ret_pc: usize,
    /// Caller's locals frame base.
    frame_base: usize,
    /// Caller's locals frame end (== callee's base).
    frame_end: usize,
    /// Callee's locals frame base.
    callee_base: usize,
    /// Index of the called function in `Executable::functions`.
    func: u32,
    /// Whether the call site expects out/inout copy-back pushes.
    pushes_outs: bool,
    /// Loop-counter stack depth at call entry (truncated on return,
    /// mirroring the scalar VM's `run_chunk`).
    counters_base: usize,
}

/// One schedulable execution context: a subgroup of lanes in lockstep at
/// a shared program position.
#[derive(Clone)]
struct Ctx {
    mask: u8,
    chunk: u32,
    pc: usize,
    sp: usize,
    frame_base: usize,
    frame_end: usize,
    frames: Vec<Frame>,
}

/// Whether two contexts sit at the same program point (and therefore may
/// merge). Operand-stack depth and loop depth are static properties of a
/// program point in the structured bytecode, so equal position implies
/// equal `sp` — asserted in debug builds.
fn same_point(a: &Ctx, b: &Ctx) -> bool {
    a.chunk == b.chunk && a.pc == b.pc && a.frames == b.frames
}

/// Merges every pending context at `cur`'s exact position into `cur`,
/// then repeatedly swaps `cur` with the furthest-behind pending context
/// of the same frame class so stragglers catch up (yielding `if`/`else`
/// reconvergence at the join point). Pure scheduling: any interleaving
/// of contexts is semantically correct.
fn reschedule(cur: &mut Ctx, pending: &mut Vec<Ctx>) {
    loop {
        let mut i = 0;
        while i < pending.len() {
            if same_point(&pending[i], cur) {
                debug_assert_eq!(pending[i].sp, cur.sp);
                debug_assert_eq!(pending[i].frame_base, cur.frame_base);
                cur.mask |= pending[i].mask;
                pending.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let mut behind: Option<usize> = None;
        for (j, p) in pending.iter().enumerate() {
            if p.chunk == cur.chunk && p.pc < cur.pc && p.frames == cur.frames {
                match behind {
                    Some(b) if pending[b].pc <= p.pc => {}
                    _ => behind = Some(j),
                }
            }
        }
        match behind {
            Some(j) => std::mem::swap(&mut pending[j], cur),
            None => break,
        }
    }
}

/// Iterates the set bits of a lane mask.
macro_rules! for_lanes {
    ($mask:expr, $lane:ident => $body:block) => {{
        let mut __m: u8 = $mask;
        while __m != 0 {
            let $lane = __m.trailing_zeros() as usize;
            __m &= __m - 1;
            $body
        }
    }};
}

/// A struct-of-arrays lane register: one stack/locals/global slot's
/// value for every lane. Typed variants keep the common scalar and
/// small-vector cases unboxed and contiguous; [`Slot::Boxed`] is the
/// exact fallback for every other value shape (and for slots whose
/// lanes diverge in type under masked writes).
#[derive(Clone)]
enum Slot {
    F([f32; MAX_LANES]),
    I([i32; MAX_LANES]),
    B([bool; MAX_LANES]),
    V2([[f32; 2]; MAX_LANES]),
    V3([[f32; 3]; MAX_LANES]),
    V4([[f32; 4]; MAX_LANES]),
    Boxed(Box<[Value; MAX_LANES]>),
}

impl Slot {
    /// A slot with `v` in every lane.
    fn splat(v: &Value) -> Slot {
        match v {
            Value::Float(x) => Slot::F([*x; MAX_LANES]),
            Value::Int(x) => Slot::I([*x; MAX_LANES]),
            Value::Bool(x) => Slot::B([*x; MAX_LANES]),
            Value::Vec2(x) => Slot::V2([*x; MAX_LANES]),
            Value::Vec3(x) => Slot::V3([*x; MAX_LANES]),
            Value::Vec4(x) => Slot::V4([*x; MAX_LANES]),
            other => Slot::Boxed(Box::new(std::array::from_fn(|_| other.clone()))),
        }
    }

    /// Materialises one lane's value.
    fn get(&self, lane: usize) -> Value {
        match self {
            Slot::F(x) => Value::Float(x[lane]),
            Slot::I(x) => Value::Int(x[lane]),
            Slot::B(x) => Value::Bool(x[lane]),
            Slot::V2(x) => Value::Vec2(x[lane]),
            Slot::V3(x) => Value::Vec3(x[lane]),
            Slot::V4(x) => Value::Vec4(x[lane]),
            Slot::Boxed(b) => b[lane].clone(),
        }
    }

    /// Converts in place to [`Slot::Boxed`], preserving every lane.
    fn boxify(&mut self) {
        if matches!(self, Slot::Boxed(_)) {
            return;
        }
        let b: Box<[Value; MAX_LANES]> = Box::new(std::array::from_fn(|lane| self.get(lane)));
        *self = Slot::Boxed(b);
    }

    /// Writes one lane's value, preserving the other lanes (boxing the
    /// slot if the value's type no longer matches the slot's variant).
    fn set(&mut self, lane: usize, v: Value) {
        match (&mut *self, v) {
            (Slot::F(x), Value::Float(v)) => x[lane] = v,
            (Slot::I(x), Value::Int(v)) => x[lane] = v,
            (Slot::B(x), Value::Bool(v)) => x[lane] = v,
            (Slot::V2(x), Value::Vec2(v)) => x[lane] = v,
            (Slot::V3(x), Value::Vec3(v)) => x[lane] = v,
            (Slot::V4(x), Value::Vec4(v)) => x[lane] = v,
            (Slot::Boxed(b), v) => b[lane] = v,
            (slot, v) => {
                slot.boxify();
                if let Slot::Boxed(b) = slot {
                    b[lane] = v;
                }
            }
        }
    }

    /// Copies `mask` lanes from `src`, preserving the rest.
    fn copy_masked_from(&mut self, src: &Slot, mask: u8) {
        match (&mut *self, src) {
            (Slot::F(d), Slot::F(s)) => for_lanes!(mask, l => { d[l] = s[l]; }),
            (Slot::I(d), Slot::I(s)) => for_lanes!(mask, l => { d[l] = s[l]; }),
            (Slot::B(d), Slot::B(s)) => for_lanes!(mask, l => { d[l] = s[l]; }),
            (Slot::V2(d), Slot::V2(s)) => for_lanes!(mask, l => { d[l] = s[l]; }),
            (Slot::V3(d), Slot::V3(s)) => for_lanes!(mask, l => { d[l] = s[l]; }),
            (Slot::V4(d), Slot::V4(s)) => for_lanes!(mask, l => { d[l] = s[l]; }),
            (Slot::Boxed(d), Slot::Boxed(s)) => for_lanes!(mask, l => { d[l] = s[l].clone(); }),
            (dst, src) => for_lanes!(mask, l => { dst.set(l, src.get(l)); }),
        }
    }

    /// Copies from `src`: wholesale when this context runs alone (dead
    /// lanes may be clobbered), masked otherwise.
    fn write_from(&mut self, src: &Slot, mask: u8, solo: bool) {
        if solo {
            self.clone_from(src);
        } else {
            self.copy_masked_from(src, mask);
        }
    }
}

/// Executes batches of up to [`MAX_LANES`] invocations of one lowered
/// fragment shader, bit-identical per lane to [`crate::vm::Vm`].
pub struct SpmdVm<'a> {
    exe: &'a Executable,
    textures: &'a dyn TextureAccess,
    model: FloatModel,
    limits: ExecLimits,
    lanes: usize,
    /// Global slot values, one SoA slot per global.
    globals: Vec<Slot>,
    /// (slot, initial value) for plain mutable globals.
    reset_list: Vec<(u32, Value)>,
    /// Operand stack, one SoA slot per depth, indexed by the context's
    /// shared `sp`.
    stack: Vec<Slot>,
    /// Locals frame arena, one SoA slot per local.
    locals: Vec<Slot>,
    /// Loop iteration counter stacks, per lane.
    loop_counters: Vec<Vec<u64>>,
    /// Per-lane op profiles, accumulated across batches (excludes the
    /// global-initialiser cost held in `init_profile`).
    profiles: Vec<OpProfile>,
    /// Cost of running the global initialisers, counted once per VM —
    /// exactly like the scalar VM counts chunk 0 once in `with_model`.
    init_profile: OpProfile,
    /// Reusable per-lane argument buffer for generic builtin dispatch.
    arg_buf: Vec<Value>,
    discarded: [bool; MAX_LANES],
    wrote_frag_color: [bool; MAX_LANES],
    wrote_frag_data: [bool; MAX_LANES],
    completed: [bool; MAX_LANES],
    replays: u64,
}

impl<'a> SpmdVm<'a> {
    /// Creates an SPMD VM with `lanes` lanes (clamped to
    /// `1..=`[`MAX_LANES`]) over a lowered shader, evaluating global
    /// initialisers once (profile-counted into [`SpmdVm::init_profile`])
    /// and broadcasting the results to every lane.
    ///
    /// # Errors
    ///
    /// Fails if a global initialiser fails to evaluate (same cases as
    /// [`crate::vm::Vm::with_model`]).
    pub fn with_model(
        exe: &'a Executable,
        textures: &'a dyn TextureAccess,
        model: FloatModel,
        lanes: usize,
    ) -> Result<Self, RuntimeError> {
        let lanes = lanes.clamp(1, MAX_LANES);
        let mut vm = SpmdVm {
            exe,
            textures,
            model,
            limits: ExecLimits::default(),
            lanes,
            globals: exe
                .globals
                .iter()
                .map(|g| Slot::splat(&Value::zero_of(&g.ty)))
                .collect(),
            reset_list: Vec::new(),
            stack: Vec::new(),
            locals: Vec::new(),
            loop_counters: vec![Vec::new(); lanes],
            profiles: vec![OpProfile::new(); lanes],
            init_profile: OpProfile::new(),
            arg_buf: Vec::new(),
            discarded: [false; MAX_LANES],
            wrote_frag_color: [false; MAX_LANES],
            wrote_frag_data: [false; MAX_LANES],
            completed: [false; MAX_LANES],
            replays: 0,
        };
        // A single-lane run through the SPMD engine is exactly a scalar
        // run; use it for chunk 0 on lane 0, then broadcast.
        vm.exec(1, 0)?;
        vm.init_profile = std::mem::take(&mut vm.profiles[0]);
        for slot in &mut vm.globals {
            let v = slot.get(0);
            *slot = Slot::splat(&v);
        }
        vm.reset_list = exe
            .reset_slots
            .iter()
            .map(|&slot| (slot, vm.globals[slot as usize].get(0)))
            .collect();
        Ok(vm)
    }

    /// Replaces the execution limits.
    pub fn set_limits(&mut self, limits: ExecLimits) {
        self.limits = limits;
    }

    /// Number of lanes this VM shades per full batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sets a global by name on **every** lane (uniforms and other
    /// batch-invariant inputs).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unbound`] if no such global exists.
    pub fn set_global(&mut self, name: &str, value: Value) -> Result<(), RuntimeError> {
        match self.exe.global_slot(name) {
            Some(slot) => {
                self.set_slot_all(slot, value);
                Ok(())
            }
            None => Err(RuntimeError::Unbound { name: name.into() }),
        }
    }

    /// Sets a global by pre-resolved slot on every lane.
    pub fn set_slot_all(&mut self, slot: u32, value: Value) {
        self.globals[slot as usize] = Slot::splat(&value);
    }

    /// Sets a global by pre-resolved slot on one lane (per-fragment
    /// inputs: varyings, `gl_FragCoord`).
    pub fn set_lane_slot(&mut self, lane: usize, slot: u32, value: Value) {
        self.globals[slot as usize].set(lane, value);
    }

    /// Resolves a global name to its slot (see
    /// [`Executable::global_slot`]).
    pub fn global_slot(&self, name: &str) -> Option<u32> {
        self.exe.global_slot(name)
    }

    /// Reads a lane's global by name (materialised out of the SoA slot).
    pub fn global(&self, lane: usize, name: &str) -> Option<Value> {
        self.exe
            .global_slot(name)
            .map(|slot| self.globals[slot as usize].get(lane))
    }

    /// Whether `lane` executed `discard` in the last batch.
    pub fn discarded(&self, lane: usize) -> bool {
        self.discarded[lane]
    }

    /// Whether `lane` wrote `gl_FragColor` / `gl_FragData` in the last
    /// batch.
    pub fn wrote_outputs(&self, lane: usize) -> (bool, bool) {
        (self.wrote_frag_color[lane], self.wrote_frag_data[lane])
    }

    /// Whether `lane` ran to completion in the last batch (false only
    /// for the erroring lane and lanes above it when
    /// [`SpmdVm::run_batch`] returned a [`BatchError`]).
    pub fn completed(&self, lane: usize) -> bool {
        self.completed[lane]
    }

    /// The fragment colour `lane` produced in the last batch, honouring
    /// whether the shader used `gl_FragColor` or `gl_FragData[0]`.
    pub fn frag_color(&self, lane: usize) -> Option<[f32; 4]> {
        if self.wrote_frag_data[lane] {
            match self.global(lane, "gl_FragData") {
                Some(Value::Array(elems)) => elems.first().and_then(Value::as_vec4),
                _ => None,
            }
        } else {
            self.global(lane, "gl_FragColor").and_then(|v| v.as_vec4())
        }
    }

    /// One lane's accumulated profile (excluding the shared
    /// global-initialiser cost; add [`SpmdVm::init_profile`] to compare
    /// against a dedicated scalar VM's total).
    pub fn lane_profile(&self, lane: usize) -> OpProfile {
        self.profiles[lane]
    }

    /// The global-initialiser profile, counted once per VM.
    pub fn init_profile(&self) -> OpProfile {
        self.init_profile
    }

    /// Accumulated profile over all lanes plus the initialiser cost —
    /// identical to a scalar VM's [`crate::vm::Vm::profile`] after
    /// shading the same fragments sequentially.
    pub fn profile(&self) -> OpProfile {
        let mut total = self.init_profile;
        for p in &self.profiles {
            total.merge(p);
        }
        total
    }

    /// Resets the accumulated profile (all lanes and the initialiser
    /// share) and returns the previous total.
    pub fn take_profile(&mut self) -> OpProfile {
        let total = self.profile();
        self.init_profile = OpProfile::new();
        for p in &mut self.profiles {
            *p = OpProfile::new();
        }
        total
    }

    /// Number of batches that trapped and were replayed lane-by-lane
    /// since the last call (the rasteriser reports these as scalar
    /// fallbacks).
    pub fn take_replays(&mut self) -> u64 {
        std::mem::take(&mut self.replays)
    }

    /// Runs `main()` once on lanes `0..active`.
    ///
    /// On success every lane completed (check [`SpmdVm::discarded`] and
    /// read [`SpmdVm::frag_color`] per lane). If any lane traps, the
    /// batch is replayed lane-by-lane so outputs, profiles and the
    /// reported error match scalar execution exactly.
    ///
    /// # Errors
    ///
    /// [`BatchError`] carrying the lowest-index erroring lane and its
    /// scalar-order [`RuntimeError`].
    pub fn run_batch(&mut self, active: usize) -> Result<(), BatchError> {
        assert!(active >= 1 && active <= self.lanes, "bad batch width");
        let mask = ((1u16 << active) - 1) as u8;
        let snapshot: Vec<OpProfile> = self.profiles[..active].to_vec();
        for lane in 0..active {
            self.begin_invocation(lane);
        }
        self.completed[..active].fill(false);
        match self.exec(mask, self.exe.main_chunk) {
            Ok(()) => {
                self.completed[..active].fill(true);
                Ok(())
            }
            Err(_) => {
                // Lockstep state is torn mid-instruction; discard it and
                // replay each lane alone, which is exactly scalar.
                self.replays += 1;
                self.profiles[..active].clone_from_slice(&snapshot);
                for lane in 0..active {
                    self.begin_invocation(lane);
                    match self.exec(1 << lane, self.exe.main_chunk) {
                        Ok(()) => self.completed[lane] = true,
                        Err(error) => return Err(BatchError { lane, error }),
                    }
                }
                Ok(())
            }
        }
    }

    /// Per-invocation reset for one lane, mirroring the scalar VM's
    /// `run_main` prologue.
    fn begin_invocation(&mut self, lane: usize) {
        self.discarded[lane] = false;
        self.wrote_frag_color[lane] = false;
        self.wrote_frag_data[lane] = false;
        self.loop_counters[lane].clear();
        for (slot, value) in &self.reset_list {
            self.globals[*slot as usize].set(lane, value.clone());
        }
        self.profiles[lane].invocations += 1;
    }

    /// Grows the operand stack to at least `need` slots.
    fn ensure_stack(&mut self, need: usize) {
        if self.stack.len() < need {
            self.stack.resize(need, Slot::B([false; MAX_LANES]));
        }
    }

    /// Grows the locals arena to at least `need` slots.
    fn ensure_locals(&mut self, need: usize) {
        if self.locals.len() < need {
            self.locals.resize(need, Slot::F([0.0; MAX_LANES]));
        }
    }

    /// Applies a binary operator to the slots at `sp-2`/`sp-1` via the
    /// typed fast paths, writing the result to `sp-2`. Returns `false`
    /// (with no state mutated) when the operand shapes need the generic
    /// per-lane path.
    fn binary_fast(&mut self, op: BinOp, sp: usize, mask: u8, solo: bool) -> bool {
        use BinOp::*;
        let model = self.model;
        let is_arith = matches!(op, Add | Sub | Mul | Div);
        let fop = move |x: f32, y: f32| match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            _ => 0.0,
        };
        let (lo, hi) = self.stack.split_at_mut(sp - 1);
        let a = &mut lo[sp - 2];
        let b = &hi[0];
        macro_rules! bump_alu {
            ($n:expr) => {
                for_lanes!(mask, l => { self.profiles[l].alu_ops += $n; })
            };
        }
        macro_rules! vec_vec {
            ($x:ident, $y:ident, $n:expr) => {{
                if !is_arith {
                    return false;
                }
                if solo {
                    for i in 0..MAX_LANES {
                        for c in 0..$n {
                            $x[i][c] = model.round_alu(fop($x[i][c], $y[i][c]));
                        }
                    }
                } else {
                    for_lanes!(mask, l => {
                        for c in 0..$n {
                            $x[l][c] = model.round_alu(fop($x[l][c], $y[l][c]));
                        }
                    });
                }
                bump_alu!($n);
                true
            }};
        }
        macro_rules! vec_scalar {
            ($x:ident, $y:ident, $n:expr) => {{
                if !is_arith {
                    return false;
                }
                if solo {
                    for i in 0..MAX_LANES {
                        for c in 0..$n {
                            $x[i][c] = model.round_alu(fop($x[i][c], $y[i]));
                        }
                    }
                } else {
                    for_lanes!(mask, l => {
                        for c in 0..$n {
                            $x[l][c] = model.round_alu(fop($x[l][c], $y[l]));
                        }
                    });
                }
                bump_alu!($n);
                true
            }};
        }
        match (&mut *a, b) {
            (Slot::F(x), Slot::F(y)) => {
                if is_arith {
                    if solo {
                        for i in 0..MAX_LANES {
                            x[i] = model.round_alu(fop(x[i], y[i]));
                        }
                    } else {
                        for_lanes!(mask, l => { x[l] = model.round_alu(fop(x[l], y[l])); });
                    }
                    bump_alu!(1);
                    return true;
                }
                match op {
                    Lt | Le | Gt | Ge | Eq | Ne => {
                        let mut r = [false; MAX_LANES];
                        for_lanes!(mask, l => {
                            r[l] = match op {
                                Lt => x[l] < y[l],
                                Le => x[l] <= y[l],
                                Gt => x[l] > y[l],
                                Ge => x[l] >= y[l],
                                Eq => x[l] == y[l],
                                _ => x[l] != y[l],
                            };
                        });
                        bump_alu!(1);
                        if solo {
                            *a = Slot::B(r);
                        } else {
                            for_lanes!(mask, l => { a.set(l, Value::Bool(r[l])); });
                        }
                        true
                    }
                    _ => false,
                }
            }
            (Slot::I(x), Slot::I(y)) => {
                if is_arith {
                    let g = move |x: i32, y: i32| match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        Mul => x.wrapping_mul(y),
                        _ => {
                            if y == 0 {
                                0
                            } else {
                                x.wrapping_div(y)
                            }
                        }
                    };
                    if solo {
                        for i in 0..MAX_LANES {
                            x[i] = g(x[i], y[i]);
                        }
                    } else {
                        for_lanes!(mask, l => { x[l] = g(x[l], y[l]); });
                    }
                    bump_alu!(1);
                    return true;
                }
                match op {
                    Lt | Le | Gt | Ge | Eq | Ne => {
                        let mut r = [false; MAX_LANES];
                        for_lanes!(mask, l => {
                            r[l] = match op {
                                Lt => x[l] < y[l],
                                Le => x[l] <= y[l],
                                Gt => x[l] > y[l],
                                Ge => x[l] >= y[l],
                                Eq => x[l] == y[l],
                                _ => x[l] != y[l],
                            };
                        });
                        bump_alu!(1);
                        if solo {
                            *a = Slot::B(r);
                        } else {
                            for_lanes!(mask, l => { a.set(l, Value::Bool(r[l])); });
                        }
                        true
                    }
                    _ => false,
                }
            }
            (Slot::B(x), Slot::B(y)) => match op {
                And => {
                    for_lanes!(mask, l => { x[l] = x[l] && y[l]; });
                    true
                }
                Or => {
                    for_lanes!(mask, l => { x[l] = x[l] || y[l]; });
                    true
                }
                Xor => {
                    for_lanes!(mask, l => { x[l] = x[l] != y[l]; });
                    true
                }
                Eq => {
                    for_lanes!(mask, l => { x[l] = x[l] == y[l]; });
                    bump_alu!(1);
                    true
                }
                Ne => {
                    for_lanes!(mask, l => { x[l] = x[l] != y[l]; });
                    bump_alu!(1);
                    true
                }
                _ => false,
            },
            (Slot::V2(x), Slot::V2(y)) => vec_vec!(x, y, 2),
            (Slot::V3(x), Slot::V3(y)) => vec_vec!(x, y, 3),
            (Slot::V4(x), Slot::V4(y)) => vec_vec!(x, y, 4),
            (Slot::V2(x), Slot::F(y)) => vec_scalar!(x, y, 2),
            (Slot::V3(x), Slot::F(y)) => vec_scalar!(x, y, 3),
            (Slot::V4(x), Slot::F(y)) => vec_scalar!(x, y, 4),
            _ => false,
        }
    }

    /// Generic per-lane binary operator: materialises both operands and
    /// applies the scalar VM's [`ops::apply_binary`] exactly.
    fn binary_generic(&mut self, op: BinOp, sp: usize, mask: u8) -> Result<(), RuntimeError> {
        for_lanes!(mask, l => {
            let bv = self.stack[sp - 1].get(l);
            let av = self.stack[sp - 2].get(l);
            let r = ops::apply_binary(self.model, &mut self.profiles[l], op, av, bv)?;
            self.stack[sp - 2].set(l, r);
        });
        Ok(())
    }

    /// SoA fast paths for the hot builtins and constructors, replicating
    /// [`crate::builtins::call`]'s values, rounding and profile counts
    /// exactly. Returns `false` (with no state mutated) when the call
    /// must take the generic per-lane path — including every case where
    /// the scalar builtin would error.
    #[allow(clippy::type_complexity)] // fn-pointer dispatch tables
    fn fast_builtin(&mut self, name: &str, s: usize, argc: usize, mask: u8, solo: bool) -> bool {
        use std::f32::consts::PI;
        let model = self.model;

        // Component-wise unary genType builtins.
        if argc == 1 {
            let m1: Option<(fn(f32) -> f32, bool)> = match name {
                "radians" => Some((|v| v * (PI / 180.0), false)),
                "degrees" => Some((|v| v * (180.0 / PI), false)),
                "sin" => Some((f32::sin, true)),
                "cos" => Some((f32::cos, true)),
                "tan" => Some((f32::tan, true)),
                "asin" => Some((f32::asin, true)),
                "acos" => Some((f32::acos, true)),
                "atan" => Some((f32::atan, true)),
                "exp" => Some((f32::exp, true)),
                "log" => Some((f32::ln, true)),
                "exp2" => Some((builtins::exp2_f32, true)),
                "log2" => Some((f32::log2, true)),
                "sqrt" => Some((f32::sqrt, true)),
                "inversesqrt" => Some((|v| 1.0 / v.sqrt(), true)),
                "abs" => Some((f32::abs, false)),
                "sign" => Some((
                    |v| {
                        if v > 0.0 {
                            1.0
                        } else if v < 0.0 {
                            -1.0
                        } else {
                            0.0
                        }
                    },
                    false,
                )),
                "floor" => Some((f32::floor, false)),
                "ceil" => Some((f32::ceil, false)),
                "fract" => Some((|v| v - v.floor(), false)),
                _ => None,
            };
            if let Some((f, sfu)) = m1 {
                let round = move |v: f32| {
                    if sfu {
                        model.round_sfu(v)
                    } else {
                        model.round_alu(v)
                    }
                };
                macro_rules! m1_vec {
                    ($x:ident, $n:expr) => {{
                        if solo {
                            for i in 0..MAX_LANES {
                                for c in 0..$n {
                                    $x[i][c] = round(f($x[i][c]));
                                }
                            }
                        } else {
                            for_lanes!(mask, l => {
                                for c in 0..$n {
                                    $x[l][c] = round(f($x[l][c]));
                                }
                            });
                        }
                        for_lanes!(mask, l => {
                            if sfu {
                                self.profiles[l].sfu_ops += $n;
                            } else {
                                self.profiles[l].alu_ops += $n;
                            }
                        });
                        true
                    }};
                }
                return match &mut self.stack[s] {
                    Slot::F(x) => {
                        if solo {
                            for v in x.iter_mut() {
                                *v = round(f(*v));
                            }
                        } else {
                            for_lanes!(mask, l => { x[l] = round(f(x[l])); });
                        }
                        for_lanes!(mask, l => {
                            if sfu {
                                self.profiles[l].sfu_ops += 1;
                            } else {
                                self.profiles[l].alu_ops += 1;
                            }
                        });
                        true
                    }
                    Slot::V2(x) => m1_vec!(x, 2),
                    Slot::V3(x) => m1_vec!(x, 3),
                    Slot::V4(x) => m1_vec!(x, 4),
                    _ => false,
                };
            }
        }

        // Component-wise binary genType builtins (scalar second operand
        // broadcasts, matching `builtins::map2`).
        if argc == 2 {
            let m2: Option<(fn(f32, f32) -> f32, bool)> = match name {
                "mod" => Some((builtins::glsl_mod, false)),
                "min" => Some((f32::min, false)),
                "max" => Some((f32::max, false)),
                "pow" => Some((f32::powf, true)),
                "atan" => Some((f32::atan2, true)),
                _ => None,
            };
            if let Some((f, sfu)) = m2 {
                let round = move |v: f32| {
                    if sfu {
                        model.round_sfu(v)
                    } else {
                        model.round_alu(v)
                    }
                };
                let (lo, hi) = self.stack.split_at_mut(s + 1);
                let a = &mut lo[s];
                let b = &hi[0];
                macro_rules! m2_bump {
                    ($n:expr) => {
                        for_lanes!(mask, l => {
                            if sfu {
                                self.profiles[l].sfu_ops += $n;
                            } else {
                                self.profiles[l].alu_ops += $n;
                            }
                        })
                    };
                }
                macro_rules! m2_vec_vec {
                    ($x:ident, $y:ident, $n:expr) => {{
                        if solo {
                            for i in 0..MAX_LANES {
                                for c in 0..$n {
                                    $x[i][c] = round(f($x[i][c], $y[i][c]));
                                }
                            }
                        } else {
                            for_lanes!(mask, l => {
                                for c in 0..$n {
                                    $x[l][c] = round(f($x[l][c], $y[l][c]));
                                }
                            });
                        }
                        m2_bump!($n);
                        true
                    }};
                }
                macro_rules! m2_vec_scalar {
                    ($x:ident, $y:ident, $n:expr) => {{
                        if solo {
                            for i in 0..MAX_LANES {
                                for c in 0..$n {
                                    $x[i][c] = round(f($x[i][c], $y[i]));
                                }
                            }
                        } else {
                            for_lanes!(mask, l => {
                                for c in 0..$n {
                                    $x[l][c] = round(f($x[l][c], $y[l]));
                                }
                            });
                        }
                        m2_bump!($n);
                        true
                    }};
                }
                return match (&mut *a, b) {
                    (Slot::F(x), Slot::F(y)) => {
                        if solo {
                            for i in 0..MAX_LANES {
                                x[i] = round(f(x[i], y[i]));
                            }
                        } else {
                            for_lanes!(mask, l => { x[l] = round(f(x[l], y[l])); });
                        }
                        m2_bump!(1);
                        true
                    }
                    (Slot::V2(x), Slot::V2(y)) => m2_vec_vec!(x, y, 2),
                    (Slot::V3(x), Slot::V3(y)) => m2_vec_vec!(x, y, 3),
                    (Slot::V4(x), Slot::V4(y)) => m2_vec_vec!(x, y, 4),
                    (Slot::V2(x), Slot::F(y)) => m2_vec_scalar!(x, y, 2),
                    (Slot::V3(x), Slot::F(y)) => m2_vec_scalar!(x, y, 3),
                    (Slot::V4(x), Slot::F(y)) => m2_vec_scalar!(x, y, 4),
                    _ => false,
                };
            }

            // step(edge, x): no rounding, alu += x's component count.
            if name == "step" {
                let (lo, hi) = self.stack.split_at_mut(s + 1);
                let a = &mut lo[s];
                let b = &hi[0];
                macro_rules! step_vec {
                    ($x:ident, $n:expr, $edge:expr) => {{
                        let mut out = [[0.0f32; 4]; MAX_LANES];
                        for_lanes!(mask, l => {
                            for c in 0..$n {
                                let edge = $edge(l, c);
                                out[l][c] = if $x[l][c] < edge { 0.0 } else { 1.0 };
                            }
                            self.profiles[l].alu_ops += $n;
                        });
                        self.write_vec_result(s, $n, &out, mask, solo);
                        true
                    }};
                }
                return match (&mut *a, b) {
                    (Slot::F(e), Slot::F(x)) => {
                        for_lanes!(mask, l => {
                            e[l] = if x[l] < e[l] { 0.0 } else { 1.0 };
                            self.profiles[l].alu_ops += 1;
                        });
                        true
                    }
                    (Slot::F(e), Slot::V2(x)) => step_vec!(x, 2, |l: usize, _c: usize| e[l]),
                    (Slot::F(e), Slot::V3(x)) => step_vec!(x, 3, |l: usize, _c: usize| e[l]),
                    (Slot::F(e), Slot::V4(x)) => step_vec!(x, 4, |l: usize, _c: usize| e[l]),
                    (Slot::V2(e), Slot::V2(x)) => step_vec!(x, 2, |l: usize, c: usize| e[l][c]),
                    (Slot::V3(e), Slot::V3(x)) => step_vec!(x, 3, |l: usize, c: usize| e[l][c]),
                    (Slot::V4(e), Slot::V4(x)) => step_vec!(x, 4, |l: usize, c: usize| e[l][c]),
                    _ => false,
                };
            }

            // dot(a, b): chained rounding, alu += 2n.
            if name == "dot" {
                let (lo, hi) = self.stack.split_at_mut(s + 1);
                let a = &mut lo[s];
                let b = &hi[0];
                macro_rules! dot_vec {
                    ($x:ident, $y:ident, $n:expr) => {{
                        let mut out = [0.0f32; MAX_LANES];
                        for_lanes!(mask, l => {
                            let mut acc = 0.0f32;
                            for c in 0..$n {
                                acc = model.round_alu(acc + model.round_alu($x[l][c] * $y[l][c]));
                            }
                            out[l] = acc;
                            self.profiles[l].alu_ops += 2 * $n;
                        });
                        if solo {
                            *a = Slot::F(out);
                        } else {
                            for_lanes!(mask, l => { a.set(l, Value::Float(out[l])); });
                        }
                        true
                    }};
                }
                return match (&mut *a, b) {
                    (Slot::V2(x), Slot::V2(y)) => dot_vec!(x, y, 2),
                    (Slot::V3(x), Slot::V3(y)) => dot_vec!(x, y, 3),
                    (Slot::V4(x), Slot::V4(y)) => dot_vec!(x, y, 4),
                    _ => false,
                };
            }

            // texture2D(sampler, vec2): one fetch per lane.
            if name == "texture2D" {
                let (sampler, coord) = (&self.stack[s], &self.stack[s + 1]);
                let (Slot::Boxed(units), Slot::V2(coords)) = (sampler, coord) else {
                    return false;
                };
                let mut ok = true;
                for_lanes!(mask, l => {
                    ok &= matches!(units[l], Value::Sampler(_));
                });
                if !ok {
                    return false;
                }
                let mut out = [[0.0f32; 4]; MAX_LANES];
                for_lanes!(mask, l => {
                    let Value::Sampler(unit) = units[l] else { unreachable!() };
                    out[l] = self.textures.sample(unit, coords[l]);
                    self.profiles[l].tex_fetches += 1;
                });
                self.write_vec_result(s, 4, &out, mask, solo);
                return true;
            }
        }

        // clamp / mix on genTypes: alu += 2n, one rounding per component.
        if argc == 3 && (name == "clamp" || name == "mix") {
            let f: fn(f32, f32, f32) -> f32 = if name == "clamp" {
                |v, lo, hi| v.max(lo).min(hi)
            } else {
                |p, q, t| p * (1.0 - t) + q * t
            };
            macro_rules! m3_get {
                ($slot:expr, $l:ident, $c:ident, $n:expr) => {
                    match $slot {
                        Slot::F(x) => x[$l],
                        Slot::V2(x) if $n == 2 => x[$l][$c],
                        Slot::V3(x) if $n == 3 => x[$l][$c],
                        Slot::V4(x) if $n == 4 => x[$l][$c],
                        _ => unreachable!(),
                    }
                };
            }
            let compatible = |slot: &Slot, n: usize| {
                matches!(
                    (slot, n),
                    (Slot::F(_), _) | (Slot::V2(_), 2) | (Slot::V3(_), 3) | (Slot::V4(_), 4)
                )
            };
            let n = match &self.stack[s] {
                Slot::F(_) => 1,
                Slot::V2(_) => 2,
                Slot::V3(_) => 3,
                Slot::V4(_) => 4,
                _ => return false,
            };
            if !compatible(&self.stack[s + 1], n) || !compatible(&self.stack[s + 2], n) {
                return false;
            }
            let mut out = [[0.0f32; 4]; MAX_LANES];
            for_lanes!(mask, l => {
                for c in 0..n {
                    let x = m3_get!(&self.stack[s], l, c, n);
                    let b = m3_get!(&self.stack[s + 1], l, c, n);
                    let cc = m3_get!(&self.stack[s + 2], l, c, n);
                    out[l][c] = model.round_alu(f(x, b, cc));
                }
                self.profiles[l].alu_ops += 2 * n as u64;
            });
            if n == 1 {
                let r: [f32; MAX_LANES] = std::array::from_fn(|l| out[l][0]);
                if solo {
                    self.stack[s] = Slot::F(r);
                } else {
                    for_lanes!(mask, l => { self.stack[s].set(l, Value::Float(r[l])); });
                }
            } else {
                self.write_vec_result(s, n, &out, mask, solo);
            }
            return true;
        }

        // float()/int() scalar conversions and vecN constructors.
        match name {
            "float" | "int" if argc == 1 => {
                let to_int = name == "int";
                let mut out = [0.0f32; MAX_LANES];
                let comps = match &self.stack[s] {
                    Slot::F(x) => {
                        for_lanes!(mask, l => { out[l] = x[l]; });
                        1u64
                    }
                    Slot::I(x) => {
                        for_lanes!(mask, l => { out[l] = x[l] as f32; });
                        1
                    }
                    Slot::V2(x) => {
                        for_lanes!(mask, l => { out[l] = x[l][0]; });
                        2
                    }
                    Slot::V3(x) => {
                        for_lanes!(mask, l => { out[l] = x[l][0]; });
                        3
                    }
                    Slot::V4(x) => {
                        for_lanes!(mask, l => { out[l] = x[l][0]; });
                        4
                    }
                    _ => return false,
                };
                for_lanes!(mask, l => { self.profiles[l].alu_ops += comps; });
                if to_int {
                    let r: [i32; MAX_LANES] = std::array::from_fn(|l| out[l] as i32);
                    if solo {
                        self.stack[s] = Slot::I(r);
                    } else {
                        for_lanes!(mask, l => { self.stack[s].set(l, Value::Int(r[l])); });
                    }
                } else if solo {
                    self.stack[s] = Slot::F(out);
                } else {
                    for_lanes!(mask, l => { self.stack[s].set(l, Value::Float(out[l])); });
                }
                true
            }
            "vec2" | "vec3" | "vec4" => {
                let dim = match name {
                    "vec2" => 2usize,
                    "vec3" => 3,
                    _ => 4,
                };
                let mut total = 0usize;
                for k in 0..argc {
                    total += match &self.stack[s + k] {
                        Slot::F(_) | Slot::I(_) => 1,
                        Slot::V2(_) => 2,
                        Slot::V3(_) => 3,
                        Slot::V4(_) => 4,
                        _ => return false,
                    };
                }
                // Mirrors `builtins::build`: exact fill, single-scalar
                // splat, or single-argument truncation; anything else
                // errors in the scalar VM, so take the generic path.
                if !(total == dim || total == 1 || (total > dim && argc == 1)) {
                    return false;
                }
                let mut out = [[0.0f32; 4]; MAX_LANES];
                for_lanes!(mask, l => {
                    let mut buf = [0.0f32; 16];
                    let mut k = 0usize;
                    for arg in 0..argc {
                        match &self.stack[s + arg] {
                            Slot::F(x) => {
                                buf[k] = x[l];
                                k += 1;
                            }
                            Slot::I(x) => {
                                buf[k] = x[l] as f32;
                                k += 1;
                            }
                            Slot::V2(x) => {
                                buf[k..k + 2].copy_from_slice(&x[l]);
                                k += 2;
                            }
                            Slot::V3(x) => {
                                buf[k..k + 3].copy_from_slice(&x[l]);
                                k += 3;
                            }
                            Slot::V4(x) => {
                                buf[k..k + 4].copy_from_slice(&x[l]);
                                k += 4;
                            }
                            _ => unreachable!(),
                        }
                    }
                    if total == 1 {
                        out[l] = [buf[0]; 4];
                    } else {
                        out[l][..dim].copy_from_slice(&buf[..dim]);
                    }
                    self.profiles[l].alu_ops += total as u64;
                });
                self.write_vec_result(s, dim, &out, mask, solo);
                true
            }
            _ => false,
        }
    }

    /// Writes an `n`-component float vector result (per lane, padded to
    /// 4 components) into stack slot `s`.
    fn write_vec_result(
        &mut self,
        s: usize,
        n: usize,
        out: &[[f32; 4]; MAX_LANES],
        mask: u8,
        solo: bool,
    ) {
        match n {
            2 => {
                if solo {
                    self.stack[s] = Slot::V2(std::array::from_fn(|l| [out[l][0], out[l][1]]));
                } else {
                    for_lanes!(mask, l => {
                        self.stack[s].set(l, Value::Vec2([out[l][0], out[l][1]]));
                    });
                }
            }
            3 => {
                if solo {
                    self.stack[s] =
                        Slot::V3(std::array::from_fn(|l| [out[l][0], out[l][1], out[l][2]]));
                } else {
                    for_lanes!(mask, l => {
                        self.stack[s].set(l, Value::Vec3([out[l][0], out[l][1], out[l][2]]));
                    });
                }
            }
            _ => {
                if solo {
                    self.stack[s] = Slot::V4(std::array::from_fn(|l| out[l]));
                } else {
                    for_lanes!(mask, l => { self.stack[s].set(l, Value::Vec4(out[l])); });
                }
            }
        }
    }

    /// Runs `chunk` to completion for the lanes in `mask`, scheduling
    /// divergent contexts as described in the module docs. On error the
    /// per-lane state is torn (the caller replays); a single-lane call
    /// is exact scalar execution.
    fn exec(&mut self, mask: u8, start_chunk: u32) -> Result<(), RuntimeError> {
        let exe = self.exe;
        let mut cur = Ctx {
            mask,
            chunk: start_chunk,
            pc: 0,
            sp: 0,
            frame_base: 0,
            frame_end: exe.chunks[start_chunk as usize].frame_size as usize,
            frames: Vec::new(),
        };
        self.ensure_locals(cur.frame_end);
        let mut pending: Vec<Ctx> = Vec::new();

        macro_rules! next_ctx {
            () => {{
                match pending.pop() {
                    Some(p) => {
                        cur = p;
                        continue;
                    }
                    None => return Ok(()),
                }
            }};
        }

        loop {
            // Merge any pending context that has caught up to `cur`.
            if !pending.is_empty() {
                let mut i = 0;
                while i < pending.len() {
                    if same_point(&pending[i], &cur) {
                        debug_assert_eq!(pending[i].sp, cur.sp);
                        cur.mask |= pending[i].mask;
                        pending.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
            // With no deferred context, this context is the only live
            // one: slots may be overwritten wholesale (retired lanes'
            // stack and locals are dead). Globals stay masked — see the
            // module docs.
            let solo = pending.is_empty();
            let code = &exe.chunks[cur.chunk as usize].code;
            if cur.pc >= code.len() {
                // Fell off the end: only the initialiser chunk and
                // `main` do this (function chunks end in Ret/Err).
                debug_assert!(cur.frames.is_empty());
                next_ctx!();
            }
            let fb = cur.frame_base;
            match &code[cur.pc] {
                Insn::Const(i) => {
                    self.ensure_stack(cur.sp + 1);
                    let v = &exe.consts[*i as usize];
                    if solo {
                        self.stack[cur.sp] = Slot::splat(v);
                    } else {
                        for_lanes!(cur.mask, lane => {
                            self.stack[cur.sp].set(lane, v.clone());
                        });
                    }
                    cur.sp += 1;
                }
                Insn::LoadGlobal(s) => {
                    self.ensure_stack(cur.sp + 1);
                    // Globals and stack are disjoint fields; copy via
                    // split borrow.
                    let (stack, globals) = (&mut self.stack, &self.globals);
                    stack[cur.sp].write_from(&globals[*s as usize], cur.mask, solo);
                    cur.sp += 1;
                }
                Insn::LoadLocal(s) => {
                    self.ensure_stack(cur.sp + 1);
                    let (stack, locals) = (&mut self.stack, &self.locals);
                    stack[cur.sp].write_from(&locals[fb + *s as usize], cur.mask, solo);
                    cur.sp += 1;
                }
                Insn::StoreLocal(s) => {
                    cur.sp -= 1;
                    let dst = fb + *s as usize;
                    if solo {
                        std::mem::swap(&mut self.locals[dst], &mut self.stack[cur.sp]);
                    } else {
                        let (stack, locals) = (&self.stack, &mut self.locals);
                        locals[dst].copy_masked_from(&stack[cur.sp], cur.mask);
                    }
                }
                Insn::StoreGlobalPop(s) => {
                    cur.sp -= 1;
                    // Always masked: retired lanes' outputs must survive.
                    let (stack, globals) = (&self.stack, &mut self.globals);
                    globals[*s as usize].copy_masked_from(&stack[cur.sp], cur.mask);
                }
                Insn::Dup => {
                    self.ensure_stack(cur.sp + 1);
                    let (lo, hi) = self.stack.split_at_mut(cur.sp);
                    hi[0].write_from(&lo[cur.sp - 1], cur.mask, solo);
                    cur.sp += 1;
                }
                Insn::Pop => cur.sp -= 1,
                Insn::Swap => {
                    if solo {
                        self.stack.swap(cur.sp - 1, cur.sp - 2);
                    } else {
                        let (lo, hi) = self.stack.split_at_mut(cur.sp - 1);
                        for_lanes!(cur.mask, lane => {
                            let a = hi[0].get(lane);
                            let b = lo[cur.sp - 2].get(lane);
                            hi[0].set(lane, b);
                            lo[cur.sp - 2].set(lane, a);
                        });
                    }
                }
                Insn::Neg => match &mut self.stack[cur.sp - 1] {
                    Slot::F(x) => {
                        if solo {
                            for v in x.iter_mut() {
                                *v = -*v;
                            }
                        } else {
                            for_lanes!(cur.mask, lane => { x[lane] = -x[lane]; });
                        }
                    }
                    Slot::I(x) => {
                        if solo {
                            for v in x.iter_mut() {
                                *v = v.wrapping_neg();
                            }
                        } else {
                            for_lanes!(cur.mask, lane => { x[lane] = x[lane].wrapping_neg(); });
                        }
                    }
                    Slot::V2(x) => {
                        for_lanes!(cur.mask, lane => { x[lane] = x[lane].map(|v| -v); });
                    }
                    Slot::V3(x) => {
                        for_lanes!(cur.mask, lane => { x[lane] = x[lane].map(|v| -v); });
                    }
                    Slot::V4(x) => {
                        for_lanes!(cur.mask, lane => { x[lane] = x[lane].map(|v| -v); });
                    }
                    slot => {
                        for_lanes!(cur.mask, lane => {
                            let v = slot.get(lane);
                            slot.set(lane, ops::negate(v)?);
                        });
                    }
                },
                Insn::Not => match &mut self.stack[cur.sp - 1] {
                    Slot::B(x) => {
                        if solo {
                            for v in x.iter_mut() {
                                *v = !*v;
                            }
                        } else {
                            for_lanes!(cur.mask, lane => { x[lane] = !x[lane]; });
                        }
                    }
                    slot => {
                        for_lanes!(cur.mask, lane => {
                            let b = slot.get(lane).as_bool().ok_or_else(|| RuntimeError::Type {
                                message: "`!` requires bool".into(),
                            })?;
                            slot.set(lane, Value::Bool(!b));
                        });
                    }
                },
                Insn::Binary(op) => {
                    if !self.binary_fast(*op, cur.sp, cur.mask, solo) {
                        self.binary_generic(*op, cur.sp, cur.mask)?;
                    }
                    cur.sp -= 1;
                }
                Insn::Branch => {
                    for_lanes!(cur.mask, lane => {
                        self.profiles[lane].branches += 1;
                    });
                }
                Insn::Jump(t) => {
                    cur.pc = *t as usize;
                    reschedule(&mut cur, &mut pending);
                    continue;
                }
                Insn::JumpIfFalse(t) | Insn::JumpIfTrue(t) => {
                    let jump_on = matches!(&code[cur.pc], Insn::JumpIfTrue(_));
                    cur.sp -= 1;
                    let mut go: u8 = 0;
                    let mut stay: u8 = 0;
                    match &self.stack[cur.sp] {
                        Slot::B(x) => {
                            for_lanes!(cur.mask, lane => {
                                if x[lane] == jump_on {
                                    go |= 1 << lane;
                                } else {
                                    stay |= 1 << lane;
                                }
                            });
                        }
                        slot => {
                            for_lanes!(cur.mask, lane => {
                                match slot.get(lane).as_bool() {
                                    Some(b) if b == jump_on => go |= 1 << lane,
                                    Some(_) => stay |= 1 << lane,
                                    None => {
                                        return Err(RuntimeError::Type {
                                            message: "condition did not evaluate to bool".into(),
                                        })
                                    }
                                }
                            });
                        }
                    }
                    if go == 0 {
                        cur.pc += 1;
                    } else if stay == 0 {
                        cur.pc = *t as usize;
                        reschedule(&mut cur, &mut pending);
                    } else {
                        // Divergence: defer the jumping subgroup, keep
                        // walking the fall-through side.
                        pending.push(Ctx {
                            mask: go,
                            chunk: cur.chunk,
                            pc: *t as usize,
                            sp: cur.sp,
                            frame_base: cur.frame_base,
                            frame_end: cur.frame_end,
                            frames: cur.frames.clone(),
                        });
                        cur.mask = stay;
                        cur.pc += 1;
                    }
                    continue;
                }
                Insn::IncDec { inc } => match &mut self.stack[cur.sp - 1] {
                    Slot::F(x) => {
                        let model = self.model;
                        let d = if *inc { 1.0f32 } else { -1.0 };
                        if solo {
                            for v in x.iter_mut() {
                                *v = model.round_alu(*v + d);
                            }
                        } else {
                            for_lanes!(cur.mask, lane => {
                                x[lane] = model.round_alu(x[lane] + d);
                            });
                        }
                        for_lanes!(cur.mask, lane => { self.profiles[lane].alu_ops += 1; });
                    }
                    Slot::I(x) => {
                        let d: i32 = if *inc { 1 } else { -1 };
                        if solo {
                            for v in x.iter_mut() {
                                *v = v.wrapping_add(d);
                            }
                        } else {
                            for_lanes!(cur.mask, lane => { x[lane] = x[lane].wrapping_add(d); });
                        }
                        for_lanes!(cur.mask, lane => { self.profiles[lane].alu_ops += 1; });
                    }
                    _ => {
                        for_lanes!(cur.mask, lane => {
                            let old = self.stack[cur.sp - 1].get(lane);
                            let one = match old.ty().scalar() {
                                Some(Scalar::Int) => Value::Int(1),
                                _ => Value::Float(1.0),
                            };
                            let op = if *inc { BinOp::Add } else { BinOp::Sub };
                            let new = ops::apply_binary(
                                self.model,
                                &mut self.profiles[lane],
                                op,
                                old,
                                one,
                            )?;
                            self.stack[cur.sp - 1].set(lane, new);
                        });
                    }
                },
                Insn::Swizzle { idx, len } => {
                    let mut indices = [0usize; 4];
                    for (slot, &i) in indices.iter_mut().zip(idx.iter()) {
                        *slot = i as usize;
                    }
                    let sel = &indices[..*len as usize];
                    let src_n = match &self.stack[cur.sp - 1] {
                        Slot::V2(_) => 2,
                        Slot::V3(_) => 3,
                        Slot::V4(_) => 4,
                        _ => 0,
                    };
                    if src_n != 0 && sel.iter().all(|&i| i < src_n) {
                        let mut out = [[0.0f32; 4]; MAX_LANES];
                        macro_rules! gather {
                            ($x:ident) => {
                                for_lanes!(cur.mask, lane => {
                                    for (k, &si) in sel.iter().enumerate() {
                                        out[lane][k] = $x[lane][si];
                                    }
                                })
                            };
                        }
                        match &self.stack[cur.sp - 1] {
                            Slot::V2(x) => gather!(x),
                            Slot::V3(x) => gather!(x),
                            Slot::V4(x) => gather!(x),
                            _ => unreachable!(),
                        }
                        if sel.len() == 1 {
                            let r: [f32; MAX_LANES] = std::array::from_fn(|l| out[l][0]);
                            if solo {
                                self.stack[cur.sp - 1] = Slot::F(r);
                            } else {
                                for_lanes!(cur.mask, lane => {
                                    self.stack[cur.sp - 1].set(lane, Value::Float(r[lane]));
                                });
                            }
                        } else {
                            self.write_vec_result(cur.sp - 1, sel.len(), &out, cur.mask, solo);
                        }
                    } else {
                        for_lanes!(cur.mask, lane => {
                            let v = self.stack[cur.sp - 1].get(lane);
                            self.stack[cur.sp - 1].set(lane, ops::swizzle_read(&v, sel)?);
                        });
                    }
                }
                Insn::IndexOp => {
                    for_lanes!(cur.mask, lane => {
                        let idx = match self.stack[cur.sp - 1].get(lane) {
                            Value::Int(i) => i as i64,
                            other => {
                                return Err(RuntimeError::Type {
                                    message: format!("index must be int, found {}", other.ty()),
                                })
                            }
                        };
                        // Avoid cloning boxed aggregates (arrays) just to
                        // read one element.
                        let r = match &self.stack[cur.sp - 2] {
                            Slot::Boxed(b) => ops::index_read(&b[lane], idx)?,
                            slot => {
                                let base = slot.get(lane);
                                ops::index_read(&base, idx)?
                            }
                        };
                        self.stack[cur.sp - 2].set(lane, r);
                    });
                    cur.sp -= 1;
                }
                Insn::Store(def) => {
                    let n = def.n_index as usize;
                    if n == 0 && def.path.is_empty() {
                        // Whole-slot store: the hot case (gl_FragColor,
                        // plain variable writes).
                        cur.sp -= 1;
                        for_lanes!(cur.mask, lane => {
                            if def.wrote_color {
                                self.wrote_frag_color[lane] = true;
                            }
                            if def.wrote_data {
                                self.wrote_frag_data[lane] = true;
                            }
                        });
                        match def.root {
                            SlotRef::Global(s) => {
                                let (stack, globals) = (&self.stack, &mut self.globals);
                                globals[s as usize].copy_masked_from(&stack[cur.sp], cur.mask);
                            }
                            SlotRef::Local(s) => {
                                let dst = fb + s as usize;
                                if solo {
                                    std::mem::swap(&mut self.locals[dst], &mut self.stack[cur.sp]);
                                } else {
                                    let (stack, locals) = (&self.stack, &mut self.locals);
                                    locals[dst].copy_masked_from(&stack[cur.sp], cur.mask);
                                }
                            }
                        }
                    } else {
                        for_lanes!(cur.mask, lane => {
                            // Index operands were pushed outermost-first,
                            // so the first `Index` step's operand is on
                            // top.
                            let mut indices = [0i64; 8];
                            for (k, slot) in indices.iter_mut().take(n).enumerate() {
                                *slot = match self.stack[cur.sp - 1 - k].get(lane) {
                                    Value::Int(i) => i as i64,
                                    other => {
                                        return Err(RuntimeError::Type {
                                            message: format!(
                                                "index must be int, found {}",
                                                other.ty()
                                            ),
                                        })
                                    }
                                };
                            }
                            let value = self.stack[cur.sp - 1 - n].get(lane);
                            if def.wrote_color {
                                self.wrote_frag_color[lane] = true;
                            }
                            if def.wrote_data {
                                self.wrote_frag_data[lane] = true;
                            }
                            let root_slot: &mut Slot = match def.root {
                                SlotRef::Global(s) => &mut self.globals[s as usize],
                                SlotRef::Local(s) => &mut self.locals[fb + s as usize],
                            };
                            // Mutate boxed aggregates in place; re-pack
                            // typed slots through materialise/write-back.
                            match root_slot {
                                Slot::Boxed(b) => {
                                    store_path(&mut b[lane], &def.path, &indices[..n], value)?;
                                }
                                slot => {
                                    let mut root = slot.get(lane);
                                    store_path(&mut root, &def.path, &indices[..n], value)?;
                                    slot.set(lane, root);
                                }
                            }
                        });
                        cur.sp -= n + 1;
                    }
                }
                Insn::LoopEnter => {
                    for_lanes!(cur.mask, lane => {
                        self.loop_counters[lane].push(0);
                    });
                }
                Insn::LoopIter { span } => {
                    for_lanes!(cur.mask, lane => {
                        let counter = self.loop_counters[lane]
                            .last_mut()
                            .expect("loop counter underflow");
                        *counter += 1;
                        self.profiles[lane].branches += 1;
                        if *counter > self.limits.max_loop_iterations {
                            return Err(RuntimeError::LoopLimit {
                                limit: self.limits.max_loop_iterations,
                                span: *span,
                            });
                        }
                    });
                }
                Insn::LoopExit => {
                    for_lanes!(cur.mask, lane => {
                        self.loop_counters[lane].pop();
                    });
                }
                Insn::Discard => {
                    debug_assert!(cur.frames.is_empty());
                    for_lanes!(cur.mask, lane => {
                        self.discarded[lane] = true;
                    });
                    next_ctx!();
                }
                Insn::ErrDiscardInFunction => {
                    return Err(RuntimeError::Type {
                        message: "discard inside a function is not supported by this subset".into(),
                    })
                }
                Insn::ErrBreakInFunction => {
                    return Err(RuntimeError::Type {
                        message: "break/continue escaped a function body".into(),
                    })
                }
                Insn::Ret => match cur.frames.pop() {
                    None => next_ctx!(),
                    Some(frame) => {
                        for_lanes!(cur.mask, lane => {
                            self.loop_counters[lane].truncate(frame.counters_base);
                        });
                        if frame.pushes_outs {
                            let func = &exe.functions[frame.func as usize];
                            let n_outs = func
                                .params
                                .iter()
                                .filter(|(_, q)| matches!(q, ParamQual::Out | ParamQual::InOut))
                                .count();
                            self.ensure_stack(cur.sp + n_outs);
                            if n_outs > 0 {
                                // Return value moves above the copied-out
                                // params: ret to sp-1+n_outs first (its
                                // destination is never an out slot), then
                                // outs to sp-1.. in parameter order.
                                if solo {
                                    let ret = std::mem::replace(
                                        &mut self.stack[cur.sp - 1],
                                        Slot::B([false; MAX_LANES]),
                                    );
                                    self.stack[cur.sp - 1 + n_outs] = ret;
                                } else {
                                    let (lo, hi) = self.stack.split_at_mut(cur.sp);
                                    hi[n_outs - 1].copy_masked_from(&lo[cur.sp - 1], cur.mask);
                                }
                                let mut k = cur.sp - 1;
                                for (i, (_, qual)) in func.params.iter().enumerate() {
                                    if matches!(qual, ParamQual::Out | ParamQual::InOut) {
                                        let src = frame.callee_base + i;
                                        if solo {
                                            std::mem::swap(
                                                &mut self.stack[k],
                                                &mut self.locals[src],
                                            );
                                        } else {
                                            let (stack, locals) = (&mut self.stack, &self.locals);
                                            stack[k].copy_masked_from(&locals[src], cur.mask);
                                        }
                                        k += 1;
                                    }
                                }
                            }
                            cur.sp += n_outs;
                        }
                        cur.chunk = frame.ret_chunk;
                        cur.pc = frame.ret_pc;
                        cur.frame_base = frame.frame_base;
                        cur.frame_end = frame.frame_end;
                        reschedule(&mut cur, &mut pending);
                        continue;
                    }
                },
                Insn::ErrNoReturn(name) => {
                    let name = &exe.names[*name as usize];
                    return Err(RuntimeError::Type {
                        message: format!("function `{name}` ended without returning a value"),
                    });
                }
                Insn::Halt => {
                    debug_assert!(cur.frames.is_empty());
                    next_ctx!();
                }
                Insn::Call {
                    name,
                    argc,
                    candidates,
                    pushes_outs,
                } => {
                    let argc = *argc as usize;
                    let args_start = cur.sp - argc;
                    let name_s = &exe.names[*name as usize];

                    // SoA fast paths for the hot builtins (argument slot
                    // variants are shared by all lanes, so one dispatch
                    // covers the batch). Skipped when the lowerer
                    // expects out-param copy-back so the drift error
                    // below still fires.
                    if !*pushes_outs && self.fast_builtin(name_s, args_start, argc, cur.mask, solo)
                    {
                        cur.sp = args_start + 1;
                        cur.pc += 1;
                        continue;
                    }

                    // Builtins and constructors next (they cannot be
                    // shadowed) — per lane, on the lane's own
                    // materialised arguments and profile. Builtin-ness
                    // is decided by name and argument types, which are
                    // uniform across lanes.
                    let mut is_builtin = false;
                    for_lanes!(cur.mask, lane => {
                        self.arg_buf.clear();
                        for k in 0..argc {
                            let v = self.stack[args_start + k].get(lane);
                            self.arg_buf.push(v);
                        }
                        let result = {
                            let mut cx = BuiltinCx {
                                model: self.model,
                                profile: &mut self.profiles[lane],
                                textures: self.textures,
                            };
                            builtins::call(name_s, &self.arg_buf, &mut cx)
                        };
                        match result {
                            Some(r) => {
                                if *pushes_outs {
                                    return Err(RuntimeError::Type {
                                        message: format!(
                                            "builtin `{name_s}` intercepted a call lowered with \
                                             out-parameter copy-back (builtin table drift)"
                                        ),
                                    });
                                }
                                let v = r?;
                                self.stack[args_start].set(lane, v);
                                is_builtin = true;
                            }
                            None => {
                                debug_assert!(!is_builtin, "builtin dispatch diverged across lanes");
                                break;
                            }
                        }
                    });
                    if is_builtin {
                        cur.sp = args_start + 1;
                        cur.pc += 1;
                        continue;
                    }

                    // User-defined function by exact argument types
                    // (static, so the first lane's types stand for all).
                    let first = cur.mask.trailing_zeros() as usize;
                    self.arg_buf.clear();
                    for k in 0..argc {
                        let v = self.stack[args_start + k].get(first);
                        self.arg_buf.push(v);
                    }
                    let fi = candidates
                        .iter()
                        .copied()
                        .find(|&fi| {
                            let f = &exe.functions[fi as usize];
                            f.params.len() == argc
                                && f.params
                                    .iter()
                                    .zip(&self.arg_buf)
                                    .all(|((ty, _), v)| ops::value_matches_type(v, ty))
                        })
                        .ok_or_else(|| RuntimeError::Unbound {
                            name: name_s.clone(),
                        })?;
                    if cur.frames.len() as u32 >= self.limits.max_call_depth {
                        return Err(RuntimeError::CallDepth {
                            limit: self.limits.max_call_depth,
                        });
                    }
                    let func = &exe.functions[fi as usize];
                    let callee_base = cur.frame_end;
                    let callee_end =
                        callee_base + exe.chunks[func.chunk as usize].frame_size as usize;
                    self.ensure_locals(callee_end);
                    let counters_base = self.loop_counters[first].len();
                    for_lanes!(cur.mask, lane => {
                        self.profiles[lane].calls += 1;
                    });
                    for (i, (ty, qual)) in func.params.iter().enumerate() {
                        match qual {
                            ParamQual::In | ParamQual::InOut => {
                                let dst = callee_base + i;
                                if solo {
                                    std::mem::swap(
                                        &mut self.locals[dst],
                                        &mut self.stack[args_start + i],
                                    );
                                } else {
                                    let (stack, locals) = (&self.stack, &mut self.locals);
                                    locals[dst].copy_masked_from(&stack[args_start + i], cur.mask);
                                }
                            }
                            ParamQual::Out => {
                                let z = Value::zero_of(ty);
                                if solo {
                                    self.locals[callee_base + i] = Slot::splat(&z);
                                } else {
                                    for_lanes!(cur.mask, lane => {
                                        self.locals[callee_base + i].set(lane, z.clone());
                                    });
                                }
                            }
                        }
                    }
                    cur.frames.push(Frame {
                        ret_chunk: cur.chunk,
                        ret_pc: cur.pc + 1,
                        frame_base: cur.frame_base,
                        frame_end: cur.frame_end,
                        callee_base,
                        func: fi,
                        pushes_outs: *pushes_outs,
                        counters_base,
                    });
                    cur.chunk = func.chunk;
                    cur.pc = 0;
                    cur.sp = args_start;
                    cur.frame_base = callee_base;
                    cur.frame_end = callee_end;
                    continue;
                }
            }
            cur.pc += 1;
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::lower;
    use crate::exec::NoTextures;
    use crate::parser::parse;
    use crate::sema::{check, ShaderKind};
    use crate::vm::Vm;

    const P: &str = "precision highp float;\n";

    fn lower_src(src: &str) -> Executable {
        let shader = check(ShaderKind::Fragment, parse(src).expect("parse")).expect("check");
        lower(&shader).expect("lower")
    }

    /// Runs `src` with per-lane values for the global `u_in` through the
    /// SPMD VM (one batch of `inputs.len()` lanes) and through a scalar
    /// VM (sequential invocations), asserting bit-identical colors,
    /// discard flags and aggregate profiles.
    fn assert_lanes_match(src: &str, inputs: &[f32]) {
        for model in [FloatModel::Exact, FloatModel::Vc4Sfu, FloatModel::Mediump16] {
            let exe = lower_src(src);
            let tex = NoTextures;
            let mut spmd = SpmdVm::with_model(&exe, &tex, model, inputs.len()).expect("spmd");
            let mut scalar = Vm::with_model(&exe, &tex, model).expect("vm");
            let slot = exe.global_slot("u_in").expect("u_in slot");
            for (lane, &x) in inputs.iter().enumerate() {
                spmd.set_lane_slot(lane, slot, Value::Float(x));
            }
            spmd.run_batch(inputs.len()).expect("batch");
            for (lane, &x) in inputs.iter().enumerate() {
                scalar.set_slot(slot, Value::Float(x));
                scalar.run_main().expect("scalar run");
                assert_eq!(
                    spmd.discarded(lane),
                    scalar.discarded(),
                    "discard lane {lane} of {src}"
                );
                if !scalar.discarded() {
                    assert_eq!(
                        spmd.frag_color(lane).map(|c| c.map(f32::to_bits)),
                        scalar.frag_color().map(|c| c.map(f32::to_bits)),
                        "color lane {lane} input {x} of {src} under {model:?}"
                    );
                }
            }
            assert_eq!(spmd.profile(), scalar.profile(), "profiles for {src}");
        }
    }

    #[test]
    fn uniform_flow_matches() {
        assert_lanes_match(
            &format!(
                "{P}uniform float u_in;\n\
                 void main() {{ gl_FragColor = vec4(u_in * 0.5, fract(u_in), 0.25, 1.0); }}"
            ),
            &[0.1, 0.7, 1.3, 2.9, 3.5, 4.0, 5.25, 6.125],
        );
    }

    #[test]
    fn divergent_if_else_matches() {
        assert_lanes_match(
            &format!(
                "{P}uniform float u_in;\n\
                 void main() {{
                    float c;
                    if (u_in > 2.0) {{ c = u_in * 0.25; }} else {{ c = u_in + 0.5; }}
                    gl_FragColor = vec4(c, u_in > 4.0 ? 1.0 : 0.0, 0.0, 1.0);
                 }}"
            ),
            &[0.5, 3.0, 1.0, 6.0, 2.0, 5.0, 4.0, 0.0],
        );
    }

    #[test]
    fn divergent_discard_matches() {
        assert_lanes_match(
            &format!(
                "{P}uniform float u_in;\n\
                 void main() {{
                    if (u_in < 0.0) {{ discard; }}
                    gl_FragColor = vec4(sqrt(u_in), 0.0, 0.0, 1.0);
                 }}"
            ),
            &[1.0, -2.0, 4.0, -0.5, 9.0, 16.0, -1.0, 25.0],
        );
    }

    #[test]
    fn divergent_loop_trip_counts_match() {
        assert_lanes_match(
            &format!(
                "{P}uniform float u_in;\n\
                 void main() {{
                    float s = 0.0;
                    for (int i = 0; i < 12; i++) {{
                        if (float(i) >= u_in) {{ break; }}
                        s += fract(float(i) * 0.37) + u_in * 0.01;
                    }}
                    gl_FragColor = vec4(s * 0.1, s, 1.0 / (s + 1.0), 1.0);
                 }}"
            ),
            &[0.0, 3.0, 12.0, 1.0, 7.0, 5.0, 11.0, 2.0],
        );
    }

    #[test]
    fn divergent_calls_and_out_params_match() {
        assert_lanes_match(
            &format!(
                "{P}uniform float u_in;\n\
                 void split(float v, out float hi, out float lo) {{
                    hi = floor(v); lo = fract(v);
                 }}
                 float heavy(float v) {{
                    float s = 0.0;
                    for (int i = 0; i < 4; i++) {{ s += sin(v + float(i)); }}
                    return s;
                 }}
                 void main() {{
                    float h; float l;
                    split(u_in, h, l);
                    float r = u_in > 2.5 ? heavy(u_in) : h;
                    gl_FragColor = vec4(r * 0.1, h * 0.05, l, 1.0);
                 }}"
            ),
            &[0.25, 3.75, 1.5, 6.0, 2.5, 5.125, 4.0, 0.0],
        );
    }

    #[test]
    fn short_circuit_and_nested_branches_match() {
        assert_lanes_match(
            &format!(
                "{P}uniform float u_in;\n\
                 void main() {{
                    bool ok = (u_in != 0.0) && (1.0 / u_in > 0.2);
                    bool or = (u_in == 0.0) || (u_in > 3.0);
                    float c = 0.0;
                    if (ok) {{
                        if (or) {{ c = 0.75; }} else {{ c = 0.5; }}
                    }} else {{
                        c = or ? 0.25 : 0.125;
                    }}
                    gl_FragColor = vec4(c, ok ? 1.0 : 0.0, or ? 1.0 : 0.0, 1.0);
                 }}"
            ),
            &[0.0, 1.0, 4.0, -2.0, 0.5, 8.0, 2.0, -0.25],
        );
    }

    #[test]
    fn partial_batches_match() {
        let src = format!(
            "{P}uniform float u_in;\n\
             void main() {{
                float c = u_in > 1.0 ? log2(u_in) : u_in;
                gl_FragColor = vec4(c, 0.0, 0.0, 1.0);
             }}"
        );
        for width in 1..=5usize {
            let inputs: Vec<f32> = (0..width).map(|i| i as f32 * 0.75).collect();
            assert_lanes_match(&src, &inputs);
        }
    }

    #[test]
    fn mutable_globals_reset_per_lane() {
        // A mutable global increments per invocation; each lane must see
        // a fresh copy (scalar resets it per run_main).
        assert_lanes_match(
            &format!(
                "{P}uniform float u_in;\nfloat counter = 0.0;\n\
                 void main() {{
                    counter += u_in;
                    gl_FragColor = vec4(counter, 0.0, 0.0, 1.0);
                 }}"
            ),
            &[1.0, 2.0, 3.0, 4.0],
        );
    }

    #[test]
    fn lane_trap_replays_with_scalar_error_semantics() {
        // Lane 2 indexes out of bounds; lanes 0 and 1 must complete with
        // exact outputs and the error must name lane 2.
        let src = format!(
            "{P}uniform float u_in;\n\
             void main() {{
                float a[3];
                for (int i = 0; i < 3; i++) {{ a[i] = float(i); }}
                gl_FragColor = vec4(a[int(u_in)], 0.0, 0.0, 1.0);
             }}"
        );
        let exe = lower_src(&src);
        let tex = NoTextures;
        let mut spmd = SpmdVm::with_model(&exe, &tex, FloatModel::Exact, 4).expect("spmd");
        let slot = exe.global_slot("u_in").expect("slot");
        for (lane, x) in [0.0f32, 2.0, 7.0, 1.0].iter().enumerate() {
            spmd.set_lane_slot(lane, slot, Value::Float(*x));
        }
        let err = spmd.run_batch(4).expect_err("lane 2 traps");
        assert_eq!(err.lane, 2);
        assert!(matches!(
            err.error,
            RuntimeError::IndexOutOfBounds { index: 7, len: 3 }
        ));
        assert!(spmd.completed(0) && spmd.completed(1));
        assert!(!spmd.completed(2) && !spmd.completed(3));
        assert_eq!(spmd.frag_color(0), Some([0.0, 0.0, 0.0, 1.0]));
        assert_eq!(spmd.frag_color(1), Some([2.0, 0.0, 0.0, 1.0]));
        assert_eq!(spmd.take_replays(), 1);
    }

    #[test]
    fn loop_limit_traps_like_scalar() {
        let src = format!(
            "{P}uniform float u_in;\n\
             void main() {{
                float s = 0.0;
                while (s < u_in) {{ s += 1.0; }}
                gl_FragColor = vec4(s);
             }}"
        );
        let exe = lower_src(&src);
        let tex = NoTextures;
        let mut spmd = SpmdVm::with_model(&exe, &tex, FloatModel::Exact, 2).expect("spmd");
        spmd.set_limits(ExecLimits {
            max_loop_iterations: 100,
            max_call_depth: 8,
        });
        let slot = exe.global_slot("u_in").expect("slot");
        spmd.set_lane_slot(0, slot, Value::Float(5.0));
        spmd.set_lane_slot(1, slot, Value::Float(1.0e9));
        let err = spmd.run_batch(2).expect_err("lane 1 exceeds budget");
        assert_eq!(err.lane, 1);
        assert!(matches!(err.error, RuntimeError::LoopLimit { .. }));
        assert!(spmd.completed(0));
        assert_eq!(spmd.frag_color(0), Some([5.0; 4]));
    }

    #[test]
    fn frag_data_and_broadcast_globals() {
        let src = format!(
            "{P}uniform float u_gain;\n\
             void main() {{ gl_FragData[0] = vec4(0.5 * u_gain, 0.25, 0.125, 1.0); }}"
        );
        let exe = lower_src(&src);
        let tex = NoTextures;
        let mut spmd = SpmdVm::with_model(&exe, &tex, FloatModel::Exact, 3).expect("spmd");
        spmd.set_global("u_gain", Value::Float(2.0)).expect("set");
        spmd.run_batch(3).expect("batch");
        for lane in 0..3 {
            assert_eq!(spmd.wrote_outputs(lane), (false, true));
            assert_eq!(spmd.frag_color(lane), Some([1.0, 0.25, 0.125, 1.0]));
        }
    }
}
