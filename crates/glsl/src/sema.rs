//! Semantic analysis: symbol resolution, type checking and shader-interface
//! extraction for the GLSL ES 1.00 subset.

use crate::ast::*;
use crate::builtins;
use crate::error::CompileError;
use crate::span::Span;
use crate::swizzle::{swizzle_indices, writable};
use crate::types::{Scalar, Type};
use std::collections::HashMap;

/// Which pipeline stage a shader targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShaderKind {
    /// Vertex shader (reads attributes, writes `gl_Position` + varyings).
    Vertex,
    /// Fragment shader (reads varyings, writes `gl_FragColor`).
    Fragment,
}

/// A successfully checked shader, ready for interpretation or linking.
#[derive(Debug, Clone)]
pub struct CompiledShader {
    /// Stage.
    pub kind: ShaderKind,
    /// The checked syntax tree.
    pub unit: TranslationUnit,
    /// Externally visible variables.
    pub interface: ShaderInterface,
}

/// Uniforms, attributes and varyings declared by a shader.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShaderInterface {
    /// `uniform` declarations in source order.
    pub uniforms: Vec<(String, Type)>,
    /// `attribute` declarations (vertex shaders only).
    pub attributes: Vec<(String, Type)>,
    /// `varying` declarations.
    pub varyings: Vec<(String, Type)>,
}

impl ShaderInterface {
    /// Looks up a uniform's type by name.
    pub fn uniform(&self, name: &str) -> Option<&Type> {
        self.uniforms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// Looks up a varying's type by name.
    pub fn varying(&self, name: &str) -> Option<&Type> {
        self.varyings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// Looks up an attribute's type by name.
    pub fn attribute(&self, name: &str) -> Option<&Type> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }
}

/// Checks a parsed translation unit as a shader of the given kind.
///
/// # Errors
///
/// Returns the first semantic error: undeclared identifiers, type
/// mismatches, invalid qualifiers for the stage, missing `main`, missing
/// default float precision in fragment shaders, writes to read-only
/// builtins, `discard` outside fragment shaders, and so on.
pub fn check(kind: ShaderKind, unit: TranslationUnit) -> Result<CompiledShader, CompileError> {
    let mut checker = Checker::new(kind);
    checker.collect_functions(&unit)?;
    checker.check_unit(&unit)?;
    Ok(CompiledShader {
        kind,
        unit,
        interface: checker.interface,
    })
}

#[derive(Debug, Clone)]
struct Sym {
    name: String,
    ty: Type,
    mutable: bool,
}

#[derive(Debug, Clone, PartialEq)]
struct FnSig {
    params: Vec<Param>,
    ret: Type,
    defined: bool,
}

struct Checker {
    kind: ShaderKind,
    scopes: Vec<Vec<Sym>>,
    functions: HashMap<String, Vec<FnSig>>,
    interface: ShaderInterface,
    current_ret: Type,
    loop_depth: u32,
    has_float_precision_default: bool,
}

impl Checker {
    fn new(kind: ShaderKind) -> Self {
        let mut globals = Vec::new();
        match kind {
            ShaderKind::Vertex => {
                globals.push(Sym {
                    name: "gl_Position".into(),
                    ty: Type::Vec4,
                    mutable: true,
                });
                globals.push(Sym {
                    name: "gl_PointSize".into(),
                    ty: Type::Float,
                    mutable: true,
                });
            }
            ShaderKind::Fragment => {
                globals.push(Sym {
                    name: "gl_FragColor".into(),
                    ty: Type::Vec4,
                    mutable: true,
                });
                // ES 2 guarantees only a single draw buffer: this is the
                // paper's limitation #8 made concrete in the type system.
                globals.push(Sym {
                    name: "gl_FragData".into(),
                    ty: Type::Array(Box::new(Type::Vec4), 1),
                    mutable: true,
                });
                globals.push(Sym {
                    name: "gl_FragCoord".into(),
                    ty: Type::Vec4,
                    mutable: false,
                });
                globals.push(Sym {
                    name: "gl_FrontFacing".into(),
                    ty: Type::Bool,
                    mutable: false,
                });
                globals.push(Sym {
                    name: "gl_PointCoord".into(),
                    ty: Type::Vec2,
                    mutable: false,
                });
            }
        }
        Checker {
            kind,
            scopes: vec![globals],
            functions: HashMap::new(),
            interface: ShaderInterface::default(),
            current_ret: Type::Void,
            loop_depth: 0,
            has_float_precision_default: kind == ShaderKind::Vertex,
        }
    }

    fn lookup(&self, name: &str) -> Option<&Sym> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.iter().rev().find(|s| s.name == name))
    }

    fn declare(&mut self, sym: Sym, span: Span) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack non-empty");
        if scope.iter().any(|s| s.name == sym.name) {
            return Err(CompileError::check(
                format!("`{}` is already declared in this scope", sym.name),
                span,
            ));
        }
        scope.push(sym);
        Ok(())
    }

    fn collect_functions(&mut self, unit: &TranslationUnit) -> Result<(), CompileError> {
        for item in &unit.items {
            let (f, defined) = match item {
                Item::Function(f) => (f, true),
                Item::Prototype(f) => (f, false),
                _ => continue,
            };
            if builtins::signature(&f.name, &param_types(&f.params)).is_some()
                || is_constructor_name(&f.name)
            {
                return Err(CompileError::check(
                    format!("cannot redefine builtin function `{}`", f.name),
                    f.span,
                ));
            }
            let overloads = self.functions.entry(f.name.clone()).or_default();
            let sig = FnSig {
                params: f.params.clone(),
                ret: f.ret.clone(),
                defined,
            };
            if let Some(existing) = overloads
                .iter_mut()
                .find(|s| param_types(&s.params) == param_types(&f.params))
            {
                if existing.ret != f.ret {
                    return Err(CompileError::check(
                        format!("`{}` redeclared with a different return type", f.name),
                        f.span,
                    ));
                }
                if existing.defined && defined {
                    return Err(CompileError::check(
                        format!("function `{}` is defined twice", f.name),
                        f.span,
                    ));
                }
                existing.defined |= defined;
            } else {
                overloads.push(sig);
            }
        }
        Ok(())
    }

    fn check_unit(&mut self, unit: &TranslationUnit) -> Result<(), CompileError> {
        for item in &unit.items {
            match item {
                Item::Precision(p) => {
                    if p.ty == Type::Float {
                        self.has_float_precision_default = true;
                    }
                }
                Item::Var(decl) => self.check_global(decl)?,
                Item::Prototype(_) => {}
                Item::Function(f) => self.check_function(f)?,
            }
        }
        match self.functions.get("main") {
            Some(sigs)
                if sigs
                    .iter()
                    .any(|s| s.defined && s.ret == Type::Void && s.params.is_empty()) => {}
            _ => {
                return Err(CompileError::check(
                    "shader must define `void main()`",
                    Span::default(),
                ))
            }
        }
        Ok(())
    }

    fn check_global(&mut self, decl: &VarDecl) -> Result<(), CompileError> {
        for var in &decl.vars {
            match decl.storage {
                Storage::Attribute => {
                    if self.kind != ShaderKind::Vertex {
                        return Err(CompileError::check(
                            "attributes are only allowed in vertex shaders",
                            var.span,
                        ));
                    }
                    if !var.ty.valid_attribute() {
                        return Err(CompileError::check(
                            format!("type {} cannot be an attribute", var.ty),
                            var.span,
                        ));
                    }
                    if var.init.is_some() {
                        return Err(CompileError::check(
                            "attributes cannot have initialisers",
                            var.span,
                        ));
                    }
                    self.interface
                        .attributes
                        .push((var.name.clone(), var.ty.clone()));
                }
                Storage::Uniform => {
                    if var.init.is_some() {
                        return Err(CompileError::check(
                            "uniforms cannot have initialisers",
                            var.span,
                        ));
                    }
                    self.interface
                        .uniforms
                        .push((var.name.clone(), var.ty.clone()));
                }
                Storage::Varying => {
                    let elem = match &var.ty {
                        Type::Array(elem, _) => elem,
                        other => other,
                    };
                    if !elem.valid_varying() {
                        return Err(CompileError::check(
                            format!(
                                "type {} cannot be a varying (float-based types only)",
                                var.ty
                            ),
                            var.span,
                        ));
                    }
                    if var.init.is_some() {
                        return Err(CompileError::check(
                            "varyings cannot have initialisers",
                            var.span,
                        ));
                    }
                    self.interface
                        .varyings
                        .push((var.name.clone(), var.ty.clone()));
                }
                Storage::Const => {
                    let init = var.init.as_ref().ok_or_else(|| {
                        CompileError::check(
                            format!("const `{}` must be initialised", var.name),
                            var.span,
                        )
                    })?;
                    let ty = self.check_expr(init)?;
                    if ty != var.ty {
                        return Err(CompileError::check(
                            format!(
                                "const `{}` initialiser has type {ty}, expected {}",
                                var.name, var.ty
                            ),
                            var.span,
                        ));
                    }
                }
                Storage::None => {
                    if let Some(init) = &var.init {
                        let ty = self.check_expr(init)?;
                        if ty != var.ty {
                            return Err(CompileError::check(
                                format!(
                                    "initialiser for `{}` has type {ty}, expected {}",
                                    var.name, var.ty
                                ),
                                var.span,
                            ));
                        }
                    }
                }
            }
            // Mutability: uniforms/attributes/consts are read-only
            // everywhere; varyings are writable in the vertex stage and
            // read-only in the fragment stage.
            let mutable = match decl.storage {
                Storage::None => true,
                Storage::Varying => self.kind == ShaderKind::Vertex,
                _ => false,
            };
            if var.ty.scalar() == Some(Scalar::Float)
                || var.ty.is_matrix()
                || matches!(&var.ty, Type::Array(t, _) if t.scalar() == Some(Scalar::Float))
            {
                self.require_float_precision(var.span)?;
            }
            self.declare(
                Sym {
                    name: var.name.clone(),
                    ty: var.ty.clone(),
                    mutable,
                },
                var.span,
            )?;
        }
        Ok(())
    }

    fn require_float_precision(&self, span: Span) -> Result<(), CompileError> {
        if self.has_float_precision_default {
            Ok(())
        } else {
            Err(CompileError::check(
                "fragment shaders have no default float precision; \
                 add `precision mediump float;` or `precision highp float;`",
                span,
            ))
        }
    }

    fn check_function(&mut self, f: &Function) -> Result<(), CompileError> {
        self.current_ret = f.ret.clone();
        self.scopes.push(Vec::new());
        for p in &f.params {
            if p.name.is_empty() {
                continue;
            }
            if p.ty.scalar() == Some(Scalar::Float) || p.ty.is_matrix() {
                self.require_float_precision(f.span)?;
            }
            self.declare(
                Sym {
                    name: p.name.clone(),
                    ty: p.ty.clone(),
                    mutable: true,
                },
                f.span,
            )?;
        }
        for stmt in &f.body {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.check_expr(e)?;
            }
            StmtKind::Decl(decl) => {
                if !matches!(decl.storage, Storage::None | Storage::Const) {
                    return Err(CompileError::check(
                        "only `const` qualifier is allowed on local declarations",
                        stmt.span,
                    ));
                }
                for var in &decl.vars {
                    if let Some(init) = &var.init {
                        let ty = self.check_expr(init)?;
                        if ty != var.ty {
                            return Err(CompileError::check(
                                format!(
                                    "initialiser for `{}` has type {ty}, expected {}",
                                    var.name, var.ty
                                ),
                                var.span,
                            ));
                        }
                    } else if decl.storage == Storage::Const {
                        return Err(CompileError::check(
                            format!("const `{}` must be initialised", var.name),
                            var.span,
                        ));
                    }
                    if var.ty.scalar() == Some(Scalar::Float)
                        || var.ty.is_matrix()
                        || matches!(&var.ty, Type::Array(t, _) if t.scalar() == Some(Scalar::Float) || t.is_matrix())
                    {
                        self.require_float_precision(var.span)?;
                    }
                    self.declare(
                        Sym {
                            name: var.name.clone(),
                            ty: var.ty.clone(),
                            mutable: decl.storage != Storage::Const,
                        },
                        var.span,
                    )?;
                }
            }
            StmtKind::If(cond, then, els) => {
                self.expect_bool(cond)?;
                self.scoped(|c| c.check_stmt(then))?;
                if let Some(els) = els {
                    self.scoped(|c| c.check_stmt(els))?;
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(Vec::new());
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.expect_bool(cond)?;
                }
                if let Some(step) = step {
                    self.check_expr(step)?;
                }
                self.loop_depth += 1;
                let r = self.check_stmt(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                r?;
            }
            StmtKind::While(cond, body) => {
                self.expect_bool(cond)?;
                self.loop_depth += 1;
                let r = self.scoped(|c| c.check_stmt(body));
                self.loop_depth -= 1;
                r?;
            }
            StmtKind::DoWhile(body, cond) => {
                self.loop_depth += 1;
                let r = self.scoped(|c| c.check_stmt(body));
                self.loop_depth -= 1;
                r?;
                self.expect_bool(cond)?;
            }
            StmtKind::Return(value) => {
                let ty = match value {
                    Some(e) => self.check_expr(e)?,
                    None => Type::Void,
                };
                if ty != self.current_ret {
                    return Err(CompileError::check(
                        format!(
                            "return type {ty} does not match declared {}",
                            self.current_ret
                        ),
                        stmt.span,
                    ));
                }
            }
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(CompileError::check(
                        "break/continue outside of a loop",
                        stmt.span,
                    ));
                }
            }
            StmtKind::Discard => {
                if self.kind != ShaderKind::Fragment {
                    return Err(CompileError::check(
                        "`discard` is only allowed in fragment shaders",
                        stmt.span,
                    ));
                }
            }
            StmtKind::Block(stmts) => {
                self.scopes.push(Vec::new());
                let mut result = Ok(());
                for s in stmts {
                    result = self.check_stmt(s);
                    if result.is_err() {
                        break;
                    }
                }
                self.scopes.pop();
                result?;
            }
            StmtKind::Empty => {}
        }
        Ok(())
    }

    fn scoped<R>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<R, CompileError>,
    ) -> Result<R, CompileError> {
        self.scopes.push(Vec::new());
        let r = f(self);
        self.scopes.pop();
        r
    }

    fn expect_bool(&mut self, e: &Expr) -> Result<(), CompileError> {
        let ty = self.check_expr(e)?;
        if ty != Type::Bool {
            return Err(CompileError::check(
                format!("condition must be bool, found {ty}"),
                e.span,
            ));
        }
        Ok(())
    }

    fn check_expr(&mut self, e: &Expr) -> Result<Type, CompileError> {
        match &e.kind {
            ExprKind::FloatLit(_) => Ok(Type::Float),
            ExprKind::IntLit(_) => Ok(Type::Int),
            ExprKind::BoolLit(_) => Ok(Type::Bool),
            ExprKind::Ident(name) => self
                .lookup(name)
                .map(|s| s.ty.clone())
                .ok_or_else(|| CompileError::check(format!("`{name}` is not declared"), e.span)),
            ExprKind::Binary(op, a, b) => {
                let (ta, tb) = (self.check_expr(a)?, self.check_expr(b)?);
                binary_type(*op, &ta, &tb).ok_or_else(|| {
                    CompileError::check(
                        format!("operator `{}` cannot combine {ta} and {tb}", op.symbol()),
                        e.span,
                    )
                })
            }
            ExprKind::Unary(op, inner) => {
                let ty = self.check_expr(inner)?;
                match op {
                    UnOp::Neg | UnOp::Plus => {
                        if ty.scalar() == Some(Scalar::Bool)
                            || ty == Type::Sampler2D
                            || matches!(ty, Type::Array(..))
                        {
                            Err(CompileError::check(format!("cannot negate {ty}"), e.span))
                        } else {
                            Ok(ty)
                        }
                    }
                    UnOp::Not => {
                        if ty == Type::Bool {
                            Ok(Type::Bool)
                        } else {
                            Err(CompileError::check(
                                format!("`!` requires bool, found {ty}"),
                                e.span,
                            ))
                        }
                    }
                    UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => {
                        self.check_assignable(inner)?;
                        if matches!(ty.scalar(), Some(Scalar::Float) | Some(Scalar::Int))
                            && !ty.is_matrix()
                        {
                            Ok(ty)
                        } else {
                            Err(CompileError::check(
                                format!("++/-- requires a numeric lvalue, found {ty}"),
                                e.span,
                            ))
                        }
                    }
                }
            }
            ExprKind::Assign(op, lhs, rhs) => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                self.check_assignable(lhs)?;
                let effective = match op {
                    AssignOp::Assign => {
                        if lt == rt {
                            Some(lt.clone())
                        } else {
                            None
                        }
                    }
                    AssignOp::AddAssign | AssignOp::SubAssign | AssignOp::DivAssign => binary_type(
                        match op {
                            AssignOp::AddAssign => BinOp::Add,
                            AssignOp::SubAssign => BinOp::Sub,
                            _ => BinOp::Div,
                        },
                        &lt,
                        &rt,
                    )
                    .filter(|t| *t == lt),
                    AssignOp::MulAssign => binary_type(BinOp::Mul, &lt, &rt).filter(|t| *t == lt),
                };
                effective.ok_or_else(|| {
                    CompileError::check(
                        format!("cannot assign {rt} to lvalue of type {lt}"),
                        e.span,
                    )
                })
            }
            ExprKind::Ternary(cond, yes, no) => {
                self.expect_bool(cond)?;
                let (ty, tn) = (self.check_expr(yes)?, self.check_expr(no)?);
                if ty != tn {
                    return Err(CompileError::check(
                        format!("ternary branches have different types: {ty} vs {tn}"),
                        e.span,
                    ));
                }
                Ok(ty)
            }
            ExprKind::Call(name, args) => {
                let mut arg_types = Vec::with_capacity(args.len());
                for a in args {
                    arg_types.push(self.check_expr(a)?);
                }
                if let Some(ret) = builtins::signature(name, &arg_types) {
                    return Ok(ret);
                }
                if let Some(overloads) = self.functions.get(name) {
                    if let Some(sig) = overloads
                        .iter()
                        .find(|s| param_types(&s.params) == arg_types)
                    {
                        // out/inout arguments must be lvalues.
                        let quals: Vec<ParamQual> = sig.params.iter().map(|p| p.qual).collect();
                        let ret = sig.ret.clone();
                        for (arg, qual) in args.iter().zip(quals) {
                            if matches!(qual, ParamQual::Out | ParamQual::InOut) {
                                self.check_assignable(arg)?;
                            }
                        }
                        return Ok(ret);
                    }
                    return Err(CompileError::check(
                        format!(
                            "no overload of `{name}` matches argument types ({})",
                            type_list(&arg_types)
                        ),
                        e.span,
                    ));
                }
                if is_constructor_name(name) {
                    return Err(CompileError::check(
                        format!("invalid constructor `{name}({})`", type_list(&arg_types)),
                        e.span,
                    ));
                }
                Err(CompileError::check(
                    format!("`{name}` is not a function"),
                    e.span,
                ))
            }
            ExprKind::Field(base, field) => {
                let bt = self.check_expr(base)?;
                if !bt.is_vector() {
                    return Err(CompileError::check(
                        format!("cannot swizzle type {bt}"),
                        e.span,
                    ));
                }
                let dim = bt.dim().expect("vector dim");
                let idx = swizzle_indices(field).ok_or_else(|| {
                    CompileError::check(format!("invalid swizzle `.{field}`"), e.span)
                })?;
                if idx.iter().any(|&i| i >= dim) {
                    return Err(CompileError::check(
                        format!("swizzle `.{field}` out of range for {bt}"),
                        e.span,
                    ));
                }
                let scalar = bt.scalar().expect("vector scalar");
                Type::vector_of(scalar, idx.len()).ok_or_else(|| {
                    CompileError::check(format!("invalid swizzle `.{field}`"), e.span)
                })
            }
            ExprKind::Index(base, index) => {
                let bt = self.check_expr(base)?;
                let it = self.check_expr(index)?;
                if it != Type::Int {
                    return Err(CompileError::check(
                        format!("index must be int, found {it}"),
                        index.span,
                    ));
                }
                let result = bt.index_result().ok_or_else(|| {
                    CompileError::check(format!("type {bt} cannot be indexed"), e.span)
                })?;
                // Static bounds check for literal indices.
                if let ExprKind::IntLit(i) = &index.kind {
                    let len = match &bt {
                        Type::Array(_, n) => *n,
                        other => other.dim().unwrap_or(usize::MAX),
                    };
                    if *i < 0 || (*i as usize) >= len {
                        return Err(CompileError::check(
                            format!("index {i} out of bounds for {bt}"),
                            index.span,
                        ));
                    }
                }
                Ok(result)
            }
            ExprKind::Comma(a, b) => {
                self.check_expr(a)?;
                self.check_expr(b)
            }
        }
    }

    /// Verifies that `e` denotes a writable location.
    fn check_assignable(&mut self, e: &Expr) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                let sym = self.lookup(name).ok_or_else(|| {
                    CompileError::check(format!("`{name}` is not declared"), e.span)
                })?;
                if !sym.mutable {
                    return Err(CompileError::check(
                        format!("`{name}` is read-only in this shader stage"),
                        e.span,
                    ));
                }
                Ok(())
            }
            ExprKind::Field(base, field) => {
                let idx = swizzle_indices(field).ok_or_else(|| {
                    CompileError::check(format!("invalid swizzle `.{field}`"), e.span)
                })?;
                if !writable(&idx) {
                    return Err(CompileError::check(
                        format!("swizzle `.{field}` repeats components and cannot be assigned"),
                        e.span,
                    ));
                }
                self.check_assignable(base)
            }
            ExprKind::Index(base, _) => self.check_assignable(base),
            _ => Err(CompileError::check("expression is not an lvalue", e.span)),
        }
    }
}

fn param_types(params: &[Param]) -> Vec<Type> {
    params.iter().map(|p| p.ty.clone()).collect()
}

fn type_list(types: &[Type]) -> String {
    types
        .iter()
        .map(Type::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

fn is_constructor_name(name: &str) -> bool {
    matches!(
        name,
        "float"
            | "int"
            | "bool"
            | "vec2"
            | "vec3"
            | "vec4"
            | "ivec2"
            | "ivec3"
            | "ivec4"
            | "bvec2"
            | "bvec3"
            | "bvec4"
            | "mat2"
            | "mat3"
            | "mat4"
    )
}

/// Result type of a binary operation, or `None` if invalid.
///
/// GLSL ES has **no implicit conversions** — `int + float` is an error,
/// which is why generated GPGPU code is littered with `float()` casts.
pub fn binary_type(op: BinOp, a: &Type, b: &Type) -> Option<Type> {
    use BinOp::*;
    use Type::*;
    match op {
        And | Or | Xor => (*a == Bool && *b == Bool).then_some(Bool),
        Eq | Ne => (a == b && !matches!(a, Sampler2D | Array(..) | Void)).then_some(Bool),
        Lt | Le | Gt | Ge => (a == b && matches!(a, Float | Int)).then_some(Bool),
        Add | Sub | Div | Mul => {
            let float_shape = |t: &Type| t.is_matrix() || matches!(t, Float | Vec2 | Vec3 | Vec4);
            let int_shape = |t: &Type| matches!(t, Int | IVec2 | IVec3 | IVec4);
            // Linear-algebra products first.
            if op == Mul {
                match (a, b) {
                    (Mat2, Vec2) | (Vec2, Mat2) => return Some(Vec2),
                    (Mat3, Vec3) | (Vec3, Mat3) => return Some(Vec3),
                    (Mat4, Vec4) | (Vec4, Mat4) => return Some(Vec4),
                    (Mat2, Mat2) => return Some(Mat2),
                    (Mat3, Mat3) => return Some(Mat3),
                    (Mat4, Mat4) => return Some(Mat4),
                    _ => {}
                }
            } else if a.is_matrix() && a == b {
                // Component-wise matrix add/sub/div.
                return Some(a.clone());
            }
            if a == b && float_shape(a) && !a.is_matrix() {
                return Some(a.clone());
            }
            if a == b && int_shape(a) {
                return Some(a.clone());
            }
            match (a, b) {
                (t, Float) | (Float, t) if float_shape(t) => Some(t.clone()),
                (t, Int) | (Int, t) if int_shape(t) => Some(t.clone()),
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_frag(src: &str) -> Result<CompiledShader, CompileError> {
        check(ShaderKind::Fragment, parse(src)?)
    }

    fn check_vert(src: &str) -> Result<CompiledShader, CompileError> {
        check(ShaderKind::Vertex, parse(src)?)
    }

    const P: &str = "precision highp float;\n";

    #[test]
    fn minimal_shaders_check() {
        check_frag(&format!("{P}void main() {{ gl_FragColor = vec4(1.0); }}"))
            .expect("fragment shader should check");
        check_vert("attribute vec4 a_pos; void main() { gl_Position = a_pos; }")
            .expect("vertex shader should check");
    }

    #[test]
    fn fragment_requires_float_precision_default() {
        let e = check_frag("void main() { float x = 1.0; }").unwrap_err();
        assert!(e.message.contains("precision"));
        // Vertex shaders have a default (highp).
        check_vert("void main() { float x = 1.0; gl_Position = vec4(x); }")
            .expect("vertex default precision");
    }

    #[test]
    fn interface_is_extracted() {
        let s = check_frag(&format!(
            "{P}uniform sampler2D u_a;\nuniform vec2 u_dims;\nvarying vec2 v_uv;\n\
             void main() {{ gl_FragColor = texture2D(u_a, v_uv + u_dims); }}"
        ))
        .expect("checks");
        assert_eq!(s.interface.uniforms.len(), 2);
        assert_eq!(s.interface.uniform("u_a"), Some(&Type::Sampler2D));
        assert_eq!(s.interface.varying("v_uv"), Some(&Type::Vec2));
    }

    #[test]
    fn no_implicit_int_float_conversion() {
        let e = check_frag(&format!("{P}void main() {{ float x = 1.0 + 1; }}")).unwrap_err();
        assert!(e.message.contains("cannot combine"));
    }

    #[test]
    fn undeclared_identifier() {
        let e = check_frag(&format!("{P}void main() {{ gl_FragColor = missing; }}")).unwrap_err();
        assert!(e.message.contains("not declared"));
    }

    #[test]
    fn attribute_rejected_in_fragment() {
        let e = check_frag(&format!("{P}attribute vec4 a_p; void main() {{}}")).unwrap_err();
        assert!(e.message.contains("vertex"));
    }

    #[test]
    fn varying_must_be_float_based() {
        let e =
            check_vert("varying ivec2 v_i; void main() { gl_Position = vec4(0.0); }").unwrap_err();
        assert!(e.message.contains("varying"));
    }

    #[test]
    fn uniform_is_read_only() {
        let e = check_frag(&format!(
            "{P}uniform float u_k; void main() {{ u_k = 1.0; }}"
        ))
        .unwrap_err();
        assert!(e.message.contains("read-only"));
    }

    #[test]
    fn varying_read_only_in_fragment_writable_in_vertex() {
        let e = check_frag(&format!(
            "{P}varying vec2 v_uv; void main() {{ v_uv = vec2(0.0); }}"
        ))
        .unwrap_err();
        assert!(e.message.contains("read-only"));
        check_vert("varying vec2 v_uv; void main() { v_uv = vec2(1.0); gl_Position = vec4(0.0); }")
            .expect("vertex may write varyings");
    }

    #[test]
    fn gl_fragcoord_is_read_only() {
        let e = check_frag(&format!("{P}void main() {{ gl_FragCoord = vec4(0.0); }}")).unwrap_err();
        assert!(e.message.contains("read-only"));
    }

    #[test]
    fn gl_fragdata_index_bounds() {
        // gl_FragData[0] is the only legal element in ES 2 (limitation #8).
        check_frag(&format!("{P}void main() {{ gl_FragData[0] = vec4(1.0); }}"))
            .expect("gl_FragData[0] ok");
        let e =
            check_frag(&format!("{P}void main() {{ gl_FragData[1] = vec4(1.0); }}")).unwrap_err();
        assert!(e.message.contains("out of bounds"));
    }

    #[test]
    fn discard_only_in_fragment() {
        let e = check_vert("void main() { discard; gl_Position = vec4(0.0); }").unwrap_err();
        assert!(e.message.contains("fragment"));
        check_frag(&format!("{P}void main() {{ if (true) discard; }}")).expect("ok in fragment");
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = check_frag(&format!("{P}void main() {{ break; }}")).unwrap_err();
        assert!(e.message.contains("loop"));
    }

    #[test]
    fn swizzle_types() {
        check_frag(&format!(
            "{P}void main() {{ vec4 v = vec4(1.0); vec2 a = v.xy; float f = v.w; v.zw = a; }}"
        ))
        .expect("swizzles check");
        let e = check_frag(&format!(
            "{P}void main() {{ vec2 v = vec2(1.0); float f = v.z; }}"
        ))
        .unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn swizzle_write_with_repeats_rejected() {
        let e = check_frag(&format!(
            "{P}void main() {{ vec2 v = vec2(1.0); v.xx = vec2(2.0); }}"
        ))
        .unwrap_err();
        assert!(e.message.contains("repeats"));
    }

    #[test]
    fn ternary_branch_types_must_match() {
        let e = check_frag(&format!(
            "{P}void main() {{ float x = true ? 1.0 : vec2(0.0).x + 1.0; }}"
        ));
        assert!(e.is_ok());
        let e = check_frag(&format!("{P}void main() {{ float x = true ? 1 : 0.0; }}")).unwrap_err();
        assert!(e.message.contains("different types") || e.message.contains("expected"));
    }

    #[test]
    fn user_functions_with_overloads() {
        check_frag(&format!(
            "{P}float twice(float x) {{ return x * 2.0; }}\n\
             vec2 twice(vec2 x) {{ return x * 2.0; }}\n\
             void main() {{ gl_FragColor = vec4(twice(2.0), twice(vec2(1.0)), 0.0); }}"
        ))
        .expect("overloads resolve");
    }

    #[test]
    fn wrong_overload_is_rejected() {
        let e = check_frag(&format!(
            "{P}float f(float x) {{ return x; }}\n\
             void main() {{ float y = f(1); }}"
        ))
        .unwrap_err();
        assert!(e.message.contains("no overload"));
    }

    #[test]
    fn out_param_requires_lvalue() {
        let e = check_frag(&format!(
            "{P}void split(out float v) {{ v = 1.0; }}\n\
             void main() {{ split(2.0); }}"
        ))
        .unwrap_err();
        assert!(e.message.contains("lvalue"));
    }

    #[test]
    fn missing_main_is_error() {
        let e = check_frag(&format!("{P}float helper() {{ return 1.0; }}")).unwrap_err();
        assert!(e.message.contains("main"));
    }

    #[test]
    fn cannot_redefine_builtin() {
        let e = check_frag(&format!(
            "{P}float floor(float x) {{ return x; }} void main() {{}}"
        ))
        .unwrap_err();
        assert!(e.message.contains("builtin"));
    }

    #[test]
    fn matrix_vector_products() {
        check_vert(
            "uniform mat4 u_mvp; attribute vec4 a_pos;\n\
             void main() { gl_Position = u_mvp * a_pos; }",
        )
        .expect("mat4 * vec4");
        assert_eq!(
            binary_type(BinOp::Mul, &Type::Vec3, &Type::Mat3),
            Some(Type::Vec3)
        );
        assert_eq!(binary_type(BinOp::Mul, &Type::Mat2, &Type::Vec3), None);
        assert_eq!(
            binary_type(BinOp::Add, &Type::Mat2, &Type::Mat2),
            Some(Type::Mat2)
        );
    }

    #[test]
    fn relational_only_on_scalars() {
        assert_eq!(
            binary_type(BinOp::Lt, &Type::Float, &Type::Float),
            Some(Type::Bool)
        );
        assert_eq!(binary_type(BinOp::Lt, &Type::Vec2, &Type::Vec2), None);
        assert_eq!(
            binary_type(BinOp::Eq, &Type::Vec2, &Type::Vec2),
            Some(Type::Bool)
        );
    }

    #[test]
    fn const_requires_init_and_is_immutable() {
        let e = check_frag(&format!("{P}void main() {{ const float k; }}")).unwrap_err();
        assert!(e.message.contains("initialised"));
        let e = check_frag(&format!(
            "{P}void main() {{ const float k = 1.0; k = 2.0; }}"
        ))
        .unwrap_err();
        assert!(e.message.contains("read-only"));
    }

    #[test]
    fn shadowing_in_inner_scope_allowed() {
        check_frag(&format!(
            "{P}void main() {{ float x = 1.0; {{ float x = 2.0; }} }}"
        ))
        .expect("shadowing in nested scope");
        let e = check_frag(&format!(
            "{P}void main() {{ float x = 1.0; float x = 2.0; }}"
        ))
        .unwrap_err();
        assert!(e.message.contains("already declared"));
    }

    #[test]
    fn array_index_static_bounds() {
        let e = check_frag(&format!("{P}void main() {{ float a[4]; a[4] = 1.0; }}")).unwrap_err();
        assert!(e.message.contains("out of bounds"));
    }
}
