//! Abstract syntax tree for the GLSL ES 1.00 subset.
//!
//! The tree is plain data (`Send + Sync`), so a compiled shader can be
//! shared across rasteriser worker threads.

use crate::span::Span;
use crate::types::{Precision, Type};

/// Binary operators (note: no `%` or bitwise operators in ES 1.00).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*` (component-wise, or linear-algebraic for matrix/vector operands)
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
    /// `^^`
    Xor,
}

impl BinOp {
    /// GLSL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Xor => "^^",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Unary `-`
    Neg,
    /// Unary `+` (no-op, kept for fidelity)
    Plus,
    /// `!`
    Not,
    /// Prefix `++`
    PreInc,
    /// Prefix `--`
    PreDec,
    /// Postfix `++`
    PostInc,
    /// Postfix `--`
    PostDec,
}

/// Compound-assignment operators (`=` is [`AssignOp::Assign`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Float literal.
    FloatLit(f32),
    /// Int literal.
    IntLit(i32),
    /// Bool literal.
    BoolLit(bool),
    /// Variable reference.
    Ident(String),
    /// `a <op> b`
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `<op> a` / `a <op>` for inc/dec
    Unary(UnOp, Box<Expr>),
    /// `lhs <op>= rhs`
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    /// `cond ? yes : no`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call or constructor: `name(args…)`. Constructors use the
    /// type name (`vec4`, `mat3`, `float`, …).
    Call(String, Vec<Expr>),
    /// `base.field` — swizzle (`.xyz`) on vectors.
    Field(Box<Expr>, String),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `a, b` sequence (value of `b`).
    Comma(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }

    /// Whether the expression is a syntactic lvalue (assignability is
    /// verified more precisely by the checker).
    pub fn is_lvalue(&self) -> bool {
        match &self.kind {
            ExprKind::Ident(_) => true,
            ExprKind::Field(base, _) => base.is_lvalue(),
            ExprKind::Index(base, _) => base.is_lvalue(),
            _ => false,
        }
    }
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

impl Stmt {
    /// Convenience constructor.
    pub fn new(kind: StmtKind, span: Span) -> Stmt {
        Stmt { kind, span }
    }
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement `expr;`
    Expr(Expr),
    /// Local declaration(s).
    Decl(VarDecl),
    /// `if (cond) then else?`
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `for (init; cond; step) body`
    For {
        /// Init statement (declaration or expression); may be empty.
        init: Option<Box<Stmt>>,
        /// Loop condition; absent means `true`.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`
    While(Expr, Box<Stmt>),
    /// `do body while (cond);`
    DoWhile(Box<Stmt>, Expr),
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `discard;` (fragment shaders only)
    Discard,
    /// `{ … }`
    Block(Vec<Stmt>),
    /// Empty statement `;`
    Empty,
}

/// Storage qualifiers for globals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// No qualifier (plain global or local).
    None,
    /// `const`
    Const,
    /// `attribute` (vertex inputs)
    Attribute,
    /// `uniform`
    Uniform,
    /// `varying` (vertex outputs / fragment inputs)
    Varying,
}

/// One declarator within a declaration: `name[size]? (= init)?`.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Declared name.
    pub name: String,
    /// Resolved type (array suffix already applied).
    pub ty: Type,
    /// Optional initialiser.
    pub init: Option<Expr>,
    /// Source location of the name.
    pub span: Span,
}

/// A declaration: qualifier, precision, base type and declarators.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Storage qualifier.
    pub storage: Storage,
    /// Explicit precision qualifier, if any.
    pub precision: Option<Precision>,
    /// Declarators sharing the base type.
    pub vars: Vec<Declarator>,
}

/// Function parameter qualifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamQual {
    /// `in` (default): pass by value.
    In,
    /// `out`: uninitialised on entry, copied back on return.
    Out,
    /// `inout`: copied in and back.
    InOut,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (may be empty in prototypes).
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// in/out/inout.
    pub qual: ParamQual,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the header.
    pub span: Span,
}

/// A default-precision statement, e.g. `precision highp float;`.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionDecl {
    /// The declared precision.
    pub precision: Precision,
    /// The type it applies to (float/int/sampler2D).
    pub ty: Type,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Global variable declaration.
    Var(VarDecl),
    /// Function definition.
    Function(Function),
    /// Function prototype (recorded, checked against the definition).
    Prototype(Function),
    /// `precision` statement.
    Precision(PrecisionDecl),
}

/// A parsed translation unit (one shader).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// Items in source order.
    pub items: Vec<Item>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::default()
    }

    #[test]
    fn lvalue_classification() {
        let ident = Expr::new(ExprKind::Ident("x".into()), sp());
        assert!(ident.is_lvalue());

        let field = Expr::new(ExprKind::Field(Box::new(ident.clone()), "xy".into()), sp());
        assert!(field.is_lvalue());

        let idx = Expr::new(
            ExprKind::Index(
                Box::new(field),
                Box::new(Expr::new(ExprKind::IntLit(0), sp())),
            ),
            sp(),
        );
        assert!(idx.is_lvalue());

        let call = Expr::new(ExprKind::Call("f".into(), vec![]), sp());
        assert!(!call.is_lvalue());
        let lit = Expr::new(ExprKind::FloatLit(1.0), sp());
        assert!(!lit.is_lvalue());
        // Swizzle of a call result is not an lvalue.
        let f2 = Expr::new(ExprKind::Field(Box::new(call), "x".into()), sp());
        assert!(!f2.is_lvalue());
    }

    #[test]
    fn ast_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TranslationUnit>();
        assert_send_sync::<Expr>();
        assert_send_sync::<Stmt>();
    }

    #[test]
    fn binop_symbols() {
        assert_eq!(BinOp::Add.symbol(), "+");
        assert_eq!(BinOp::Xor.symbol(), "^^");
        assert_eq!(BinOp::Le.symbol(), "<=");
    }
}
