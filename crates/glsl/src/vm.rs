//! Register-style virtual machine for lowered shaders.
//!
//! One [`Vm`] executes many invocations of a [`Executable`] (one per
//! vertex or fragment). All storage — globals, operand stack, the frame
//! arena for locals — is owned by the `Vm` and **reused across
//! invocations**: after warm-up, running `main` performs no heap
//! allocation for shaders without local arrays.
//!
//! The VM is semantically interchangeable with
//! [`crate::interp::Interpreter`]: same results bit for bit under every
//! [`FloatModel`], same [`OpProfile`] counters, same runtime errors. The
//! interpreter is retained as the reference oracle; differential tests
//! assert the equivalence on every bundled kernel and on generated
//! programs.

use crate::ast::{BinOp, ParamQual};
use crate::builtins::{self, BuiltinCx};
use crate::compile::{Executable, Insn, PathStep, SlotRef, StoreDef};
use crate::error::RuntimeError;
use crate::exec::{ExecLimits, FloatModel, OpProfile, TextureAccess};
use crate::ops;
use crate::types::Scalar;
use crate::value::Value;

/// How a chunk finished.
enum ChunkFlow {
    /// Fell through / `Halt`.
    End,
    /// `Ret` — return value is on the operand stack.
    Ret,
    /// `discard` executed (main chunk only).
    Discarded,
}

/// Executes invocations of one lowered shader.
pub struct Vm<'a> {
    exe: &'a Executable,
    textures: &'a dyn TextureAccess,
    model: FloatModel,
    limits: ExecLimits,
    profile: OpProfile,
    /// Global slot values, indexed by the lowerer's slot assignment.
    globals: Vec<Value>,
    /// (slot, initial value) for plain mutable globals.
    reset_list: Vec<(u32, Value)>,
    /// Operand stack, reused across invocations.
    stack: Vec<Value>,
    /// Frame arena: `main` occupies the bottom, calls stack above it.
    locals: Vec<Value>,
    /// Per-loop iteration counters (nested loops nest counters).
    loop_counters: Vec<u64>,
    call_depth: u32,
    discarded: bool,
    wrote_frag_color: bool,
    wrote_frag_data: bool,
}

impl<'a> Vm<'a> {
    /// Creates a VM over a lowered shader with the given texture
    /// bindings, using the exact float model.
    ///
    /// # Errors
    ///
    /// Fails if a global initialiser fails to evaluate (same cases as
    /// [`crate::interp::Interpreter::new`]).
    pub fn new(exe: &'a Executable, textures: &'a dyn TextureAccess) -> Result<Self, RuntimeError> {
        Self::with_model(exe, textures, FloatModel::Exact)
    }

    /// Like [`Vm::new`] with an explicit float model.
    ///
    /// # Errors
    ///
    /// Fails if a global initialiser fails to evaluate.
    pub fn with_model(
        exe: &'a Executable,
        textures: &'a dyn TextureAccess,
        model: FloatModel,
    ) -> Result<Self, RuntimeError> {
        let globals = exe.globals.iter().map(|g| Value::zero_of(&g.ty)).collect();
        let mut vm = Vm {
            exe,
            textures,
            model,
            limits: ExecLimits::default(),
            profile: OpProfile::new(),
            globals,
            reset_list: Vec::new(),
            stack: Vec::new(),
            locals: Vec::new(),
            loop_counters: Vec::new(),
            call_depth: 0,
            discarded: false,
            wrote_frag_color: false,
            wrote_frag_data: false,
        };
        // Evaluate global initialisers (profile-counted, exactly like the
        // interpreter's init_globals), then snapshot the reset values.
        vm.run_chunk(0, 0)?;
        vm.stack.clear();
        vm.reset_list = vm
            .exe
            .reset_slots
            .iter()
            .map(|&slot| (slot, vm.globals[slot as usize].clone()))
            .collect();
        Ok(vm)
    }

    /// Replaces the execution limits.
    pub fn set_limits(&mut self, limits: ExecLimits) {
        self.limits = limits;
    }

    /// Sets a global (uniform, attribute, varying or builtin input) by
    /// name.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unbound`] if no such global exists.
    pub fn set_global(&mut self, name: &str, value: Value) -> Result<(), RuntimeError> {
        match self.exe.global_slot(name) {
            Some(slot) => {
                self.globals[slot as usize] = value;
                Ok(())
            }
            None => Err(RuntimeError::Unbound { name: name.into() }),
        }
    }

    /// Sets a global by pre-resolved slot (see
    /// [`Executable::global_slot`]) — the allocation- and
    /// string-comparison-free path for per-fragment inputs.
    pub fn set_slot(&mut self, slot: u32, value: Value) {
        self.globals[slot as usize] = value;
    }

    /// Reads a global by name (`gl_Position`, varyings, `gl_FragColor`
    /// after a run).
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.exe
            .global_slot(name)
            .map(|slot| &self.globals[slot as usize])
    }

    /// Reads a global by pre-resolved slot.
    pub fn slot(&self, slot: u32) -> &Value {
        &self.globals[slot as usize]
    }

    /// Resolves a global name to its slot (see
    /// [`Executable::global_slot`]).
    pub fn global_slot(&self, name: &str) -> Option<u32> {
        self.exe.global_slot(name)
    }

    /// Whether the last invocation executed `discard`.
    pub fn discarded(&self) -> bool {
        self.discarded
    }

    /// Whether the last invocation wrote `gl_FragColor` / `gl_FragData`.
    pub fn wrote_outputs(&self) -> (bool, bool) {
        (self.wrote_frag_color, self.wrote_frag_data)
    }

    /// The fragment colour produced by the last invocation, honouring
    /// whether the shader used `gl_FragColor` or `gl_FragData[0]`.
    pub fn frag_color(&self) -> Option<[f32; 4]> {
        if self.wrote_frag_data {
            match self.global("gl_FragData") {
                Some(Value::Array(elems)) => elems.first().and_then(Value::as_vec4),
                _ => None,
            }
        } else {
            self.global("gl_FragColor").and_then(Value::as_vec4)
        }
    }

    /// Accumulated operation profile over all invocations so far.
    pub fn profile(&self) -> OpProfile {
        self.profile
    }

    /// Resets the accumulated profile and returns the previous counts.
    pub fn take_profile(&mut self) -> OpProfile {
        std::mem::take(&mut self.profile)
    }

    /// Runs `main()` once.
    ///
    /// # Errors
    ///
    /// Propagates any [`RuntimeError`] raised during execution.
    pub fn run_main(&mut self) -> Result<(), RuntimeError> {
        self.discarded = false;
        self.wrote_frag_color = false;
        self.wrote_frag_data = false;
        self.stack.clear();
        self.loop_counters.clear();
        self.call_depth = 0;
        // Restore mutable plain globals; `clone_from` reuses any array
        // allocations already held by the slot.
        for (slot, value) in &self.reset_list {
            self.globals[*slot as usize].clone_from(value);
        }
        self.profile.invocations += 1;
        match self.run_chunk(self.exe.main_chunk, 0)? {
            ChunkFlow::Discarded => {
                self.discarded = true;
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn pop(&mut self) -> Value {
        self.stack.pop().expect("operand stack underflow")
    }

    fn pop_bool(&mut self) -> Result<bool, RuntimeError> {
        self.pop().as_bool().ok_or_else(|| RuntimeError::Type {
            message: "condition did not evaluate to bool".into(),
        })
    }

    /// Executes one chunk with its frame starting at `frame_base`.
    fn run_chunk(&mut self, chunk: u32, frame_base: u32) -> Result<ChunkFlow, RuntimeError> {
        // Detach the executable reference from `self`'s borrow so the
        // instruction slice can be walked while `self` mutates.
        let exe = self.exe;
        let chunk = &exe.chunks[chunk as usize];
        let frame_end = frame_base as usize + chunk.frame_size as usize;
        if self.locals.len() < frame_end {
            self.locals.resize(frame_end, Value::Float(0.0));
        }
        let counters_base = self.loop_counters.len();
        let result = self.dispatch_loop(&chunk.code, frame_base, frame_end);
        self.loop_counters.truncate(counters_base);
        result
    }

    fn dispatch_loop(
        &mut self,
        code: &[Insn],
        frame_base: u32,
        frame_end: usize,
    ) -> Result<ChunkFlow, RuntimeError> {
        let fb = frame_base as usize;
        let mut pc = 0usize;
        while pc < code.len() {
            match &code[pc] {
                Insn::Const(i) => self.stack.push(self.exe.consts[*i as usize].clone()),
                Insn::LoadGlobal(s) => self.stack.push(self.globals[*s as usize].clone()),
                Insn::LoadLocal(s) => self.stack.push(self.locals[fb + *s as usize].clone()),
                Insn::StoreLocal(s) => {
                    let v = self.pop();
                    self.locals[fb + *s as usize] = v;
                }
                Insn::StoreGlobalPop(s) => {
                    let v = self.pop();
                    self.globals[*s as usize] = v;
                }
                Insn::Dup => {
                    let v = self.stack.last().expect("dup on empty stack").clone();
                    self.stack.push(v);
                }
                Insn::Pop => {
                    self.pop();
                }
                Insn::Swap => {
                    let n = self.stack.len();
                    self.stack.swap(n - 1, n - 2);
                }
                Insn::Neg => {
                    let v = self.pop();
                    self.stack.push(ops::negate(v)?);
                }
                Insn::Not => {
                    let v = self.pop();
                    let b = v.as_bool().ok_or_else(|| RuntimeError::Type {
                        message: "`!` requires bool".into(),
                    })?;
                    self.stack.push(Value::Bool(!b));
                }
                Insn::Binary(op) => {
                    let b = self.pop();
                    let a = self.pop();
                    let r = ops::apply_binary(self.model, &mut self.profile, *op, a, b)?;
                    self.stack.push(r);
                }
                Insn::Branch => self.profile.branches += 1,
                Insn::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                Insn::JumpIfFalse(t) => {
                    if !self.pop_bool()? {
                        pc = *t as usize;
                        continue;
                    }
                }
                Insn::JumpIfTrue(t) => {
                    if self.pop_bool()? {
                        pc = *t as usize;
                        continue;
                    }
                }
                Insn::IncDec { inc } => {
                    let old = self.pop();
                    let one = match old.ty().scalar() {
                        Some(Scalar::Int) => Value::Int(1),
                        _ => Value::Float(1.0),
                    };
                    let op = if *inc { BinOp::Add } else { BinOp::Sub };
                    let new = ops::apply_binary(self.model, &mut self.profile, op, old, one)?;
                    self.stack.push(new);
                }
                Insn::Swizzle { idx, len } => {
                    let v = self.pop();
                    let mut indices = [0usize; 4];
                    for (slot, &i) in indices.iter_mut().zip(idx.iter()) {
                        *slot = i as usize;
                    }
                    let r = ops::swizzle_read(&v, &indices[..*len as usize])?;
                    self.stack.push(r);
                }
                Insn::IndexOp => {
                    let idx = self.pop_index()?;
                    let base = self.pop();
                    let r = ops::index_read(&base, idx)?;
                    self.stack.push(r);
                }
                Insn::Store(def) => self.exec_store(def, fb)?,
                Insn::LoopEnter => self.loop_counters.push(0),
                Insn::LoopIter { span } => {
                    let counter = self
                        .loop_counters
                        .last_mut()
                        .expect("loop counter underflow");
                    *counter += 1;
                    self.profile.branches += 1;
                    if *counter > self.limits.max_loop_iterations {
                        return Err(RuntimeError::LoopLimit {
                            limit: self.limits.max_loop_iterations,
                            span: *span,
                        });
                    }
                }
                Insn::LoopExit => {
                    self.loop_counters.pop();
                }
                Insn::Discard => return Ok(ChunkFlow::Discarded),
                Insn::ErrDiscardInFunction => {
                    return Err(RuntimeError::Type {
                        message: "discard inside a function is not supported by this subset".into(),
                    })
                }
                Insn::ErrBreakInFunction => {
                    return Err(RuntimeError::Type {
                        message: "break/continue escaped a function body".into(),
                    })
                }
                Insn::Ret => return Ok(ChunkFlow::Ret),
                Insn::ErrNoReturn(name) => {
                    let name = &self.exe.names[*name as usize];
                    return Err(RuntimeError::Type {
                        message: format!("function `{name}` ended without returning a value"),
                    });
                }
                Insn::Halt => return Ok(ChunkFlow::End),
                Insn::Call {
                    name,
                    argc,
                    candidates,
                    pushes_outs,
                } => {
                    self.exec_call(*name, *argc, candidates, *pushes_outs, frame_end)?;
                }
            }
            pc += 1;
        }
        Ok(ChunkFlow::End)
    }

    fn pop_index(&mut self) -> Result<i64, RuntimeError> {
        match self.pop() {
            Value::Int(i) => Ok(i as i64),
            other => Err(RuntimeError::Type {
                message: format!("index must be int, found {}", other.ty()),
            }),
        }
    }

    fn exec_store(&mut self, def: &StoreDef, fb: usize) -> Result<(), RuntimeError> {
        // Index operands were pushed outermost-first; the first `Index`
        // step encountered walking from the root therefore sits on top.
        let mut indices = [0i64; 8];
        for slot in indices.iter_mut().take(def.n_index as usize) {
            *slot = self.pop_index()?;
        }
        let value = self.pop();
        if def.wrote_color {
            self.wrote_frag_color = true;
        }
        if def.wrote_data {
            self.wrote_frag_data = true;
        }
        let root: &mut Value = match def.root {
            SlotRef::Global(s) => &mut self.globals[s as usize],
            SlotRef::Local(s) => &mut self.locals[fb + s as usize],
        };
        store_path(root, &def.path, &indices[..def.n_index as usize], value)
    }

    fn exec_call(
        &mut self,
        name_idx: u32,
        argc: u8,
        candidates: &[u32],
        pushes_outs: bool,
        caller_frame_end: usize,
    ) -> Result<(), RuntimeError> {
        let exe = self.exe;
        let argc = argc as usize;
        let args_start = self.stack.len() - argc;
        let name = &exe.names[name_idx as usize];

        // Builtins and constructors first (they cannot be shadowed) —
        // exactly the interpreter's dispatch order.
        {
            let args = &self.stack[args_start..];
            let mut cx = BuiltinCx {
                model: self.model,
                profile: &mut self.profile,
                textures: self.textures,
            };
            if let Some(result) = builtins::call(name, args, &mut cx) {
                // A call site lowered with out-parameter copy-back must
                // never be intercepted by the builtin layer — the
                // lowerer guarantees it via `is_builtin_name`. If the
                // two tables ever drift, fail loudly instead of letting
                // the copy-back sequence pop unrelated operands.
                if pushes_outs {
                    return Err(RuntimeError::Type {
                        message: format!(
                            "builtin `{name}` intercepted a call lowered with \
                             out-parameter copy-back (builtin table drift)"
                        ),
                    });
                }
                let v = result?;
                self.stack.truncate(args_start);
                self.stack.push(v);
                return Ok(());
            }
        }

        // User-defined function by exact argument types.
        let fi = candidates
            .iter()
            .copied()
            .find(|&fi| {
                let f = &exe.functions[fi as usize];
                f.params.len() == argc
                    && f.params
                        .iter()
                        .zip(&self.stack[args_start..])
                        .all(|((ty, _), v)| ops::value_matches_type(v, ty))
            })
            .ok_or_else(|| RuntimeError::Unbound { name: name.clone() })?;

        if self.call_depth >= self.limits.max_call_depth {
            return Err(RuntimeError::CallDepth {
                limit: self.limits.max_call_depth,
            });
        }
        self.call_depth += 1;
        self.profile.calls += 1;

        let func = &exe.functions[fi as usize];
        // The callee frame starts right above the caller's, like a call
        // stack: space is reused across successive calls, so the arena
        // stops growing once the deepest call chain has run once.
        let callee_base = caller_frame_end;
        let frame_end = callee_base + exe.chunks[func.chunk as usize].frame_size as usize;
        if self.locals.len() < frame_end {
            self.locals.resize(frame_end, Value::Float(0.0));
        }
        for (i, (ty, qual)) in func.params.iter().enumerate() {
            let v = match qual {
                ParamQual::In | ParamQual::InOut => {
                    std::mem::replace(&mut self.stack[args_start + i], Value::Bool(false))
                }
                ParamQual::Out => Value::zero_of(ty),
            };
            self.locals[callee_base + i] = v;
        }
        self.stack.truncate(args_start);

        let flow = self.run_chunk(func.chunk, callee_base as u32);
        self.call_depth -= 1;
        match flow? {
            ChunkFlow::Ret => {}
            ChunkFlow::End => unreachable!("function chunks end with Ret or an error"),
            ChunkFlow::Discarded => unreachable!("discard lowers to an error in functions"),
        }
        if pushes_outs {
            // Push out/inout parameter values (parameter order) below the
            // return value.
            let ret = self.pop();
            for (i, (_, qual)) in func.params.iter().enumerate() {
                if matches!(qual, ParamQual::Out | ParamQual::InOut) {
                    let v =
                        std::mem::replace(&mut self.locals[callee_base + i], Value::Bool(false));
                    self.stack.push(v);
                }
            }
            self.stack.push(ret);
        }
        Ok(())
    }
}

/// Writes `value` through `path` into `root`, using the shared
/// swizzle/index mutators so behaviour matches the interpreter's
/// `assign_to`/`modify` recursion. Shared with the SPMD lane VM, whose
/// per-lane stores must take exactly this path.
pub(crate) fn store_path(
    root: &mut Value,
    path: &[PathStep],
    indices: &[i64],
    value: Value,
) -> Result<(), RuntimeError> {
    match path.first() {
        None => {
            *root = value;
            Ok(())
        }
        Some(PathStep::Index) => {
            let i = indices[0];
            if path.len() == 1 {
                ops::index_write(root, i, &value)
            } else {
                ops::index_modify(root, i, &mut |inner| {
                    store_path(inner, &path[1..], &indices[1..], value.clone())
                })
            }
        }
        Some(PathStep::Swizzle { idx, len }) => {
            let mut sel = [0usize; 4];
            for (slot, &i) in sel.iter_mut().zip(idx.iter()) {
                *slot = i as usize;
            }
            let sel = &sel[..*len as usize];
            if path.len() == 1 {
                ops::swizzle_write(root, sel, &value)
            } else {
                // Swizzle-of-swizzle lvalues: read, recurse, write back —
                // the interpreter's `modify` does the same.
                let mut tmp = ops::swizzle_read(root, sel)?;
                store_path(&mut tmp, &path[1..], indices, value)?;
                ops::swizzle_write(root, sel, &tmp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::lower;
    use crate::exec::NoTextures;
    use crate::interp::Interpreter;
    use crate::parser::parse;
    use crate::sema::check;
    use crate::sema::ShaderKind;

    const P: &str = "precision highp float;\n";

    fn run_both(
        src: &str,
        globals: &[(&str, Value)],
    ) -> ([f32; 4], [f32; 4], OpProfile, OpProfile) {
        let shader = check(ShaderKind::Fragment, parse(src).expect("parse")).expect("check");
        let exe = lower(&shader).expect("lower");
        let tex = NoTextures;
        let mut vm = Vm::new(&exe, &tex).expect("vm");
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        for (n, v) in globals {
            vm.set_global(n, v.clone()).expect("vm global");
            interp.set_global(n, v.clone()).expect("interp global");
        }
        vm.run_main().expect("vm run");
        interp.run_main().expect("interp run");
        (
            vm.frag_color().expect("vm color"),
            interp.frag_color().expect("interp color"),
            vm.profile(),
            interp.profile(),
        )
    }

    fn assert_match(src: &str, globals: &[(&str, Value)]) {
        let (v, i, vp, ip) = run_both(src, globals);
        assert_eq!(v.map(f32::to_bits), i.map(f32::to_bits), "colors for {src}");
        assert_eq!(vp, ip, "profiles for {src}");
    }

    #[test]
    fn constant_color() {
        assert_match(
            &format!("{P}void main() {{ gl_FragColor = vec4(0.1, 0.2, 0.3, 0.4); }}"),
            &[],
        );
    }

    #[test]
    fn arithmetic_locals_and_loops() {
        assert_match(
            &format!(
                "{P}void main() {{
                    float s = 0.0;
                    for (int i = 0; i < 10; i++) {{ s += fract(float(i) * 0.37); }}
                    gl_FragColor = vec4(s / 10.0, s, 1.0 / (s + 1.0), 1.0);
                }}"
            ),
            &[],
        );
    }

    #[test]
    fn uniforms_swizzles_and_compound_assign() {
        assert_match(
            &format!(
                "{P}uniform vec4 u_v;\nuniform float u_k;\n\
                 void main() {{
                    vec4 v = u_v;
                    v.xz *= u_k;
                    v.w += 0.5;
                    gl_FragColor = v;
                 }}"
            ),
            &[
                ("u_v", Value::Vec4([0.1, 0.2, 0.3, 0.4])),
                ("u_k", Value::Float(1.5)),
            ],
        );
    }

    #[test]
    fn user_functions_with_out_params() {
        assert_match(
            &format!(
                "{P}void split(float v, out float hi, out float lo) {{
                    hi = floor(v); lo = fract(v);
                 }}
                 float scale(float v) {{ return v * 2.0; }}
                 void main() {{
                    float h; float l;
                    split(3.25, h, l);
                    gl_FragColor = vec4(h / 4.0, l, scale(0.125), 1.0);
                 }}"
            ),
            &[],
        );
    }

    #[test]
    fn arrays_and_matrices() {
        assert_match(
            &format!(
                "{P}void main() {{
                    float a[3];
                    for (int i = 0; i < 3; i++) {{ a[i] = float(i) * 0.25; }}
                    mat2 m = mat2(1.0, 2.0, 3.0, 4.0);
                    vec2 v = m * vec2(a[1], a[2]);
                    gl_FragColor = vec4(v, a[0], 1.0);
                }}"
            ),
            &[],
        );
    }

    #[test]
    fn ternary_and_short_circuit() {
        assert_match(
            &format!(
                "{P}void main() {{
                    float d = 0.0;
                    bool ok = (d != 0.0) && (1.0 / d > 0.0);
                    bool or = (d == 0.0) || (1.0 / d > 0.0);
                    gl_FragColor = vec4(ok ? 1.0 : 0.25, or ? 0.5 : 0.0, 0.0, 1.0);
                }}"
            ),
            &[],
        );
    }

    #[test]
    fn globals_reset_between_invocations() {
        let src = format!(
            "{P}float counter = 0.0;\n\
             void main() {{ counter += 1.0; gl_FragColor = vec4(counter); }}"
        );
        let shader = check(ShaderKind::Fragment, parse(&src).expect("parse")).expect("check");
        let exe = lower(&shader).expect("lower");
        let tex = NoTextures;
        let mut vm = Vm::new(&exe, &tex).expect("vm");
        vm.run_main().expect("run 1");
        assert_eq!(vm.frag_color().expect("c")[0], 1.0);
        vm.run_main().expect("run 2");
        assert_eq!(vm.frag_color().expect("c")[0], 1.0);
    }

    #[test]
    fn discard_and_frag_data() {
        let src = format!("{P}void main() {{ discard; }}");
        let shader = check(ShaderKind::Fragment, parse(&src).expect("parse")).expect("check");
        let exe = lower(&shader).expect("lower");
        let tex = NoTextures;
        let mut vm = Vm::new(&exe, &tex).expect("vm");
        vm.run_main().expect("run");
        assert!(vm.discarded());

        let src = format!("{P}void main() {{ gl_FragData[0] = vec4(0.5, 0.25, 0.125, 1.0); }}");
        let shader = check(ShaderKind::Fragment, parse(&src).expect("parse")).expect("check");
        let exe = lower(&shader).expect("lower");
        let mut vm = Vm::new(&exe, &tex).expect("vm");
        vm.run_main().expect("run");
        assert_eq!(vm.wrote_outputs(), (false, true));
        assert_eq!(vm.frag_color(), Some([0.5, 0.25, 0.125, 1.0]));
    }

    #[test]
    fn loop_limit_and_recursion_guards() {
        let src = format!("{P}void main() {{ float s = 0.0; while (true) {{ s += 1.0; }} }}");
        let shader = check(ShaderKind::Fragment, parse(&src).expect("parse")).expect("check");
        let exe = lower(&shader).expect("lower");
        let tex = NoTextures;
        let mut vm = Vm::new(&exe, &tex).expect("vm");
        vm.set_limits(ExecLimits {
            max_loop_iterations: 1000,
            max_call_depth: 8,
        });
        assert!(matches!(
            vm.run_main().unwrap_err(),
            RuntimeError::LoopLimit { .. }
        ));

        let src = format!(
            "{P}float f(float x) {{ return f(x) + 1.0; }}\n\
             void main() {{ gl_FragColor = vec4(f(1.0)); }}"
        );
        let shader = check(ShaderKind::Fragment, parse(&src).expect("parse")).expect("check");
        let exe = lower(&shader).expect("lower");
        let mut vm = Vm::new(&exe, &tex).expect("vm");
        assert!(matches!(
            vm.run_main().unwrap_err(),
            RuntimeError::CallDepth { .. }
        ));
    }

    #[test]
    fn slot_api_round_trips() {
        let src = format!("{P}uniform float u_x;\nvoid main() {{ gl_FragColor = vec4(u_x); }}");
        let shader = check(ShaderKind::Fragment, parse(&src).expect("parse")).expect("check");
        let exe = lower(&shader).expect("lower");
        let tex = NoTextures;
        let mut vm = Vm::new(&exe, &tex).expect("vm");
        let slot = exe.global_slot("u_x").expect("slot");
        vm.set_slot(slot, Value::Float(0.75));
        assert_eq!(vm.slot(slot), &Value::Float(0.75));
        vm.run_main().expect("run");
        assert_eq!(vm.frag_color(), Some([0.75; 4]));
    }
}
