//! # gpes-glsl — GLSL ES 1.00 subset compiler and interpreter
//!
//! A from-scratch implementation of the OpenGL ES Shading Language 1.00
//! subset needed for general-purpose computation over OpenGL ES 2.0, as
//! described in *“Towards General Purpose Computations on Low-End Mobile
//! GPUs”* (Trompouki & Kosmidis, DATE 2016).
//!
//! The crate provides:
//!
//! * a conformance-minded front end ([`lexer`], [`parser`], [`sema`]) that
//!   rejects exactly what a GLES2 driver rejects — reserved bitwise
//!   operators, `int`/`float` mixing, missing fragment default precision,
//!   non-float varyings, out-of-range `gl_FragData` indices, …
//! * a tree-walking [`interp::Interpreter`] with a configurable
//!   [`exec::FloatModel`] so the VideoCore IV's reduced-precision special
//!   function unit can be emulated (the paper's 15-mantissa-bit result),
//! * operation profiling ([`exec::OpProfile`]) consumed by the `gpes-perf`
//!   timing model.
//!
//! ## Example
//!
//! ```
//! use gpes_glsl::{compile, ShaderKind};
//! use gpes_glsl::interp::Interpreter;
//! use gpes_glsl::exec::NoTextures;
//! use gpes_glsl::value::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let shader = compile(
//!     ShaderKind::Fragment,
//!     "precision highp float;
//!      uniform float u_gain;
//!      void main() { gl_FragColor = vec4(0.25 * u_gain); }",
//! )?;
//! let textures = NoTextures;
//! let mut interp = Interpreter::new(&shader, &textures)?;
//! interp.set_global("u_gain", Value::Float(2.0))?;
//! interp.run_main()?;
//! assert_eq!(interp.frag_color(), Some([0.5, 0.5, 0.5, 0.5]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod ast;
pub mod builtins;
pub mod compile;
pub mod error;
pub mod exec;
pub(crate) mod intern;
pub mod interp;
pub mod lexer;
mod ops;
pub mod parser;
pub mod preprocessor;
pub mod sema;
pub mod span;
pub mod spmd;
pub mod strict;
pub mod swizzle;
pub mod token;
pub mod types;
pub mod value;
pub mod vm;

pub use admission::{admit, AdmissionDiagnostic, AdmissionStage};
pub use compile::{lower, lower_shared, Executable, LowerError};
pub use error::{CompileError, RuntimeError};
pub use preprocessor::{preprocess, ExtensionBehavior, Preprocessed};
pub use sema::{CompiledShader, ShaderInterface, ShaderKind};
pub use spmd::{BatchError, SpmdVm, MAX_LANES};
pub use strict::StrictProfile;
pub use types::{Precision, Scalar, Type};
pub use value::Value;
pub use vm::Vm;

/// Compiles (parses + checks) a shader source string.
///
/// This is the moral equivalent of `glCompileShader`; the returned
/// [`CompiledShader`] is immutable and can be shared across threads.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexical, syntactic or
/// semantic problem, exactly like a driver's shader info log.
///
/// ```
/// use gpes_glsl::{compile, ShaderKind};
///
/// let err = compile(ShaderKind::Fragment, "void main() { int x = 1 & 2; }")
///     .unwrap_err();
/// assert!(err.message.contains("reserved"));
/// ```
pub fn compile(kind: ShaderKind, source: &str) -> Result<CompiledShader, CompileError> {
    let preprocessed = preprocessor::preprocess(source)?;
    let unit = parser::parse(&preprocessed.source)?;
    sema::check(kind, unit)
}

/// Compiles a shader and additionally enforces the GLSL ES 1.00
/// **Appendix A** minimum-guarantee restrictions that real low-end
/// drivers (VideoCore IV among them) apply — see [`strict`].
///
/// # Errors
///
/// All [`compile()`] errors, plus Appendix-A violations (`while` loops,
/// non-constant loop bounds, loop-index mutation in the body, …).
pub fn compile_strict(kind: ShaderKind, source: &str) -> Result<CompiledShader, CompileError> {
    let preprocessed = preprocessor::preprocess(source)?;
    let unit = parser::parse(&preprocessed.source)?;
    strict::check_appendix_a(&unit)?;
    sema::check(kind, unit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_smoke() {
        let shader = compile(
            ShaderKind::Fragment,
            "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }",
        )
        .expect("compiles");
        assert_eq!(shader.kind, ShaderKind::Fragment);
    }

    #[test]
    fn compiled_shader_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledShader>();
    }

    #[test]
    fn compile_reports_line_numbers() {
        let err = compile(
            ShaderKind::Fragment,
            "precision highp float;\nvoid main() {\n  float x = bogus;\n}",
        )
        .unwrap_err();
        assert_eq!(err.span.line, 3);
    }
}
