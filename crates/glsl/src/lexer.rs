//! Tokeniser for the GLSL ES 1.00 subset.
//!
//! Notable conformance points:
//!
//! * Bitwise and modulus operators (`%  &  |  ^  <<  >>  ~` and their
//!   assignment forms) are **reserved** in GLSL ES 1.00 and are rejected
//!   here with a dedicated message. The paper's numeric transformations
//!   exist precisely because shaders cannot use them.
//! * Reserved words (`goto`, `union`, `double`, …) are rejected.
//! * `#`-directives: `#version 100` and `#extension` lines are accepted and
//!   ignored; anything else is an error (we implement no preprocessor — the
//!   framework's code generator never emits one).

use crate::error::CompileError;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind, RESERVED_WORDS};

/// Tokenises an entire source string.
///
/// # Errors
///
/// Returns a [`CompileError`] for unknown characters, reserved operators or
/// words, malformed numeric literals and unterminated block comments.
pub fn tokenize(source: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn here(&self) -> Span {
        Span::new(self.pos as u32, self.pos as u32 + 1, self.line, self.col)
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span::new(start as u32, self.pos as u32, line, col)
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.tokens.push(Token { kind, span });
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        loop {
            self.skip_trivia()?;
            if self.pos >= self.src.len() {
                let span = self.here();
                self.push(TokenKind::Eof, span);
                return Ok(self.tokens);
            }
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let c = self.peek();
            match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.word(start, line, col)?,
                b'0'..=b'9' => self.number(start, line, col)?,
                b'.' => {
                    if self.peek2().is_ascii_digit() {
                        self.number(start, line, col)?;
                    } else {
                        self.bump();
                        let span = self.span_from(start, line, col);
                        self.push(TokenKind::Dot, span);
                    }
                }
                b'#' => self.directive(line, col)?,
                _ => self.operator(start, line, col)?,
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let span = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(CompileError::lex("unterminated block comment", span));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn word(&mut self, start: usize, line: u32, col: u32) -> Result<(), CompileError> {
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii word");
        let span = self.span_from(start, line, col);
        if text == "true" {
            self.push(TokenKind::BoolLit(true), span);
        } else if text == "false" {
            self.push(TokenKind::BoolLit(false), span);
        } else if let Some(kw) = Keyword::from_word(text) {
            self.push(TokenKind::Keyword(kw), span);
        } else if RESERVED_WORDS.contains(&text) {
            return Err(CompileError::lex(
                format!("`{text}` is a reserved word in GLSL ES 1.00"),
                span,
            ));
        } else if text.starts_with("gl_") || !text.contains("__") {
            self.push(TokenKind::Ident(text.to_owned()), span);
        } else {
            return Err(CompileError::lex(
                format!("identifier `{text}` contains `__`, reserved in GLSL ES 1.00"),
                span,
            ));
        }
        Ok(())
    }

    fn number(&mut self, start: usize, line: u32, col: u32) -> Result<(), CompileError> {
        // Hex integer.
        if self.peek() == b'0' && matches!(self.peek2(), b'x' | b'X') {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            let span = self.span_from(start, line, col);
            if digits_start == self.pos {
                return Err(CompileError::lex("missing hexadecimal digits", span));
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).expect("hex");
            let value = u32::from_str_radix(text, 16)
                .map_err(|_| CompileError::lex("hexadecimal literal overflows", span))?;
            if value > i32::MAX as u32 {
                return Err(CompileError::lex("integer literal overflows", span));
            }
            self.push(TokenKind::IntLit(value as i32), span);
            return Ok(());
        }

        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if matches!(self.peek(), b'e' | b'E') {
            let lookahead = match self.peek2() {
                b'+' | b'-' => *self.src.get(self.pos + 2).unwrap_or(&0),
                other => other,
            };
            if lookahead.is_ascii_digit() {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), b'+' | b'-') {
                    self.bump();
                }
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            }
        }
        let span = self.span_from(start, line, col);
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
        if is_float {
            let value: f32 = text.parse().map_err(|_| {
                CompileError::lex(format!("malformed float literal `{text}`"), span)
            })?;
            self.push(TokenKind::FloatLit(value), span);
        } else if text.len() > 1 && text.starts_with('0') {
            // Octal integer, per the GLSL ES grammar.
            let value = i32::from_str_radix(&text[1..], 8).map_err(|_| {
                CompileError::lex(format!("malformed octal literal `{text}`"), span)
            })?;
            self.push(TokenKind::IntLit(value), span);
        } else {
            let value: i32 = text
                .parse()
                .map_err(|_| CompileError::lex("integer literal overflows", span))?;
            self.push(TokenKind::IntLit(value), span);
        }
        Ok(())
    }

    fn directive(&mut self, line: u32, col: u32) -> Result<(), CompileError> {
        let start = self.pos;
        while self.pos < self.src.len() && self.peek() != b'\n' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii directive")
            .trim();
        let span = self.span_from(start, line, col);
        if text.starts_with("#version") {
            let rest = text.trim_start_matches("#version").trim();
            if rest != "100" && !rest.is_empty() {
                return Err(CompileError::lex(
                    format!("unsupported `#version {rest}`; this is a GLSL ES 1.00 implementation"),
                    span,
                ));
            }
            Ok(())
        } else if text.starts_with("#extension") || text.starts_with("#pragma") || text == "#" {
            Ok(()) // Accepted and ignored, like most drivers.
        } else {
            Err(CompileError::lex(
                format!("unsupported preprocessor directive `{text}`"),
                span,
            ))
        }
    }

    fn operator(&mut self, start: usize, line: u32, col: u32) -> Result<(), CompileError> {
        use TokenKind::*;
        let c = self.bump();
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b'{' => LBrace,
            b'}' => RBrace,
            b',' => Comma,
            b';' => Semicolon,
            b':' => Colon,
            b'?' => Question,
            b'+' => match self.peek() {
                b'+' => {
                    self.bump();
                    PlusPlus
                }
                b'=' => {
                    self.bump();
                    PlusEq
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.bump();
                    MinusMinus
                }
                b'=' => {
                    self.bump();
                    MinusEq
                }
                _ => Minus,
            },
            b'*' => {
                if self.peek() == b'=' {
                    self.bump();
                    StarEq
                } else {
                    Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.bump();
                    SlashEq
                } else {
                    Slash
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    EqEq
                } else {
                    Eq
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.bump();
                    NotEq
                } else {
                    Bang
                }
            }
            b'<' => match self.peek() {
                b'=' => {
                    self.bump();
                    Le
                }
                b'<' => {
                    let span = self.span_from(start, line, col);
                    return Err(reserved_op("<<", span));
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                b'=' => {
                    self.bump();
                    Ge
                }
                b'>' => {
                    let span = self.span_from(start, line, col);
                    return Err(reserved_op(">>", span));
                }
                _ => Gt,
            },
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    AndAnd
                } else {
                    let span = self.span_from(start, line, col);
                    return Err(reserved_op("&", span));
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    OrOr
                } else {
                    let span = self.span_from(start, line, col);
                    return Err(reserved_op("|", span));
                }
            }
            b'^' => {
                if self.peek() == b'^' {
                    self.bump();
                    XorXor
                } else {
                    let span = self.span_from(start, line, col);
                    return Err(reserved_op("^", span));
                }
            }
            b'%' => {
                let span = self.span_from(start, line, col);
                return Err(reserved_op("%", span));
            }
            b'~' => {
                let span = self.span_from(start, line, col);
                return Err(reserved_op("~", span));
            }
            other => {
                let span = self.span_from(start, line, col);
                return Err(CompileError::lex(
                    format!("unexpected character `{}`", other as char),
                    span,
                ));
            }
        };
        let span = self.span_from(start, line, col);
        self.push(kind, span);
        Ok(())
    }
}

fn reserved_op(op: &str, span: Span) -> CompileError {
    CompileError::lex(
        format!(
            "operator `{op}` is reserved in GLSL ES 1.00; \
             integer/bitwise arithmetic must be emulated (see the numeric transformations)"
        ),
        span,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("tokenize should succeed")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        let k = kinds("uniform vec4 color;");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::Uniform),
                TokenKind::Keyword(Keyword::Vec4),
                TokenKind::Ident("color".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_float_forms() {
        let k = kinds("1.0 .5 2. 3e2 4.5e-1 1E+2");
        let floats: Vec<f32> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::FloatLit(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec![1.0, 0.5, 2.0, 300.0, 0.45, 100.0]);
    }

    #[test]
    fn lexes_int_forms() {
        let k = kinds("42 0x1F 017 0");
        let ints: Vec<i32> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::IntLit(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec![42, 31, 15, 0]);
    }

    #[test]
    fn dot_without_digit_is_field_access() {
        let k = kinds("v.xy");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("v".into()),
                TokenKind::Dot,
                TokenKind::Ident("xy".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a // line\n /* block\n over lines */ b");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let e = tokenize("/* nope").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn reserved_operators_error() {
        for src in ["a % b", "a & b", "a | b", "a ^ b", "a << 2", "a >> 2", "~a"] {
            let e = tokenize(src).expect_err(src);
            assert!(e.message.contains("reserved"), "{src}: {}", e.message);
        }
    }

    #[test]
    fn logical_double_operators_are_allowed() {
        let k = kinds("a && b || c ^^ d");
        assert!(k.contains(&TokenKind::AndAnd));
        assert!(k.contains(&TokenKind::OrOr));
        assert!(k.contains(&TokenKind::XorXor));
    }

    #[test]
    fn reserved_words_error() {
        for src in ["goto x;", "double d;", "unsigned u;", "switch (x) {}"] {
            let e = tokenize(src).expect_err(src);
            assert!(e.message.contains("reserved word"), "{src}");
        }
    }

    #[test]
    fn double_underscore_identifier_rejected() {
        assert!(tokenize("float a__b;").is_err());
    }

    #[test]
    fn gl_builtins_lex_as_identifiers() {
        let k = kinds("gl_FragColor gl_Position gl_FragCoord");
        assert_eq!(
            k.iter()
                .filter(|t| matches!(t, TokenKind::Ident(_)))
                .count(),
            3
        );
    }

    #[test]
    fn version_directive_accepted() {
        assert!(tokenize("#version 100\nfloat x;").is_ok());
        assert!(tokenize("#version 300 es\nfloat x;").is_err());
        assert!(tokenize("#include \"x\"\n").is_err());
    }

    #[test]
    fn increment_and_compound_assign() {
        let k = kinds("i++ += -= *= /= --j");
        assert!(k.contains(&TokenKind::PlusPlus));
        assert!(k.contains(&TokenKind::MinusMinus));
        assert!(k.contains(&TokenKind::PlusEq));
        assert!(k.contains(&TokenKind::SlashEq));
    }

    #[test]
    fn spans_track_lines() {
        let toks = tokenize("a\n  b").expect("ok");
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn integer_overflow_errors() {
        assert!(tokenize("2147483648").is_err()); // i32::MAX + 1
        assert!(tokenize("2147483647").is_ok());
        assert!(tokenize("0xFFFFFFFF").is_err());
    }
}
