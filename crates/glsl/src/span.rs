//! Source locations and spans for diagnostics.

use std::fmt;

/// A half-open byte range into the shader source, with line/column of the
/// start point for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span covering `start..end` at the given line/column.
    pub fn new(start: u32, end: u32, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A span from the start of `self` to the end of `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start,
            end: other.end.max(self.end),
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_line_and_col() {
        let s = Span::new(0, 4, 3, 7);
        assert_eq!(s.to_string(), "3:7");
    }

    #[test]
    fn to_merges_ranges() {
        let a = Span::new(0, 4, 1, 1);
        let b = Span::new(6, 9, 1, 7);
        let m = a.to(b);
        assert_eq!((m.start, m.end), (0, 9));
        assert_eq!((m.line, m.col), (1, 1));
    }

    #[test]
    fn to_never_shrinks() {
        let a = Span::new(0, 10, 1, 1);
        let b = Span::new(2, 5, 1, 3);
        assert_eq!(a.to(b).end, 10);
    }
}
